//! Country similarity and clustering (§5.3.1 / Figs. 10–11, 21).
//!
//! Computes the traffic-weighted RBO similarity matrix over 45 countries,
//! clusters it with affinity propagation, and prints the clusters with
//! silhouette validation — the pipeline behind the paper's Fig. 11.
//!
//! Run with: `cargo run --release --example country_similarity`

use wwv::core::clustering::cluster_countries;
use wwv::core::similarity::similarity_matrix;
use wwv::core::AnalysisContext;
use wwv::telemetry::DatasetBuilder;
use wwv::world::{Metric, Month, Platform, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::small());
    let dataset = DatasetBuilder::new(&world)
        .months(&[Month::February2022])
        .base_volume(2.0e8)
        .client_threshold(500)
        .max_depth(3_000)
        .build();
    let ctx = AnalysisContext::with_depth(&world, &dataset, 2_000);

    println!("computing 45×45 traffic-weighted RBO matrix (Windows, page loads) …");
    let sim = similarity_matrix(&ctx, Platform::Windows, Metric::PageLoads);

    // A few pairings the paper calls out.
    for (a, b) in [("DZ", "MA"), ("MX", "AR"), ("FR", "BE"), ("AU", "CA"), ("KR", "JP"), ("KR", "US")] {
        println!("  RBO({a}, {b}) = {:.3}", sim.between(a, b).unwrap());
    }

    println!("\nclustering with affinity propagation …");
    let clustering = cluster_countries(&sim).expect("clustering converges");
    println!(
        "{} clusters, average silhouette {:.3} (paper: 11 clusters, SC 0.11)",
        clustering.clusters.len(),
        clustering.average_silhouette
    );
    for cluster in &clustering.clusters {
        println!(
            "  [{}] exemplar {:<3} SC {:+.2}  members: {}",
            cluster.index,
            cluster.exemplar,
            cluster.silhouette,
            cluster.members.join(" ")
        );
    }

    // Outlier check: KR and JP should be the least typical countries.
    let mut typicality: Vec<(String, f64)> = sim
        .labels
        .iter()
        .map(|c| (c.clone(), sim.mean_similarity(c).unwrap()))
        .collect();
    typicality.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("\nleast typical browsing profiles (mean similarity to others):");
    for (code, s) in typicality.iter().take(5) {
        println!("  {code}: {s:.3}");
    }
}
