//! Desktop vs mobile browsing (§4.3 / Figs. 4 and 15) and metric
//! disagreement (§4.4 / Fig. 5).
//!
//! Run with: `cargo run --release --example platform_gap`

use wwv::core::metric_diff::{metric_agreement, metric_leaning};
use wwv::core::platform_diff::platform_differences;
use wwv::core::AnalysisContext;
use wwv::telemetry::DatasetBuilder;
use wwv::world::{Metric, Month, Platform, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::small());
    let dataset = DatasetBuilder::new(&world)
        .months(&[Month::February2022])
        .base_volume(2.0e8)
        .client_threshold(500)
        .max_depth(3_000)
        .build();
    let ctx = AnalysisContext::with_depth(&world, &dataset, 2_000);

    println!("Fig. 4 — categories with significant desktop/mobile differences");
    println!("(score > 0 = mobile-leaning, < 0 = desktop-leaning)\n");
    let rows = platform_differences(&ctx, Metric::PageLoads);
    for r in &rows {
        let bar_len = (r.score.abs() * 24.0).round() as usize;
        let bar = if r.score >= 0.0 {
            format!("{:>24}|{}", "", "█".repeat(bar_len))
        } else {
            format!("{:>width$}|", "█".repeat(bar_len), width = 24)
        };
        println!("  {bar} {:+.2}  {} ({} countries significant)", r.score, r.category, r.significant_countries);
    }

    println!("\n§4.4 — page loads vs time on page agreement:");
    for platform in [Platform::Windows, Platform::Android] {
        let a = metric_agreement(&ctx, platform);
        println!(
            "  {platform}: intersection median {:.0}% (IQR {:.0}–{:.0}%), Spearman ρ median {:.2}",
            a.intersection.median * 100.0,
            a.intersection.q25 * 100.0,
            a.intersection.q75 * 100.0,
            a.spearman.median
        );
    }

    println!("\nFig. 5 — most loads-leaning vs time-leaning categories (Windows):");
    let leaning = metric_leaning(&ctx, Platform::Windows);
    let mut loads: Vec<_> = leaning.loads_leaning.iter().collect();
    loads.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    println!("  page-loads-leaning quintile:");
    for (cat, pct) in loads.iter().take(5) {
        println!("    {cat}: {pct:.1}%");
    }
    let mut time: Vec<_> = leaning.time_leaning.iter().collect();
    time.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    println!("  time-on-page-leaning quintile:");
    for (cat, pct) in time.iter().take(5) {
        println!("    {cat}: {pct:.1}%");
    }
}
