//! Endemicity atlas (§5.1–§5.2 / Figs. 6–9, Tables 1–2).
//!
//! Builds website popularity curves, scores endemicity, classifies sites as
//! globally vs nationally popular, and prints the category contrast between
//! the two classes.
//!
//! Run with: `cargo run --release --example endemicity_atlas`

use wwv::core::endemicity::{popularity_curves, CurveShape};
use wwv::core::global_national::{classify_global_national, class_composition, global_share_by_bucket, RANK_BUCKETS};
use wwv::core::AnalysisContext;
use wwv::telemetry::DatasetBuilder;
use wwv::world::{Metric, Month, Platform, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::small());
    let dataset = DatasetBuilder::new(&world)
        .months(&[Month::February2022])
        .base_volume(2.0e8)
        .client_threshold(500)
        .max_depth(3_000)
        .build();
    let ctx = AnalysisContext::with_depth(&world, &dataset, 2_000);

    println!("building popularity curves (sites in any country's top 200) …");
    let curves = popularity_curves(&ctx, Platform::Windows, Metric::PageLoads, 200);
    println!("scored {} site keys", curves.len());

    // Example curves, as in Fig. 6.
    println!("\nexample curves (endemicity E ∈ [0, 180], smaller = more global):");
    for key in ["google", "facebook", "netflix", "hbomax", "naver", "allegro"] {
        if let Some(c) = curves.iter().find(|c| c.key == key) {
            println!(
                "  {key:<10} E = {:>6.1}  present in {:>2}/45 countries  shape: {:?}",
                c.endemicity(),
                c.present_in(),
                c.shape()
            );
        }
    }

    // Shape census (Table 1).
    println!("\nshape census:");
    for shape in CurveShape::ALL {
        let n = curves.iter().filter(|c| c.shape() == shape).count();
        println!("  {shape:?}: {n}");
    }

    // Global vs national split (Table 2, Figs. 7–9).
    let (split, _) = classify_global_national(&ctx, Platform::Windows, Metric::PageLoads, 200);
    println!(
        "\nglobally popular: {:.1}% of {} scored sites (paper: ≈2%)",
        split.global_fraction * 100.0,
        split.scored
    );
    let comp = class_composition(&ctx, &split);
    let mut top_global: Vec<(&String, &f64)> = comp.global.iter().collect();
    top_global.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    println!("top categories among GLOBALLY popular sites:");
    for (cat, pct) in top_global.iter().take(6) {
        println!("  {cat}: {pct:.1}%");
    }
    let mut top_national: Vec<(&String, &f64)> = comp.national.iter().collect();
    top_national.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    println!("top categories among NATIONALLY popular sites:");
    for (cat, pct) in top_national.iter().take(6) {
        println!("  {cat}: {pct:.1}%");
    }

    // Fig. 9: global share by rank bucket.
    let fig9 = global_share_by_bucket(&ctx, &split, &RANK_BUCKETS);
    println!("\nglobally-popular share by rank bucket (median across countries):");
    for ((lo, hi), pct) in fig9.buckets.iter().zip(&fig9.global_pct) {
        println!("  ranks {lo:>4}–{hi:<4}: {pct:5.1}% global");
    }
}
