//! Serving-layer tour: build the dataset, stand up the in-process query
//! service, and ask it the paper's questions over the binary protocol —
//! top sites, a site's rank, cross-country list similarity (RBO) — then
//! show what the result cache did.
//!
//! Run with: `cargo run --release --example serve_queries`

use std::sync::Arc;
use wwv::serve::query::{ListKey, Query, Response};
use wwv::serve::server::{Server, ServerConfig};
use wwv::serve::store::{Catalog, ShardedStore, DEFAULT_SHARDS};
use wwv::serve::transport::{InProcTransport, Transport};
use wwv::telemetry::DatasetBuilder;
use wwv::world::{Country, Metric, Month, Platform, World, WorldConfig, COUNTRIES};

fn key(country: usize) -> ListKey {
    ListKey {
        snapshot: String::new(),
        country: country as u8,
        platform: Platform::Windows,
        metric: Metric::PageLoads,
        month: Month::February2022,
    }
}

fn main() {
    println!("generating world + dataset …");
    let world = World::new(WorldConfig::small());
    let dataset = DatasetBuilder::new(&world)
        .months(&[Month::February2022])
        .base_volume(2.0e8)
        .client_threshold(500)
        .max_depth(3_000)
        .build();

    let store = Arc::new(ShardedStore::build(&dataset, DEFAULT_SHARDS));
    let mut catalog = Catalog::new();
    catalog.insert("full", store);
    let server = Server::start(Arc::new(catalog), ServerConfig::default());
    // Every call below round-trips through the framed binary protocol.
    let mut client = InProcTransport::new(server.handle());

    let us = Country::index_of("US").expect("study country");
    let kr = Country::index_of("KR").expect("study country");

    println!("\ntop 5 sites in the US (Windows / page loads):");
    if let Response::TopK(entries) = client.call(&Query::TopK { key: key(us), k: 5 }).unwrap() {
        for e in &entries {
            println!("  {:>2}. {:<24} {:>6.2}%", e.rank, e.domain, e.share * 100.0);
        }
    }

    println!("\nwhere does google.com rank?");
    for ci in [us, kr] {
        let q = Query::SiteRank { key: key(ci), domain: "google.com".into() };
        match client.call(&q).unwrap() {
            Response::SiteRank(Some(info)) => println!(
                "  {}: rank {} ({:.2}% of loads)",
                COUNTRIES[ci].code,
                info.rank,
                info.share * 100.0
            ),
            Response::SiteRank(None) => println!("  {}: not ranked", COUNTRIES[ci].code),
            other => println!("  {}: {other:?}", COUNTRIES[ci].code),
        }
    }

    // RBO between country lists — issued twice so the second round is
    // answered from the result cache.
    println!("\nUS↔KR list similarity (RBO, p=0.9, depth 100):");
    for round in 1..=2 {
        let q = Query::Rbo { a: key(us), b: key(kr), depth: 100, p_permille: 900 };
        if let Response::Rbo(score) = client.call(&q).unwrap() {
            println!("  round {round}: RBO = {score:.3}");
        }
    }

    let stats = server.handle().cache_stats();
    println!(
        "\nresult cache: {} hits / {} misses (hit rate {:.0}%)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    let processed = server.shutdown();
    println!("served {processed} requests, shut down cleanly");
}
