//! The telemetry pipeline end-to-end: simulated clients emit event batches,
//! frames cross the wire codec, and a concurrent collector aggregates them
//! under the privacy safeguards (§3.1).
//!
//! Run with: `cargo run --release --example telemetry_pipeline`

use wwv::telemetry::client::ClientSimulator;
use wwv::telemetry::collector::Collector;
use wwv::telemetry::wire::encode_frame;
use wwv::world::{Breakdown, Country, Metric, Month, Platform, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::small());
    let sim = ClientSimulator::new(&world);
    let b = Breakdown {
        country: Country::index_of("US").expect("US is a study country"),
        platform: Platform::Windows,
        metric: Metric::PageLoads,
        month: Month::February2022,
    };

    println!("simulating 400 clients …");
    let batches = sim.batches(b, 400);
    let events: usize = batches.iter().map(|b| b.events.len()).sum();
    println!("  {} batches, {} events", batches.len(), events);

    println!("encoding frames and ingesting through a 4-worker collector …");
    let collector = Collector::start(4, 1_000);
    let mut wire_bytes = 0usize;
    for batch in &batches {
        let frame = encode_frame(batch).expect("simulated batches fit one frame");
        wire_bytes += frame.len();
        collector.ingest(frame);
    }
    let (aggregate, stats) = collector.finish();
    println!("  {} bytes on the wire", wire_bytes);
    println!(
        "  frames ok {} / bad {}, events {}, non-public dropped {}",
        stats.frames_ok, stats.frames_bad, stats.events, stats.dropped.non_public
    );

    // Top domains by completed loads.
    let mut rows: Vec<(&str, u64, u64)> = aggregate
        .iter()
        .map(|(k, v)| (k.domain.as_str(), v.completed, v.unique_clients))
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    println!("\ntop domains from the aggregated event stream:");
    println!("  {:<24} {:>10} {:>8}", "domain", "loads", "clients");
    for (domain, loads, clients) in rows.iter().take(12) {
        println!("  {domain:<24} {loads:>10} {clients:>8}");
    }

    // The same ordering the expectation-level builder would produce.
    let demand = world.ranked(b, 5);
    println!("\nexpected top-5 by the demand model:");
    for (site, share) in demand {
        println!("  {:<24} {:.2}% of demand", world.domain_of(site, b.country), share * 100.0);
    }
}
