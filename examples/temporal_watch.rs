//! Temporal stability of the web (§4.5) — adjacent-month similarity, drift
//! from September, and the December anomaly.
//!
//! Run with: `cargo run --release --example temporal_watch`

use wwv::core::temporal::{
    adjacent_month_stability, category_share_by_month, december_anomaly, from_september_stability,
};
use wwv::core::AnalysisContext;
use wwv::taxonomy::Category;
use wwv::telemetry::DatasetBuilder;
use wwv::world::{Metric, Month, Platform, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::small());
    // All six study months.
    let dataset = DatasetBuilder::new(&world)
        .base_volume(2.0e8)
        .client_threshold(500)
        .max_depth(3_000)
        .build();
    let ctx = AnalysisContext::with_depth(&world, &dataset, 2_000);

    println!("adjacent-month stability (Windows page loads, top 100):");
    for p in adjacent_month_stability(&ctx, Platform::Windows, Metric::PageLoads, 100) {
        println!(
            "  {} → {}: intersection {:.0}% (IQR {:.0}–{:.0}%), ρ {:.2}",
            p.from,
            p.to,
            p.intersection.median * 100.0,
            p.intersection.q25 * 100.0,
            p.intersection.q75 * 100.0,
            p.spearman.median
        );
    }

    println!("\ndrift from September (top 100):");
    for p in from_september_stability(&ctx, Platform::Windows, Metric::PageLoads, 100) {
        println!("  2021-09 → {}: intersection {:.0}%", p.to, p.intersection.median * 100.0);
    }

    let anomaly = december_anomaly(&ctx, Platform::Windows, Metric::TimeOnPage, 1_000);
    println!("\nDecember anomaly (top-1000, Windows time on page):");
    println!(
        "  Nov→Dec intersection {:.0}% vs Jan→Feb {:.0}%",
        anomaly.nov_dec_intersection * 100.0,
        anomaly.jan_feb_intersection * 100.0
    );
    println!(
        "  education share: Nov {:.1}% → Dec {:.1}%  (paper: 8.4% → 6.8%)",
        anomaly.education_nov_dec.0, anomaly.education_nov_dec.1
    );
    println!(
        "  e-commerce share: Nov {:.1}% → Dec {:.1}%  (paper: 5.0% → 6.1%)",
        anomaly.ecommerce_nov_dec.0, anomaly.ecommerce_nov_dec.1
    );

    println!("\ncategory share across all months (top-1000 sites):");
    for cat in [Category::Ecommerce, Category::Education, Category::NewsMedia] {
        let series = category_share_by_month(&ctx, cat, Platform::Windows, Metric::PageLoads, 1_000);
        let cells: Vec<String> = Month::ALL
            .iter()
            .zip(&series.shares)
            .map(|(m, s)| format!("{m}: {s:.1}%"))
            .collect();
        println!("  {:<22} {}", series.category, cells.join("  "));
    }
}
