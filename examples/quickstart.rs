//! Quickstart: generate a world, build the Chrome-style dataset, and ask the
//! paper's first questions — who tops the web, and how concentrated is it?
//!
//! Run with: `cargo run --release --example quickstart`

use wwv::core::concentration::{concentration_curve, headline_stats};
use wwv::core::AnalysisContext;
use wwv::telemetry::DatasetBuilder;
use wwv::world::{Country, Metric, Month, Platform, World, WorldConfig};

fn main() {
    // A reduced world keeps the example fast; `WorldConfig::default()` is the
    // paper-scale configuration.
    println!("generating world …");
    let world = World::new(WorldConfig::small());
    println!("building telemetry dataset …");
    let dataset = DatasetBuilder::new(&world)
        .months(&[Month::February2022])
        .base_volume(2.0e8)
        .client_threshold(500)
        .max_depth(3_000)
        .build();
    let ctx = AnalysisContext::with_depth(&world, &dataset, 2_000);

    // Top sites for a few countries (February 2022, Windows, page loads).
    for code in ["US", "KR", "BR", "DZ"] {
        let ci = Country::index_of(code).expect("study country");
        let b = ctx.breakdown(ci, Platform::Windows, Metric::PageLoads);
        let list = ctx.key_list(b);
        let top: Vec<&str> = list.iter().take(8).map(String::as_str).collect();
        println!("{code} top sites by page loads: {top:?}");
    }

    // Fig. 1-style concentration curve.
    let curve = concentration_curve(Platform::Windows, Metric::PageLoads);
    println!("\nWindows page-load concentration (global distribution data):");
    for (rank, cum) in curve.ranks.iter().zip(&curve.cumulative) {
        if [1, 6, 100, 10_000, 1_000_000].contains(&(*rank as usize)) {
            println!("  top {rank:>8} sites → {:5.1}% of page loads", cum * 100.0);
        }
    }

    // §4.1.2 headline stats from the dataset.
    let stats = headline_stats(&ctx);
    println!("\nheadline stats:");
    println!("  Google #1 by loads in {}/45 countries", stats.google_top_loads_countries);
    if let Some((country, key)) = &stats.non_google_leader {
        println!("  the exception: {key} leads in {country}");
    }
    println!("  YouTube #1 by time in {}/45 countries", stats.youtube_top_time_countries);
    println!(
        "  per-country top-site share of loads: median {:.0}%, IQR {:.0}–{:.0}%",
        stats.country_top1_share.median * 100.0,
        stats.country_top1_share.q25 * 100.0,
        stats.country_top1_share.q75 * 100.0,
    );
}
