//! CrUX-style public export and the §6 geo-coverage check.
//!
//! Produces the public-data analogue of the paper's dataset (rank magnitude
//! buckets per country and globally) and measures how much of each country's
//! head the globally aggregated list misses — the bias §6 warns about.
//!
//! Run with: `cargo run --release --example crux_export`

use wwv::core::representative::section6_comparison;
use wwv::core::AnalysisContext;
use wwv::telemetry::crux::{country_buckets, global_buckets, global_coverage};
use wwv::telemetry::DatasetBuilder;
use wwv::world::{Country, Metric, Month, Platform, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::small());
    let dataset = DatasetBuilder::new(&world)
        .months(&[Month::February2022])
        .base_volume(2.0e8)
        .client_threshold(500)
        .max_depth(3_000)
        .build();
    let ladder = [100usize, 1_000, 3_000];

    // Per-country buckets for a couple of countries.
    for code in ["US", "KR"] {
        let ci = Country::index_of(code).unwrap();
        let buckets =
            country_buckets(&dataset, ci, Platform::Windows, Month::February2022, &ladder)
                .expect("bucketed list");
        println!(
            "{code}: bucket sizes {:?}",
            ladder.iter().map(|b| buckets.count_in(*b)).collect::<Vec<_>>()
        );
    }

    // Global bucket list.
    let global = global_buckets(&dataset, Platform::Windows, Month::February2022, &ladder);
    println!(
        "global: bucket sizes {:?}",
        ladder.iter().map(|b| global.count_in(*b)).collect::<Vec<_>>()
    );

    // §6 check: how much of each country's head the global list misses.
    let mut coverage = global_coverage(&dataset, Platform::Windows, Month::February2022, &ladder);
    coverage.sort_by(|a, b| b.missing_from_global_head.partial_cmp(&a.missing_from_global_head).unwrap());
    println!("\ncountries whose head sites the GLOBAL head bucket misses most:");
    for c in coverage.iter().take(8) {
        println!(
            "  {}: {:.0}% of its top-{} outside the global head bucket",
            c.country,
            c.missing_from_global_head * 100.0,
            c.head_sites
        );
    }

    // Representative-set comparison (§6 recommendation).
    let ctx = AnalysisContext::with_depth(&world, &dataset, 2_000);
    let cmp = section6_comparison(&ctx, Platform::Windows, Metric::PageLoads);
    println!("\nrepresentative-set comparison (size-matched):");
    for report in [&cmp.global_only, &cmp.global_plus_national] {
        println!(
            "  {:<44} median coverage {:.0}%, worst {} at {:.0}%",
            report.set_name,
            report.summary.median * 100.0,
            report.worst.0,
            report.worst.1 * 100.0
        );
    }
}
