//! Cross-country site merging (§3.1, "Aggregating Sites Across Domains").
//!
//! Top sites are often hosted under several ccTLDs (`google.com`,
//! `google.co.uk`, `google.de`, …). When comparing sites across countries the
//! paper folds these together. We reproduce that by reducing each registrable
//! domain to its [`SiteKey`]: the single label left of the public suffix.
//!
//! The paper notes this process is imperfect — `top.com` (a crypto exchange)
//! and `top.gg` (a Discord-server ranking) collide. The same collision exists
//! here by construction, and is exercised in tests.

use crate::error::DomainError;
use crate::etld::RegistrableDomain;
use crate::name::DomainName;
use crate::psl::PublicSuffixList;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The cross-country identity of a website: the eTLD+1 label with the public
/// suffix stripped (`google` for both `google.com` and `google.co.uk`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteKey(String);

impl SiteKey {
    /// Derives the site key of a hostname.
    ///
    /// ```
    /// use wwv_domains::{DomainName, PublicSuffixList, SiteKey};
    /// let psl = PublicSuffixList::embedded();
    /// let uk: DomainName = "www.google.co.uk".parse().unwrap();
    /// let us: DomainName = "google.com".parse().unwrap();
    /// assert_eq!(SiteKey::of(&uk, &psl).unwrap(), SiteKey::of(&us, &psl).unwrap());
    /// ```
    pub fn of(domain: &DomainName, psl: &PublicSuffixList) -> Result<Self, DomainError> {
        let reg = RegistrableDomain::of(domain, psl)?;
        Ok(SiteKey(reg.label().to_owned()))
    }

    /// Derives the site key from an already-extracted registrable domain.
    pub fn of_registrable(reg: &RegistrableDomain) -> Self {
        SiteKey(reg.label().to_owned())
    }

    /// Builds a site key directly from a label, validating label syntax.
    pub fn from_label(label: &str) -> Result<Self, DomainError> {
        // Reuse DomainName validation on the single label.
        let d = DomainName::parse(label)?;
        if d.label_count() != 1 {
            return Err(DomainError::InvalidCharacter { index: 0, ch: '.' });
        }
        Ok(SiteKey(d.as_str().to_owned()))
    }

    /// The key as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SiteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for SiteKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psl() -> PublicSuffixList {
        PublicSuffixList::embedded()
    }

    fn key(s: &str) -> SiteKey {
        SiteKey::of(&DomainName::parse(s).unwrap(), &psl()).unwrap()
    }

    #[test]
    fn cctld_variants_merge() {
        assert_eq!(key("google.com"), key("google.co.uk"));
        assert_eq!(key("google.com"), key("www.google.com.br"));
        assert_eq!(key("amazon.de"), key("amazon.co.jp"));
    }

    #[test]
    fn distinct_sites_stay_distinct() {
        assert_ne!(key("google.com"), key("youtube.com"));
    }

    #[test]
    fn known_collision_reproduced() {
        // The paper's documented imperfection: unrelated sites sharing the
        // left-most label collide after merging.
        assert_eq!(key("top.com"), key("top.gg"));
    }

    #[test]
    fn from_label_validates() {
        assert!(SiteKey::from_label("google").is_ok());
        assert!(SiteKey::from_label("").is_err());
        assert!(SiteKey::from_label("a.b").is_err());
        assert!(SiteKey::from_label("UPPER").map(|k| k.as_str().to_owned()).unwrap() == "upper");
    }

    #[test]
    fn subdomains_do_not_leak_into_key() {
        assert_eq!(key("mail.google.com").as_str(), "google");
        assert_eq!(key("a.b.c.d.example.co.kr").as_str(), "example");
    }
}
