//! Public Suffix List (PSL) rules and matching.
//!
//! Implements the [PSL algorithm](https://publicsuffix.org/list/) over an
//! embedded snapshot of rules. The snapshot covers every suffix used by the
//! `wwv-world` site universe (all 45 study countries plus the generic TLDs the
//! paper's top sites live under) rather than vendoring the full Mozilla list;
//! the matching semantics — normal rules, wildcard rules (`*.ck`), and
//! exception rules (`!www.ck`) — are implemented in full.

use crate::error::DomainError;
use crate::name::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One PSL rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// A literal suffix such as `co.uk`.
    Normal(String),
    /// A wildcard rule `*.<base>`; matches any single label followed by base.
    Wildcard(String),
    /// An exception rule `!<name>`; overrides a wildcard, making the suffix
    /// one label shorter.
    Exception(String),
}

impl Rule {
    /// Parses a rule from PSL text syntax (`co.uk`, `*.ck`, `!www.ck`).
    pub fn parse(text: &str) -> Option<Rule> {
        let text = text.trim();
        if text.is_empty() || text.starts_with("//") {
            return None;
        }
        if let Some(rest) = text.strip_prefix('!') {
            return Some(Rule::Exception(rest.to_ascii_lowercase()));
        }
        if let Some(rest) = text.strip_prefix("*.") {
            return Some(Rule::Wildcard(rest.to_ascii_lowercase()));
        }
        Some(Rule::Normal(text.to_ascii_lowercase()))
    }
}

/// Result of matching a domain against the list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixMatch {
    /// The public suffix (e.g. `co.uk` for `www.google.co.uk`).
    pub suffix: String,
    /// Number of labels in the suffix.
    pub suffix_labels: usize,
    /// Whether the match came from an explicit rule (vs the implicit `*`
    /// default rule that treats an unknown TLD as a suffix).
    pub explicit: bool,
}

/// An in-memory Public Suffix List.
///
/// ```
/// use wwv_domains::{DomainName, PublicSuffixList};
/// let psl = PublicSuffixList::embedded();
/// let d: DomainName = "www.google.co.uk".parse().unwrap();
/// assert_eq!(psl.public_suffix(&d).suffix, "co.uk");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PublicSuffixList {
    /// Normal rules keyed by their full suffix text.
    normal: HashMap<String, ()>,
    /// Wildcard bases (`ck` for `*.ck`).
    wildcard: HashMap<String, ()>,
    /// Exception names (`www.ck` for `!www.ck`).
    exception: HashMap<String, ()>,
}

impl PublicSuffixList {
    /// Builds an empty list (only the implicit `*` default rule applies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a list from PSL-syntax lines. Comment lines (`//`) and blank
    /// lines are skipped.
    pub fn from_lines<'a, I: IntoIterator<Item = &'a str>>(lines: I) -> Self {
        let mut list = Self::new();
        for line in lines {
            if let Some(rule) = Rule::parse(line) {
                list.insert(rule);
            }
        }
        list
    }

    /// Adds a rule.
    pub fn insert(&mut self, rule: Rule) {
        match rule {
            Rule::Normal(s) => {
                self.normal.insert(s, ());
            }
            Rule::Wildcard(s) => {
                self.wildcard.insert(s, ());
            }
            Rule::Exception(s) => {
                self.exception.insert(s, ());
            }
        }
    }

    /// Number of rules in the list.
    pub fn len(&self) -> usize {
        self.normal.len() + self.wildcard.len() + self.exception.len()
    }

    /// Whether the list holds no explicit rules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The embedded snapshot used throughout the workspace.
    pub fn embedded() -> Self {
        Self::from_lines(EMBEDDED_RULES.iter().copied())
    }

    /// Computes the public suffix of `domain` per the PSL algorithm:
    ///
    /// 1. Exception rules win outright; the suffix is the exception minus its
    ///    left-most label.
    /// 2. Otherwise the longest matching (normal or wildcard) rule wins.
    /// 3. If nothing matches, the implicit `*` rule makes the TLD the suffix.
    pub fn public_suffix(&self, domain: &DomainName) -> SuffixMatch {
        let total = domain.label_count();
        // Exception rules: check every right-aligned slice.
        for n in (1..=total).rev() {
            let candidate = domain.rightmost(n).expect("n <= total");
            if self.exception.contains_key(candidate) {
                // Suffix is the exception with its left-most label removed.
                let (_, rest) = candidate.split_once('.').unwrap_or((candidate, ""));
                let suffix = if rest.is_empty() { candidate } else { rest };
                return SuffixMatch {
                    suffix: suffix.to_owned(),
                    suffix_labels: suffix.split('.').count(),
                    explicit: true,
                };
            }
        }
        // Longest normal/wildcard match.
        for n in (1..=total).rev() {
            let candidate = domain.rightmost(n).expect("n <= total");
            if self.normal.contains_key(candidate) {
                return SuffixMatch { suffix: candidate.to_owned(), suffix_labels: n, explicit: true };
            }
            // `*.base` matches candidate when candidate = <label>.<base>.
            if n >= 2 {
                let (_, base) = candidate.split_once('.').expect("n >= 2 has a dot");
                if self.wildcard.contains_key(base) {
                    return SuffixMatch { suffix: candidate.to_owned(), suffix_labels: n, explicit: true };
                }
            }
        }
        // Implicit default rule `*`.
        let tld = domain.tld().to_owned();
        SuffixMatch { suffix: tld, suffix_labels: 1, explicit: false }
    }

    /// Returns `true` when the whole domain is itself a public suffix.
    pub fn is_public_suffix(&self, domain: &DomainName) -> bool {
        let m = self.public_suffix(domain);
        m.suffix_labels == domain.label_count()
    }

    /// Validates that a registrable domain can be extracted, returning the
    /// match on success.
    pub fn checked_suffix(&self, domain: &DomainName) -> Result<SuffixMatch, DomainError> {
        let m = self.public_suffix(domain);
        if m.suffix_labels >= domain.label_count() {
            return Err(DomainError::IsPublicSuffix { name: domain.as_str().to_owned() });
        }
        Ok(m)
    }
}

/// Embedded rule snapshot.
///
/// Generic TLDs and the country suffixes for all 45 study countries
/// (Appendix A of the paper), including multi-label registry suffixes, one
/// wildcard family and its exception (mirroring the canonical `ck` example)
/// so that all three rule kinds are exercised.
pub const EMBEDDED_RULES: &[&str] = &[
    // Generic TLDs.
    "com", "org", "net", "io", "gg", "tv", "me", "co", "app", "dev", "info", "biz", "xyz",
    "online", "site", "live", "wiki", "cx", "fm", "gov", "edu", "mil", "int",
    // Africa.
    "dz", "com.dz", "gov.dz", "edu.dz",
    "eg", "com.eg", "gov.eg", "edu.eg",
    "ke", "co.ke", "go.ke", "ac.ke",
    "ma", "gov.ma", "ac.ma", "co.ma",
    "ng", "com.ng", "gov.ng", "edu.ng",
    "tn", "com.tn", "gov.tn",
    "za", "co.za", "gov.za", "ac.za", "org.za",
    // Asia.
    "jp", "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
    "in", "co.in", "gov.in", "ac.in", "org.in", "net.in",
    "kr", "co.kr", "go.kr", "ac.kr", "or.kr", "ne.kr",
    "tr", "com.tr", "gov.tr", "edu.tr", "org.tr",
    "vn", "com.vn", "gov.vn", "edu.vn", "net.vn",
    "tw", "com.tw", "gov.tw", "edu.tw", "org.tw",
    "id", "co.id", "go.id", "ac.id", "or.id",
    "th", "co.th", "go.th", "ac.th", "in.th",
    "ph", "com.ph", "gov.ph", "edu.ph",
    "hk", "com.hk", "gov.hk", "edu.hk", "org.hk",
    // Europe.
    "uk", "co.uk", "org.uk", "ac.uk", "gov.uk", "net.uk",
    "fr", "gouv.fr", "asso.fr",
    "ru", "com.ru", "org.ru",
    "de",
    "it", "gov.it", "edu.it",
    "es", "com.es", "gob.es", "edu.es",
    "nl",
    "pl", "com.pl", "net.pl", "org.pl", "gov.pl", "edu.pl",
    "ua", "com.ua", "gov.ua", "edu.ua", "net.ua", "in.ua",
    "be", "ac.be",
    // North America.
    "ca", "gc.ca", "on.ca", "qc.ca", "bc.ca",
    "cr", "co.cr", "go.cr", "ac.cr",
    "do", "com.do", "gob.do", "edu.do", "org.do",
    "gt", "com.gt", "gob.gt", "edu.gt",
    "mx", "com.mx", "gob.mx", "edu.mx", "org.mx",
    "pa", "com.pa", "gob.pa", "edu.pa",
    "us", "k12.ca.us",
    // Oceania.
    "au", "com.au", "net.au", "org.au", "edu.au", "gov.au",
    "nz", "co.nz", "govt.nz", "ac.nz", "org.nz", "net.nz",
    // South America.
    "ar", "com.ar", "gob.ar", "edu.ar", "org.ar", "net.ar",
    "bo", "com.bo", "gob.bo", "edu.bo",
    "br", "com.br", "gov.br", "edu.br", "org.br", "net.br",
    "cl", "gob.cl", "gov.cl",
    "com.co", "gov.co", "edu.co", "org.co", "net.co",
    "ec", "com.ec", "gob.ec", "edu.ec",
    "pe", "com.pe", "gob.pe", "edu.pe", "org.pe",
    "uy", "com.uy", "gub.uy", "edu.uy", "org.uy",
    "ve", "com.ve", "gob.ve", "edu.ve", "org.ve",
    // Wildcard family with exception (canonical PSL example).
    "*.ck", "!www.ck",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn psl() -> PublicSuffixList {
        PublicSuffixList::embedded()
    }

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn normal_rule_longest_wins() {
        let m = psl().public_suffix(&dom("www.google.co.uk"));
        assert_eq!(m.suffix, "co.uk");
        assert_eq!(m.suffix_labels, 2);
        assert!(m.explicit);
    }

    #[test]
    fn single_label_tld() {
        let m = psl().public_suffix(&dom("example.com"));
        assert_eq!(m.suffix, "com");
        assert!(m.explicit);
    }

    #[test]
    fn unknown_tld_uses_default_rule() {
        let m = psl().public_suffix(&dom("foo.unknowntld"));
        assert_eq!(m.suffix, "unknowntld");
        assert!(!m.explicit);
    }

    #[test]
    fn wildcard_rule_matches_any_label() {
        let m = psl().public_suffix(&dom("shop.example.ck"));
        assert_eq!(m.suffix, "example.ck");
        assert_eq!(m.suffix_labels, 2);
    }

    #[test]
    fn exception_rule_overrides_wildcard() {
        let m = psl().public_suffix(&dom("www.ck"));
        assert_eq!(m.suffix, "ck");
        assert_eq!(m.suffix_labels, 1);
        let m = psl().public_suffix(&dom("blog.www.ck"));
        assert_eq!(m.suffix, "ck", "exception applies anywhere right-aligned");
    }

    #[test]
    fn bare_suffix_detected() {
        assert!(psl().is_public_suffix(&dom("co.uk")));
        assert!(psl().is_public_suffix(&dom("com")));
        assert!(!psl().is_public_suffix(&dom("google.com")));
    }

    #[test]
    fn checked_suffix_rejects_bare_suffix() {
        let err = psl().checked_suffix(&dom("co.uk")).unwrap_err();
        assert!(matches!(err, DomainError::IsPublicSuffix { .. }));
    }

    #[test]
    fn rule_parse_handles_all_kinds() {
        assert_eq!(Rule::parse("co.uk"), Some(Rule::Normal("co.uk".into())));
        assert_eq!(Rule::parse("*.ck"), Some(Rule::Wildcard("ck".into())));
        assert_eq!(Rule::parse("!www.ck"), Some(Rule::Exception("www.ck".into())));
        assert_eq!(Rule::parse("// comment"), None);
        assert_eq!(Rule::parse("   "), None);
    }

    #[test]
    fn from_lines_skips_comments() {
        let list = PublicSuffixList::from_lines(["// header", "com", "", "*.ck", "!www.ck"]);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn study_country_suffixes_present() {
        // Spot-check one multi-label suffix per continent.
        for (name, want) in [
            ("x.co.za", "co.za"),
            ("x.co.kr", "co.kr"),
            ("x.co.uk", "co.uk"),
            ("x.com.mx", "com.mx"),
            ("x.com.au", "com.au"),
            ("x.com.br", "com.br"),
        ] {
            assert_eq!(psl().public_suffix(&dom(name)).suffix, want);
        }
    }
}
