//! Validated domain names.

use crate::error::DomainError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A validated, normalized domain name.
///
/// Normalization lower-cases ASCII and strips a single trailing dot. The
/// stored form is guaranteed to satisfy:
///
/// * non-empty, at most 253 bytes;
/// * every label is 1–63 bytes of `[a-z0-9_-]`;
/// * no label starts or ends with `-`.
///
/// ```
/// use wwv_domains::DomainName;
/// let d: DomainName = "WWW.Google.CO.UK.".parse().unwrap();
/// assert_eq!(d.as_str(), "www.google.co.uk");
/// assert_eq!(d.labels().count(), 4);
/// assert_eq!(d.tld(), "uk");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct DomainName(String);

impl DomainName {
    /// Maximum total length of a domain name in bytes.
    pub const MAX_LEN: usize = 253;
    /// Maximum length of a single label in bytes.
    pub const MAX_LABEL_LEN: usize = 63;

    /// Parses and normalizes a domain name.
    pub fn parse(input: &str) -> Result<Self, DomainError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(DomainError::Empty);
        }
        let normalized = trimmed.to_ascii_lowercase();
        if normalized.len() > Self::MAX_LEN {
            return Err(DomainError::TooLong { len: normalized.len() });
        }
        for (index, label) in normalized.split('.').enumerate() {
            if label.is_empty() {
                return Err(DomainError::EmptyLabel { index });
            }
            if label.len() > Self::MAX_LABEL_LEN {
                return Err(DomainError::LabelTooLong { index, len: label.len() });
            }
            if let Some(ch) = label
                .chars()
                .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-' || *c == '_'))
            {
                return Err(DomainError::InvalidCharacter { index, ch });
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainError::HyphenEdge { index });
            }
        }
        Ok(DomainName(normalized))
    }

    /// Returns the normalized string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the labels left-to-right (`www`, `google`, `co`, `uk`).
    pub fn labels(&self) -> impl DoubleEndedIterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The right-most label (top-level domain).
    pub fn tld(&self) -> &str {
        self.labels().next_back().expect("validated non-empty")
    }

    /// Returns the suffix made of the right-most `n` labels, or `None` when
    /// the name has fewer than `n` labels.
    ///
    /// ```
    /// use wwv_domains::DomainName;
    /// let d: DomainName = "a.b.co.uk".parse().unwrap();
    /// assert_eq!(d.rightmost(2), Some("co.uk"));
    /// assert_eq!(d.rightmost(5), None);
    /// ```
    pub fn rightmost(&self, n: usize) -> Option<&str> {
        if n == 0 {
            return None;
        }
        let total = self.label_count();
        if n > total {
            return None;
        }
        let skip = total - n;
        let mut offset = 0usize;
        for (i, label) in self.0.split('.').enumerate() {
            if i == skip {
                break;
            }
            offset += label.len() + 1;
            let _ = i;
        }
        Some(&self.0[offset..])
    }

    /// Drops the left-most label, returning the parent domain, or `None` for
    /// single-label names.
    pub fn parent(&self) -> Option<DomainName> {
        let (_, rest) = self.0.split_once('.')?;
        Some(DomainName(rest.to_owned()))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for DomainName {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl TryFrom<String> for DomainName {
    type Error = DomainError;
    fn try_from(value: String) -> Result<Self, Self::Error> {
        DomainName::parse(&value)
    }
}

impl From<DomainName> for String {
    fn from(value: DomainName) -> Self {
        value.0
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let d = DomainName::parse("Example.COM").unwrap();
        assert_eq!(d.as_str(), "example.com");
    }

    #[test]
    fn strips_single_trailing_dot() {
        assert_eq!(DomainName::parse("example.com.").unwrap().as_str(), "example.com");
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(DomainName::parse(""), Err(DomainError::Empty));
        assert_eq!(DomainName::parse("."), Err(DomainError::Empty));
    }

    #[test]
    fn rejects_consecutive_dots() {
        assert_eq!(DomainName::parse("a..b"), Err(DomainError::EmptyLabel { index: 1 }));
    }

    #[test]
    fn rejects_leading_dot() {
        assert_eq!(DomainName::parse(".example"), Err(DomainError::EmptyLabel { index: 0 }));
    }

    #[test]
    fn rejects_bad_chars() {
        assert!(matches!(
            DomainName::parse("exa mple.com"),
            Err(DomainError::InvalidCharacter { index: 0, ch: ' ' })
        ));
        assert!(matches!(
            DomainName::parse("héllo.com"),
            Err(DomainError::InvalidCharacter { .. })
        ));
    }

    #[test]
    fn rejects_hyphen_edges() {
        assert_eq!(DomainName::parse("-a.com"), Err(DomainError::HyphenEdge { index: 0 }));
        assert_eq!(DomainName::parse("a-.com"), Err(DomainError::HyphenEdge { index: 0 }));
        assert!(DomainName::parse("a-b.com").is_ok());
    }

    #[test]
    fn allows_underscore_labels() {
        // Real telemetry contains names like `_dmarc.example.com`.
        assert!(DomainName::parse("_dmarc.example.com").is_ok());
    }

    #[test]
    fn rejects_overlong_label() {
        let label = "a".repeat(64);
        let input = format!("{label}.com");
        assert!(matches!(
            DomainName::parse(&input),
            Err(DomainError::LabelTooLong { index: 0, len: 64 })
        ));
    }

    #[test]
    fn rejects_overlong_name() {
        let input = ["abcdefgh"; 32].join(".");
        assert!(input.len() > DomainName::MAX_LEN);
        assert!(matches!(DomainName::parse(&input), Err(DomainError::TooLong { .. })));
    }

    #[test]
    fn rightmost_extracts_suffixes() {
        let d = DomainName::parse("a.b.co.uk").unwrap();
        assert_eq!(d.rightmost(1), Some("uk"));
        assert_eq!(d.rightmost(2), Some("co.uk"));
        assert_eq!(d.rightmost(3), Some("b.co.uk"));
        assert_eq!(d.rightmost(4), Some("a.b.co.uk"));
        assert_eq!(d.rightmost(0), None);
        assert_eq!(d.rightmost(5), None);
    }

    #[test]
    fn parent_walks_up() {
        let d = DomainName::parse("a.b.c").unwrap();
        let p = d.parent().unwrap();
        assert_eq!(p.as_str(), "b.c");
        assert_eq!(p.parent().unwrap().as_str(), "c");
        assert_eq!(p.parent().unwrap().parent(), None);
    }

    #[test]
    fn tld_is_last_label() {
        assert_eq!(DomainName::parse("x.y.z.io").unwrap().tld(), "io");
        assert_eq!(DomainName::parse("localhost").unwrap().tld(), "localhost");
    }

    #[test]
    fn serde_roundtrip_validates() {
        let d = DomainName::parse("example.org").unwrap();
        let json = serde_json_roundtrip(&d);
        assert_eq!(json, d);
    }

    fn serde_json_roundtrip(d: &DomainName) -> DomainName {
        // Manual mini-roundtrip through the String representation to avoid a
        // serde_json dev-dependency in this crate.
        let s: String = d.clone().into();
        DomainName::try_from(s).unwrap()
    }
}
