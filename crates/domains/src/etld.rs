//! Registrable-domain (eTLD+1) extraction.

use crate::error::DomainError;
use crate::name::DomainName;
use crate::psl::PublicSuffixList;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The registrable domain of a hostname: one label plus the public suffix
/// (`google.co.uk` for `www.google.co.uk`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegistrableDomain {
    name: DomainName,
    /// Number of labels belonging to the public suffix.
    suffix_labels: usize,
}

impl RegistrableDomain {
    /// Extracts the registrable domain of `domain` under `psl`.
    ///
    /// ```
    /// use wwv_domains::{DomainName, PublicSuffixList, RegistrableDomain};
    /// let psl = PublicSuffixList::embedded();
    /// let d: DomainName = "maps.google.co.uk".parse().unwrap();
    /// let r = RegistrableDomain::of(&d, &psl).unwrap();
    /// assert_eq!(r.as_str(), "google.co.uk");
    /// assert_eq!(r.label(), "google");
    /// assert_eq!(r.suffix(), "co.uk");
    /// ```
    pub fn of(domain: &DomainName, psl: &PublicSuffixList) -> Result<Self, DomainError> {
        let m = psl.checked_suffix(domain)?;
        let keep = m.suffix_labels + 1;
        let text = domain.rightmost(keep).expect("checked_suffix guarantees keep <= labels");
        Ok(RegistrableDomain {
            name: DomainName::parse(text).expect("substring of a valid name is valid"),
            suffix_labels: m.suffix_labels,
        })
    }

    /// The registrable domain as a string.
    pub fn as_str(&self) -> &str {
        self.name.as_str()
    }

    /// The underlying validated name.
    pub fn domain(&self) -> &DomainName {
        &self.name
    }

    /// The single label left of the public suffix (`google` in
    /// `google.co.uk`). This is the unit the paper merges across ccTLDs.
    pub fn label(&self) -> &str {
        self.name.labels().next().expect("validated non-empty")
    }

    /// The public suffix portion (`co.uk` in `google.co.uk`).
    pub fn suffix(&self) -> &str {
        self.name.rightmost(self.suffix_labels).expect("suffix labels within bounds")
    }
}

impl fmt::Display for RegistrableDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psl() -> PublicSuffixList {
        PublicSuffixList::embedded()
    }

    #[test]
    fn extracts_etld_plus_one() {
        let d = DomainName::parse("deep.sub.example.com").unwrap();
        let r = RegistrableDomain::of(&d, &psl()).unwrap();
        assert_eq!(r.as_str(), "example.com");
        assert_eq!(r.label(), "example");
        assert_eq!(r.suffix(), "com");
    }

    #[test]
    fn multi_label_suffix() {
        let d = DomainName::parse("news.bbc.co.uk").unwrap();
        let r = RegistrableDomain::of(&d, &psl()).unwrap();
        assert_eq!(r.as_str(), "bbc.co.uk");
        assert_eq!(r.suffix(), "co.uk");
    }

    #[test]
    fn bare_suffix_is_error() {
        let d = DomainName::parse("com.br").unwrap();
        assert!(RegistrableDomain::of(&d, &psl()).is_err());
    }

    #[test]
    fn unknown_tld_default_rule() {
        let d = DomainName::parse("a.b.weirdtld").unwrap();
        let r = RegistrableDomain::of(&d, &psl()).unwrap();
        assert_eq!(r.as_str(), "b.weirdtld");
    }

    #[test]
    fn idempotent_on_registrable_domain() {
        let d = DomainName::parse("example.com").unwrap();
        let r = RegistrableDomain::of(&d, &psl()).unwrap();
        let again = RegistrableDomain::of(r.domain(), &psl()).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn wildcard_suffix_registrable() {
        let d = DomainName::parse("a.shop.foo.ck").unwrap();
        let r = RegistrableDomain::of(&d, &psl()).unwrap();
        // `*.ck` makes `foo.ck` the suffix, so eTLD+1 is `shop.foo.ck`.
        assert_eq!(r.as_str(), "shop.foo.ck");
    }
}
