//! # wwv-domains
//!
//! Domain-name handling substrate for the `wwv` workspace.
//!
//! The IMC'22 paper aggregates Chrome telemetry at *domain* granularity and,
//! when comparing sites across countries, merges domains that differ only in
//! their country-code suffix (e.g. `google.co.uk` is folded into `google.com`)
//! using the Mozilla Public Suffix List. This crate provides everything needed
//! for that pipeline:
//!
//! * [`DomainName`] — a validated, normalized (lower-cased, no trailing dot)
//!   domain name with label-level accessors.
//! * [`psl`] — a Public Suffix List implementation (normal, wildcard, and
//!   exception rules) over an embedded snapshot covering the suffixes used by
//!   the `wwv-world` site universe.
//! * [`etld`] — registrable-domain (eTLD+1) extraction.
//! * [`merge`] — derivation of a cross-country **site key**: the label left of
//!   the public suffix, which is the unit the paper compares across countries.
//!   This reproduces the paper's known imperfection: unrelated sites sharing a
//!   left-most label (the paper's `top.com` vs `top.gg` example) collide.
//!
//! All types are `serde`-serializable so higher layers can persist datasets.

pub mod error;
pub mod etld;
pub mod merge;
pub mod name;
pub mod psl;

pub use error::DomainError;
pub use etld::RegistrableDomain;
pub use merge::SiteKey;
pub use name::DomainName;
pub use psl::{PublicSuffixList, SuffixMatch};
