//! Error types for domain parsing and suffix resolution.

use std::fmt;

/// Errors produced while parsing or analyzing a domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The input string was empty (or consisted only of a trailing dot).
    Empty,
    /// The full name exceeded 253 characters.
    TooLong {
        /// Observed length in bytes after normalization.
        len: usize,
    },
    /// A label (dot-separated component) was empty, i.e. the name contained
    /// consecutive dots or a leading dot.
    EmptyLabel {
        /// Zero-based index of the offending label.
        index: usize,
    },
    /// A label exceeded 63 characters.
    LabelTooLong {
        /// Zero-based index of the offending label.
        index: usize,
        /// Observed label length in bytes.
        len: usize,
    },
    /// A label contained a character outside `[a-z0-9-_]` (after lowercasing).
    ///
    /// Underscores are tolerated because they appear in real hostnames even
    /// though they are invalid in strict DNS; the paper's dataset is keyed by
    /// observed hostnames.
    InvalidCharacter {
        /// Zero-based index of the offending label.
        index: usize,
        /// The first offending character.
        ch: char,
    },
    /// A label started or ended with a hyphen.
    HyphenEdge {
        /// Zero-based index of the offending label.
        index: usize,
    },
    /// The name consists solely of a public suffix (e.g. `co.uk`), so no
    /// registrable domain exists.
    IsPublicSuffix {
        /// The normalized name that turned out to be a bare suffix.
        name: String,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Empty => write!(f, "domain name is empty"),
            DomainError::TooLong { len } => {
                write!(f, "domain name is {len} bytes, exceeding the 253-byte limit")
            }
            DomainError::EmptyLabel { index } => {
                write!(f, "label {index} is empty (consecutive or leading dot)")
            }
            DomainError::LabelTooLong { index, len } => {
                write!(f, "label {index} is {len} bytes, exceeding the 63-byte limit")
            }
            DomainError::InvalidCharacter { index, ch } => {
                write!(f, "label {index} contains invalid character {ch:?}")
            }
            DomainError::HyphenEdge { index } => {
                write!(f, "label {index} starts or ends with a hyphen")
            }
            DomainError::IsPublicSuffix { name } => {
                write!(f, "{name:?} is itself a public suffix; no registrable domain exists")
            }
        }
    }
}

impl std::error::Error for DomainError {}
