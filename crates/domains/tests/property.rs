//! Property-based tests for domain parsing and PSL laws.

use proptest::prelude::*;
use wwv_domains::{DomainName, PublicSuffixList, RegistrableDomain, SiteKey};

/// Strategy for syntactically valid labels.
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?").unwrap()
}

/// Strategy for valid domain names of 1..=5 labels.
fn valid_domain() -> impl Strategy<Value = String> {
    proptest::collection::vec(label(), 1..=5).prop_map(|labels| labels.join("."))
}

proptest! {
    /// Parsing a valid name succeeds and normalization is idempotent.
    #[test]
    fn parse_idempotent(raw in valid_domain()) {
        let d = DomainName::parse(&raw).unwrap();
        let d2 = DomainName::parse(d.as_str()).unwrap();
        prop_assert_eq!(d.as_str(), d2.as_str());
    }

    /// Parsing is case-insensitive.
    #[test]
    fn parse_case_insensitive(raw in valid_domain()) {
        let upper = raw.to_ascii_uppercase();
        let a = DomainName::parse(&raw).unwrap();
        let b = DomainName::parse(&upper).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Label iteration reconstructs the original string.
    #[test]
    fn labels_roundtrip(raw in valid_domain()) {
        let d = DomainName::parse(&raw).unwrap();
        let joined: Vec<&str> = d.labels().collect();
        prop_assert_eq!(joined.join("."), d.as_str());
    }

    /// `rightmost(n)` always produces a parseable suffix whose label count is n.
    #[test]
    fn rightmost_is_consistent(raw in valid_domain(), n in 1usize..=5) {
        let d = DomainName::parse(&raw).unwrap();
        if let Some(s) = d.rightmost(n) {
            let sub = DomainName::parse(s).unwrap();
            prop_assert_eq!(sub.label_count(), n);
            prop_assert!(d.as_str().ends_with(s));
        } else {
            prop_assert!(n == 0 || n > d.label_count());
        }
    }

    /// The public suffix returned always right-aligns with the domain and has
    /// at least one label; the registrable domain, when it exists, is the
    /// suffix plus exactly one label.
    #[test]
    fn psl_suffix_laws(raw in valid_domain()) {
        let psl = PublicSuffixList::embedded();
        let d = DomainName::parse(&raw).unwrap();
        let m = psl.public_suffix(&d);
        prop_assert!(m.suffix_labels >= 1);
        prop_assert!(m.suffix_labels <= d.label_count());
        let dotted = format!(".{}", m.suffix);
        prop_assert!(d.as_str() == m.suffix || d.as_str().ends_with(&dotted));

        match RegistrableDomain::of(&d, &psl) {
            Ok(reg) => {
                prop_assert_eq!(reg.domain().label_count(), m.suffix_labels + 1);
                prop_assert!(d.as_str().ends_with(reg.as_str()));
                // Extraction is idempotent.
                let again = RegistrableDomain::of(reg.domain(), &psl).unwrap();
                prop_assert_eq!(&again, &reg);
                // Site key equals the registrable domain's first label.
                let k = SiteKey::of(&d, &psl).unwrap();
                prop_assert_eq!(k.as_str(), reg.label());
            }
            Err(_) => {
                // Only legitimate when the whole name is a public suffix.
                prop_assert!(psl.is_public_suffix(&d));
            }
        }
    }

    /// Prepending a label never changes the registrable domain.
    #[test]
    fn subdomain_invariance(raw in valid_domain(), extra in label()) {
        let psl = PublicSuffixList::embedded();
        let d = DomainName::parse(&raw).unwrap();
        if let Ok(reg) = RegistrableDomain::of(&d, &psl) {
            let sub_raw = format!("{extra}.{raw}");
            if let Ok(sub) = DomainName::parse(&sub_raw) {
                let reg2 = RegistrableDomain::of(&sub, &psl).unwrap();
                // Wildcard rules (*.ck) legitimately shift the suffix when the
                // original registrable domain sat directly under the wildcard
                // base; everywhere else the registrable domain is invariant.
                if reg.suffix() != "ck" || d.label_count() > reg.domain().label_count() {
                    prop_assert_eq!(reg2, reg);
                }
            }
        }
    }
}
