//! The hybrid RAM+disk work queue.
//!
//! Items buffer in RAM until the allotment is exceeded, then the whole
//! buffer spills as one checksummed segment. Because spills always flush
//! the oldest unspilled contiguous range, replay order is exactly push
//! order no matter where the budget drew the segment boundaries — which is
//! the determinism argument for the out-of-core build (DESIGN.md §16).
//!
//! Replay loads one segment at a time (charged transiently against the
//! budget, released as items are consumed) and deletes each segment file
//! once drained, so a replayed queue leaves no scratch behind.

use crate::segment::{read_segment, write_segment};
use crate::{OocoreError, SpillEnv};
use bytes::Bytes;
use std::collections::VecDeque;
use std::fs;
use std::path::PathBuf;

/// Fixed per-item accounting overhead (deque slot + charge bookkeeping).
const ITEM_COST: usize = 24;

/// Spill/replay counters carried from the queue into its replay handle.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueueStats {
    /// Segments written.
    pub spilled_segments: u64,
    /// Segment bytes written.
    pub spilled_bytes: u64,
    /// Faulted writes retried.
    pub spill_retries: u64,
    /// Items pushed.
    pub items: u64,
}

/// Bounded-RAM FIFO of encoded items with spill-to-disk overflow.
pub struct SpillQueue {
    env: SpillEnv,
    prefix: String,
    allotment: usize,
    buffered: VecDeque<Vec<u8>>,
    buffered_bytes: usize,
    segments: Vec<PathBuf>,
    stats: QueueStats,
}

impl SpillQueue {
    /// A queue spilling to `env.dir` with the given RAM allotment in bytes.
    /// `prefix` namespaces this queue's segment files within the dir.
    pub fn new(env: SpillEnv, prefix: &str, allotment: usize) -> SpillQueue {
        SpillQueue {
            env,
            prefix: prefix.to_string(),
            allotment: allotment.max(4 << 10),
            buffered: VecDeque::new(),
            buffered_bytes: 0,
            segments: Vec::new(),
            stats: QueueStats::default(),
        }
    }

    /// Appends an item, spilling the buffer first if it is full.
    pub fn push(&mut self, item: Vec<u8>) -> Result<(), OocoreError> {
        let cost = item.len() + ITEM_COST;
        if self.buffered_bytes + cost > self.allotment && !self.buffered.is_empty() {
            self.spill()?;
        }
        self.env.budget.charge(cost);
        self.buffered_bytes += cost;
        self.buffered.push_back(item);
        self.stats.items += 1;
        Ok(())
    }

    /// Flushes the current buffer as one segment.
    fn spill(&mut self) -> Result<(), OocoreError> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let path = self
            .env
            .dir
            .join(format!("{}-{:05}.seg", self.prefix, self.segments.len()));
        let items: Vec<Vec<u8>> = self.buffered.drain(..).collect();
        let (bytes, retries) = write_segment(&path, &items, &self.env)?;
        self.env.budget.release(self.buffered_bytes);
        self.buffered_bytes = 0;
        self.stats.spilled_segments += 1;
        self.stats.spilled_bytes += bytes;
        self.stats.spill_retries += retries;
        self.segments.push(path);
        Ok(())
    }

    /// Stats so far (the final figures live on the replay handle, since
    /// `finish` may spill once more).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Seals the queue for replay. If anything already spilled, the RAM
    /// tail spills too, so replay holds at most one loaded segment (≤ the
    /// allotment) instead of a loaded segment *plus* a resident tail. A
    /// queue that never spilled replays straight from RAM.
    pub fn finish(mut self) -> Result<SpillReplay, OocoreError> {
        if !self.segments.is_empty() {
            self.spill()?;
        }
        Ok(SpillReplay {
            env: self.env.clone(),
            segments: std::mem::take(&mut self.segments),
            next_segment: 0,
            loaded: VecDeque::new(),
            loaded_bytes: 0,
            buffered: std::mem::take(&mut self.buffered),
            buffered_bytes: self.buffered_bytes,
            stats: self.stats,
        })
    }
}

/// Replays a sealed [`SpillQueue`] in exact push order.
pub struct SpillReplay {
    env: SpillEnv,
    segments: Vec<PathBuf>,
    next_segment: usize,
    loaded: VecDeque<Bytes>,
    loaded_bytes: usize,
    buffered: VecDeque<Vec<u8>>,
    buffered_bytes: usize,
    stats: QueueStats,
}

impl SpillReplay {
    /// The next item in push order, or `None` when drained. Corrupt
    /// segments surface as typed errors here.
    pub fn next_item(&mut self) -> Result<Option<Bytes>, OocoreError> {
        loop {
            if let Some(item) = self.loaded.pop_front() {
                if self.loaded.is_empty() {
                    self.env.budget.release(self.loaded_bytes);
                    self.loaded_bytes = 0;
                }
                return Ok(Some(item));
            }
            if self.next_segment < self.segments.len() {
                let path = &self.segments[self.next_segment];
                let items = read_segment(path)?;
                let bytes: usize = items.iter().map(|i| i.len() + ITEM_COST).sum();
                self.env.budget.charge(bytes);
                self.loaded_bytes = bytes;
                self.loaded = items.into();
                let _ = fs::remove_file(path);
                self.next_segment += 1;
                continue;
            }
            return match self.buffered.pop_front() {
                Some(item) => {
                    self.env.budget.release(item.len() + ITEM_COST);
                    self.buffered_bytes =
                        self.buffered_bytes.saturating_sub(item.len() + ITEM_COST);
                    Ok(Some(Bytes::from(item)))
                }
                None => Ok(None),
            };
        }
    }

    /// Final queue stats, including any spill performed by `finish`.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl Drop for SpillReplay {
    fn drop(&mut self) {
        for path in &self.segments[self.next_segment..] {
            let _ = fs::remove_file(path);
        }
        self.env.budget.release(self.loaded_bytes + self.buffered_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBudget;
    use std::sync::Arc;
    use wwv_fault::FaultPlan;

    fn env(name: &str, budget: usize) -> SpillEnv {
        let dir = std::env::temp_dir()
            .join(format!("wwv-oocore-queuetest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        SpillEnv {
            dir,
            budget: Arc::new(MemBudget::new(budget)),
            plan: Arc::new(FaultPlan::none()),
            max_attempts: 3,
        }
    }

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| (i as u64).to_le_bytes().repeat(8)).collect()
    }

    #[test]
    fn replay_is_push_order_across_spills() {
        let e = env("order", 1 << 20);
        let mut q = SpillQueue::new(e.clone(), "q", 4 << 10);
        let want = items(500);
        for item in &want {
            q.push(item.clone()).unwrap();
        }
        assert!(q.stats().spilled_segments > 0, "allotment must force spills");
        let mut replay = q.finish().unwrap();
        for (i, want_item) in want.iter().enumerate() {
            let got = replay.next_item().unwrap().unwrap();
            assert_eq!(got.as_ref(), &want_item[..], "item {i}");
        }
        assert!(replay.next_item().unwrap().is_none());
        assert_eq!(replay.stats().items, 500);
        assert_eq!(e.budget.current(), 0, "all charges released after drain");
        let _ = fs::remove_dir_all(&e.dir);
    }

    #[test]
    fn small_queue_stays_in_ram() {
        let e = env("ram", 1 << 20);
        let mut q = SpillQueue::new(e.clone(), "q", 1 << 19);
        for item in items(10) {
            q.push(item).unwrap();
        }
        assert_eq!(q.stats().spilled_segments, 0);
        let mut replay = q.finish().unwrap();
        assert_eq!(replay.stats().spilled_segments, 0, "finish must not force a spill");
        let mut n = 0;
        while replay.next_item().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        let _ = fs::remove_dir_all(&e.dir);
    }

    #[test]
    fn drop_cleans_unconsumed_segments() {
        let e = env("cleanup", 1 << 20);
        let mut q = SpillQueue::new(e.clone(), "q", 4 << 10);
        for item in items(400) {
            q.push(item).unwrap();
        }
        let replay = q.finish().unwrap();
        drop(replay);
        let leftover = fs::read_dir(&e.dir).unwrap().count();
        assert_eq!(leftover, 0, "dropped replay must remove its segments");
        assert_eq!(e.budget.current(), 0);
        let _ = fs::remove_dir_all(&e.dir);
    }
}
