//! Bloom-fronted sharded "seen" tracking (first-appearance interning).
//!
//! Assigns dense ids to string keys in first-appearance order — the same
//! assignment a `HashMap` interner produces — while keeping the probe
//! structures under a byte allotment. The layers, cheapest first:
//!
//! 1. **Bloom filter** (seed-deterministic): `contains == false` proves
//!    the key is new, so the id is assigned with zero exact probes.
//! 2. **In-RAM shard**: per-shard id vectors sorted by key; binary search.
//! 3. **On-disk shard run**: when the shard tables outgrow the allotment,
//!    the largest shard spills as a sorted, checksummed run; probes load
//!    it transiently (charged, then released) and binary search it.
//!
//! A bloom false positive therefore costs probes (counted in
//! `fp_fallbacks`) but can never change an assignment: the exact layers
//! give the authoritative answer, and the bloom's lack of false negatives
//! guarantees a "definitely new" verdict is always correct.

use crate::segment::{read_segment, write_segment};
use crate::{Bloom, OocoreError, SpillEnv};
use std::fs;
use std::path::{Path, PathBuf};
use wwv_snap::fnv1a64;
use wwv_snap::varint::{get_u32_column, put_u32_column};

/// Bytes charged per tracked id (shard-table entry).
const ID_COST: usize = 4;

/// Probe/spill counters for one tracker.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeenStats {
    /// Keys the bloom proved unseen.
    pub bloom_definite_new: u64,
    /// Keys found by an exact probe (RAM or disk).
    pub exact_hits: u64,
    /// Bloom false positives resolved to "new" by the exact layers.
    pub fp_fallbacks: u64,
    /// Exact probes that consulted an on-disk run.
    pub disk_probes: u64,
    /// Shard runs spilled.
    pub runs_spilled: u64,
    /// Run bytes written.
    pub spilled_bytes: u64,
    /// Faulted run writes retried.
    pub spill_retries: u64,
}

/// Sharded, budget-bounded first-appearance id assigner.
pub struct SeenTracker {
    env: SpillEnv,
    allotment: usize,
    /// id → key, in assignment order (the output table; not budget-tracked).
    keys: Vec<String>,
    bloom: Bloom,
    /// Per-shard ids sorted by their key strings.
    shards: Vec<Vec<u32>>,
    /// One merged on-disk run per shard, once spilled.
    runs: Vec<Option<PathBuf>>,
    run_seq: u64,
    aux_bytes: usize,
    stats: SeenStats,
}

impl SeenTracker {
    /// A tracker with `shard_count` shards and a `bloom_bits`-bit filter,
    /// keeping at most ~`allotment` bytes of shard tables in RAM.
    pub fn new(env: SpillEnv, seed: u64, bloom_bits: usize, shard_count: usize, allotment: usize) -> SeenTracker {
        let bloom = Bloom::new(seed, bloom_bits);
        env.budget.charge(bloom.mem_bytes());
        let shard_count = shard_count.max(1);
        SeenTracker {
            env,
            allotment: allotment.max(4 << 10),
            keys: Vec::new(),
            bloom,
            shards: vec![Vec::new(); shard_count],
            runs: vec![None; shard_count],
            run_seq: 0,
            aux_bytes: 0,
            stats: SeenStats::default(),
        }
    }

    fn shard_index(&self, key: &str) -> usize {
        // High hash bits: decorrelated from the bloom positions, which mix
        // the same base hash through splitmix.
        ((fnv1a64(key.as_bytes()) >> 32) as usize) % self.shards.len()
    }

    /// The id for `key`, assigning the next dense id on first appearance.
    /// Returns `(id, newly_inserted)`.
    pub fn get_or_insert(&mut self, key: &str) -> Result<(u32, bool), OocoreError> {
        if !self.bloom.contains(key) {
            self.stats.bloom_definite_new += 1;
            return Ok((self.insert_new(key)?, true));
        }
        let s = self.shard_index(key);
        let keys = &self.keys;
        if let Ok(pos) =
            self.shards[s].binary_search_by(|&id| keys[id as usize].as_str().cmp(key))
        {
            self.stats.exact_hits += 1;
            return Ok((self.shards[s][pos], false));
        }
        if let Some(path) = self.runs[s].clone() {
            self.stats.disk_probes += 1;
            if let Some(id) = self.probe_run(&path, key)? {
                self.stats.exact_hits += 1;
                return Ok((id, false));
            }
        }
        self.stats.fp_fallbacks += 1;
        Ok((self.insert_new(key)?, true))
    }

    /// Assigns the next id; callers must have proven the key absent.
    fn insert_new(&mut self, key: &str) -> Result<u32, OocoreError> {
        let id = self.keys.len() as u32;
        let s = self.shard_index(key);
        let keys = &self.keys;
        let pos = self.shards[s]
            .binary_search_by(|&i| keys[i as usize].as_str().cmp(key))
            .unwrap_err();
        self.shards[s].insert(pos, id);
        self.keys.push(key.to_owned());
        self.bloom.insert(key);
        self.env.budget.charge(ID_COST);
        self.aux_bytes += ID_COST;
        if self.aux_bytes > self.allotment {
            self.spill_largest_shard()?;
        }
        Ok(id)
    }

    /// Spills the largest in-RAM shard, merging it into the shard's
    /// existing run so each shard keeps exactly one sorted run on disk.
    fn spill_largest_shard(&mut self) -> Result<(), OocoreError> {
        let s = (0..self.shards.len())
            .max_by_key(|&i| self.shards[i].len())
            .unwrap_or(0);
        if self.shards[s].is_empty() {
            return Ok(());
        }
        let ram = std::mem::take(&mut self.shards[s]);
        let merged = match self.runs[s].clone() {
            Some(old_path) => {
                let old = self.load_run(&old_path)?;
                self.merge_by_key(&old, &ram)
            }
            None => ram.clone(),
        };
        let mut payload = Vec::new();
        put_u32_column(&mut payload, &merged);
        let path = self.env.dir.join(format!("seen-{s:03}-{:04}.seg", self.run_seq));
        self.run_seq += 1;
        let (bytes, retries) = write_segment(&path, &[payload], &self.env)?;
        if let Some(old) = self.runs[s].replace(path) {
            let _ = fs::remove_file(old);
        }
        self.env.budget.release(ram.len() * ID_COST);
        self.aux_bytes -= ram.len() * ID_COST;
        self.stats.runs_spilled += 1;
        self.stats.spilled_bytes += bytes;
        self.stats.spill_retries += retries;
        Ok(())
    }

    /// Merges two id lists, both sorted by key; inputs are disjoint by
    /// construction (an id is inserted exactly once).
    fn merge_by_key(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if self.keys[a[i] as usize] <= self.keys[b[j] as usize] {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }

    /// Loads a shard run (transiently charged by callers as needed).
    fn load_run(&self, path: &Path) -> Result<Vec<u32>, OocoreError> {
        let items = read_segment(path)?;
        let payload =
            items.first().ok_or(OocoreError::Decode("seen run has no payload"))?;
        let mut cur: &[u8] = payload;
        get_u32_column(&mut cur, payload.len())
            .map_err(|source| OocoreError::Corrupt { path: path.to_path_buf(), source })
    }

    /// Exact probe of a spilled run: load, binary search by key, release.
    fn probe_run(&mut self, path: &Path, key: &str) -> Result<Option<u32>, OocoreError> {
        let ids = self.load_run(path)?;
        self.env.budget.charge(ids.len() * ID_COST);
        let found = ids
            .binary_search_by(|&id| self.keys[id as usize].as_str().cmp(key))
            .ok()
            .map(|pos| ids[pos]);
        self.env.budget.release(ids.len() * ID_COST);
        Ok(found)
    }

    /// Keys in id order.
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// Number of assigned ids.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no id has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Probe/spill counters so far.
    pub fn stats(&self) -> SeenStats {
        self.stats
    }

    /// Consumes the tracker, returning the key table in id order and
    /// cleaning up any spilled runs.
    pub fn into_keys(mut self) -> Vec<String> {
        std::mem::take(&mut self.keys)
    }
}

impl Drop for SeenTracker {
    fn drop(&mut self) {
        for run in self.runs.iter().flatten() {
            let _ = fs::remove_file(run);
        }
        self.env.budget.release(self.aux_bytes + self.bloom.mem_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBudget;
    use std::collections::HashMap;
    use std::sync::Arc;
    use wwv_fault::FaultPlan;

    fn env(name: &str) -> SpillEnv {
        let dir = std::env::temp_dir()
            .join(format!("wwv-oocore-seentest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        SpillEnv {
            dir,
            budget: Arc::new(MemBudget::new(1 << 20)),
            plan: Arc::new(FaultPlan::none()),
            max_attempts: 3,
        }
    }

    /// Repeats and fresh keys, interleaved deterministically.
    fn key_stream(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("site-{}.example", (i * 2_654_435_761) % (n / 2 + 1))).collect()
    }

    fn reference_ids(stream: &[String]) -> Vec<u32> {
        let mut map: HashMap<&str, u32> = HashMap::new();
        let mut next = 0u32;
        stream
            .iter()
            .map(|k| {
                *map.entry(k).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect()
    }

    #[test]
    fn matches_hashmap_interner_without_spills() {
        let e = env("nospill");
        let mut t = SeenTracker::new(e.clone(), 7, 1 << 16, 16, 1 << 19);
        let stream = key_stream(2_000);
        let want = reference_ids(&stream);
        for (k, &want_id) in stream.iter().zip(&want) {
            let (id, _) = t.get_or_insert(k).unwrap();
            assert_eq!(id, want_id, "key {k}");
        }
        assert_eq!(t.stats().runs_spilled, 0);
        let _ = fs::remove_dir_all(&e.dir);
    }

    #[test]
    fn matches_hashmap_interner_with_spilled_shards() {
        let e = env("spill");
        // 4 KiB allotment over thousands of ids forces shard runs to disk.
        let mut t = SeenTracker::new(e.clone(), 7, 1 << 16, 8, 1);
        let stream = key_stream(6_000);
        let want = reference_ids(&stream);
        for (k, &want_id) in stream.iter().zip(&want) {
            let (id, _) = t.get_or_insert(k).unwrap();
            assert_eq!(id, want_id, "key {k}");
        }
        let stats = t.stats();
        assert!(stats.runs_spilled > 0, "tiny allotment must spill shards");
        assert!(stats.disk_probes > 0, "repeat keys must hit spilled runs");
        let _ = fs::remove_dir_all(&e.dir);
    }

    #[test]
    fn tiny_bloom_fp_fallbacks_are_counted_and_harmless() {
        let e = env("fp");
        // 64-bit bloom saturates instantly: every new key after the first
        // few is a false positive, forcing the exact fallback path.
        let mut t = SeenTracker::new(e.clone(), 7, 64, 4, 1 << 19);
        let stream = key_stream(3_000);
        let want = reference_ids(&stream);
        for (k, &want_id) in stream.iter().zip(&want) {
            let (id, _) = t.get_or_insert(k).unwrap();
            assert_eq!(id, want_id, "fp fallback changed an assignment for {k}");
        }
        assert!(t.stats().fp_fallbacks > 0, "saturated bloom must produce fallbacks");
        let _ = fs::remove_dir_all(&e.dir);
    }

    #[test]
    fn drop_removes_runs_and_releases_budget() {
        let e = env("drop");
        {
            let mut t = SeenTracker::new(e.clone(), 7, 1 << 12, 8, 1);
            for k in key_stream(4_000) {
                t.get_or_insert(&k).unwrap();
            }
            assert!(t.stats().runs_spilled > 0);
        }
        assert_eq!(fs::read_dir(&e.dir).unwrap().count(), 0);
        assert_eq!(e.budget.current(), 0);
        let _ = fs::remove_dir_all(&e.dir);
    }
}
