//! Checksummed spill segments.
//!
//! A spill segment is an ordinary wwv-snap chunked container holding one
//! chunk per spilled item, keyed by the item's index within the segment.
//! Reusing the snapshot framing buys the full corruption story for free:
//! magic, per-chunk FNV-1a checksums, a checksummed catalog, and a footer —
//! any truncation or bit flip at rest parses as a typed [`SnapError`],
//! surfaced here as [`OocoreError::Corrupt`].
//!
//! Writes are fault-injectable at [`OOCORE_SPILL`]: the plan may corrupt,
//! truncate, or drop the write, after which the file is read back and
//! compared against the intended bytes. A mismatch is one counted retry;
//! running out of attempts is the typed [`OocoreError::SpillExhausted`].

use crate::{OocoreError, SpillEnv, OOCORE_SPILL};
use bytes::Bytes;
use std::fs;
use std::path::Path;
use wwv_fault::FrameFate;
use wwv_snap::{SnapshotFile, SnapshotWriter};

/// Chunk kind for spilled items (segments are single-purpose files, so one
/// kind suffices; the key carries the in-segment index).
pub const KIND_SPILL_ITEM: u16 = 1;

/// Writes `items` to `path` as one checksummed segment, injecting faults
/// from the env's plan and verifying the bytes on disk after every attempt.
/// Returns `(segment_bytes, retries)`.
pub fn write_segment(
    path: &Path,
    items: &[Vec<u8>],
    env: &SpillEnv,
) -> Result<(u64, u64), OocoreError> {
    let mut w = SnapshotWriter::new();
    for (i, item) in items.iter().enumerate() {
        w.add_chunk(KIND_SPILL_ITEM, &(i as u32).to_le_bytes(), item);
    }
    let clean = w.finish();
    let mut retries = 0u64;
    let attempts = env.max_attempts.max(1);
    for _ in 0..attempts {
        match env.plan.apply_to_frame(OOCORE_SPILL, clean.to_vec()) {
            // A dropped write models the segment never reaching disk.
            FrameFate::Dropped => {
                let _ = fs::remove_file(path);
            }
            FrameFate::Deliver(bytes)
            | FrameFate::DeliverTwice(bytes)
            | FrameFate::HoldForReorder(bytes)
            | FrameFate::Delayed(bytes, _) => fs::write(path, &bytes)?,
        }
        // Write-verify: the clean bytes are still in hand, so a straight
        // byte comparison is both the cheapest and the strongest check
        // (the checksums exist for corruption that happens *after* this).
        match fs::read(path) {
            Ok(on_disk) if on_disk == clean.as_ref() => {
                wwv_obs::global().counter("oocore.spill.segments").inc();
                wwv_obs::global().counter("oocore.spill.bytes").add(clean.len() as u64);
                return Ok((clean.len() as u64, retries));
            }
            _ => {
                retries += 1;
                wwv_obs::global().counter("oocore.spill.retries").inc();
            }
        }
    }
    let _ = fs::remove_file(path);
    Err(OocoreError::SpillExhausted { path: path.to_path_buf(), attempts })
}

/// Reads a segment back, verifying every checksum, and returns the item
/// payloads in write order. Any damage is a typed [`OocoreError::Corrupt`].
pub fn read_segment(path: &Path) -> Result<Vec<Bytes>, OocoreError> {
    let raw = fs::read(path)?;
    let corrupt =
        |source| OocoreError::Corrupt { path: path.to_path_buf(), source };
    let file = SnapshotFile::parse(Bytes::from(raw)).map_err(corrupt)?;
    let mut items = Vec::with_capacity(file.entries().len());
    for i in 0..file.entries().len() {
        items.push(file.payload(i).map_err(
            |source| OocoreError::Corrupt { path: path.to_path_buf(), source },
        )?);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBudget;
    use std::sync::Arc;
    use wwv_fault::{FaultKind, FaultPlan, FaultRule};

    fn env(plan: FaultPlan, attempts: u32, dir: &Path) -> SpillEnv {
        SpillEnv {
            dir: dir.to_path_buf(),
            budget: Arc::new(MemBudget::new(1 << 20)),
            plan: Arc::new(plan),
            max_attempts: attempts,
        }
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("wwv-oocore-segtest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_without_faults() {
        let dir = scratch("roundtrip");
        let e = env(FaultPlan::none(), 3, &dir);
        let items: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 1 + i as usize]).collect();
        let path = dir.join("a.seg");
        let (bytes, retries) = write_segment(&path, &items, &e).unwrap();
        assert!(bytes > 0);
        assert_eq!(retries, 0);
        let back = read_segment(&path).unwrap();
        assert_eq!(back.len(), items.len());
        for (got, want) in back.iter().zip(&items) {
            assert_eq!(got.as_ref(), &want[..]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_writes_retry_then_exhaust() {
        let dir = scratch("exhaust");
        let always_drop = FaultPlan::new(9).with(FaultRule {
            point: OOCORE_SPILL,
            kind: FaultKind::Drop,
            rate: 1.0,
        });
        let e = env(always_drop, 3, &dir);
        let err = write_segment(&dir.join("b.seg"), &[vec![1, 2, 3]], &e).unwrap_err();
        match err {
            OocoreError::SpillExhausted { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected SpillExhausted, got {other}"),
        }
        assert_eq!(e.plan.fired_at(OOCORE_SPILL), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn intermittent_faults_recover_with_counted_retries() {
        let dir = scratch("retry");
        let flaky = FaultPlan::new(4).with(FaultRule {
            point: OOCORE_SPILL,
            kind: FaultKind::BitFlip,
            rate: 0.5,
        });
        let e = env(flaky, 16, &dir);
        let mut total_retries = 0;
        for i in 0..20 {
            let path = dir.join(format!("c{i}.seg"));
            let (_, retries) = write_segment(&path, &[vec![i as u8; 64]], &e).unwrap();
            total_retries += retries;
            assert_eq!(read_segment(&path).unwrap().len(), 1);
        }
        assert_eq!(total_retries, e.plan.fired_at(OOCORE_SPILL));
        assert!(total_retries > 0, "rate 0.5 over 20 segments must fire");
        let _ = fs::remove_dir_all(&dir);
    }
}
