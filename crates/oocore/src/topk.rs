//! External top-K selection over sorted spill runs.
//!
//! Entries buffer in RAM up to an allotment; overflow sorts the buffer by
//! the canonical rank order and spills it as one checksummed run.
//! [`RunSpiller::finish`] then folds the runs together pairwise, keeping
//! only the top `k` after each merge — which is exact, because an entry
//! outside the running top `k` is preceded by `k` better entries that can
//! only stay ahead as more runs arrive. Merge state is therefore `O(k)`
//! plus one transiently-loaded run, never the full entry set.
//!
//! The comparator is [`rank_cmp`]: count descending, id ascending — the
//! same strict total order as the in-memory builder's `top_k_desc`, so the
//! external result is byte-identical to the in-memory one (the property
//! battery pins this).

use crate::segment::{read_segment, write_segment};
use crate::{OocoreError, SpillEnv};
use std::cmp::Ordering;
use std::fs;
use std::path::{Path, PathBuf};
use wwv_snap::varint::{
    get_u32_column, get_u64_delta_column, put_u32_column, put_u64_delta_column,
};

/// Bytes charged per buffered `(id, count)` entry.
const ENTRY_COST: usize = 16;

/// The canonical rank order: count descending, id ascending. Ids are
/// unique within a list, so this is a strict total order.
pub fn rank_cmp(a: &(u32, u64), b: &(u32, u64)) -> Ordering {
    b.1.cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Merges two [`rank_cmp`]-sorted slices, keeping the best `k`.
pub fn merge_top_k(a: &[(u32, u64)], b: &[(u32, u64)], k: usize) -> Vec<(u32, u64)> {
    let mut out = Vec::with_capacity(k.min(a.len() + b.len()));
    let (mut i, mut j) = (0, 0);
    while out.len() < k {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                if rank_cmp(x, y) != Ordering::Greater {
                    out.push(*x);
                    i += 1;
                } else {
                    out.push(*y);
                    j += 1;
                }
            }
            (Some(x), None) => {
                out.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(*y);
                j += 1;
            }
            (None, None) => break,
        }
    }
    out
}

/// Spill counters for one list build.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunStats {
    /// Sorted runs spilled.
    pub runs_spilled: u64,
    /// Run bytes written.
    pub spilled_bytes: u64,
    /// Faulted run writes retried.
    pub spill_retries: u64,
}

/// Budget-bounded accumulator for one rank list.
pub struct RunSpiller {
    env: SpillEnv,
    prefix: String,
    allotment: usize,
    buf: Vec<(u32, u64)>,
    buf_bytes: usize,
    runs: Vec<PathBuf>,
    stats: RunStats,
}

impl RunSpiller {
    /// A spiller writing runs named `prefix-NNN.seg` under the env dir.
    pub fn new(env: SpillEnv, prefix: &str, allotment: usize) -> RunSpiller {
        RunSpiller {
            env,
            prefix: prefix.to_string(),
            allotment: allotment.max(4 << 10),
            buf: Vec::new(),
            buf_bytes: 0,
            runs: Vec::new(),
            stats: RunStats::default(),
        }
    }

    /// Adds one entry, spilling a sorted run if the buffer is full.
    pub fn push(&mut self, id: u32, count: u64) -> Result<(), OocoreError> {
        self.env.budget.charge(ENTRY_COST);
        self.buf_bytes += ENTRY_COST;
        self.buf.push((id, count));
        if self.buf_bytes > self.allotment {
            self.spill_run()?;
        }
        Ok(())
    }

    fn spill_run(&mut self) -> Result<(), OocoreError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable_by(rank_cmp);
        let ids: Vec<u32> = self.buf.iter().map(|e| e.0).collect();
        let counts: Vec<u64> = self.buf.iter().map(|e| e.1).collect();
        let mut payload = Vec::new();
        put_u32_column(&mut payload, &ids);
        put_u64_delta_column(&mut payload, &counts);
        let path = self
            .env
            .dir
            .join(format!("{}-{:04}.seg", self.prefix, self.runs.len()));
        let (bytes, retries) = write_segment(&path, &[payload], &self.env)?;
        self.env.budget.release(self.buf_bytes);
        self.buf_bytes = 0;
        self.buf.clear();
        self.runs.push(path);
        self.stats.runs_spilled += 1;
        self.stats.spilled_bytes += bytes;
        self.stats.spill_retries += retries;
        wwv_obs::global().counter("oocore.topk.runs").inc();
        Ok(())
    }

    /// Folds buffer and runs into the exact top `k` under [`rank_cmp`],
    /// removing run files as they are consumed.
    pub fn finish(&mut self, k: usize) -> Result<Vec<(u32, u64)>, OocoreError> {
        self.buf.sort_unstable_by(rank_cmp);
        self.env.budget.release(self.buf_bytes);
        self.buf_bytes = 0;
        let mut cur = std::mem::take(&mut self.buf);
        cur.truncate(k);
        for path in std::mem::take(&mut self.runs) {
            let run = self.load_run(&path)?;
            self.env.budget.charge(run.len() * ENTRY_COST);
            cur = merge_top_k(&cur, &run, k);
            self.env.budget.release(run.len() * ENTRY_COST);
            let _ = fs::remove_file(&path);
        }
        Ok(cur)
    }

    fn load_run(&self, path: &Path) -> Result<Vec<(u32, u64)>, OocoreError> {
        let corrupt = |source| OocoreError::Corrupt { path: path.to_path_buf(), source };
        let items = read_segment(path)?;
        let payload = items.first().ok_or(OocoreError::Decode("top-K run has no payload"))?;
        let mut cur: &[u8] = payload;
        let ids = get_u32_column(&mut cur, payload.len()).map_err(corrupt)?;
        let counts = get_u64_delta_column(&mut cur, payload.len())
            .map_err(|source| OocoreError::Corrupt { path: path.to_path_buf(), source })?;
        if ids.len() != counts.len() {
            return Err(OocoreError::Decode("top-K run column length mismatch"));
        }
        Ok(ids.into_iter().zip(counts).collect())
    }

    /// Spill counters so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }
}

impl Drop for RunSpiller {
    fn drop(&mut self) {
        for path in &self.runs {
            let _ = fs::remove_file(path);
        }
        self.env.budget.release(self.buf_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBudget;
    use std::sync::Arc;
    use wwv_fault::FaultPlan;

    fn env(name: &str) -> SpillEnv {
        let dir = std::env::temp_dir()
            .join(format!("wwv-oocore-topktest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        SpillEnv {
            dir,
            budget: Arc::new(MemBudget::new(1 << 20)),
            plan: Arc::new(FaultPlan::none()),
            max_attempts: 3,
        }
    }

    /// Reference: full sort, then truncate — what the in-memory builder's
    /// `top_k_desc` computes.
    fn reference(mut entries: Vec<(u32, u64)>, k: usize) -> Vec<(u32, u64)> {
        entries.sort_by(rank_cmp);
        entries.truncate(k);
        entries
    }

    fn entries(n: u32, mod_counts: u64) -> Vec<(u32, u64)> {
        // Duplicated counts exercise the id tie-break.
        (0..n).map(|i| (i, (i as u64).wrapping_mul(2_654_435_761) % mod_counts)).collect()
    }

    #[test]
    fn external_merge_matches_reference_across_spills() {
        for (n, k) in [(0u32, 5usize), (10, 0), (500, 7), (5_000, 100), (5_000, 10_000)] {
            let e = env(&format!("m{n}k{k}"));
            let input = entries(n, 40);
            let mut sp = RunSpiller::new(e.clone(), "run", 1);
            for &(id, c) in &input {
                sp.push(id, c).unwrap();
            }
            let got = sp.finish(k).unwrap();
            assert_eq!(got, reference(input, k), "n={n} k={k}");
            let _ = fs::remove_dir_all(&e.dir);
        }
    }

    #[test]
    fn spills_occur_and_budget_drains() {
        let e = env("drain");
        let mut sp = RunSpiller::new(e.clone(), "run", 1);
        for &(id, c) in &entries(3_000, 17) {
            sp.push(id, c).unwrap();
        }
        assert!(sp.stats().runs_spilled > 1, "4 KiB floor over 3k entries must spill");
        let top = sp.finish(50).unwrap();
        assert_eq!(top.len(), 50);
        drop(sp);
        assert_eq!(e.budget.current(), 0);
        assert_eq!(fs::read_dir(&e.dir).unwrap().count(), 0, "runs cleaned up");
        let _ = fs::remove_dir_all(&e.dir);
    }

    #[test]
    fn drop_without_finish_cleans_runs() {
        let e = env("abandon");
        {
            let mut sp = RunSpiller::new(e.clone(), "run", 1);
            for &(id, c) in &entries(3_000, 17) {
                sp.push(id, c).unwrap();
            }
            assert!(sp.stats().runs_spilled > 0);
        }
        assert_eq!(fs::read_dir(&e.dir).unwrap().count(), 0);
        assert_eq!(e.budget.current(), 0);
        let _ = fs::remove_dir_all(&e.dir);
    }
}
