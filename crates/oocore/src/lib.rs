//! Out-of-core aggregation primitives.
//!
//! The paper's aggregation runs over hundreds of millions of per-breakdown
//! records — far more than a container's RAM. This crate provides the three
//! building blocks that let the dataset build run under an explicit memory
//! budget while staying **byte-identical** to the in-memory build:
//!
//! * [`SpillQueue`] — a hybrid RAM+disk work queue. Items buffer in RAM up
//!   to an allotment, then spill as one checksummed, wwv-snap-framed
//!   segment file; replay yields items in exact push order regardless of
//!   how the budget carved them into segments.
//! * [`SeenTracker`] — sharded first-appearance interning fronted by a
//!   seed-deterministic bloom filter. A bloom "definitely new" skips the
//!   exact probe entirely; a bloom false positive falls back to the exact
//!   in-RAM shard and, when the shard has spilled, the exact on-disk run.
//!   False positives are counted but can never change an assignment —
//!   they only cost probe time (see DESIGN.md §16 for the argument).
//! * [`RunSpiller`] — external top-K selection. Entries buffer up to an
//!   allotment, spill as sorted runs, and [`RunSpiller::finish`] merges
//!   the runs under the canonical `(count desc, id asc)` total order,
//!   keeping only the top `k` at every step so merge state stays `O(k)`.
//!
//! All spill files share one format (a wwv-snap chunked container, so every
//! truncation or bit flip at rest is a typed error) and one fault point,
//! [`OOCORE_SPILL`]: spill writes are routed through a [`FaultPlan`], then
//! read back and verified against the intended bytes. A faulted write is a
//! counted retry; exhausting the retry cap is the typed
//! [`OocoreError::SpillExhausted`] — never silent corruption.
//!
//! Every byte of intermediate aggregation state (queue buffers, shard
//! tables, run buffers, and transient segment loads) is charged against a
//! shared [`MemBudget`]; `peak()` after a build is the number the
//! `oocore_equivalence` gate holds under `--memory-budget`.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

pub mod bloom;
pub mod budget;
pub mod queue;
pub mod seen;
pub mod segment;
pub mod topk;

pub use bloom::Bloom;
pub use budget::MemBudget;
pub use queue::{SpillQueue, SpillReplay};
pub use seen::SeenTracker;
pub use segment::{read_segment, write_segment};
pub use topk::{merge_top_k, rank_cmp, RunSpiller};

use wwv_fault::FaultPlan;
use wwv_snap::SnapError;

/// Fault-injection point for spill-segment writes (chaos matrix hook).
/// Lives here rather than in `wwv_fault::points` because the point belongs
/// to this subsystem, mirroring `wwv_stream::STREAM_INGEST`.
pub const OOCORE_SPILL: &str = "oocore.spill";

/// Errors from the out-of-core machinery. Corruption of at-rest spill
/// segments is always surfaced as a typed error via the wwv-snap checksums;
/// nothing is ever silently dropped or misread.
#[derive(Debug)]
pub enum OocoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A spill segment failed checksum or frame validation when read back.
    Corrupt {
        /// The segment file that failed to parse.
        path: PathBuf,
        /// The underlying typed snapshot error.
        source: SnapError,
    },
    /// A spill write kept failing verification (injected or real fault on
    /// every attempt) until the retry cap was exhausted.
    SpillExhausted {
        /// The segment file that could not be durably written.
        path: PathBuf,
        /// How many write attempts were made.
        attempts: u32,
    },
    /// A decoded intermediate record did not have the expected shape. This
    /// fires after checksum verification, so it indicates a logic error
    /// rather than disk corruption.
    Decode(&'static str),
}

impl fmt::Display for OocoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OocoreError::Io(e) => write!(f, "oocore io error: {e}"),
            OocoreError::Corrupt { path, source } => {
                write!(f, "corrupt spill segment {}: {source}", path.display())
            }
            OocoreError::SpillExhausted { path, attempts } => {
                write!(
                    f,
                    "spill write to {} failed verification {attempts} times",
                    path.display()
                )
            }
            OocoreError::Decode(what) => write!(f, "malformed spilled record: {what}"),
        }
    }
}

impl std::error::Error for OocoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocoreError::Io(e) => Some(e),
            OocoreError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OocoreError {
    fn from(e: std::io::Error) -> Self {
        OocoreError::Io(e)
    }
}

/// Configuration for an out-of-core build.
#[derive(Debug, Clone)]
pub struct OocoreConfig {
    /// Peak bytes of tracked intermediate aggregation state. Spills keep
    /// the tracked peak under this bound (see DESIGN.md §16 for what is
    /// charged; the finished dataset itself is an output, not tracked).
    pub memory_budget: usize,
    /// Scratch directory for spill segments (created if absent; segment
    /// files are removed as they are consumed).
    pub spill_dir: PathBuf,
    /// Bloom filter size in bits; 0 picks a budget-proportional default.
    pub bloom_bits: usize,
    /// Shard count for the seen tracker.
    pub shards: usize,
    /// Write attempts per spill segment before the typed
    /// [`OocoreError::SpillExhausted`] gives up.
    pub max_spill_attempts: u32,
}

impl OocoreConfig {
    /// A config with default bloom/shard/retry settings.
    pub fn new(memory_budget: usize, spill_dir: impl Into<PathBuf>) -> OocoreConfig {
        OocoreConfig {
            memory_budget,
            spill_dir: spill_dir.into(),
            bloom_bits: 0,
            shards: 256,
            max_spill_attempts: 8,
        }
    }

    /// Effective bloom size: explicit if set, otherwise a tenth of the
    /// budget (clamped to 4 KiB – 4 MiB of bits) so tight test budgets are
    /// not eaten by the filter.
    pub fn bloom_bits_effective(&self) -> usize {
        if self.bloom_bits > 0 {
            return self.bloom_bits;
        }
        let bytes = (self.memory_budget / 10).clamp(4 << 10, 4 << 20);
        bytes * 8
    }
}

/// Everything a spilling component needs to write segments: where, against
/// which budget, through which fault plan, and how hard to retry.
#[derive(Debug, Clone)]
pub struct SpillEnv {
    /// Scratch directory (must exist).
    pub dir: PathBuf,
    /// Shared budget every component charges.
    pub budget: Arc<MemBudget>,
    /// Fault plan consulted on every segment write at [`OOCORE_SPILL`].
    pub plan: Arc<FaultPlan>,
    /// Retry cap per segment write.
    pub max_attempts: u32,
}

impl SpillEnv {
    /// An env from a config: fresh budget, supplied plan.
    pub fn new(cfg: &OocoreConfig, plan: Arc<FaultPlan>) -> SpillEnv {
        SpillEnv {
            dir: cfg.spill_dir.clone(),
            budget: Arc::new(MemBudget::new(cfg.memory_budget)),
            plan,
            max_attempts: cfg.max_spill_attempts,
        }
    }
}

/// Counters accumulated across one out-of-core build, surfaced in CLI
/// reports and asserted by the equivalence/chaos gates. All values are
/// also mirrored to wwv-obs counters as they happen.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OocoreStats {
    /// Configured budget.
    pub budget_bytes: u64,
    /// Peak tracked intermediate state.
    pub peak_bytes: u64,
    /// Spill segments written (queue + seen runs + top-K runs).
    pub spilled_segments: u64,
    /// Total bytes written to spill segments.
    pub spilled_bytes: u64,
    /// Spill writes that failed verification and were retried.
    pub spill_retries: u64,
    /// Keys the bloom filter proved unseen (exact probe skipped).
    pub bloom_definite_new: u64,
    /// Keys found in an in-RAM shard.
    pub seen_exact_hits: u64,
    /// Bloom false positives: "maybe seen" keys that the exact probe
    /// proved new. Pure cost, never a different answer.
    pub seen_fp_fallbacks: u64,
    /// Exact probes that had to consult an on-disk shard run.
    pub seen_disk_probes: u64,
    /// Sorted top-K runs spilled by list builders.
    pub topk_runs_spilled: u64,
}

impl OocoreStats {
    /// Hand-rolled JSON (stable field order, no serializer dependency) —
    /// the spill-accounting block embedded in CLI and bench reports.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"budget_bytes\": {},\n",
                "  \"peak_bytes\": {},\n",
                "  \"spilled_segments\": {},\n",
                "  \"spilled_bytes\": {},\n",
                "  \"spill_retries\": {},\n",
                "  \"bloom_definite_new\": {},\n",
                "  \"seen_exact_hits\": {},\n",
                "  \"seen_fp_fallbacks\": {},\n",
                "  \"seen_disk_probes\": {},\n",
                "  \"topk_runs_spilled\": {}\n",
                "}}"
            ),
            self.budget_bytes,
            self.peak_bytes,
            self.spilled_segments,
            self.spilled_bytes,
            self.spill_retries,
            self.bloom_definite_new,
            self.seen_exact_hits,
            self.seen_fp_fallbacks,
            self.seen_disk_probes,
            self.topk_runs_spilled,
        )
    }
}
