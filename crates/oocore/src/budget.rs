//! Shared memory-budget accounting.
//!
//! Every out-of-core component charges the bytes it holds against one
//! [`MemBudget`] and releases them when the bytes are spilled or consumed.
//! The budget does not allocate or enforce anything by itself — components
//! enforce the bound by spilling when their allotment is exceeded — but the
//! tracked `peak()` is what the `oocore_equivalence` gate asserts stays
//! under `--memory-budget`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic current/peak byte accounting against a fixed limit.
#[derive(Debug, Default)]
pub struct MemBudget {
    limit: u64,
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemBudget {
    /// A budget with the given byte limit.
    pub fn new(limit: usize) -> MemBudget {
        MemBudget { limit: limit as u64, current: AtomicU64::new(0), peak: AtomicU64::new(0) }
    }

    /// Charges `n` bytes and folds the new total into the peak.
    pub fn charge(&self, n: usize) {
        let now = self.current.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `n` bytes (saturating: a release can never underflow).
    pub fn release(&self, n: usize) {
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n as u64);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Currently charged bytes.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let b = MemBudget::new(100);
        b.charge(40);
        b.charge(30);
        assert_eq!(b.current(), 70);
        assert_eq!(b.peak(), 70);
        b.release(50);
        assert_eq!(b.current(), 20);
        b.charge(10);
        assert_eq!(b.peak(), 70, "peak must not fall on release");
        assert_eq!(b.limit(), 100);
    }

    #[test]
    fn release_saturates() {
        let b = MemBudget::new(10);
        b.charge(5);
        b.release(50);
        assert_eq!(b.current(), 0);
    }
}
