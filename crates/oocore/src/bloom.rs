//! Seed-deterministic bloom filter.
//!
//! Fronts the exact seen tracker: `contains == false` proves a key was
//! never inserted (blooms have no false negatives), letting the hot
//! "definitely new" path skip the exact probe entirely. `contains == true`
//! means *maybe* — the caller must fall back to the exact store. The bit
//! positions are a pure function of `(seed, key)`, so the filter — and
//! therefore the entire probe/fallback schedule — is identical across runs
//! and worker counts.

use wwv_snap::fnv1a64;

/// Hash functions per key (classic double hashing).
const HASHES: u32 = 4;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fixed-size bloom filter over string keys.
#[derive(Debug)]
pub struct Bloom {
    seed: u64,
    bits: Vec<u64>,
    nbits: u64,
}

impl Bloom {
    /// A filter with at least `bits` bits (rounded up to a whole word).
    pub fn new(seed: u64, bits: usize) -> Bloom {
        let words = bits.div_ceil(64).max(1);
        Bloom { seed, bits: vec![0; words], nbits: (words * 64) as u64 }
    }

    fn positions(&self, key: &str) -> [u64; HASHES as usize] {
        let h1 = splitmix64(fnv1a64(key.as_bytes()) ^ self.seed);
        let h2 = splitmix64(h1 ^ 0xA076_1D64_78BD_642F) | 1;
        let mut out = [0u64; HASHES as usize];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.nbits;
        }
        out
    }

    /// Marks a key as present.
    pub fn insert(&mut self, key: &str) {
        for pos in self.positions(key) {
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
    }

    /// `false` = definitely never inserted; `true` = maybe inserted.
    pub fn contains(&self, key: &str) -> bool {
        self.positions(key)
            .iter()
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Heap bytes held by the bit array (what gets charged to the budget).
    pub fn mem_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::new(7, 1 << 10);
        let keys: Vec<String> = (0..200).map(|i| format!("site-{i}.example")).collect();
        for k in &keys {
            b.insert(k);
        }
        for k in &keys {
            assert!(b.contains(k), "inserted key {k} must be maybe-present");
        }
    }

    #[test]
    fn tiny_filter_produces_false_positives() {
        let mut b = Bloom::new(3, 64);
        for i in 0..64 {
            b.insert(&format!("k{i}"));
        }
        let fps = (0..1000).filter(|i| b.contains(&format!("fresh-{i}"))).count();
        assert!(fps > 0, "a saturated 64-bit filter must report false positives");
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Bloom::new(42, 512);
        let mut b = Bloom::new(42, 512);
        for i in 0..50 {
            a.insert(&format!("d{i}"));
            b.insert(&format!("d{i}"));
        }
        for i in 0..500 {
            let k = format!("probe-{i}");
            assert_eq!(a.contains(&k), b.contains(&k));
        }
    }
}
