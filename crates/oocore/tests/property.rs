//! Property battery for the out-of-core primitives:
//!
//! * external top-K merge over spilled runs == an in-memory full sort +
//!   truncate under the canonical `(count desc, id asc)` order — at every
//!   allotment, i.e. every way of carving the input into runs;
//! * spill-segment roundtrip under truncation and bit flips — every
//!   damaged byte is a typed error, mirroring `snap_corruption.rs`;
//! * bloom false-positive fallbacks never change assignments or counts —
//!   a tiny saturated filter only costs probes.
//!
//! (The bodies also run as plain `#[test]`s below with fixed seeds so the
//! suite has executable coverage even where proptest is stubbed out.)

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wwv_fault::FaultPlan;
use wwv_oocore::{
    rank_cmp, read_segment, write_segment, MemBudget, OocoreError, RunSpiller, SeenTracker,
    SpillEnv,
};

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch dir + env per exercise (tests run concurrently).
fn env() -> SpillEnv {
    let dir = std::env::temp_dir().join(format!(
        "wwv-oocore-prop-{}-{}",
        std::process::id(),
        SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    SpillEnv {
        dir,
        budget: Arc::new(MemBudget::new(1 << 24)),
        plan: Arc::new(FaultPlan::none()),
        max_attempts: 3,
    }
}

fn cleanup(e: &SpillEnv) {
    let _ = std::fs::remove_dir_all(&e.dir);
}

/// External merge == full sort + truncate, for any entry set, k, and run
/// carving (the allotment decides where runs split).
fn assert_merge_matches_reference(entries: &[(u32, u64)], k: usize, allotment: usize) {
    let e = env();
    let mut spiller = RunSpiller::new(e.clone(), "prop", allotment);
    for &(id, count) in entries {
        spiller.push(id, count).expect("clean pushes");
    }
    let got = spiller.finish(k).expect("clean finish");
    let mut want = entries.to_vec();
    want.sort_by(rank_cmp);
    want.truncate(k);
    assert_eq!(got, want, "k={k} allotment={allotment} n={}", entries.len());
    cleanup(&e);
}

/// Every truncation of a segment, and every flipped byte, is a typed
/// error — never a silent short read.
fn assert_segment_damage_is_typed(items: &[Vec<u8>], damage_seed: u64) {
    let e = env();
    let path = e.dir.join("seg.seg");
    write_segment(&path, items, &e).expect("clean write");
    let clean = std::fs::read(&path).unwrap();
    let back = read_segment(&path).expect("clean read");
    assert_eq!(back.len(), items.len());
    for (got, want) in back.iter().zip(items) {
        assert_eq!(got.as_ref(), &want[..], "roundtrip");
    }

    let cut = (damage_seed % clean.len() as u64) as usize;
    std::fs::write(&path, &clean[..cut]).unwrap();
    match read_segment(&path) {
        Err(OocoreError::Corrupt { .. }) => {}
        other => panic!("truncation to {cut} bytes must be typed, got {other:?}"),
    }

    let pos = ((damage_seed >> 16) % clean.len() as u64) as usize;
    let mut flipped = clean.clone();
    flipped[pos] ^= 1 << (damage_seed % 8);
    std::fs::write(&path, &flipped).unwrap();
    match read_segment(&path) {
        Err(OocoreError::Corrupt { .. }) => {}
        other => panic!("bit flip at {pos} must be typed, got {other:?}"),
    }
    cleanup(&e);
}

/// Tracker assignments and aggregated counts match a HashMap interner
/// exactly, for any bloom size — false positives are pure cost.
fn assert_fp_fallbacks_are_harmless(keys: &[String], bloom_bits: usize, allotment: usize) {
    let e = env();
    let mut tracker = SeenTracker::new(e.clone(), 7, bloom_bits, 4, allotment);
    let mut got_counts: HashMap<u32, u64> = HashMap::new();
    let mut ref_ids: HashMap<&str, u32> = HashMap::new();
    let mut ref_counts: HashMap<u32, u64> = HashMap::new();
    for (i, key) in keys.iter().enumerate() {
        let (id, _) = tracker.get_or_insert(key).expect("clean tracking");
        *got_counts.entry(id).or_default() += i as u64 + 1;
        let next = ref_ids.len() as u32;
        let want_id = *ref_ids.entry(key).or_insert(next);
        *ref_counts.entry(want_id).or_default() += i as u64 + 1;
        assert_eq!(id, want_id, "assignment for {key} diverged");
    }
    assert_eq!(got_counts, ref_counts, "fp fallbacks must never change counts");
    let stats = tracker.stats();
    assert_eq!(
        stats.bloom_definite_new + stats.fp_fallbacks,
        ref_ids.len() as u64,
        "every distinct key is either bloom-new or an fp fallback"
    );
    cleanup(&e);
}

proptest! {
    #[test]
    fn external_merge_matches_top_k_desc(
        entries in prop::collection::vec((any::<u32>(), 0u64..50), 0..2_000),
        k in 0usize..2_500,
        allotment in 1usize..(64 << 10),
    ) {
        // Duplicate ids collapse to the same (id, count) pairs under the
        // total order, so arbitrary pairs are fair game.
        assert_merge_matches_reference(&entries, k, allotment);
    }

    #[test]
    fn damaged_segments_always_fail_typed(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20),
        damage_seed in any::<u64>(),
    ) {
        assert_segment_damage_is_typed(&items, damage_seed);
    }

    #[test]
    fn bloom_fp_fallbacks_never_change_counts(
        raw in prop::collection::vec(0u32..400, 1..2_000),
        bloom_bits in 32usize..4_096,
    ) {
        let keys: Vec<String> = raw.iter().map(|i| format!("site-{i}.example")).collect();
        assert_fp_fallbacks_are_harmless(&keys, bloom_bits, 1);
    }
}

#[test]
fn fixed_merge_cases() {
    // Ties everywhere: same count, id breaks; plus k beyond len and k=0.
    let ties: Vec<(u32, u64)> = (0..600u32).map(|i| (599 - i, (i as u64) % 7)).collect();
    for k in [0, 1, 13, 600, 10_000] {
        for allotment in [1, 128, 1 << 12, 1 << 20] {
            assert_merge_matches_reference(&ties, k, allotment);
        }
    }
    assert_merge_matches_reference(&[], 5, 1);
    assert_merge_matches_reference(&[(3, 9)], 1, 1);
}

#[test]
fn fixed_segment_damage_sweep() {
    let items: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 32 + i as usize]).collect();
    for seed in [1u64, 0x5EED, 0xDEAD_BEEF, u64::MAX / 3, 0x1234_5678_9ABC_DEF0] {
        assert_segment_damage_is_typed(&items, seed);
    }
    assert_segment_damage_is_typed(&[vec![]], 7);
}

#[test]
fn exhaustive_truncation_of_a_small_segment_is_typed() {
    // Mirrors snap_corruption.rs: every strict prefix must fail typed.
    let e = env();
    let path = e.dir.join("seg.seg");
    write_segment(&path, &[b"abc".to_vec(), b"defg".to_vec()], &e).unwrap();
    let clean = std::fs::read(&path).unwrap();
    for cut in 0..clean.len() {
        std::fs::write(&path, &clean[..cut]).unwrap();
        match read_segment(&path) {
            Err(OocoreError::Corrupt { .. }) => {}
            other => panic!("prefix of {cut} bytes must be typed, got {other:?}"),
        }
    }
    cleanup(&e);
}

#[test]
fn fixed_fp_fallback_streams() {
    // 32-bit bloom: saturated after a handful of keys, so nearly every
    // probe is a potential false positive.
    let keys: Vec<String> =
        (0..3_000).map(|i| format!("site-{}.example", (i * 31) % 500)).collect();
    assert_fp_fallbacks_are_harmless(&keys, 32, 1);
    // Roomy bloom + roomy allotment: the fast path.
    assert_fp_fallbacks_are_harmless(&keys, 1 << 16, 1 << 20);
    // Single repeated key.
    let same: Vec<String> = (0..100).map(|_| "only.example".to_string()).collect();
    assert_fp_fallbacks_are_harmless(&same, 64, 1);
}
