//! §5.3.1 — Traffic-weighted country similarity (Figs. 10, 18, 19, 20).
//!
//! Pairwise comparison of countries' top-10K lists with rank-biased overlap,
//! weighted by the Fig. 1 traffic distribution instead of RBO's geometric
//! weights — agreement on the sites carrying real traffic counts most.

use crate::context::AnalysisContext;
use serde::Serialize;
use wwv_stats::rbo::{rbo_weighted, WeightModel};
use wwv_stats::SymmetricMatrix;
use wwv_world::{Metric, Platform, COUNTRIES};

/// A country-similarity matrix with its labels.
#[derive(Debug, Clone, Serialize)]
pub struct SimilarityMatrix {
    /// Platform.
    pub platform: Platform,
    /// Metric.
    pub metric: Metric,
    /// Country ISO codes, in matrix order.
    pub labels: Vec<String>,
    /// Pairwise weighted-RBO similarities in [0, 1]; diagonal = 1.
    pub matrix: SymmetricMatrix,
}

impl SimilarityMatrix {
    /// Similarity between two countries by ISO code.
    pub fn between(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.labels.iter().position(|l| l == a)?;
        let j = self.labels.iter().position(|l| l == b)?;
        Some(self.matrix.get(i, j))
    }

    /// Mean off-diagonal similarity of one country (how "typical" it is).
    pub fn mean_similarity(&self, code: &str) -> Option<f64> {
        let i = self.labels.iter().position(|l| l == code)?;
        let n = self.matrix.n();
        let sum: f64 = (0..n).filter(|j| *j != i).map(|j| self.matrix.get(i, j)).sum();
        Some(sum / (n - 1) as f64)
    }
}

/// Computes the weighted-RBO similarity matrix for one (platform, metric).
/// The 45 key lists and the 990 lower-triangle pairs are evaluated on the
/// `wwv-par` pool; every pair is a pure function of its two lists, so the
/// matrix is identical at any worker count.
pub fn similarity_matrix(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> SimilarityMatrix {
    let _span = wwv_obs::span!("core.similarity");
    let weights = WeightModel::Empirical { weights: ctx.traffic_weights(platform, metric) };
    let countries: Vec<usize> = ctx.countries().collect();
    let lists = wwv_par::par_map("core.similarity.lists", &countries, |_, &ci| {
        ctx.key_list(ctx.breakdown(ci, platform, metric))
    });
    let n = lists.len();
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|i| (0..i).map(move |j| (i, j))).collect();
    let values = wwv_par::par_map("core.similarity.pairs", &pairs, |_, &(i, j)| {
        let depth = ctx.depth.min(lists[i].len().max(lists[j].len()));
        rbo_weighted(&lists[i], &lists[j], &weights, depth.max(1)).unwrap_or(0.0)
    });
    let mut matrix = SymmetricMatrix::new(n, 1.0);
    for (&(i, j), v) in pairs.iter().zip(values) {
        matrix.set(i, j, v);
    }
    SimilarityMatrix {
        platform,
        metric,
        labels: COUNTRIES.iter().map(|c| c.code.to_owned()).collect(),
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> SimilarityMatrix {
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        similarity_matrix(&ctx, Platform::Windows, Metric::PageLoads)
    }

    #[test]
    fn bounded_and_reflexive() {
        let m = matrix();
        assert_eq!(m.matrix.n(), 45);
        for i in 0..45 {
            assert_eq!(m.matrix.get(i, i), 1.0);
            for j in 0..i {
                let v = m.matrix.get(i, j);
                assert!((0.0..=1.0).contains(&v), "({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn north_africa_cluster_is_tight() {
        // Fig. 10: Algeria/Egypt/Morocco/Tunisia form a visually obvious
        // cluster.
        let m = matrix();
        let within = m.between("DZ", "MA").unwrap();
        let cross = m.between("DZ", "JP").unwrap();
        assert!(within > cross, "DZ–MA {within} vs DZ–JP {cross}");
    }

    #[test]
    fn korea_and_japan_are_outliers() {
        // §5.3.1: JP and KR have distinct browsing patterns.
        let m = matrix();
        let kr = m.mean_similarity("KR").unwrap();
        let jp = m.mean_similarity("JP").unwrap();
        let us = m.mean_similarity("US").unwrap();
        let fr = m.mean_similarity("FR").unwrap();
        assert!(kr < us && kr < fr, "KR mean {kr} vs US {us}, FR {fr}");
        assert!(jp < us && jp < fr, "JP mean {jp} vs US {us}, FR {fr}");
    }

    #[test]
    fn hispanic_americas_cluster() {
        let m = matrix();
        let within = m.between("MX", "CO").unwrap();
        let cross = m.between("MX", "TH").unwrap();
        assert!(within > cross, "MX–CO {within} vs MX–TH {cross}");
    }

    #[test]
    fn anglosphere_similarity_spans_continents() {
        let m = matrix();
        let anglo = m.between("AU", "CA").unwrap();
        let mixed = m.between("AU", "PL").unwrap();
        assert!(anglo > mixed, "AU–CA {anglo} vs AU–PL {mixed}");
    }
}
