//! Plot-ready figure data.
//!
//! Every figure of the paper, exported as a tab-separated table (one file
//! per figure) so any plotting tool can regenerate the visual. The
//! `reproduce` harness writes these with `--figures DIR`.

use crate::buckets::{bucket_intersections, FIG12_BUCKETS};
use crate::clustering::cluster_countries;
use crate::composition::composition;
use crate::concentration::concentration_curve;
use crate::context::AnalysisContext;
use crate::endemicity::popularity_curves;
use crate::global_national::{classify_global_national, global_share_by_bucket, RANK_BUCKETS};
use crate::metric_diff::metric_leaning;
use crate::platform_diff::platform_differences;
use crate::prevalence::{figure3_categories, prevalence_by_rank};
use crate::similarity::similarity_matrix;
use crate::temporal::category_share_by_month;
use wwv_taxonomy::Category;
use wwv_world::{Metric, Month, Platform};

/// One exportable figure: a named table.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// File stem (e.g. `fig01_concentration`).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each cell already rendered.
    pub rows: Vec<Vec<String>>,
}

impl FigureData {
    /// Renders the table as TSV.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

fn f(v: f64) -> String {
    format!("{v:.6}")
}

/// Sorts keyed rows by their numeric key, descending, and strips the keys.
/// Rows used to be ordered by comparing *rendered* float strings, which
/// both mis-sorts across magnitudes ("9.5" > "10.0") and cannot express a
/// NaN policy; `total_cmp` gives a total order (NaN keys sort first, with
/// the other "large" values) and never panics.
fn sort_rows_by_key_desc(keyed: &mut Vec<(f64, Vec<String>)>) -> Vec<Vec<String>> {
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    std::mem::take(keyed).into_iter().map(|(_, row)| row).collect()
}

/// Fig. 1 — cumulative traffic share by rank, all four series.
pub fn fig01(_ctx: &AnalysisContext<'_>) -> FigureData {
    let series: Vec<_> = [
        (Platform::Windows, Metric::PageLoads),
        (Platform::Windows, Metric::TimeOnPage),
        (Platform::Android, Metric::PageLoads),
        (Platform::Android, Metric::TimeOnPage),
    ]
    .iter()
    .map(|(p, m)| concentration_curve(*p, *m))
    .collect();
    let mut rows = Vec::new();
    for (i, rank) in series[0].ranks.iter().enumerate() {
        rows.push(vec![
            rank.to_string(),
            f(series[0].cumulative[i]),
            f(series[1].cumulative[i]),
            f(series[2].cumulative[i]),
            f(series[3].cumulative[i]),
        ]);
    }
    FigureData {
        name: "fig01_concentration".into(),
        columns: vec![
            "rank".into(),
            "windows_loads".into(),
            "windows_time".into(),
            "android_loads".into(),
            "android_time".into(),
        ],
        rows,
    }
}

/// Fig. 2 — category composition of top-100/top-10K, sites and traffic.
pub fn fig02(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> FigureData {
    let comp = composition(ctx, platform, metric);
    let mut keyed: Vec<(f64, Vec<String>)> = Category::ALL
        .iter()
        .filter_map(|c| {
            let s100 = comp.sites_top100.get(c.name()).copied().unwrap_or(0.0);
            let s10k = comp.sites_top10k.get(c.name()).copied().unwrap_or(0.0);
            let t100 = comp.traffic_top100.get(c.name()).copied().unwrap_or(0.0);
            let t10k = comp.traffic_top10k.get(c.name()).copied().unwrap_or(0.0);
            if s100 + s10k + t100 + t10k == 0.0 {
                return None;
            }
            Some((t10k, vec![c.name().to_owned(), f(s100), f(s10k), f(t100), f(t10k)]))
        })
        .collect();
    let rows = sort_rows_by_key_desc(&mut keyed);
    FigureData {
        name: format!("fig02_composition_{platform}_{metric}").replace(' ', "_").to_lowercase(),
        columns: vec![
            "category".into(),
            "pct_sites_top100".into(),
            "pct_sites_top10k".into(),
            "pct_traffic_top100".into(),
            "pct_traffic_top10k".into(),
        ],
        rows,
    }
}

/// Fig. 3 — category prevalence by rank threshold (median and quartiles).
pub fn fig03(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric, thresholds: &[usize]) -> FigureData {
    let mut rows = Vec::new();
    for cat in figure3_categories() {
        let series = prevalence_by_rank(ctx, cat, platform, metric, thresholds);
        for (t, q) in series.thresholds.iter().zip(&series.summary) {
            rows.push(vec![
                cat.name().to_owned(),
                t.to_string(),
                f(q.q25),
                f(q.median),
                f(q.q75),
            ]);
        }
    }
    FigureData {
        name: format!("fig03_prevalence_{platform}_{metric}").replace(' ', "_").to_lowercase(),
        columns: vec!["category".into(), "top_n".into(), "q25".into(), "median".into(), "q75".into()],
        rows,
    }
}

/// Figs. 4/15 — platform difference scores.
pub fn fig04(ctx: &AnalysisContext<'_>, metric: Metric) -> FigureData {
    let rows = platform_differences(ctx, metric)
        .into_iter()
        .map(|r| {
            vec![
                r.category,
                f(r.score),
                r.significant_countries.to_string(),
                f(r.android_share),
                f(r.windows_share),
            ]
        })
        .collect();
    FigureData {
        name: format!("fig04_platform_diff_{metric}").replace(' ', "_").to_lowercase(),
        columns: vec![
            "category".into(),
            "score".into(),
            "significant_countries".into(),
            "android_share_pct".into(),
            "windows_share_pct".into(),
        ],
        rows,
    }
}

/// Figs. 5/16 — metric-leaning category distribution.
pub fn fig05(ctx: &AnalysisContext<'_>, platform: Platform) -> FigureData {
    let leaning = metric_leaning(ctx, platform);
    let mut rows = Vec::new();
    for cat in Category::ALL {
        let l = leaning.loads_leaning.get(cat.name()).copied().unwrap_or(0.0);
        let t = leaning.time_leaning.get(cat.name()).copied().unwrap_or(0.0);
        let o = leaning.other.get(cat.name()).copied().unwrap_or(0.0);
        if l + t + o > 0.0 {
            rows.push(vec![cat.name().to_owned(), f(l), f(o), f(t)]);
        }
    }
    FigureData {
        name: format!("fig05_metric_leaning_{platform}").to_lowercase(),
        columns: vec![
            "category".into(),
            "pct_loads_leaning".into(),
            "pct_other".into(),
            "pct_time_leaning".into(),
        ],
        rows,
    }
}

/// Figs. 6/7 — popularity curves and the endemicity scatter.
pub fn fig07(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric, head: usize) -> FigureData {
    let curves = popularity_curves(ctx, platform, metric, head);
    let rows = curves
        .iter()
        .map(|c| {
            vec![
                c.key.clone(),
                c.best_rank().to_string(),
                c.present_in().to_string(),
                f(c.endemicity()),
                f(c.endemicity_ratio()),
                format!("{:?}", c.shape()),
            ]
        })
        .collect();
    FigureData {
        name: format!("fig07_endemicity_{platform}_{metric}").replace(' ', "_").to_lowercase(),
        columns: vec![
            "site".into(),
            "best_rank".into(),
            "countries_present".into(),
            "endemicity".into(),
            "endemicity_ratio".into(),
            "shape".into(),
        ],
        rows,
    }
}

/// Figs. 9/17 — globally-popular share by rank bucket.
pub fn fig09(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric, head: usize) -> FigureData {
    let (split, _) = classify_global_national(ctx, platform, metric, head);
    let data = global_share_by_bucket(ctx, &split, &RANK_BUCKETS);
    let rows = data
        .buckets
        .iter()
        .zip(&data.global_pct)
        .map(|((lo, hi), pct)| vec![format!("{lo}-{hi}"), f(*pct), f(100.0 - *pct)])
        .collect();
    FigureData {
        name: format!("fig09_global_share_{platform}_{metric}").replace(' ', "_").to_lowercase(),
        columns: vec!["rank_bucket".into(), "pct_global".into(), "pct_national".into()],
        rows,
    }
}

/// Figs. 10/18/19/20 — the similarity heatmap.
pub fn fig10(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> FigureData {
    let sim = similarity_matrix(ctx, platform, metric);
    let mut columns = vec!["country".to_owned()];
    columns.extend(sim.labels.iter().cloned());
    let rows = sim
        .labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let mut row = vec![label.clone()];
            row.extend((0..sim.labels.len()).map(|j| f(sim.matrix.get(i, j))));
            row
        })
        .collect();
    FigureData {
        name: format!("fig10_similarity_{platform}_{metric}").replace(' ', "_").to_lowercase(),
        columns,
        rows,
    }
}

/// Figs. 11/21 — clusters with silhouettes.
pub fn fig11(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> Option<FigureData> {
    let sim = similarity_matrix(ctx, platform, metric);
    let clustering = cluster_countries(&sim)?;
    let mut rows = Vec::new();
    for cluster in &clustering.clusters {
        for member in &cluster.members {
            rows.push(vec![
                cluster.index.to_string(),
                cluster.exemplar.clone(),
                member.clone(),
                f(cluster.silhouette),
            ]);
        }
    }
    Some(FigureData {
        name: "fig11_clusters".into(),
        columns: vec!["cluster".into(), "exemplar".into(), "country".into(), "cluster_silhouette".into()],
        rows,
    })
}

/// Fig. 12 — sorted pairwise intersections with cumulative sums.
pub fn fig12(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> FigureData {
    let buckets: Vec<usize> =
        FIG12_BUCKETS.iter().copied().filter(|b| *b <= ctx.depth).collect();
    let series = bucket_intersections(ctx, platform, metric, &buckets);
    let mut rows = Vec::new();
    for s in &series {
        for (i, (v, c)) in s.sorted.iter().zip(&s.cumulative).enumerate() {
            rows.push(vec![s.bucket.to_string(), (i + 1).to_string(), f(*v), f(*c)]);
        }
    }
    FigureData {
        name: "fig12_bucket_intersections".into(),
        columns: vec!["bucket".into(), "pair_index".into(), "intersection".into(), "cumulative".into()],
        rows,
    }
}

/// §4.5 — category share by month (the December anomaly series).
pub fn fig_temporal(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric, bucket: usize) -> FigureData {
    let mut rows = Vec::new();
    for cat in [
        Category::Ecommerce,
        Category::Education,
        Category::EducationalInstitutions,
        Category::NewsMedia,
        Category::VideoStreaming,
    ] {
        let series = category_share_by_month(ctx, cat, platform, metric, bucket);
        for (month, share) in Month::ALL.iter().zip(&series.shares) {
            rows.push(vec![cat.name().to_owned(), month.to_string(), f(*share)]);
        }
    }
    FigureData {
        name: "fig_temporal_category_share".into(),
        columns: vec!["category".into(), "month".into(), "pct_of_top_sites".into()],
        rows,
    }
}

/// Every exportable figure at once.
pub fn all_figures(ctx: &AnalysisContext<'_>, head: usize, thresholds: &[usize], bucket: usize) -> Vec<FigureData> {
    let _span = wwv_obs::span!("core.figures");
    let mut out = vec![fig01(ctx)];
    for (p, m) in [
        (Platform::Windows, Metric::PageLoads),
        (Platform::Windows, Metric::TimeOnPage),
        (Platform::Android, Metric::PageLoads),
        (Platform::Android, Metric::TimeOnPage),
    ] {
        out.push(fig02(ctx, p, m));
        out.push(fig10(ctx, p, m));
    }
    out.push(fig03(ctx, Platform::Windows, Metric::PageLoads, thresholds));
    out.push(fig03(ctx, Platform::Android, Metric::TimeOnPage, thresholds));
    out.push(fig04(ctx, Metric::PageLoads));
    out.push(fig04(ctx, Metric::TimeOnPage));
    out.push(fig05(ctx, Platform::Windows));
    out.push(fig05(ctx, Platform::Android));
    out.push(fig07(ctx, Platform::Windows, Metric::PageLoads, head));
    out.push(fig09(ctx, Platform::Windows, Metric::PageLoads, head));
    out.push(fig09(ctx, Platform::Windows, Metric::TimeOnPage, head));
    if let Some(fig) = fig11(ctx, Platform::Windows, Metric::PageLoads) {
        out.push(fig);
    }
    out.push(fig12(ctx, Platform::Windows, Metric::PageLoads));
    out.push(fig_temporal(ctx, Platform::Windows, Metric::TimeOnPage, bucket));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AnalysisContext<'static> {
        let (world, ds) = crate::testutil::small();
        AnalysisContext::with_depth(world, ds, 2_000)
    }

    #[test]
    fn keyed_row_sort_survives_nan_keys() {
        // Regression: rows were ordered by comparing rendered float
        // strings, and a NaN key would have panicked a `partial_cmp`
        // ordering. The keyed sort is total: NaN rows sort first (with the
        // large values) and the call never panics.
        let mut keyed = vec![
            (1.0, vec!["a".to_owned()]),
            (f64::NAN, vec!["n".to_owned()]),
            (7.5, vec!["b".to_owned()]),
            (0.25, vec!["c".to_owned()]),
        ];
        let rows = sort_rows_by_key_desc(&mut keyed);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec!["n".to_owned()], "NaN sorts with the large values");
        assert_eq!(rows[1], vec!["b".to_owned()]);
        assert_eq!(rows[2], vec!["a".to_owned()]);
        assert_eq!(rows[3], vec!["c".to_owned()]);
    }

    #[test]
    fn fig01_has_four_series() {
        let fig = fig01(&ctx());
        assert_eq!(fig.columns.len(), 5);
        assert!(fig.rows.len() > 40);
        let tsv = fig.to_tsv();
        assert!(tsv.starts_with("rank\twindows_loads"));
    }

    #[test]
    fn fig10_is_square() {
        let fig = fig10(&ctx(), Platform::Windows, Metric::PageLoads);
        assert_eq!(fig.rows.len(), 45);
        assert_eq!(fig.columns.len(), 46);
        for row in &fig.rows {
            assert_eq!(row.len(), 46);
        }
    }

    #[test]
    fn tsv_cells_match_columns() {
        let figs = [
            fig04(&ctx(), Metric::PageLoads),
            fig05(&ctx(), Platform::Windows),
            fig09(&ctx(), Platform::Windows, Metric::PageLoads, 200),
        ];
        for fig in figs {
            for row in &fig.rows {
                assert_eq!(row.len(), fig.columns.len(), "figure {}", fig.name);
            }
        }
    }

    #[test]
    fn figure_names_unique() {
        let all = all_figures(&ctx(), 200, &[10, 100, 1_000], 1_000);
        let mut names: Vec<&str> = all.iter().map(|f| f.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(before >= 15, "exported {} figures", before);
    }
}
