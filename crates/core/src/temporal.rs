//! §4.5 — Temporal stability of website popularity.
//!
//! Percent intersection and Spearman's ρ between month pairs per rank
//! bucket, and the stability of category shares over time (including the
//! December education-down / e-commerce-up shift).

use crate::context::AnalysisContext;
use serde::Serialize;
use wwv_stats::QuantileSummary;
use wwv_taxonomy::Category;
use wwv_world::{Breakdown, Metric, Month, Platform};

/// The rank buckets §4.5 reports.
pub const TEMPORAL_BUCKETS: [usize; 3] = [20, 100, 10_000];

/// Month-pair similarity for one rank bucket.
#[derive(Debug, Clone, Serialize)]
pub struct MonthPairStability {
    /// Earlier month.
    pub from: Month,
    /// Later month.
    pub to: Month,
    /// Rank bucket (top-N).
    pub bucket: usize,
    /// Cross-country summary of percent intersection (0–1).
    pub intersection: QuantileSummary,
    /// Cross-country summary of Spearman's ρ.
    pub spearman: QuantileSummary,
}

/// Computes stability between two months for one (platform, metric, bucket).
pub fn month_pair_stability(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    from: Month,
    to: Month,
    bucket: usize,
) -> MonthPairStability {
    let _span = wwv_obs::span!("core.temporal");
    let mut intersections = Vec::new();
    let mut rhos = Vec::new();
    for ci in ctx.countries() {
        let a = ctx.key_list(Breakdown { country: ci, platform, metric, month: from });
        let b = ctx.key_list(Breakdown { country: ci, platform, metric, month: to });
        if a.is_empty() || b.is_empty() {
            continue;
        }
        let depth = bucket.min(a.len()).min(b.len());
        intersections.push(a.percent_intersection(&b, depth));
        if let Some(rho) = a.spearman_within_intersection(&b, depth) {
            rhos.push(rho);
        }
    }
    let zero = QuantileSummary { q25: 0.0, median: 0.0, q75: 0.0 };
    MonthPairStability {
        from,
        to,
        bucket,
        intersection: QuantileSummary::of(&intersections).unwrap_or(zero),
        spearman: QuantileSummary::of(&rhos).unwrap_or(zero),
    }
}

/// Adjacent-month stability across the whole window for one bucket.
pub fn adjacent_month_stability(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    bucket: usize,
) -> Vec<MonthPairStability> {
    Month::ALL
        .windows(2)
        .map(|pair| month_pair_stability(ctx, platform, metric, pair[0], pair[1], bucket))
        .collect()
}

/// Stability of September vs every later month (the paper's second view).
pub fn from_september_stability(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    bucket: usize,
) -> Vec<MonthPairStability> {
    Month::ALL[1..]
        .iter()
        .map(|m| month_pair_stability(ctx, platform, metric, Month::September2021, *m, bucket))
        .collect()
}

/// Category share in the top-N of one month (median across countries).
#[derive(Debug, Clone, Serialize)]
pub struct CategoryShareByMonth {
    /// Category.
    pub category: String,
    /// Per-month median share (percent of top-N sites), one per study month.
    pub shares: Vec<f64>,
}

/// Tracks a category's share of top-`bucket` sites across all months.
pub fn category_share_by_month(
    ctx: &AnalysisContext<'_>,
    category: Category,
    platform: Platform,
    metric: Metric,
    bucket: usize,
) -> CategoryShareByMonth {
    let _span = wwv_obs::span!("core.temporal");
    let mut shares = Vec::with_capacity(Month::ALL.len());
    for month in Month::ALL {
        let mut per_country = Vec::new();
        for ci in ctx.countries() {
            let list = ctx.domain_list(Breakdown { country: ci, platform, metric, month });
            if list.is_empty() {
                continue;
            }
            let depth = bucket.min(list.len());
            let count = list
                .iter()
                .take(depth)
                .filter(|d| ctx.category_of(**d) == category)
                .count();
            per_country.push(100.0 * count as f64 / depth as f64);
        }
        shares.push(wwv_stats::median(&per_country).unwrap_or(0.0));
    }
    CategoryShareByMonth { category: category.name().to_owned(), shares }
}

/// The December anomaly summary (§4.5's headline temporal finding).
#[derive(Debug, Clone, Serialize)]
pub struct DecemberAnomaly {
    /// Median intersection of the November→December pair.
    pub nov_dec_intersection: f64,
    /// Median intersection of the January→February pair (the most similar
    /// adjacent pair in the paper).
    pub jan_feb_intersection: f64,
    /// Education share in November vs December (percent of top-N sites).
    pub education_nov_dec: (f64, f64),
    /// E-commerce share in November vs December.
    pub ecommerce_nov_dec: (f64, f64),
}

/// Computes the December anomaly at one bucket for (platform, metric).
pub fn december_anomaly(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    bucket: usize,
) -> DecemberAnomaly {
    let _span = wwv_obs::span!("core.temporal");
    let nov_dec = month_pair_stability(ctx, platform, metric, Month::November2021, Month::December2021, bucket);
    let jan_feb = month_pair_stability(ctx, platform, metric, Month::January2022, Month::February2022, bucket);
    let edu = category_share_by_month(ctx, Category::Education, platform, metric, bucket);
    let edu_inst = category_share_by_month(ctx, Category::EducationalInstitutions, platform, metric, bucket);
    let ecom = category_share_by_month(ctx, Category::Ecommerce, platform, metric, bucket);
    let nov = Month::November2021.index();
    let dec = Month::December2021.index();
    DecemberAnomaly {
        nov_dec_intersection: nov_dec.intersection.median,
        jan_feb_intersection: jan_feb.intersection.median,
        education_nov_dec: (edu.shares[nov] + edu_inst.shares[nov], edu.shares[dec] + edu_inst.shares[dec]),
        ecommerce_nov_dec: (ecom.shares[nov], ecom.shares[dec]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::World;

    fn fixtures() -> &'static (World, wwv_telemetry::ChromeDataset) {
        crate::testutil::small_all_months()
    }

    #[test]
    fn adjacent_months_strongly_correlated() {
        // §4.5: ~80–95% intersection, ρ ≳ 0.85 between adjacent months.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 1_000);
        let pairs = adjacent_month_stability(&ctx, Platform::Windows, Metric::PageLoads, 100);
        assert_eq!(pairs.len(), 5);
        for p in &pairs {
            assert!(p.intersection.median > 0.6, "{:?}→{:?}: {:?}", p.from, p.to, p.intersection);
            assert!(p.spearman.median > 0.6, "{:?}→{:?}: {:?}", p.from, p.to, p.spearman);
        }
    }

    #[test]
    fn december_is_least_stable() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 1_000);
        let a = december_anomaly(&ctx, Platform::Windows, Metric::PageLoads, 1_000);
        assert!(
            a.nov_dec_intersection < a.jan_feb_intersection,
            "Nov→Dec {} vs Jan→Feb {}",
            a.nov_dec_intersection,
            a.jan_feb_intersection
        );
    }

    #[test]
    fn december_category_shift() {
        // §4.5: education down, e-commerce up in December.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 1_000);
        let a = december_anomaly(&ctx, Platform::Windows, Metric::TimeOnPage, 1_000);
        assert!(
            a.ecommerce_nov_dec.1 > a.ecommerce_nov_dec.0,
            "ecommerce Nov {} → Dec {}",
            a.ecommerce_nov_dec.0,
            a.ecommerce_nov_dec.1
        );
        assert!(
            a.education_nov_dec.1 < a.education_nov_dec.0,
            "education Nov {} → Dec {}",
            a.education_nov_dec.0,
            a.education_nov_dec.1
        );
    }

    #[test]
    fn september_drift_grows_with_distance() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 1_000);
        let drift = from_september_stability(&ctx, Platform::Windows, Metric::PageLoads, 100);
        assert_eq!(drift.len(), 5);
        // Sep→Oct at least as similar as Sep→Feb.
        assert!(drift[0].intersection.median >= drift[4].intersection.median - 0.05);
    }
}
