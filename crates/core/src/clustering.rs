//! §5.3.1 — Country clusters (Fig. 11) and their validation (Fig. 21).
//!
//! Affinity propagation over the weighted-RBO similarity matrix, validated
//! with silhouette coefficients on the corresponding distance matrix
//! (distance = 1 − similarity).

use crate::similarity::SimilarityMatrix;
use serde::Serialize;
use wwv_stats::silhouette::silhouette_by_cluster;
use wwv_stats::{AffinityParams, AffinityPropagation, ClusterSilhouette, SymmetricMatrix};

/// One country cluster.
#[derive(Debug, Clone, Serialize)]
pub struct CountryCluster {
    /// Cluster index.
    pub index: usize,
    /// ISO codes of the members.
    pub members: Vec<String>,
    /// ISO code of the exemplar country.
    pub exemplar: String,
    /// Mean silhouette coefficient of the cluster.
    pub silhouette: f64,
}

/// Fig. 11 + Fig. 21 result.
#[derive(Debug, Clone, Serialize)]
pub struct CountryClustering {
    /// Clusters, largest first.
    pub clusters: Vec<CountryCluster>,
    /// Average silhouette coefficient over all countries (paper: 0.11).
    pub average_silhouette: f64,
    /// Whether affinity propagation converged.
    pub converged: bool,
}

/// Clusters countries from a similarity matrix.
pub fn cluster_countries(sim: &SimilarityMatrix) -> Option<CountryClustering> {
    let _span = wwv_obs::span!("core.clustering");
    let clustering = AffinityPropagation::new(AffinityParams::default()).fit(&sim.matrix)?;
    let distance = sim.matrix.map(|v| 1.0 - v);
    let groups: Vec<ClusterSilhouette> = if clustering.k() >= 2 {
        silhouette_by_cluster(&distance, &clustering.labels)?
    } else {
        Vec::new()
    };
    let average = if groups.is_empty() {
        0.0
    } else {
        let all: Vec<f64> = groups.iter().flat_map(|g| g.values.iter().copied()).collect();
        all.iter().sum::<f64>() / all.len() as f64
    };
    let mut clusters: Vec<CountryCluster> = (0..clustering.k())
        .map(|c| {
            let members: Vec<String> =
                clustering.members(c).iter().map(|i| sim.labels[*i].clone()).collect();
            CountryCluster {
                index: c,
                members,
                exemplar: sim.labels[clustering.exemplars[c]].clone(),
                silhouette: groups.get(c).map(|g| g.mean).unwrap_or(0.0),
            }
        })
        .collect();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.members.len()));
    Some(CountryClustering { clusters, average_silhouette: average, converged: clustering.converged })
}

/// Distance matrix from a similarity matrix (1 − s).
pub fn distance_matrix(sim: &SimilarityMatrix) -> SymmetricMatrix {
    sim.matrix.map(|v| 1.0 - v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalysisContext;
    use crate::similarity::similarity_matrix;
    use wwv_world::{Metric, Platform};

    fn clustering() -> CountryClustering {
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let sim = similarity_matrix(&ctx, Platform::Windows, Metric::PageLoads);
        cluster_countries(&sim).expect("clustering succeeds")
    }

    #[test]
    fn moderate_cluster_count() {
        // Paper: 11 clusters of 45 countries. Accept a band.
        let c = clustering();
        let total: usize = c.clusters.iter().map(|cl| cl.members.len()).sum();
        assert_eq!(total, 45, "every country clustered once");
        assert!(
            (4..=20).contains(&c.clusters.len()),
            "cluster count {} out of band",
            c.clusters.len()
        );
    }

    #[test]
    fn clusters_are_weak_but_positive_structures() {
        // Paper: average silhouette ≈ 0.11 — clusters exist but are loose.
        let c = clustering();
        assert!(c.average_silhouette > -0.1, "avg SC {}", c.average_silhouette);
        assert!(c.average_silhouette < 0.6, "clusters should be loose, SC {}", c.average_silhouette);
    }

    #[test]
    fn language_families_cluster_together() {
        let c = clustering();
        let cluster_of = |code: &str| -> usize {
            c.clusters
                .iter()
                .position(|cl| cl.members.iter().any(|m| m == code))
                .unwrap_or(usize::MAX)
        };
        // At least two of the North-Africa four share a cluster.
        let naf = ["DZ", "EG", "MA", "TN"];
        let mut shared = 0;
        for i in 0..naf.len() {
            for j in 0..i {
                if cluster_of(naf[i]) == cluster_of(naf[j]) {
                    shared += 1;
                }
            }
        }
        assert!(shared >= 2, "North-Africa pairs sharing a cluster: {shared}");
        // Several Hispanic-America countries cluster together.
        let hisp = ["MX", "AR", "CL", "CO", "PE"];
        let mut hisp_shared = 0;
        for i in 0..hisp.len() {
            for j in 0..i {
                if cluster_of(hisp[i]) == cluster_of(hisp[j]) {
                    hisp_shared += 1;
                }
            }
        }
        assert!(hisp_shared >= 3, "Hispanic pairs sharing a cluster: {hisp_shared}");
    }

    #[test]
    fn exemplars_are_members() {
        let c = clustering();
        for cl in &c.clusters {
            assert!(cl.members.contains(&cl.exemplar), "{:?}", cl);
        }
    }
}
