//! Experiment reporting: paper-stated values vs measured values.

use serde::Serialize;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct ReportRow {
    /// Experiment id (e.g. "F1", "T2", "S4.4").
    pub id: String,
    /// What is being compared.
    pub quantity: String,
    /// The paper's stated value, as printed.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the measured value falls in the acceptance band.
    pub pass: bool,
}

impl ReportRow {
    /// Builds a row from a numeric measurement and an inclusive band.
    pub fn banded(id: &str, quantity: &str, paper: &str, measured: f64, lo: f64, hi: f64) -> Self {
        ReportRow {
            id: id.to_owned(),
            quantity: quantity.to_owned(),
            paper: paper.to_owned(),
            measured: format!("{measured:.4}"),
            pass: (lo..=hi).contains(&measured),
        }
    }

    /// Builds a row from an exact expectation.
    pub fn exact<T: PartialEq + std::fmt::Display>(id: &str, quantity: &str, paper: T, measured: T) -> Self {
        ReportRow {
            id: id.to_owned(),
            quantity: quantity.to_owned(),
            paper: paper.to_string(),
            pass: paper == measured,
            measured: measured.to_string(),
        }
    }

    /// Builds a row from a boolean qualitative check.
    pub fn check(id: &str, quantity: &str, paper: &str, measured: &str, pass: bool) -> Self {
        ReportRow {
            id: id.to_owned(),
            quantity: quantity.to_owned(),
            paper: paper.to_owned(),
            measured: measured.to_owned(),
            pass,
        }
    }
}

/// A full experiment report.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExperimentReport {
    /// All rows, in experiment order.
    pub rows: Vec<ReportRow>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: ReportRow) {
        self.rows.push(row);
    }

    /// Number of passing rows.
    pub fn passed(&self) -> usize {
        self.rows.iter().filter(|r| r.pass).count()
    }

    /// Renders a fixed-width text table (the `reproduce` harness output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:<52} {:<26} {:<26} {}\n",
            "ID", "QUANTITY", "PAPER", "MEASURED", "PASS"
        ));
        out.push_str(&"-".repeat(124));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8} {:<52} {:<26} {:<26} {}\n",
                r.id,
                truncate(&r.quantity, 52),
                truncate(&r.paper, 26),
                truncate(&r.measured, 26),
                if r.pass { "ok" } else { "MISS" }
            ));
        }
        out.push_str(&format!("\n{} / {} rows pass\n", self.passed(), self.rows.len()));
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_pass_and_fail() {
        assert!(ReportRow::banded("F1", "x", "0.17", 0.17, 0.15, 0.20).pass);
        assert!(!ReportRow::banded("F1", "x", "0.17", 0.50, 0.15, 0.20).pass);
    }

    #[test]
    fn exact_compares() {
        assert!(ReportRow::exact("T2", "countries", 45, 45).pass);
        assert!(!ReportRow::exact("T2", "countries", 45, 44).pass);
    }

    #[test]
    fn render_contains_rows_and_summary() {
        let mut report = ExperimentReport::new();
        report.push(ReportRow::banded("F1", "top1 share", "17%", 0.17, 0.1, 0.2));
        report.push(ReportRow::exact("T2", "n", 1, 2));
        let text = report.render();
        assert!(text.contains("F1"));
        assert!(text.contains("MISS"));
        assert!(text.contains("1 / 2 rows pass"));
    }

    #[test]
    fn truncate_limits_width() {
        assert_eq!(truncate("short", 10), "short");
        let long = truncate(&"x".repeat(100), 10);
        assert!(long.chars().count() <= 10);
    }
}
