//! §4.2.3 — Category prevalence by rank (Figs. 3 and 14).
//!
//! For a ladder of rank thresholds N, the percentage of top-N domains
//! carrying each category label, summarized as median and 25–75% quartiles
//! across the 45 countries.

use crate::context::AnalysisContext;
use serde::Serialize;
use wwv_stats::QuantileSummary;
use wwv_taxonomy::Category;
use wwv_world::{Metric, Platform};

/// The default threshold ladder (the paper plots 10 → 10K).
pub const DEFAULT_THRESHOLDS: [usize; 10] = [10, 20, 30, 50, 100, 200, 500, 1_000, 5_000, 10_000];

/// Prevalence-by-rank series for one category on one (platform, metric).
#[derive(Debug, Clone, Serialize)]
pub struct PrevalenceSeries {
    /// Category.
    pub category: String,
    /// Platform.
    pub platform: Platform,
    /// Metric.
    pub metric: Metric,
    /// Rank thresholds.
    pub thresholds: Vec<usize>,
    /// Cross-country summary of the category's percentage at each threshold.
    pub summary: Vec<QuantileSummary>,
}

/// Computes prevalence-by-rank for one category.
pub fn prevalence_by_rank(
    ctx: &AnalysisContext<'_>,
    category: Category,
    platform: Platform,
    metric: Metric,
    thresholds: &[usize],
) -> PrevalenceSeries {
    let _span = wwv_obs::span!("core.prevalence");
    // Per-country cumulative category counts along the list.
    let mut per_threshold: Vec<Vec<f64>> = vec![Vec::new(); thresholds.len()];
    for ci in ctx.countries() {
        let b = ctx.breakdown(ci, platform, metric);
        let list = ctx.domain_list(b);
        if list.is_empty() {
            continue;
        }
        let mut count = 0usize;
        let mut t = 0usize;
        for (i, d) in list.iter().enumerate() {
            if ctx.category_of(*d) == category {
                count += 1;
            }
            while t < thresholds.len() && i + 1 == thresholds[t].min(list.len()) {
                per_threshold[t].push(100.0 * count as f64 / (i + 1) as f64);
                t += 1;
            }
            if t >= thresholds.len() {
                break;
            }
        }
        // Thresholds beyond the list length take the full-list value.
        while t < thresholds.len() {
            per_threshold[t].push(100.0 * count as f64 / list.len() as f64);
            t += 1;
        }
    }
    PrevalenceSeries {
        category: category.name().to_owned(),
        platform,
        metric,
        thresholds: thresholds.to_vec(),
        summary: per_threshold
            .iter()
            .map(|v| {
                QuantileSummary::of(v).unwrap_or(QuantileSummary { q25: 0.0, median: 0.0, q75: 0.0 })
            })
            .collect(),
    }
}

/// The categories Fig. 3 plots.
pub fn figure3_categories() -> Vec<Category> {
    vec![
        Category::VideoStreaming,
        Category::Business,
        Category::NewsMedia,
        Category::Technology,
        Category::Pornography,
        Category::Ecommerce,
        Category::EducationalInstitutions,
        Category::EconomyFinance,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::World;

    fn fixtures() -> &'static (World, wwv_telemetry::ChromeDataset) {
        crate::testutil::small()
    }

    /// Thresholds scaled to the small test dataset (lists ~1.5–2.5K deep).
    const T: [usize; 6] = [10, 30, 100, 300, 1_000, 2_000];

    #[test]
    fn summaries_are_percentages() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let s = prevalence_by_rank(&ctx, Category::NewsMedia, Platform::Windows, Metric::PageLoads, &T);
        assert_eq!(s.summary.len(), T.len());
        for q in &s.summary {
            assert!(q.median >= 0.0 && q.median <= 100.0);
            assert!(q.q25 <= q.median && q.median <= q.q75);
        }
    }

    #[test]
    fn business_rises_toward_tail() {
        // Fig. 3: Business is disproportionately represented in the long
        // tail on desktop.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let s = prevalence_by_rank(&ctx, Category::Business, Platform::Windows, Metric::PageLoads, &T);
        let head = s.summary[1].median; // top-30
        let tail = s.summary[5].median; // top-2000
        assert!(tail > head, "business head {head}% vs tail {tail}%");
    }

    #[test]
    fn video_streaming_head_heavy_by_time() {
        // Fig. 3: Video Streaming is a larger share of top sites than of the
        // tail when ranking by time.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let s = prevalence_by_rank(&ctx, Category::VideoStreaming, Platform::Windows, Metric::TimeOnPage, &T);
        let head = s.summary[0].median; // top-10
        let tail = s.summary[5].median;
        assert!(head > tail, "video head {head}% vs tail {tail}%");
        assert!(head >= 20.0, "paper: video streaming >40% of top-10 by time; got {head}%");
    }

    #[test]
    fn news_peaks_mid_rank() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let s = prevalence_by_rank(&ctx, Category::NewsMedia, Platform::Windows, Metric::PageLoads, &T);
        let head = s.summary[0].median;
        let mid = s.summary[2].median.max(s.summary[3].median); // top 100–300
        let tail = s.summary[5].median;
        assert!(mid > tail, "news mid {mid}% vs tail {tail}%");
        assert!(mid >= head, "news mid {mid}% vs head {head}%");
    }
}
