//! # wwv-core
//!
//! The paper's primary contribution: every analysis of *"A World Wide View
//! of Browsing the World Wide Web"* (IMC 2022), implemented over the
//! [`wwv_telemetry::ChromeDataset`] artifact exactly as §3–§5 describe.
//!
//! One module per experiment family; see DESIGN.md for the full experiment
//! index mapping each figure/table to its module and bench target.
//!
//! * [`context`] — shared analysis context (domain→key merging via the PSL,
//!   domain categorization, traffic-distribution weights).
//! * [`concentration`] — Fig. 1 and the §4.1.2 headline statistics.
//! * [`composition`] — Fig. 2 category composition of top-100/top-10K.
//! * [`prevalence`] — Figs. 3/14 category prevalence by rank.
//! * [`platform_diff`] — Figs. 4/15 desktop-vs-mobile category contrasts.
//! * [`metric_diff`] — §4.4 and Figs. 5/16 page-loads vs time-on-page.
//! * [`temporal`] — §4.5 temporal stability and the December anomaly.
//! * [`endemicity`] — §5.1 popularity curves, Table 1 shapes, E_w scores.
//! * [`global_national`] — §5.2, Table 2, Figs. 7/8/9/17.
//! * [`similarity`] — §5.3.1 traffic-weighted RBO matrices (Figs. 10/18–20).
//! * [`clustering`] — affinity propagation + silhouettes (Figs. 11/21).
//! * [`buckets`] — §5.3.3 / Fig. 12 intersection by rank bucket.
//! * [`top10`] — §4.2.1 / §5.3.2 top-10 composition and Table 4.
//! * [`report`] — paper-vs-measured experiment reporting.

pub mod ablation;
pub mod buckets;
pub mod clustering;
pub mod composition;
pub mod concentration;
pub mod context;
pub mod endemicity;
pub mod figures;
pub mod global_national;
pub mod metric_diff;
pub mod platform_diff;
pub mod prevalence;
pub mod report;
pub mod representative;
pub mod similarity;
pub mod temporal;
#[doc(hidden)]
pub mod testutil;
pub mod top10;

pub use context::AnalysisContext;
pub use report::{ExperimentReport, ReportRow};
