//! Shared analysis context.
//!
//! Every analysis consumes the dataset through the same three lenses the
//! paper does:
//!
//! * **rank lists of domains** per breakdown (the raw Chrome artifact);
//! * **merged site keys** for cross-country comparison — §3.1's
//!   ccTLD-merging step, implemented with the real PSL pipeline;
//! * **categories** per domain, via the (noisy) categorization oracle plus
//!   the paper's manual verification of Search Engines and Social Networks
//!   (those two categories answer from ground truth);
//! * **traffic weights** per rank from the Fig. 1 distribution curves.
//!
//! Key derivation and categorization are memoized per interned domain.
//! The memo tables sit behind mutexes so one context can serve concurrent
//! analyses (the experiment families and similarity pairs run on the
//! `wwv-par` pool); both derivations are pure functions of the domain id,
//! so concurrent misses converge on the same value.

use std::collections::HashMap;
use std::sync::Mutex;
use wwv_domains::{DomainName, PublicSuffixList, SiteKey};
use wwv_stats::RankedList;
use wwv_taxonomy::{Categorizer, Category, NoisyCategorizer, TrueCategorizer};
use wwv_telemetry::{ChromeDataset, DomainId};
use wwv_world::{Breakdown, Metric, Month, Platform, World, COUNTRIES};

/// Shared, memoizing analysis context.
pub struct AnalysisContext<'a> {
    /// The world model (ground truth).
    pub world: &'a World,
    /// The telemetry dataset (observations).
    pub dataset: &'a ChromeDataset,
    /// Analysis depth: the paper's top-10K cutoff, or the full list when
    /// shorter (small countries; small test configs).
    pub depth: usize,
    psl: PublicSuffixList,
    categorizer: NoisyCategorizer<TrueCategorizer>,
    keys: Mutex<HashMap<DomainId, String>>,
    categories: Mutex<HashMap<DomainId, Category>>,
}

impl<'a> AnalysisContext<'a> {
    /// Builds a context at the paper's standard depth (top 10K).
    pub fn new(world: &'a World, dataset: &'a ChromeDataset) -> Self {
        Self::with_depth(world, dataset, 10_000)
    }

    /// Builds a context with an explicit depth.
    pub fn with_depth(world: &'a World, dataset: &'a ChromeDataset, depth: usize) -> Self {
        let _span = wwv_obs::span!("core.context");
        // Ground truth for the categorization oracle: every interned domain's
        // real category, from the world model.
        let truth = TrueCategorizer::new((0..dataset.domains.len() as u32).map(|i| {
            let id = DomainId(i);
            let site = world.universe().site(dataset.domains.site(id));
            (dataset.domains.name(id).to_owned(), site.category)
        }));
        let categorizer = NoisyCategorizer::new(truth, world.config().seed.derive("categorizer"));
        AnalysisContext {
            world,
            dataset,
            depth,
            psl: PublicSuffixList::embedded(),
            categorizer,
            keys: Mutex::new(HashMap::new()),
            categories: Mutex::new(HashMap::new()),
        }
    }

    /// The reference month (February 2022, §3.1).
    pub fn reference_month(&self) -> Month {
        Month::reference()
    }

    /// Breakdown for the reference month.
    pub fn breakdown(&self, country: usize, platform: Platform, metric: Metric) -> Breakdown {
        Breakdown { country, platform, metric, month: self.reference_month() }
    }

    /// Country indices.
    pub fn countries(&self) -> std::ops::Range<usize> {
        0..COUNTRIES.len()
    }

    /// Raw domain rank list for a breakdown, truncated to the analysis depth.
    pub fn domain_list(&self, b: Breakdown) -> RankedList<DomainId> {
        match self.dataset.list(b) {
            Some(list) => RankedList::new(list.domains().take(self.depth)),
            None => RankedList::new(std::iter::empty()),
        }
    }

    /// The merged site key of a domain (memoized). Domains that are
    /// themselves public suffixes fall back to their full name.
    pub fn key_of(&self, id: DomainId) -> String {
        if let Some(k) = self.keys.lock().unwrap_or_else(|p| p.into_inner()).get(&id) {
            return k.clone();
        }
        let name = self.dataset.domains.name(id);
        let key = DomainName::parse(name)
            .ok()
            .and_then(|d| SiteKey::of(&d, &self.psl).ok())
            .map(|k| k.as_str().to_owned())
            .unwrap_or_else(|| name.to_owned());
        self.keys.lock().unwrap_or_else(|p| p.into_inner()).insert(id, key.clone());
        key
    }

    /// Merged site-key rank list for a breakdown (cross-country comparable,
    /// §3.1 "Aggregating Sites Across Domains"). Duplicate keys keep their
    /// best rank.
    pub fn key_list(&self, b: Breakdown) -> RankedList<String> {
        match self.dataset.list(b) {
            Some(list) => {
                RankedList::new(list.domains().take(self.depth).map(|d| self.key_of(d)))
            }
            None => RankedList::new(std::iter::empty()),
        }
    }

    /// Category of a domain as the paper's pipeline sees it: the manually
    /// verified sets answer from ground truth, everything else from the
    /// noisy categorization API (memoized).
    pub fn category_of(&self, id: DomainId) -> Category {
        if let Some(c) = self.categories.lock().unwrap_or_else(|p| p.into_inner()).get(&id) {
            return *c;
        }
        let truth = self.world.universe().site(self.dataset.domains.site(id)).category;
        let category = if matches!(truth, Category::SearchEngines | Category::SocialNetworks) {
            // §3.2: these two sets were manually verified.
            truth
        } else {
            self.categorizer.categorize(self.dataset.domains.name(id)).unwrap_or(Category::Unknown)
        };
        self.categories.lock().unwrap_or_else(|p| p.into_inner()).insert(id, category);
        category
    }

    /// Ground-truth category (used by analyses that the paper ran on
    /// manually verified data, e.g. the top-10 review of §4.2.1).
    pub fn true_category_of(&self, id: DomainId) -> Category {
        self.world.universe().site(self.dataset.domains.site(id)).category
    }

    /// Per-rank traffic weights (Fig. 1 distribution) materialized to the
    /// analysis depth, for a (platform, metric) pair.
    pub fn traffic_weights(&self, platform: Platform, metric: Metric) -> Vec<f64> {
        self.dataset.curve(platform, metric).shares(self.depth)
    }

    /// Effective analysis depth for a breakdown (depth, or the list length
    /// when shorter).
    pub fn effective_depth(&self, b: Breakdown) -> usize {
        self.dataset.list(b).map(|l| l.len().min(self.depth)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::Country;

    fn fixtures() -> &'static (World, ChromeDataset) {
        crate::testutil::small()
    }

    #[test]
    fn key_merging_collapses_cctlds() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let uk = ds.domains.get("amazon.co.uk").expect("amazon.co.uk in dataset");
        let de = ds.domains.get("amazon.de").expect("amazon.de in dataset");
        assert_eq!(ctx.key_of(uk), "amazon");
        assert_eq!(ctx.key_of(de), "amazon");
    }

    #[test]
    fn key_list_preserves_best_rank() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let b = ctx.breakdown(Country::index_of("US").unwrap(), Platform::Windows, Metric::PageLoads);
        let keys = ctx.key_list(b);
        assert_eq!(keys.at_rank(1).map(String::as_str), Some("google"));
        assert!(keys.len() > 500);
    }

    #[test]
    fn manual_categories_always_correct() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let google = ds.domains.get("google.com").unwrap();
        assert_eq!(ctx.category_of(google), Category::SearchEngines);
        assert_eq!(ctx.true_category_of(google), Category::SearchEngines);
    }

    #[test]
    fn api_categories_mostly_correct() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let b = ctx.breakdown(Country::index_of("FR").unwrap(), Platform::Windows, Metric::PageLoads);
        let list = ctx.domain_list(b);
        let agree = list
            .iter()
            .filter(|d| ctx.category_of(**d) == ctx.true_category_of(**d))
            .count();
        let rate = agree as f64 / list.len() as f64;
        assert!(rate > 0.75, "API agreement {rate}");
        assert!(rate < 1.0, "noise should exist");
    }

    #[test]
    fn traffic_weights_decreasing() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let w = ctx.traffic_weights(Platform::Windows, Metric::PageLoads);
        assert_eq!(w.len(), 2_000);
        assert!(w[0] > w[100]);
    }

    #[test]
    fn memoization_is_stable() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let id = ds.domains.get("google.com").unwrap();
        assert_eq!(ctx.key_of(id), ctx.key_of(id));
        assert_eq!(ctx.category_of(id), ctx.category_of(id));
    }
}
