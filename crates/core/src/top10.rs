//! §4.2.1 / §5.3.2 — The composition of per-country top-10 lists (and the
//! Table 4 long tail).
//!
//! The paper manually verified the top ten sites of every (country,
//! platform, metric) breakdown; here the ground-truth categories play the
//! role of that manual review.

use crate::context::AnalysisContext;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use wwv_taxonomy::{Category, SuperCategory};
use wwv_world::{Metric, Platform, COUNTRIES};

/// §4.2.1 use-case coverage: how many countries have each use case in their
/// top 10.
#[derive(Debug, Clone, Serialize)]
pub struct Top10Coverage {
    /// Platform/metric of the breakdown.
    pub platform: Platform,
    /// Metric.
    pub metric: Metric,
    /// Countries analyzed.
    pub countries: usize,
    /// Countries with ≥1 search engine in the top 10 (paper: 45/45).
    pub search: usize,
    /// Countries with ≥1 video platform in the top 10 (paper: 45/45).
    pub video: usize,
    /// Countries with ≥1 social network (paper: 44).
    pub social: usize,
    /// Countries with ≥1 adult site (paper: 43).
    pub adult: usize,
    /// Countries with ≥1 e-commerce site (paper: 32).
    pub ecommerce: usize,
    /// Countries with ≥1 chat/messaging site (paper: 30).
    pub chat: usize,
    /// Countries with ≥1 classified-ads/marketplace site (paper: 17).
    pub classifieds: usize,
    /// Countries with ≥1 gaming site (paper: Twitch 31, Roblox 26).
    pub gaming: usize,
    /// Countries with ≥1 news site (paper: 20).
    pub news: usize,
    /// Countries with ≥1 business-platform site (paper: 22).
    pub business: usize,
    /// Number of distinct site keys across all top-10s.
    pub distinct_keys: usize,
}

/// Computes §4.2.1 coverage for one (platform, metric).
pub fn top10_coverage(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> Top10Coverage {
    let _span = wwv_obs::span!("core.top10");
    let mut coverage = Top10Coverage {
        platform,
        metric,
        countries: 0,
        search: 0,
        video: 0,
        social: 0,
        adult: 0,
        ecommerce: 0,
        chat: 0,
        classifieds: 0,
        gaming: 0,
        news: 0,
        business: 0,
        distinct_keys: 0,
    };
    let mut keys: HashSet<String> = HashSet::new();
    for ci in ctx.countries() {
        let list = ctx.domain_list(ctx.breakdown(ci, platform, metric));
        if list.is_empty() {
            continue;
        }
        coverage.countries += 1;
        let mut cats: HashSet<Category> = HashSet::new();
        for d in list.iter().take(10) {
            cats.insert(ctx.true_category_of(*d));
            keys.insert(ctx.key_of(*d));
        }
        let has = |c: Category| cats.contains(&c);
        if has(Category::SearchEngines) {
            coverage.search += 1;
        }
        if has(Category::VideoStreaming) || has(Category::Television) || has(Category::MoviesHomeVideo) {
            coverage.video += 1;
        }
        if has(Category::SocialNetworks) {
            coverage.social += 1;
        }
        if has(Category::Pornography) || has(Category::AdultThemes) {
            coverage.adult += 1;
        }
        if has(Category::Ecommerce) {
            coverage.ecommerce += 1;
        }
        if has(Category::ChatMessaging) || has(Category::Webmail) {
            coverage.chat += 1;
        }
        if has(Category::AuctionsMarketplaces) {
            coverage.classifieds += 1;
        }
        if has(Category::Gaming) {
            coverage.gaming += 1;
        }
        if has(Category::NewsMedia) {
            coverage.news += 1;
        }
        if has(Category::Business) {
            coverage.business += 1;
        }
    }
    coverage.distinct_keys = keys.len();
    coverage
}

/// Table 4 analogue: categories appearing in top-10s, with the number of
/// (country, top-10) occurrences — surfacing the long tail of use cases.
pub fn top10_category_tally(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
) -> HashMap<String, usize> {
    let mut tally: HashMap<String, usize> = HashMap::new();
    for ci in ctx.countries() {
        let list = ctx.domain_list(ctx.breakdown(ci, platform, metric));
        for d in list.iter().take(10) {
            *tally.entry(ctx.true_category_of(*d).name().to_owned()).or_insert(0) += 1;
        }
    }
    tally
}

/// §5.3.2's per-country endemic top-10 sites: keys in a country's top 10
/// that appear in no other country's top 10.
pub fn endemic_top10_keys(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
) -> HashMap<String, Vec<String>> {
    let mut appearances: HashMap<String, usize> = HashMap::new();
    let mut per_country: Vec<Vec<String>> = Vec::new();
    for ci in ctx.countries() {
        let list = ctx.domain_list(ctx.breakdown(ci, platform, metric));
        let keys: Vec<String> = list.iter().take(10).map(|d| ctx.key_of(*d)).collect();
        for k in &keys {
            *appearances.entry(k.clone()).or_insert(0) += 1;
        }
        per_country.push(keys);
    }
    let mut out = HashMap::new();
    for (ci, keys) in per_country.into_iter().enumerate() {
        let endemic: Vec<String> =
            keys.into_iter().filter(|k| appearances.get(k) == Some(&1)).collect();
        if !endemic.is_empty() {
            out.insert(COUNTRIES[ci].code.to_owned(), endemic);
        }
    }
    out
}

/// Super-category presence across top-10s, for broad use-case summaries.
pub fn top10_supercategory_countries(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
) -> HashMap<SuperCategory, usize> {
    let _span = wwv_obs::span!("core.top10");
    let mut out: HashMap<SuperCategory, usize> = HashMap::new();
    for ci in ctx.countries() {
        let list = ctx.domain_list(ctx.breakdown(ci, platform, metric));
        let supers: HashSet<SuperCategory> =
            list.iter().take(10).map(|d| ctx.true_category_of(*d).super_category()).collect();
        for s in supers {
            *out.entry(s).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::World;

    fn fixtures() -> &'static (World, wwv_telemetry::ChromeDataset) {
        crate::testutil::small()
    }

    #[test]
    fn every_country_has_search_and_video() {
        // §4.2.1: all 45 countries rank a search engine and a video
        // platform in their top ten.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let c = top10_coverage(&ctx, Platform::Windows, Metric::PageLoads);
        assert_eq!(c.countries, 45);
        assert_eq!(c.search, 45, "search coverage");
        assert!(c.video >= 42, "video coverage {}", c.video);
    }

    #[test]
    fn social_and_adult_near_universal() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let c = top10_coverage(&ctx, Platform::Windows, Metric::PageLoads);
        assert!(c.social >= 38, "social coverage {}", c.social);
        assert!((30..=45).contains(&c.adult), "adult coverage {}", c.adult);
        // Censoring countries lower adult coverage below social.
        assert!(c.adult <= c.countries);
    }

    #[test]
    fn endemic_top10_exists_for_korea() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let endemic = endemic_top10_keys(&ctx, Platform::Windows, Metric::PageLoads);
        let kr = endemic.get("KR").expect("KR has endemic top-10 sites");
        assert!(kr.len() >= 3, "KR endemic sites {kr:?}");
    }

    #[test]
    fn tally_counts_are_plausible() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let tally = top10_category_tally(&ctx, Platform::Windows, Metric::PageLoads);
        let total: usize = tally.values().sum();
        assert_eq!(total, 450, "45 countries × 10 sites");
        assert!(tally.contains_key("Search Engines"));
    }

    #[test]
    fn supercategory_summary_covers_all_countries() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let sup = top10_supercategory_countries(&ctx, Platform::Windows, Metric::PageLoads);
        assert_eq!(sup.get(&SuperCategory::SearchEngines), Some(&45));
    }
}

/// §5.3.2's e-commerce pattern: keys in multiple countries' top lists whose
/// *domains* differ per country (one eTLD per market, like amazon.de /
/// amazon.co.uk), versus multi-country keys served from one domain.
#[derive(Debug, Clone, Serialize)]
pub struct CctldPattern {
    /// Multi-country keys with per-country domains (the Amazon/Shopee shape).
    pub per_country_domains: Vec<String>,
    /// Multi-country keys served from a single domain everywhere.
    pub single_domain: Vec<String>,
}

/// Detects the ccTLD pattern among keys in the top `depth` of ≥ `min_countries`
/// countries.
pub fn cctld_pattern(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    depth: usize,
    min_countries: usize,
) -> CctldPattern {
    // key → set of domains observed across countries.
    let mut domains_of: HashMap<String, HashSet<String>> = HashMap::new();
    let mut countries_of: HashMap<String, HashSet<usize>> = HashMap::new();
    for ci in ctx.countries() {
        let list = ctx.domain_list(ctx.breakdown(ci, platform, metric));
        for d in list.iter().take(depth) {
            let key = ctx.key_of(*d);
            domains_of
                .entry(key.clone())
                .or_default()
                .insert(ctx.dataset.domains.name(*d).to_owned());
            countries_of.entry(key).or_default().insert(ci);
        }
    }
    let mut per_country_domains = Vec::new();
    let mut single_domain = Vec::new();
    for (key, countries) in countries_of {
        if countries.len() < min_countries {
            continue;
        }
        let n_domains = domains_of.get(&key).map(HashSet::len).unwrap_or(0);
        if n_domains > countries.len().max(2) / 2 && n_domains > 1 {
            per_country_domains.push(key);
        } else {
            single_domain.push(key);
        }
    }
    per_country_domains.sort_unstable();
    single_domain.sort_unstable();
    CctldPattern { per_country_domains, single_domain }
}

/// §4.1.2's app-substitution statistic: of the sites in some country's
/// Windows top 10 but not its Android top 10, the fraction with a dedicated
/// Android app (paper: 93 of 114 sites, 82%).
pub fn android_app_fraction(ctx: &AnalysisContext<'_>, metric: Metric) -> Option<f64> {
    let mut desktop_only: HashSet<wwv_telemetry::DomainId> = HashSet::new();
    for ci in ctx.countries() {
        let win = ctx.domain_list(ctx.breakdown(ci, Platform::Windows, metric));
        let and = ctx.domain_list(ctx.breakdown(ci, Platform::Android, metric));
        let and_keys: HashSet<String> = and.iter().take(10).map(|d| ctx.key_of(*d)).collect();
        for d in win.iter().take(10) {
            if !and_keys.contains(&ctx.key_of(*d)) {
                desktop_only.insert(*d);
            }
        }
    }
    if desktop_only.is_empty() {
        return None;
    }
    let with_app = desktop_only
        .iter()
        .filter(|d| ctx.world.universe().site(ctx.dataset.domains.site(**d)).has_android_app)
        .count();
    Some(with_app as f64 / desktop_only.len() as f64)
}

#[cfg(test)]
mod pattern_tests {
    use super::*;

    #[test]
    fn ecommerce_cctld_pattern_detected() {
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let pattern = cctld_pattern(&ctx, Platform::Windows, Metric::PageLoads, 50, 5);
        assert!(
            pattern.per_country_domains.iter().any(|k| k == "amazon"),
            "amazon must show the per-country-domain shape: {:?}",
            pattern.per_country_domains
        );
        assert!(
            pattern.single_domain.iter().any(|k| k == "google"),
            "google serves one domain everywhere: {:?}",
            &pattern.single_domain[..pattern.single_domain.len().min(10)]
        );
    }

    #[test]
    fn desktop_only_top10_sites_mostly_have_apps() {
        // §4.1.2: 82% of Windows-top10-but-not-Android sites ship an app.
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let fraction = android_app_fraction(&ctx, Metric::PageLoads).expect("some desktop-only sites");
        assert!(fraction > 0.5, "app fraction {fraction}");
    }
}
