//! §5.1 — Website popularity curves and endemicity scores.
//!
//! For every site appearing in the top-1K of at least one country: collect
//! its rank in every country's top-10K (absent = rank 10 001), sort ranks
//! ascending, plot `−log10(rank)` — the *website popularity curve* — and
//! distill it to the **endemicity score** `E_w`: the area between the
//! theoretically flattest curve at the site's best rank and the actual
//! curve. `E_w ∈ [0, 180]`; small = globally popular, large = endemic.

use crate::context::AnalysisContext;
use serde::Serialize;
use std::collections::HashMap;
use wwv_world::{Metric, Platform, COUNTRIES};

/// Rank assigned to countries where the site is absent from the top-10K
/// (the paper's "lowest possible rank value + 1").
pub const ABSENT_RANK: usize = 10_001;

/// A website popularity curve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PopularityCurve {
    /// Site key.
    pub key: String,
    /// Per-country ranks sorted ascending (best first), absent = 10 001.
    pub ranks: Vec<usize>,
}

impl PopularityCurve {
    /// The curve's y-values: `−log10(rank)` for each sorted rank.
    pub fn values(&self) -> Vec<f64> {
        self.ranks.iter().map(|r| -(*r as f64).log10()).collect()
    }

    /// Best (smallest) rank across countries.
    pub fn best_rank(&self) -> usize {
        *self.ranks.first().expect("curves cover all countries")
    }

    /// Number of countries whose top-10K contains the site.
    pub fn present_in(&self) -> usize {
        self.ranks.iter().filter(|r| **r < ABSENT_RANK).count()
    }

    /// The endemicity score: area between the flattest possible curve at the
    /// best rank and the actual curve,
    /// `E_w = Σ_i (log10(r_i) − log10(r_1))`.
    pub fn endemicity(&self) -> f64 {
        let best = (self.best_rank() as f64).log10();
        self.ranks.iter().map(|r| (*r as f64).log10() - best).sum()
    }

    /// Theoretical maximum endemicity for this curve's best rank: every
    /// other country at the absent rank.
    pub fn max_endemicity(&self) -> f64 {
        let best = (self.best_rank() as f64).log10();
        (self.ranks.len() as f64 - 1.0) * ((ABSENT_RANK as f64).log10() - best)
    }

    /// Distance from the theoretical maximum (§5.1's outlier-detection
    /// feature: globally popular sites are far from the bound).
    pub fn distance_from_max(&self) -> f64 {
        self.max_endemicity() - self.endemicity()
    }

    /// Normalized endemicity `E_w / E_max ∈ [0, 1]`: 0 = perfectly global,
    /// 1 = as endemic as the site's best rank allows. Sites whose best rank
    /// is the absent sentinel have no room between the bounds and count as
    /// fully endemic.
    pub fn endemicity_ratio(&self) -> f64 {
        let max = self.max_endemicity();
        if max <= 0.0 {
            return 1.0;
        }
        (self.endemicity() / max).clamp(0.0, 1.0)
    }

    /// Classifies the curve into one of the six Table 1 shapes.
    pub fn shape(&self) -> CurveShape {
        let n = self.ranks.len();
        let present = self.present_in();
        let values = self.values();
        let range = values[0] - values[n - 1];
        if present <= 1 {
            return CurveShape::SingleCountry;
        }
        if range < 1.0 {
            return CurveShape::Flat;
        }
        // Largest single drop between consecutive (sorted) countries.
        let mut max_drop = 0.0f64;
        let mut drop_pos = 0usize;
        let mut big_drops = 0usize;
        for i in 0..n - 1 {
            let d = values[i] - values[i + 1];
            if d > max_drop {
                max_drop = d;
                drop_pos = i;
            }
            if d > 0.8 {
                big_drops += 1;
            }
        }
        if big_drops >= 2 {
            return CurveShape::MultiInflection;
        }
        if max_drop > range * 0.6 {
            if drop_pos < n / 8 {
                CurveShape::HeadCliff
            } else {
                CurveShape::PlateauThenCliff
            }
        } else {
            CurveShape::GradualDecline
        }
    }
}

/// The six popularity-curve shapes (Table 1 / Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CurveShape {
    /// Similar rank in every country (google, facebook).
    Flat,
    /// Smoothly decreasing popularity across countries.
    GradualDecline,
    /// Popular in a small handful of countries, then a sharp drop
    /// (regional services).
    HeadCliff,
    /// Consistently popular across many countries, absent from the rest
    /// (e.g. hbomax's market footprint).
    PlateauThenCliff,
    /// Several distinct popularity tiers (multiple inflection points).
    MultiInflection,
    /// In the top-10K of exactly one country (fully endemic).
    SingleCountry,
}

impl CurveShape {
    /// All six shapes.
    pub const ALL: [CurveShape; 6] = [
        CurveShape::Flat,
        CurveShape::GradualDecline,
        CurveShape::HeadCliff,
        CurveShape::PlateauThenCliff,
        CurveShape::MultiInflection,
        CurveShape::SingleCountry,
    ];
}

/// Builds popularity curves for every site key in the top-`head_depth`
/// (paper: 1K) of at least one country, using every country's
/// top-10K list for one (platform, metric).
pub fn popularity_curves(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    head_depth: usize,
) -> Vec<PopularityCurve> {
    let _span = wwv_obs::span!("core.endemicity");
    let n = COUNTRIES.len();
    // Per-country key → rank maps.
    let mut rank_maps: Vec<HashMap<String, usize>> = Vec::with_capacity(n);
    let mut heads: Vec<Vec<String>> = Vec::with_capacity(n);
    for ci in ctx.countries() {
        let list = ctx.key_list(ctx.breakdown(ci, platform, metric));
        heads.push(list.iter().take(head_depth).cloned().collect());
        rank_maps.push(list.rank_map());
    }
    // Candidate keys: union of heads.
    let mut candidates: Vec<String> = heads.into_iter().flatten().collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates
        .into_iter()
        .map(|key| {
            let mut ranks: Vec<usize> = rank_maps
                .iter()
                .map(|m| m.get(&key).copied().unwrap_or(ABSENT_RANK).min(ABSENT_RANK))
                .collect();
            ranks.sort_unstable();
            PopularityCurve { key, ranks }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(ranks: Vec<usize>) -> PopularityCurve {
        let mut ranks = ranks;
        ranks.sort_unstable();
        PopularityCurve { key: "test".into(), ranks }
    }

    #[test]
    fn flat_curve_scores_low() {
        let c = curve(vec![1; 45]);
        assert_eq!(c.endemicity(), 0.0);
        assert_eq!(c.shape(), CurveShape::Flat);
        assert!(c.distance_from_max() > 170.0);
    }

    #[test]
    fn single_country_site_scores_max() {
        let mut ranks = vec![ABSENT_RANK; 45];
        ranks[0] = 1;
        let c = curve(ranks);
        assert_eq!(c.shape(), CurveShape::SingleCountry);
        assert!((c.endemicity() - c.max_endemicity()).abs() < 1e-9);
        assert!(c.endemicity() > 175.0 && c.endemicity() <= 180.0);
    }

    #[test]
    fn score_bounds() {
        // Any curve scores within [0, 180].
        for ranks in [
            vec![5; 45],
            (1..=45).map(|i| i * 37).collect::<Vec<_>>(),
            vec![1, 10, 100, 1_000, 10_000]
                .into_iter()
                .chain(std::iter::repeat_n(ABSENT_RANK, 40))
                .collect::<Vec<_>>(),
        ] {
            let c = curve(ranks);
            assert!(c.endemicity() >= 0.0);
            assert!(c.endemicity() <= 180.1, "score {}", c.endemicity());
        }
    }

    #[test]
    fn plateau_then_cliff_detected() {
        // Popular (ranks 3–30) in 12 countries, absent elsewhere.
        let ranks: Vec<usize> =
            (0..12).map(|i| 3 + i * 2).chain(std::iter::repeat_n(ABSENT_RANK, 33)).collect();
        let c = curve(ranks);
        assert_eq!(c.shape(), CurveShape::PlateauThenCliff);
    }

    #[test]
    fn head_cliff_detected() {
        // Top-3 in two countries, deep tail elsewhere.
        let ranks: Vec<usize> =
            vec![2, 3].into_iter().chain((0..43).map(|i| 6_000 + i * 50)).collect();
        let c = curve(ranks);
        assert_eq!(c.shape(), CurveShape::HeadCliff);
    }

    #[test]
    fn gradual_decline_detected() {
        let ranks: Vec<usize> = (0..45).map(|i| 10 + i * 150).collect();
        let c = curve(ranks);
        assert_eq!(c.shape(), CurveShape::GradualDecline);
    }

    #[test]
    fn multi_inflection_detected() {
        // Three tiers: top-10 in 10 countries, ~1K in 15, absent in 20.
        let ranks: Vec<usize> = (0..10)
            .map(|i| 5 + i)
            .chain((0..15).map(|i| 1_000 + i * 10))
            .chain(std::iter::repeat_n(ABSENT_RANK, 20))
            .collect();
        let c = curve(ranks);
        assert_eq!(c.shape(), CurveShape::MultiInflection);
    }

    #[test]
    fn real_curves_from_dataset() {
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let curves = popularity_curves(&ctx, Platform::Windows, Metric::PageLoads, 200);
        assert!(curves.len() > 500, "got {}", curves.len());
        let by_key: HashMap<&str, &PopularityCurve> =
            curves.iter().map(|c| (c.key.as_str(), c)).collect();
        // Google is globally flat and low-endemicity.
        let google = by_key["google"];
        assert_eq!(google.present_in(), 45);
        assert!(google.endemicity() < 20.0, "google E = {}", google.endemicity());
        // Naver is endemic to South Korea.
        let naver = by_key["naver"];
        assert!(naver.endemicity() > 100.0, "naver E = {}", naver.endemicity());
        assert!(google.endemicity() < naver.endemicity());
        // National long-tail sites are single-country.
        let national = curves.iter().find(|c| c.key.starts_with("nus")).unwrap();
        assert_eq!(national.shape(), CurveShape::SingleCountry);
    }
}
