//! §4.1 — Distribution of browsing across sites (Fig. 1 and the headline
//! statistics of §4.1.2).

use crate::context::AnalysisContext;
use serde::Serialize;
use wwv_stats::QuantileSummary;
use wwv_world::{Metric, Platform, TrafficCurve, COUNTRIES};

/// One Fig. 1 series: cumulative traffic share by rank.
#[derive(Debug, Clone, Serialize)]
pub struct ConcentrationCurve {
    /// Platform of the series.
    pub platform: Platform,
    /// Metric of the series.
    pub metric: Metric,
    /// Evaluation ranks (log-spaced, 1 … 1M).
    pub ranks: Vec<u64>,
    /// Cumulative share at each rank.
    pub cumulative: Vec<f64>,
}

/// Produces a Fig. 1 series from the global distribution data.
pub fn concentration_curve(platform: Platform, metric: Metric) -> ConcentrationCurve {
    let _span = wwv_obs::span!("core.concentration");
    let curve = TrafficCurve::for_breakdown(platform, metric);
    let mut ranks = Vec::new();
    let mut rank = 1u64;
    while rank <= 1_000_000 {
        ranks.push(rank);
        // ~10 points per decade.
        rank = ((rank as f64) * 1.26).ceil() as u64;
    }
    let cumulative = ranks.iter().map(|r| curve.cumulative(*r)).collect();
    ConcentrationCurve { platform, metric, ranks, cumulative }
}

/// §4.1.2 headline statistics.
#[derive(Debug, Clone, Serialize)]
pub struct HeadlineStats {
    /// Global share of the single top site (Windows page loads).
    pub top1_share_windows_loads: f64,
    /// Sites needed to reach 25% of Windows page loads.
    pub sites_for_quarter_windows_loads: u64,
    /// Cumulative share of the top 100 / top 10K / top 1M (Windows loads).
    pub top100_windows_loads: f64,
    /// Top-10K share.
    pub top10k_windows_loads: f64,
    /// Top-1M share.
    pub top1m_windows_loads: f64,
    /// Global share of the top site by Windows time on page.
    pub top1_share_windows_time: f64,
    /// Sites needed for half of Windows time.
    pub sites_for_half_windows_time: u64,
    /// Sites needed to reach 25% of Android page loads.
    pub sites_for_quarter_android_loads: u64,
    /// Per-country top-site share of page loads: median and quartiles
    /// (paper: 12–33%, median 20%).
    pub country_top1_share: QuantileSummary,
    /// Minimum and maximum per-country top-site share.
    pub country_top1_range: (f64, f64),
    /// Countries where Google is #1 by Windows page loads (paper: 44/45).
    pub google_top_loads_countries: usize,
    /// The country where Google is not #1 (paper: South Korea, led by Naver).
    pub non_google_leader: Option<(String, String)>,
    /// Countries where YouTube leads Windows time on page (paper: 40/45).
    pub youtube_top_time_countries: usize,
}

/// Smallest rank whose cumulative share reaches `target`.
pub fn sites_for_share(curve: &TrafficCurve, target: f64) -> u64 {
    let mut rank = 1u64;
    while rank <= 1_000_000 {
        if curve.cumulative(rank) >= target {
            return rank;
        }
        rank += 1;
    }
    1_000_000
}

/// Computes the headline statistics from the dataset.
pub fn headline_stats(ctx: &AnalysisContext<'_>) -> HeadlineStats {
    let _span = wwv_obs::span!("core.concentration");
    let win_loads = TrafficCurve::windows_page_loads();
    let win_time = TrafficCurve::windows_time_on_page();
    let and_loads = TrafficCurve::android_page_loads();

    // Per-country top-share and leaders, from the observed rank lists.
    let mut top1_shares = Vec::new();
    let mut google_top = 0usize;
    let mut youtube_time_top = 0usize;
    let mut non_google_leader = None;
    for ci in ctx.countries() {
        let b = ctx.breakdown(ci, Platform::Windows, Metric::PageLoads);
        if let Some(list) = ctx.dataset.list(b) {
            if list.is_empty() {
                continue;
            }
            let total: u64 = list.entries.iter().map(|(_, c)| c).sum();
            let (top_domain, top_count) = list.entries[0];
            top1_shares.push(top_count as f64 / total as f64);
            let key = ctx.key_of(top_domain);
            if key == "google" {
                google_top += 1;
            } else {
                non_google_leader = Some((COUNTRIES[ci].name.to_owned(), key));
            }
        }
        let bt = ctx.breakdown(ci, Platform::Windows, Metric::TimeOnPage);
        if let Some(list) = ctx.dataset.list(bt) {
            if let Some(top) = list.at_rank(1) {
                if ctx.key_of(top) == "youtube" {
                    youtube_time_top += 1;
                }
            }
        }
    }

    HeadlineStats {
        top1_share_windows_loads: win_loads.share(1),
        sites_for_quarter_windows_loads: sites_for_share(&win_loads, 0.25),
        top100_windows_loads: win_loads.cumulative(100),
        top10k_windows_loads: win_loads.cumulative(10_000),
        top1m_windows_loads: win_loads.cumulative(1_000_000),
        top1_share_windows_time: win_time.share(1),
        sites_for_half_windows_time: sites_for_share(&win_time, 0.50),
        sites_for_quarter_android_loads: sites_for_share(&and_loads, 0.25),
        country_top1_share: QuantileSummary::of(&top1_shares)
            .unwrap_or(QuantileSummary { q25: 0.0, median: 0.0, q75: 0.0 }),
        country_top1_range: (
            top1_shares.iter().cloned().fold(f64::INFINITY, f64::min),
            top1_shares.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        ),
        google_top_loads_countries: google_top,
        non_google_leader,
        youtube_top_time_countries: youtube_time_top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_series_covers_six_decades() {
        let series = concentration_curve(Platform::Windows, Metric::PageLoads);
        assert_eq!(series.ranks[0], 1);
        assert!(*series.ranks.last().unwrap() >= 630_000);
        // Cumulative non-decreasing.
        for pair in series.cumulative.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    fn sites_for_share_matches_anchors() {
        let c = TrafficCurve::windows_page_loads();
        assert_eq!(sites_for_share(&c, 0.17), 1);
        assert_eq!(sites_for_share(&c, 0.25), 6);
        let t = TrafficCurve::windows_time_on_page();
        assert_eq!(sites_for_share(&t, 0.50), 7);
        let a = TrafficCurve::android_page_loads();
        assert_eq!(sites_for_share(&a, 0.25), 10);
    }

    #[test]
    fn sites_for_unreachable_share_saturates() {
        let c = TrafficCurve::windows_page_loads();
        assert_eq!(sites_for_share(&c, 0.999), 1_000_000);
    }
}
