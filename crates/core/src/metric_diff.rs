//! §4.4 — Time on page vs. page loads (plus Figs. 5 and 16).
//!
//! Quantifies how the two popularity metrics disagree: percent intersection
//! and Spearman's ρ between each country's top-10K lists, and the categories
//! of the most page-loads-leaning vs most time-on-page-leaning sites.

use crate::context::AnalysisContext;
use serde::Serialize;
use std::collections::HashMap;
use wwv_stats::{median, QuantileSummary};
use wwv_world::{Metric, Platform};

/// §4.4 list-agreement summary for one platform.
#[derive(Debug, Clone, Serialize)]
pub struct MetricAgreement {
    /// Platform.
    pub platform: Platform,
    /// Cross-country summary of top-10K percent intersection (0–1).
    pub intersection: QuantileSummary,
    /// Cross-country summary of Spearman's ρ within the intersection.
    pub spearman: QuantileSummary,
}

/// Computes §4.4's intersection/ρ statistics for one platform.
pub fn metric_agreement(ctx: &AnalysisContext<'_>, platform: Platform) -> MetricAgreement {
    let _span = wwv_obs::span!("core.metric_diff");
    let mut intersections = Vec::new();
    let mut rhos = Vec::new();
    for ci in ctx.countries() {
        let loads = ctx.key_list(ctx.breakdown(ci, platform, Metric::PageLoads));
        let time = ctx.key_list(ctx.breakdown(ci, platform, Metric::TimeOnPage));
        if loads.is_empty() || time.is_empty() {
            continue;
        }
        let depth = ctx.depth.min(loads.len()).min(time.len());
        intersections.push(loads.percent_intersection(&time, depth));
        if let Some(rho) = loads.spearman_within_intersection(&time, depth) {
            rhos.push(rho);
        }
    }
    let zero = QuantileSummary { q25: 0.0, median: 0.0, q75: 0.0 };
    MetricAgreement {
        platform,
        intersection: QuantileSummary::of(&intersections).unwrap_or(zero),
        spearman: QuantileSummary::of(&rhos).unwrap_or(zero),
    }
}

/// Orders (ratio, category) pairs by ratio, descending. `total_cmp`
/// instead of `partial_cmp().expect(...)`: a NaN ratio (0/0 weight
/// corner) must not panic the leaning analysis.
fn sort_ratios_desc(ratios: &mut [(f64, usize)]) {
    ratios.sort_by(|a, b| b.0.total_cmp(&a.0));
}

/// Fig. 5/16: category counts among loads-leaning, time-leaning, and other
/// sites (top/bottom 20% by the loads-share : time-share ratio).
#[derive(Debug, Clone, Serialize)]
pub struct MetricLeaning {
    /// Platform.
    pub platform: Platform,
    /// Median (across countries) percentage of loads-leaning sites per
    /// category.
    pub loads_leaning: HashMap<String, f64>,
    /// Median percentage of time-leaning sites per category.
    pub time_leaning: HashMap<String, f64>,
    /// Median percentage among all other sites per category.
    pub other: HashMap<String, f64>,
}

/// Computes Fig. 5 (desktop) / Fig. 16 (mobile).
pub fn metric_leaning(ctx: &AnalysisContext<'_>, platform: Platform) -> MetricLeaning {
    let _span = wwv_obs::span!("core.metric_diff");
    let weights_loads = ctx.traffic_weights(platform, Metric::PageLoads);
    let weights_time = ctx.traffic_weights(platform, Metric::TimeOnPage);
    let n_cats = wwv_taxonomy::Category::ALL.len();
    let mut pct_loads: Vec<Vec<f64>> = vec![Vec::new(); n_cats];
    let mut pct_time: Vec<Vec<f64>> = vec![Vec::new(); n_cats];
    let mut pct_other: Vec<Vec<f64>> = vec![Vec::new(); n_cats];
    for ci in ctx.countries() {
        let loads = ctx.domain_list(ctx.breakdown(ci, platform, Metric::PageLoads));
        let time = ctx.domain_list(ctx.breakdown(ci, platform, Metric::TimeOnPage));
        if loads.is_empty() || time.is_empty() {
            continue;
        }
        // Estimated share of loads / time per domain (by list rank).
        let time_ranks = time.rank_map();
        // Ratio only defined for sites in both lists.
        let mut ratios: Vec<(f64, usize)> = Vec::new(); // (ratio, category idx)
        for (i, d) in loads.iter().enumerate() {
            if let Some(&tr) = time_ranks.get(d) {
                let ls = weights_loads.get(i).copied().unwrap_or(0.0);
                let ts = weights_time.get(tr - 1).copied().unwrap_or(0.0);
                if ls > 0.0 && ts > 0.0 {
                    ratios.push((ls / ts, ctx.category_of(*d).index()));
                }
            }
        }
        if ratios.len() < 10 {
            continue;
        }
        sort_ratios_desc(&mut ratios);
        let q = ratios.len() / 5;
        let (loads_slice, rest) = ratios.split_at(q);
        let (other_slice, time_slice) = rest.split_at(rest.len() - q);
        let tally = |slice: &[(f64, usize)]| -> Vec<f64> {
            let mut counts = vec![0.0f64; n_cats];
            for (_, c) in slice {
                counts[*c] += 1.0;
            }
            let total: f64 = counts.iter().sum();
            if total > 0.0 {
                for v in &mut counts {
                    *v = 100.0 * *v / total;
                }
            }
            counts
        };
        let l = tally(loads_slice);
        let t = tally(time_slice);
        let o = tally(other_slice);
        for c in 0..n_cats {
            pct_loads[c].push(l[c]);
            pct_time[c].push(t[c]);
            pct_other[c].push(o[c]);
        }
    }
    let to_map = |acc: &[Vec<f64>]| -> HashMap<String, f64> {
        wwv_taxonomy::Category::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let m = median(&acc[i])?;
                if m > 0.0 {
                    Some((c.name().to_owned(), m))
                } else {
                    None
                }
            })
            .collect()
    };
    MetricLeaning {
        platform,
        loads_leaning: to_map(&pct_loads),
        time_leaning: to_map(&pct_time),
        other: to_map(&pct_other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::World;
    use wwv_taxonomy::Category;

    fn fixtures() -> &'static (World, wwv_telemetry::ChromeDataset) {
        crate::testutil::small()
    }

    #[test]
    fn ratio_sort_survives_nan() {
        // Regression: a NaN loads/time ratio used to panic the
        // `partial_cmp().expect(...)` comparator mid-analysis.
        let mut ratios = vec![(2.0, 0), (f64::NAN, 1), (0.5, 2), (8.0, 3)];
        sort_ratios_desc(&mut ratios);
        assert!(ratios[0].0.is_nan());
        assert_eq!(ratios[0].1, 1);
        let rest: Vec<usize> = ratios[1..].iter().map(|(_, c)| *c).collect();
        assert_eq!(rest, vec![3, 0, 2]);
    }

    #[test]
    fn agreement_is_moderate_not_perfect() {
        // §4.4: intersection ≈65–74%, ρ ≈0.65–0.69 — the metrics agree only
        // moderately. Depth must sit below the surviving-site population so
        // list truncation binds (at the survivor count intersection is
        // trivially 1).
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 1_200);
        let a = metric_agreement(&ctx, Platform::Windows);
        assert!(a.intersection.median > 0.35, "intersection {:?}", a.intersection);
        assert!(a.intersection.median < 0.98, "metrics must differ; {:?}", a.intersection);
        assert!(a.spearman.median > 0.2, "spearman {:?}", a.spearman);
        assert!(a.spearman.median < 0.98);
    }

    #[test]
    fn leaning_directions_match_paper() {
        // Fig. 5: E-commerce loads-leaning; Video Streaming time-leaning.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let l = metric_leaning(&ctx, Platform::Windows);
        let ecom_loads = l.loads_leaning.get(Category::Ecommerce.name()).copied().unwrap_or(0.0);
        let ecom_time = l.time_leaning.get(Category::Ecommerce.name()).copied().unwrap_or(0.0);
        assert!(ecom_loads > ecom_time, "ecommerce: loads {ecom_loads}% vs time {ecom_time}%");
        let video_loads =
            l.loads_leaning.get(Category::VideoStreaming.name()).copied().unwrap_or(0.0);
        let video_time =
            l.time_leaning.get(Category::VideoStreaming.name()).copied().unwrap_or(0.0);
        assert!(video_time > video_loads, "video: time {video_time}% vs loads {video_loads}%");
    }

    #[test]
    fn leaning_percentages_bounded() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let l = metric_leaning(&ctx, Platform::Android);
        for map in [&l.loads_leaning, &l.time_leaning, &l.other] {
            for (k, v) in map {
                assert!((0.0..=100.0).contains(v), "{k}: {v}");
            }
        }
    }
}

/// §4.4's per-category robustness: intersection and Spearman between the two
/// metrics restricted to domains of one category. The paper reports 57–72%
/// intersection / 0.5–0.8 ρ on desktop and 67–82% / 0.6–0.85 on mobile.
pub fn category_metric_agreement(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    category: wwv_taxonomy::Category,
) -> MetricAgreement {
    let _span = wwv_obs::span!("core.metric_diff");
    let mut intersections = Vec::new();
    let mut rhos = Vec::new();
    for ci in ctx.countries() {
        let loads = ctx.domain_list(ctx.breakdown(ci, platform, Metric::PageLoads));
        let time = ctx.domain_list(ctx.breakdown(ci, platform, Metric::TimeOnPage));
        if loads.is_empty() || time.is_empty() {
            continue;
        }
        // Filter each list to the category, preserving order, then compare.
        let filt = |list: &wwv_stats::RankedList<wwv_telemetry::DomainId>| {
            wwv_stats::RankedList::new(
                list.iter().filter(|d| ctx.category_of(**d) == category).copied(),
            )
        };
        let l = filt(&loads);
        let t = filt(&time);
        if l.len() < 5 || t.len() < 5 {
            continue;
        }
        // Depth below the smaller population so truncation binds.
        let depth = (l.len().min(t.len()) * 2 / 3).max(5);
        intersections.push(l.percent_intersection(&t, depth));
        if let Some(rho) = l.spearman_within_intersection(&t, depth) {
            rhos.push(rho);
        }
    }
    let zero = QuantileSummary { q25: 0.0, median: 0.0, q75: 0.0 };
    MetricAgreement {
        platform,
        intersection: QuantileSummary::of(&intersections).unwrap_or(zero),
        spearman: QuantileSummary::of(&rhos).unwrap_or(zero),
    }
}

#[cfg(test)]
mod category_tests {
    use super::*;
    use wwv_taxonomy::Category;

    #[test]
    fn per_category_agreement_in_plausible_range() {
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        for cat in [Category::Business, Category::NewsMedia] {
            let a = category_metric_agreement(&ctx, Platform::Windows, cat);
            assert!(
                a.intersection.median > 0.2 && a.intersection.median <= 1.0,
                "{}: {:?}",
                cat.name(),
                a.intersection
            );
        }
    }

    #[test]
    fn category_restriction_changes_the_numbers() {
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 1_200);
        let overall = metric_agreement(&ctx, Platform::Windows);
        let business = category_metric_agreement(&ctx, Platform::Windows, Category::Business);
        assert!((overall.intersection.median - business.intersection.median).abs() > 1e-6);
    }
}
