//! Analysis-level ablations for the design choices DESIGN.md calls out.
//!
//! The benches time these alternatives; this module measures what they
//! *change*, so the choice of method is justified by results, not habit:
//!
//! * §5.3.1 uses traffic-weighted RBO instead of classic geometric RBO —
//!   does the weighting actually alter the similarity structure?
//! * §5.1's endemicity score is an area under the popularity curve — how
//!   differently would a naive variance-of-ranks score rank sites?

use crate::context::AnalysisContext;
use crate::endemicity::popularity_curves;
use crate::similarity::{similarity_matrix, SimilarityMatrix};
use serde::Serialize;
use wwv_stats::rbo::{rbo_classic, rbo_extrapolated};
use wwv_stats::{spearman_rho, SymmetricMatrix};
use wwv_world::{Metric, Platform, COUNTRIES};

/// Comparison of similarity structures under different RBO weightings.
#[derive(Debug, Clone, Serialize)]
pub struct RboAblation {
    /// Spearman correlation between the pairwise similarities of the two
    /// weightings (high = same structure, choice cosmetic).
    pub pairwise_spearman: f64,
    /// Country with the lowest mean similarity under traffic weighting.
    pub weighted_outlier: String,
    /// Country with the lowest mean similarity under classic weighting.
    pub classic_outlier: String,
    /// Mean absolute difference of pairwise similarities.
    pub mean_abs_difference: f64,
}

/// Builds the classic-RBO similarity matrix (geometric weights, p tuned so
/// the expected evaluation depth matches the paper's head emphasis).
pub fn classic_similarity_matrix(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    p: f64,
) -> SimilarityMatrix {
    let _span = wwv_obs::span!("core.ablation");
    let lists: Vec<_> = ctx
        .countries()
        .map(|ci| ctx.key_list(ctx.breakdown(ci, platform, metric)))
        .collect();
    let n = lists.len();
    let matrix = SymmetricMatrix::build(n, |i, j| {
        if i == j {
            return 1.0;
        }
        let depth = ctx.depth.min(lists[i].len().max(lists[j].len())).max(1);
        rbo_classic(&lists[i], &lists[j], p, depth).unwrap_or(0.0)
    });
    SimilarityMatrix {
        platform,
        metric,
        labels: COUNTRIES.iter().map(|c| c.code.to_owned()).collect(),
        matrix,
    }
}

/// The least-typical country: lowest mean off-diagonal similarity.
/// `total_cmp` instead of `partial_cmp().expect(...)`: a NaN mean (a
/// degenerate matrix) orders above every finite value, so it neither
/// panics nor wins the outlier slot; an unknown label is treated the same
/// way.
fn outlier(m: &SimilarityMatrix) -> String {
    m.labels
        .iter()
        .min_by(|a, b| {
            let ma = m.mean_similarity(a).unwrap_or(f64::INFINITY);
            let mb = m.mean_similarity(b).unwrap_or(f64::INFINITY);
            ma.total_cmp(&mb)
        })
        .cloned()
        .unwrap_or_default()
}

/// Runs the RBO-weighting ablation.
pub fn rbo_ablation(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> RboAblation {
    let _span = wwv_obs::span!("core.ablation");
    let weighted = similarity_matrix(ctx, platform, metric);
    let classic = classic_similarity_matrix(ctx, platform, metric, 0.98);
    let w = weighted.matrix.off_diagonal();
    let c = classic.matrix.off_diagonal();
    let spearman = spearman_rho(&w, &c).unwrap_or(0.0);
    let mad = w
        .iter()
        .zip(&c)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / w.len().max(1) as f64;
    RboAblation {
        pairwise_spearman: spearman,
        weighted_outlier: outlier(&weighted),
        classic_outlier: outlier(&classic),
        mean_abs_difference: mad,
    }
}

/// Comparison of the paper's area-based endemicity score against a naive
/// variance-of-ranks baseline.
#[derive(Debug, Clone, Serialize)]
pub struct EndemicityAblation {
    /// Rank correlation between the two site orderings.
    pub score_spearman: f64,
    /// The naive score's verdict on google (should be near the global end
    /// for both scores; the naive score often misranks absent-heavy sites).
    pub google_naive_percentile: f64,
    /// The area score's percentile for google.
    pub google_area_percentile: f64,
}

/// Runs the endemicity-score ablation.
pub fn endemicity_ablation(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    head: usize,
) -> EndemicityAblation {
    let _span = wwv_obs::span!("core.ablation");
    let curves = popularity_curves(ctx, platform, metric, head);
    let area: Vec<f64> = curves.iter().map(|c| c.endemicity()).collect();
    // Naive baseline: population variance of raw ranks.
    let naive: Vec<f64> = curves
        .iter()
        .map(|c| {
            let mean = c.ranks.iter().sum::<usize>() as f64 / c.ranks.len() as f64;
            c.ranks.iter().map(|r| (*r as f64 - mean).powi(2)).sum::<f64>() / c.ranks.len() as f64
        })
        .collect();
    let spearman = spearman_rho(&area, &naive).unwrap_or(0.0);
    let percentile = |scores: &[f64], idx: usize| {
        let below = scores.iter().filter(|s| **s < scores[idx]).count();
        100.0 * below as f64 / scores.len().max(1) as f64
    };
    let google = curves.iter().position(|c| c.key == "google");
    EndemicityAblation {
        score_spearman: spearman,
        google_naive_percentile: google.map(|i| percentile(&naive, i)).unwrap_or(100.0),
        google_area_percentile: google.map(|i| percentile(&area, i)).unwrap_or(100.0),
    }
}

/// Extrapolated vs finite-depth geometric RBO on the same pair — the
/// estimator difference the workspace's finite variant absorbs.
pub fn rbo_estimator_gap(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> f64 {
    let _span = wwv_obs::span!("core.ablation");
    let a = ctx.key_list(ctx.breakdown(0, platform, metric));
    let b = ctx.key_list(ctx.breakdown(1, platform, metric));
    let depth = ctx.depth.min(a.len().max(b.len())).max(1);
    let finite = rbo_classic(&a, &b, 0.98, depth).unwrap_or(0.0);
    let ext = rbo_extrapolated(&a, &b, 0.98, depth).unwrap_or(0.0);
    (finite - ext).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AnalysisContext<'static> {
        let (world, ds) = crate::testutil::small();
        AnalysisContext::with_depth(world, ds, 2_000)
    }

    #[test]
    fn weightings_agree_on_structure_but_differ_in_detail() {
        let ablation = rbo_ablation(&ctx(), Platform::Windows, Metric::PageLoads);
        // Same broad structure…
        assert!(ablation.pairwise_spearman > 0.5, "spearman {}", ablation.pairwise_spearman);
        // …but the numbers genuinely differ (the weighting matters).
        assert!(ablation.mean_abs_difference > 0.01, "MAD {}", ablation.mean_abs_difference);
    }

    #[test]
    fn outlier_survives_nan_similarity() {
        // Regression: a NaN mean similarity used to panic the
        // `partial_cmp().expect(...)` comparator. NaN rows order above
        // every finite mean, so a degenerate row never wins the slot.
        use wwv_stats::SymmetricMatrix;
        let mut matrix = SymmetricMatrix::new(3, 0.5);
        matrix.set(0, 1, f64::NAN); // poisons the means of rows 0 and 1
        let m = SimilarityMatrix {
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            labels: vec!["AA".into(), "BB".into(), "CC".into()],
            matrix,
        };
        assert_eq!(outlier(&m), "CC", "the only finite mean wins");
    }

    #[test]
    fn korea_is_the_outlier_under_both_weightings() {
        let ablation = rbo_ablation(&ctx(), Platform::Windows, Metric::PageLoads);
        assert_eq!(ablation.weighted_outlier, "KR");
        assert_eq!(ablation.classic_outlier, "KR");
    }

    #[test]
    fn area_score_and_naive_variance_disagree_enough_to_matter() {
        let ablation = endemicity_ablation(&ctx(), Platform::Windows, Metric::PageLoads, 200);
        // Correlated (both measure endemicity)…
        assert!(ablation.score_spearman > 0.2, "spearman {}", ablation.score_spearman);
        // …and google sits at the global (low) end of the area score.
        assert!(
            ablation.google_area_percentile < 10.0,
            "google area percentile {}",
            ablation.google_area_percentile
        );
    }

    #[test]
    fn estimator_gap_is_small() {
        let gap = rbo_estimator_gap(&ctx(), Platform::Windows, Metric::PageLoads);
        assert!(gap < 0.2, "gap {gap}");
    }
}
