//! §5.2 — Global vs. national popularity (Table 2, Figs. 7, 8, 9, 17).
//!
//! A site is *globally popular* when its distance from the theoretical
//! maximum endemicity is a high outlier among all scored sites; everything
//! else in the scored set is *nationally popular*; sites never reaching the
//! top-1K anywhere are the long tail.

use crate::context::AnalysisContext;
use crate::endemicity::{popularity_curves, PopularityCurve};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use wwv_stats::{median, tukey_outliers, OutlierVerdict};
use wwv_world::{Metric, Platform};

/// Popularity class of a scored site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PopularityClass {
    /// Similar presence across many countries (outlier distance from the
    /// endemicity bound).
    Global,
    /// Popular in one country or a small region.
    National,
}

/// The §5.2 classification for one (platform, metric).
#[derive(Debug, Clone, Serialize)]
pub struct GlobalNationalSplit {
    /// Platform.
    pub platform: Platform,
    /// Metric.
    pub metric: Metric,
    /// Scored curves with their class, keyed by site key.
    pub classes: HashMap<String, PopularityClass>,
    /// Fraction of scored sites that are globally popular (paper: ≈2%).
    pub global_fraction: f64,
    /// Number of scored sites.
    pub scored: usize,
}

/// Classifies every scored site (Fig. 7's orange/purple split).
pub fn classify_global_national(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    head_depth: usize,
) -> (GlobalNationalSplit, Vec<PopularityCurve>) {
    let _span = wwv_obs::span!("core.global_national");
    let curves = popularity_curves(ctx, platform, metric, head_depth);
    // Globally popular = low-outlier *normalized* endemicity (E/E_max). The
    // normalization keeps deep-but-everywhere sites comparable with head
    // sites; the outlier rule mirrors the paper's "distance from the upper
    // bound" detection. The scored population is overwhelmingly endemic
    // (ratio ≈ 1), so low outliers are exactly the thin global head.
    let ratios: Vec<f64> = curves.iter().map(|c| c.endemicity_ratio()).collect();
    let verdicts = tukey_outliers(&ratios, 1.5).unwrap_or_default();
    let mut classes = HashMap::with_capacity(curves.len());
    let mut global = 0usize;
    for ((curve, verdict), ratio) in curves.iter().zip(&verdicts).zip(&ratios) {
        // The fence can sit high when endemic mass dominates; require a
        // genuinely global profile as well.
        let class = if *verdict == OutlierVerdict::Low && *ratio < 0.6 {
            global += 1;
            PopularityClass::Global
        } else {
            PopularityClass::National
        };
        classes.insert(curve.key.clone(), class);
    }
    let split = GlobalNationalSplit {
        platform,
        metric,
        global_fraction: if curves.is_empty() { 0.0 } else { global as f64 / curves.len() as f64 },
        scored: curves.len(),
        classes,
    };
    (split, curves)
}

/// Fig. 8: category composition of globally vs nationally popular sites.
#[derive(Debug, Clone, Serialize)]
pub struct ClassComposition {
    /// Percentage of globally popular sites per category.
    pub global: HashMap<String, f64>,
    /// Percentage of nationally popular sites per category.
    pub national: HashMap<String, f64>,
}

/// Computes Fig. 8 from a split. Categories come through the pipeline's
/// categorizer applied to the best-ranked domain of each key.
pub fn class_composition(
    ctx: &AnalysisContext<'_>,
    split: &GlobalNationalSplit,
) -> ClassComposition {
    let _span = wwv_obs::span!("core.global_national");
    // Map keys back to a representative domain for categorization: scan all
    // reference-month lists once, keeping each key's best-ranked domain.
    let mut rep: HashMap<String, wwv_telemetry::DomainId> = HashMap::new();
    for ci in ctx.countries() {
        let b = ctx.breakdown(ci, split.platform, split.metric);
        let list = ctx.domain_list(b);
        for d in list.iter() {
            let key = ctx.key_of(*d);
            rep.entry(key).or_insert(*d);
        }
    }
    let mut counts: HashMap<(PopularityClass, String), usize> = HashMap::new();
    let mut totals: HashMap<PopularityClass, usize> = HashMap::new();
    for (key, class) in &split.classes {
        if let Some(d) = rep.get(key) {
            let cat = ctx.category_of(*d).name().to_owned();
            *counts.entry((*class, cat)).or_insert(0) += 1;
            *totals.entry(*class).or_insert(0) += 1;
        }
    }
    let pct = |class: PopularityClass| -> HashMap<String, f64> {
        let total = *totals.get(&class).unwrap_or(&0);
        if total == 0 {
            return HashMap::new();
        }
        counts
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|((_, cat), n)| (cat.clone(), 100.0 * *n as f64 / total as f64))
            .collect()
    };
    ClassComposition { global: pct(PopularityClass::Global), national: pct(PopularityClass::National) }
}

/// Fig. 9/17 rank buckets.
pub const RANK_BUCKETS: [(usize, usize); 6] =
    [(1, 10), (11, 20), (21, 50), (51, 100), (101, 200), (201, 500)];

/// Fig. 9: share of globally popular sites per rank bucket.
#[derive(Debug, Clone, Serialize)]
pub struct GlobalShareByBucket {
    /// Bucket bounds (1-based, inclusive).
    pub buckets: Vec<(usize, usize)>,
    /// Median (across countries) percentage of globally popular sites in
    /// each bucket.
    pub global_pct: Vec<f64>,
}

/// Computes Fig. 9 (page loads) / Fig. 17 (time on page).
pub fn global_share_by_bucket(
    ctx: &AnalysisContext<'_>,
    split: &GlobalNationalSplit,
    buckets: &[(usize, usize)],
) -> GlobalShareByBucket {
    let _span = wwv_obs::span!("core.global_national");
    let mut per_bucket: Vec<Vec<f64>> = vec![Vec::new(); buckets.len()];
    for ci in ctx.countries() {
        let list = ctx.key_list(ctx.breakdown(ci, split.platform, split.metric));
        if list.is_empty() {
            continue;
        }
        for (bi, (lo, hi)) in buckets.iter().enumerate() {
            if list.len() < *lo {
                continue;
            }
            let hi = (*hi).min(list.len());
            let mut global = 0usize;
            let mut total = 0usize;
            for rank in *lo..=hi {
                let key = list.at_rank(rank).expect("rank within bounds");
                total += 1;
                if split.classes.get(key) == Some(&PopularityClass::Global) {
                    global += 1;
                }
            }
            if total > 0 {
                per_bucket[bi].push(100.0 * global as f64 / total as f64);
            }
        }
    }
    GlobalShareByBucket {
        buckets: buckets.to_vec(),
        global_pct: per_bucket.iter().map(|v| median(v).unwrap_or(0.0)).collect(),
    }
}

/// §5.1's cross-country endemic-site statistic: of sites in the top-`head`
/// of ≥1 country, the fraction absent from every *other* country's top-10K.
pub fn endemic_fraction(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric, head: usize) -> f64 {
    let n = ctx.countries().len();
    // Count, per key, the number of countries whose top-10K contains it and
    // the number whose top-head contains it.
    let mut in_head: HashSet<String> = HashSet::new();
    let mut presence: HashMap<String, usize> = HashMap::new();
    for ci in 0..n {
        let list = ctx.key_list(ctx.breakdown(ci, platform, metric));
        for (i, key) in list.iter().enumerate() {
            *presence.entry(key.clone()).or_insert(0) += 1;
            if i < head {
                in_head.insert(key.clone());
            }
        }
    }
    if in_head.is_empty() {
        return 0.0;
    }
    let endemic = in_head.iter().filter(|k| presence.get(*k) == Some(&1)).count();
    endemic as f64 / in_head.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::World;

    fn fixtures() -> &'static (World, wwv_telemetry::ChromeDataset) {
        crate::testutil::small()
    }

    #[test]
    fn most_sites_are_national() {
        // Table 2: ≈98% national, ≈2% global.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let (split, _) = classify_global_national(&ctx, Platform::Windows, Metric::PageLoads, 200);
        assert!(split.scored > 500);
        assert!(split.global_fraction < 0.15, "global fraction {}", split.global_fraction);
        assert!(split.global_fraction > 0.0, "some sites must be global");
    }

    #[test]
    fn google_is_global_national_sites_are_national() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let (split, _) = classify_global_national(&ctx, Platform::Windows, Metric::PageLoads, 200);
        assert_eq!(split.classes.get("google"), Some(&PopularityClass::Global));
        assert_eq!(split.classes.get("youtube"), Some(&PopularityClass::Global));
        if let Some(c) = split.classes.get("naver") {
            assert_eq!(*c, PopularityClass::National);
        }
    }

    #[test]
    fn global_share_falls_with_rank() {
        // Fig. 9: globally popular sites dominate the top 10 but national
        // sites take over by ranks 101–200.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let (split, _) = classify_global_national(&ctx, Platform::Windows, Metric::PageLoads, 200);
        let fig9 = global_share_by_bucket(&ctx, &split, &RANK_BUCKETS);
        let top10 = fig9.global_pct[0];
        let deep = fig9.global_pct[4]; // 101–200
        assert!(top10 > 40.0, "top-10 global share {top10}%");
        assert!(deep < top10, "deep bucket {deep}% must be below top-10 {top10}%");
        assert!(deep < 50.0, "ranks 101–200 mostly national, got {deep}% global");
    }

    #[test]
    fn composition_differs_between_classes() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let (split, _) = classify_global_national(&ctx, Platform::Windows, Metric::PageLoads, 200);
        let comp = class_composition(&ctx, &split);
        assert!(!comp.global.is_empty() && !comp.national.is_empty());
        // Technology leans global; educational institutions lean national
        // (Fig. 8 directions).
        let tech_g = comp.global.get("Technology").copied().unwrap_or(0.0);
        let tech_n = comp.national.get("Technology").copied().unwrap_or(0.0);
        assert!(tech_g > tech_n, "tech global {tech_g}% vs national {tech_n}%");
    }

    #[test]
    fn majority_of_head_sites_are_endemic() {
        // §5.1: 53.9% of sites in some country's top-1K appear in no other
        // country's top-10K.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let f = endemic_fraction(&ctx, Platform::Windows, Metric::PageLoads, 200);
        assert!(f > 0.35, "endemic fraction {f}");
        assert!(f < 0.85, "endemic fraction {f}");
    }
}
