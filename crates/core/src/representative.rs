//! §6 — Geo-aware methodology: representative site sets.
//!
//! The paper's discussion hypothesizes that "taking the global top 1K
//! together with the top 1K from each country may lead to more
//! geographically generalizable conclusions than taking simply the global
//! top 10K". This module builds both candidate sets and measures, for each
//! country, how much of its traffic the set covers — quantifying the
//! global-list bias the paper warns about.

use crate::context::AnalysisContext;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use wwv_stats::QuantileSummary;
use wwv_world::{Metric, Platform, COUNTRIES};

/// A named set of site keys used as a study sample.
#[derive(Debug, Clone, Serialize)]
pub struct RepresentativeSet {
    /// Description of how the set was built.
    pub name: String,
    /// The site keys.
    pub keys: HashSet<String>,
}

/// The globally aggregated key ranking: per-key counts summed over all
/// countries for one (platform, metric), best first.
pub fn global_ranking(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> Vec<String> {
    let mut totals: HashMap<String, u64> = HashMap::new();
    for ci in ctx.countries() {
        let b = ctx.breakdown(ci, platform, metric);
        if let Some(list) = ctx.dataset.list(b) {
            for (d, count) in list.entries.iter().take(ctx.depth) {
                *totals.entry(ctx.key_of(*d)).or_insert(0) += count;
            }
        }
    }
    let mut ranked: Vec<(String, u64)> = totals.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.into_iter().map(|(k, _)| k).collect()
}

/// The "global top N" sample.
pub fn global_set(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric, n: usize) -> RepresentativeSet {
    RepresentativeSet {
        name: format!("global top {n}"),
        keys: global_ranking(ctx, platform, metric).into_iter().take(n).collect(),
    }
}

/// The paper's proposed sample: global top `n_global` plus each country's
/// top `n_per_country`.
pub fn global_plus_national_set(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    n_global: usize,
    n_per_country: usize,
) -> RepresentativeSet {
    let _span = wwv_obs::span!("core.representative");
    let mut keys: HashSet<String> =
        global_ranking(ctx, platform, metric).into_iter().take(n_global).collect();
    for ci in ctx.countries() {
        let list = ctx.key_list(ctx.breakdown(ci, platform, metric));
        keys.extend(list.iter().take(n_per_country).cloned());
    }
    RepresentativeSet {
        name: format!("global top {n_global} + per-country top {n_per_country}"),
        keys,
    }
}

/// Per-country traffic coverage of a sample set.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageReport {
    /// Which set was evaluated.
    pub set_name: String,
    /// Number of keys in the set.
    pub set_size: usize,
    /// Per-country coverage: fraction of the country's (traffic-weighted)
    /// top list captured by the set, by ISO code.
    pub per_country: Vec<(String, f64)>,
    /// Cross-country summary of the coverages.
    pub summary: QuantileSummary,
    /// Worst-covered country.
    pub worst: (String, f64),
}

/// The country with the lowest coverage. `total_cmp` instead of
/// `partial_cmp().expect(...)`: a NaN coverage value (degenerate weights)
/// sorts above every finite value here — it can never claim the "worst"
/// slot, and it never panics the report.
fn worst_coverage(per_country: &[(String, f64)]) -> Option<(String, f64)> {
    per_country.iter().min_by(|a, b| a.1.total_cmp(&b.1)).cloned()
}

/// Measures how much of each country's traffic the set covers (weights from
/// the Fig. 1 distribution at each site's local rank).
pub fn coverage(
    ctx: &AnalysisContext<'_>,
    set: &RepresentativeSet,
    platform: Platform,
    metric: Metric,
) -> CoverageReport {
    let weights = ctx.traffic_weights(platform, metric);
    let mut per_country = Vec::new();
    for ci in ctx.countries() {
        let list = ctx.key_list(ctx.breakdown(ci, platform, metric));
        if list.is_empty() {
            continue;
        }
        let mut covered = 0.0;
        let mut total = 0.0;
        for (i, key) in list.iter().enumerate() {
            let w = weights.get(i).copied().unwrap_or(0.0);
            total += w;
            if set.keys.contains(key) {
                covered += w;
            }
        }
        if total > 0.0 {
            per_country.push((COUNTRIES[ci].code.to_owned(), covered / total));
        }
    }
    let values: Vec<f64> = per_country.iter().map(|(_, v)| *v).collect();
    let summary = QuantileSummary::of(&values)
        .unwrap_or(QuantileSummary { q25: 0.0, median: 0.0, q75: 0.0 });
    let worst = worst_coverage(&per_country).unwrap_or(("??".to_owned(), 0.0));
    CoverageReport { set_name: set.name.clone(), set_size: set.keys.len(), per_country, summary, worst }
}

/// The §6 comparison: global-only vs global+national at comparable sizes.
#[derive(Debug, Clone, Serialize)]
pub struct Section6Comparison {
    /// Coverage of the plain global set.
    pub global_only: CoverageReport,
    /// Coverage of the paper's proposed mixed set.
    pub global_plus_national: CoverageReport,
}

/// Runs the comparison at the paper's proposed shape — global top N/10 plus
/// per-country top N/10 — against a plain global set **of the same total
/// size**, so the contrast isolates *allocation* (geographic spread) rather
/// than budget.
pub fn section6_comparison(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
) -> Section6Comparison {
    let _span = wwv_obs::span!("core.representative");
    let scale = ctx.depth.max(10) / 10; // 1K at full scale, 200 at small
    let mixed = global_plus_national_set(ctx, platform, metric, scale, scale);
    let global_only = global_set(ctx, platform, metric, mixed.keys.len());
    Section6Comparison {
        global_only: coverage(ctx, &global_only, platform, metric),
        global_plus_national: coverage(ctx, &mixed, platform, metric),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AnalysisContext<'static> {
        let (world, ds) = crate::testutil::small();
        AnalysisContext::with_depth(world, ds, 2_000)
    }

    #[test]
    fn worst_coverage_survives_nan() {
        // Regression: a NaN coverage value used to panic the
        // `partial_cmp().expect(...)` comparator. Under `total_cmp` a NaN
        // orders above every finite value, so it can never claim "worst".
        let per_country = vec![
            ("US".to_owned(), 0.9),
            ("NN".to_owned(), f64::NAN),
            ("KR".to_owned(), 0.2),
        ];
        let worst = worst_coverage(&per_country).expect("non-empty");
        assert_eq!(worst.0, "KR");
        assert!(worst_coverage(&[]).is_none());
    }

    #[test]
    fn global_ranking_heads_with_google() {
        let ctx = ctx();
        let ranking = global_ranking(&ctx, Platform::Windows, Metric::PageLoads);
        assert_eq!(ranking.first().map(String::as_str), Some("google"));
        assert!(ranking.len() > 1_000);
    }

    #[test]
    fn coverage_bounded_and_monotone_in_size() {
        let ctx = ctx();
        let small = global_set(&ctx, Platform::Windows, Metric::PageLoads, 100);
        let large = global_set(&ctx, Platform::Windows, Metric::PageLoads, 1_000);
        let cov_small = coverage(&ctx, &small, Platform::Windows, Metric::PageLoads);
        let cov_large = coverage(&ctx, &large, Platform::Windows, Metric::PageLoads);
        for (_, v) in cov_small.per_country.iter().chain(&cov_large.per_country) {
            assert!((0.0..=1.0).contains(v));
        }
        assert!(cov_large.summary.median >= cov_small.summary.median);
    }

    #[test]
    fn mixed_set_guarantees_every_countrys_head() {
        // §6: the mixed allocation guarantees each country's head by
        // construction; a same-size global allocation only captures it
        // insofar as the country's usage weight pushes its sites up the
        // global ranking. (With 45 countries and a bounded usage spread the
        // synthetic global list also absorbs most heads, so the paper's
        // hypothesis shows up as a guarantee-vs-tendency contrast here —
        // the report carries the per-country numbers either way.)
        let ctx = ctx();
        let comparison = section6_comparison(&ctx, Platform::Windows, Metric::PageLoads);
        let g = &comparison.global_only;
        let m = &comparison.global_plus_national;
        assert_eq!(m.set_size, g.set_size, "comparison is size-matched");
        let scale = ctx.depth / 10;
        let mixed = global_plus_national_set(&ctx, Platform::Windows, Metric::PageLoads, scale, scale);
        for ci in ctx.countries() {
            let head = ctx.key_list(ctx.breakdown(ci, Platform::Windows, Metric::PageLoads));
            for key in head.iter().take(scale) {
                assert!(mixed.keys.contains(key), "head site {key} missing from mixed set");
            }
        }
        // Coverage of the margins stays competitive with the global set.
        assert!(
            m.worst.1 > g.worst.1 - 0.05,
            "mixed worst {:?} vs global worst {:?}",
            m.worst,
            g.worst
        );
    }

    #[test]
    fn korea_is_poorly_covered_by_global_lists() {
        // The global list under-covers the outlier countries (§6's warning).
        let ctx = ctx();
        let global = global_set(&ctx, Platform::Windows, Metric::PageLoads, 500);
        let cov = coverage(&ctx, &global, Platform::Windows, Metric::PageLoads);
        let kr = cov.per_country.iter().find(|(c, _)| c == "KR").unwrap().1;
        let us = cov.per_country.iter().find(|(c, _)| c == "US").unwrap().1;
        assert!(kr < us, "KR {kr} vs US {us}");
    }
}
