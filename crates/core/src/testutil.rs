//! Shared test fixtures: one small world + dataset per process.

use std::sync::OnceLock;
use wwv_telemetry::{ChromeDataset, DatasetBuilder};
use wwv_world::{Month, World, WorldConfig};

static FIXTURE: OnceLock<(World, ChromeDataset)> = OnceLock::new();
static FIXTURE_ALL_MONTHS: OnceLock<(World, ChromeDataset)> = OnceLock::new();

/// A small world plus a February-only dataset (most analyses).
pub fn small() -> &'static (World, ChromeDataset) {
    FIXTURE.get_or_init(|| {
        let world = World::new(WorldConfig::small());
        let ds = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(500)
            .max_depth(3_000)
            .build();
        (world, ds)
    })
}

/// A small world plus an all-months dataset (temporal analyses).
pub fn small_all_months() -> &'static (World, ChromeDataset) {
    FIXTURE_ALL_MONTHS.get_or_init(|| {
        let world = World::new(WorldConfig::small());
        let ds = DatasetBuilder::new(&world)
            .base_volume(2.0e8)
            .client_threshold(500)
            .max_depth(3_000)
            .build();
        (world, ds)
    })
}
