//! §4.2.2 — Types of websites receiving most traffic (Fig. 2).
//!
//! Two perspectives per (platform, metric): the share of *sites* per
//! category in the top-100 and top-10K, and the share of *traffic* per
//! category (sites weighted by the Fig. 1 distribution at their rank). The
//! global view averages each statistic across the 45 countries, as the
//! paper does.

use crate::context::AnalysisContext;
use serde::Serialize;
use std::collections::HashMap;
use wwv_taxonomy::Category;
use wwv_world::{Metric, Platform};

/// Fig. 2 result for one (platform, metric).
#[derive(Debug, Clone, Serialize)]
pub struct CompositionBreakdown {
    /// Platform.
    pub platform: Platform,
    /// Metric.
    pub metric: Metric,
    /// Per-category percentage of sites in the top 100 (average of
    /// countries), keyed by category name.
    pub sites_top100: HashMap<String, f64>,
    /// Per-category percentage of sites in the top 10K.
    pub sites_top10k: HashMap<String, f64>,
    /// Per-category percentage of traffic in the top 100.
    pub traffic_top100: HashMap<String, f64>,
    /// Per-category percentage of traffic in the top 10K.
    pub traffic_top10k: HashMap<String, f64>,
}

impl CompositionBreakdown {
    /// Convenience lookup with 0 default.
    pub fn traffic_10k(&self, category: Category) -> f64 {
        *self.traffic_top10k.get(category.name()).unwrap_or(&0.0)
    }

    /// Convenience lookup with 0 default.
    pub fn sites_10k(&self, category: Category) -> f64 {
        *self.sites_top10k.get(category.name()).unwrap_or(&0.0)
    }
}

/// Computes Fig. 2 for one (platform, metric).
pub fn composition(ctx: &AnalysisContext<'_>, platform: Platform, metric: Metric) -> CompositionBreakdown {
    let _span = wwv_obs::span!("core.composition");
    let weights = ctx.traffic_weights(platform, metric);
    let n_cats = Category::ALL.len();
    // Accumulators: average over countries of per-country percentages.
    let mut sites100 = vec![0.0f64; n_cats];
    let mut sites10k = vec![0.0f64; n_cats];
    let mut traffic100 = vec![0.0f64; n_cats];
    let mut traffic10k = vec![0.0f64; n_cats];
    let mut countries = 0usize;
    for ci in ctx.countries() {
        let b = ctx.breakdown(ci, platform, metric);
        let list = ctx.domain_list(b);
        if list.is_empty() {
            continue;
        }
        countries += 1;
        let mut c_sites100 = vec![0.0f64; n_cats];
        let mut c_sites10k = vec![0.0f64; n_cats];
        let mut c_traffic100 = vec![0.0f64; n_cats];
        let mut c_traffic10k = vec![0.0f64; n_cats];
        let mut w100 = 0.0;
        let mut w10k = 0.0;
        for (i, d) in list.iter().enumerate() {
            let cat = ctx.category_of(*d).index();
            let w = weights.get(i).copied().unwrap_or(0.0);
            if i < 100 {
                c_sites100[cat] += 1.0;
                c_traffic100[cat] += w;
                w100 += w;
            }
            c_sites10k[cat] += 1.0;
            c_traffic10k[cat] += w;
            w10k += w;
        }
        let n100 = list.len().min(100) as f64;
        let n10k = list.len() as f64;
        for cat in 0..n_cats {
            sites100[cat] += 100.0 * c_sites100[cat] / n100;
            sites10k[cat] += 100.0 * c_sites10k[cat] / n10k;
            if w100 > 0.0 {
                traffic100[cat] += 100.0 * c_traffic100[cat] / w100;
            }
            if w10k > 0.0 {
                traffic10k[cat] += 100.0 * c_traffic10k[cat] / w10k;
            }
        }
    }
    let to_map = |acc: Vec<f64>| -> HashMap<String, f64> {
        Category::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| acc[*i] > 0.0)
            .map(|(i, c)| (c.name().to_owned(), acc[i] / countries.max(1) as f64))
            .collect()
    };
    CompositionBreakdown {
        platform,
        metric,
        sites_top100: to_map(sites100),
        sites_top10k: to_map(sites10k),
        traffic_top100: to_map(traffic100),
        traffic_top10k: to_map(traffic10k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::World;

    fn fixtures() -> &'static (World, wwv_telemetry::ChromeDataset) {
        crate::testutil::small()
    }

    #[test]
    fn percentages_sum_to_100() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let comp = composition(&ctx, Platform::Windows, Metric::PageLoads);
        for map in [&comp.sites_top100, &comp.sites_top10k, &comp.traffic_top100, &comp.traffic_top10k] {
            let total: f64 = map.values().sum();
            assert!((total - 100.0).abs() < 1.0, "sum {total}");
        }
    }

    #[test]
    fn search_dominates_load_traffic_not_site_count() {
        // Fig. 2 / §4.2.2: search engines capture 20–25% of page loads but
        // are a tiny fraction of the 10K site population.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let comp = composition(&ctx, Platform::Windows, Metric::PageLoads);
        let search_traffic = comp.traffic_10k(Category::SearchEngines);
        let search_sites = comp.sites_10k(Category::SearchEngines);
        assert!(search_traffic > 12.0, "search traffic {search_traffic}%");
        assert!(search_sites < 5.0, "search sites {search_sites}%");
        assert!(search_traffic > search_sites * 4.0);
    }

    #[test]
    fn video_dominates_desktop_time() {
        // §4.2.2: users spend the plurality of desktop time on video
        // streaming (33% of top-10K time in the paper).
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let comp = composition(&ctx, Platform::Windows, Metric::TimeOnPage);
        let video = comp.traffic_10k(Category::VideoStreaming);
        assert!(video > 15.0, "video time share {video}%");
        // Video receives more time share than search.
        assert!(video > comp.traffic_10k(Category::SearchEngines));
    }

    #[test]
    fn adult_prominent_in_mobile_time() {
        // §4.2.2: the plurality of mobile browser time goes to adult content.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let comp = composition(&ctx, Platform::Android, Metric::TimeOnPage);
        let adult = comp.traffic_10k(Category::Pornography);
        let desktop = composition(&ctx, Platform::Windows, Metric::TimeOnPage);
        assert!(
            adult > desktop.traffic_10k(Category::Pornography),
            "adult more prominent on mobile"
        );
        assert!(adult > 8.0, "mobile adult time share {adult}%");
    }
}
