//! §4.3 — Desktop vs. mobile browsing behavior (Figs. 4 and 15).
//!
//! Per category: estimate traffic volume on each platform (top-10K sites
//! weighted by the Fig. 1 distribution), test the per-country difference in
//! category site-proportions with a two-proportion test under Bonferroni
//! correction, and report the paper's normalized difference score
//! `(A − W) / max(A, W)` for categories with significant differences.

use crate::context::AnalysisContext;
use serde::Serialize;
use wwv_stats::descriptive::normalized_difference;
use wwv_stats::{median, two_proportion_test};
use wwv_taxonomy::Category;
use wwv_world::{Metric, Platform};

/// Fig. 4 row: one category's platform contrast.
#[derive(Debug, Clone, Serialize)]
pub struct PlatformDiff {
    /// Category.
    pub category: String,
    /// Median (across countries) normalized difference score in [-1, 1]:
    /// positive = mobile-leaning, negative = desktop-leaning.
    pub score: f64,
    /// Number of countries with a statistically significant difference
    /// (Bonferroni-corrected p < 0.05).
    pub significant_countries: usize,
    /// Median weighted traffic share on Android (percent).
    pub android_share: f64,
    /// Median weighted traffic share on Windows (percent).
    pub windows_share: f64,
}

/// Computes Fig. 4 (page loads) or Fig. 15 (time on page).
pub fn platform_differences(ctx: &AnalysisContext<'_>, metric: Metric) -> Vec<PlatformDiff> {
    let _span = wwv_obs::span!("core.platform_diff");
    let n_cats = Category::ALL.len();
    let weights_w = ctx.traffic_weights(Platform::Windows, metric);
    let weights_a = ctx.traffic_weights(Platform::Android, metric);
    // Bonferroni family: the figure's comparisons are per category (the
    // paper corrects the category-level test family at p = 0.05).
    let m = n_cats;

    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); n_cats];
    let mut shares_a: Vec<Vec<f64>> = vec![Vec::new(); n_cats];
    let mut shares_w: Vec<Vec<f64>> = vec![Vec::new(); n_cats];
    let mut significant: Vec<usize> = vec![0; n_cats];
    // Pooled (all-country) volume counts decide whether a category appears
    // in the figure at all; the per-country counts annotate each bar.
    let mut pooled_a: Vec<u64> = vec![0; n_cats];
    let mut pooled_w: Vec<u64> = vec![0; n_cats];
    let mut pooled_na: u64 = 0;
    let mut pooled_nw: u64 = 0;

    for ci in ctx.countries() {
        let list_w = ctx.domain_list(ctx.breakdown(ci, Platform::Windows, metric));
        let list_a = ctx.domain_list(ctx.breakdown(ci, Platform::Android, metric));
        if list_w.is_empty() || list_a.is_empty() {
            continue;
        }
        let mut vol_w = vec![0.0f64; n_cats];
        let mut vol_a = vec![0.0f64; n_cats];
        let mut tot_w = 0.0;
        let mut tot_a = 0.0;
        for (i, d) in list_w.iter().enumerate() {
            let c = ctx.category_of(*d).index();
            let w = weights_w.get(i).copied().unwrap_or(0.0);
            vol_w[c] += w;
            tot_w += w;
        }
        for (i, d) in list_a.iter().enumerate() {
            let c = ctx.category_of(*d).index();
            let w = weights_a.get(i).copied().unwrap_or(0.0);
            vol_a[c] += w;
            tot_a += w;
        }
        // Effective trial count for the volume-proportion test: the paper
        // tests *traffic volumes*; we convert each platform's weighted share
        // into an expected count over the list's sites.
        let n_w = list_w.len() as u64;
        let n_a = list_a.len() as u64;
        for c in 0..n_cats {
            let share_w = if tot_w > 0.0 { vol_w[c] / tot_w } else { 0.0 };
            let share_a = if tot_a > 0.0 { vol_a[c] / tot_a } else { 0.0 };
            if share_w == 0.0 && share_a == 0.0 {
                continue;
            }
            scores[c].push(normalized_difference(share_a, share_w));
            shares_a[c].push(100.0 * share_a);
            shares_w[c].push(100.0 * share_w);
            let k_w = (share_w * n_w as f64).round() as u64;
            let k_a = (share_a * n_a as f64).round() as u64;
            pooled_a[c] += k_a;
            pooled_w[c] += k_w;
            if let Some(t) = two_proportion_test(k_a, n_a, k_w, n_w) {
                if t.significant(0.05, m) {
                    significant[c] += 1;
                }
            }
        }
        pooled_na += n_a;
        pooled_nw += n_w;
    }

    let mut out = Vec::new();
    for (c, cat) in Category::ALL.iter().enumerate() {
        if scores[c].is_empty() {
            continue;
        }
        // A category enters the figure when the pooled cross-country volume
        // difference is significant (the per-country counts annotate bars).
        let pooled_significant = two_proportion_test(pooled_a[c], pooled_na, pooled_w[c], pooled_nw)
            .map(|t| t.significant(0.05, m))
            .unwrap_or(false);
        if !pooled_significant {
            continue;
        }
        out.push(PlatformDiff {
            category: cat.name().to_owned(),
            score: median(&scores[c]).unwrap_or(0.0),
            significant_countries: significant[c],
            android_share: median(&shares_a[c]).unwrap_or(0.0),
            windows_share: median(&shares_w[c]).unwrap_or(0.0),
        });
    }
    // Most mobile-leaning first, as in the figure.
    sort_most_mobile_first(&mut out);
    out
}

/// Orders diffs by score, descending. `total_cmp` instead of
/// `partial_cmp().expect(...)`: a NaN score (degenerate shares) must not
/// panic the whole analysis — it sorts deterministically with the other
/// "large" values instead.
fn sort_most_mobile_first(out: &mut [PlatformDiff]) {
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::World;

    fn fixtures() -> &'static (World, wwv_telemetry::ChromeDataset) {
        crate::testutil::small()
    }

    fn diff_of(rows: &[PlatformDiff], cat: Category) -> Option<&PlatformDiff> {
        rows.iter().find(|r| r.category == cat.name())
    }

    #[test]
    fn score_sort_survives_nan() {
        // Regression: a NaN difference score used to panic the
        // `partial_cmp().expect(...)` comparator.
        let row = |name: &str, score: f64| PlatformDiff {
            category: name.to_owned(),
            score,
            significant_countries: 1,
            android_share: 0.0,
            windows_share: 0.0,
        };
        let mut rows = vec![row("a", -0.5), row("n", f64::NAN), row("b", 0.75)];
        sort_most_mobile_first(&mut rows);
        assert_eq!(rows[0].category, "n", "NaN sorts with the large values");
        assert_eq!(rows[1].category, "b");
        assert_eq!(rows[2].category, "a");
    }

    #[test]
    fn scores_bounded() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let rows = platform_differences(&ctx, Metric::PageLoads);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!((-1.0..=1.0).contains(&r.score), "{}: {}", r.category, r.score);
            assert!(r.significant_countries <= 45);
        }
    }

    #[test]
    fn paper_directions_hold() {
        // Fig. 4: Pornography/Dating mobile-leaning; Educational
        // Institutions / Webmail / Gaming / Business desktop-leaning.
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let rows = platform_differences(&ctx, Metric::PageLoads);
        if let Some(p) = diff_of(&rows, Category::Pornography) {
            assert!(p.score > 0.0, "porn score {}", p.score);
        }
        for cat in [Category::EducationalInstitutions, Category::Business, Category::Gaming] {
            if let Some(d) = diff_of(&rows, cat) {
                assert!(d.score < 0.0, "{} score {}", d.category, d.score);
            }
        }
        // At least one of the desktop categories must be present & significant.
        let desktopish = rows.iter().filter(|r| r.score < -0.1).count();
        let mobileish = rows.iter().filter(|r| r.score > 0.1).count();
        assert!(desktopish >= 2, "desktop-leaning categories detected: {desktopish}");
        assert!(mobileish >= 2, "mobile-leaning categories detected: {mobileish}");
    }

    #[test]
    fn sorted_most_mobile_first() {
        let (world, ds) = fixtures();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        let rows = platform_differences(&ctx, Metric::PageLoads);
        for pair in rows.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
