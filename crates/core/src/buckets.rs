//! §5.3.3 — Cross-country intersection by rank bucket (Fig. 12).
//!
//! For each rank-bucket size, the unweighted percent intersection of every
//! country pair's top lists, sorted descending with a cumulative sum — the
//! paper's compact alternative to a heatmap per bucket.

use crate::context::AnalysisContext;
use serde::Serialize;
use wwv_world::{Metric, Platform};

/// The bucket sizes Fig. 12 plots.
pub const FIG12_BUCKETS: [usize; 4] = [10, 100, 1_000, 10_000];

/// One Fig. 12 series.
#[derive(Debug, Clone, Serialize)]
pub struct BucketIntersections {
    /// Rank-bucket size (top-N).
    pub bucket: usize,
    /// All 990 pairwise percent intersections, sorted descending (0–1).
    pub sorted: Vec<f64>,
    /// Cumulative sums of `sorted`.
    pub cumulative: Vec<f64>,
}

impl BucketIntersections {
    /// Mean pairwise intersection for this bucket.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

/// Sorts intersections descending with `total_cmp`: a NaN (degenerate
/// list pair) orders deterministically with the other "large" values
/// instead of panicking the figure export.
fn sort_desc(values: &mut [f64]) {
    values.sort_by(|a, b| b.total_cmp(a));
}

/// Computes Fig. 12 for one (platform, metric).
pub fn bucket_intersections(
    ctx: &AnalysisContext<'_>,
    platform: Platform,
    metric: Metric,
    buckets: &[usize],
) -> Vec<BucketIntersections> {
    let _span = wwv_obs::span!("core.buckets");
    let lists: Vec<_> = ctx
        .countries()
        .map(|ci| ctx.key_list(ctx.breakdown(ci, platform, metric)))
        .collect();
    buckets
        .iter()
        .map(|&bucket| {
            let mut values = Vec::with_capacity(lists.len() * (lists.len() - 1) / 2);
            for i in 0..lists.len() {
                for j in 0..i {
                    if lists[i].is_empty() || lists[j].is_empty() {
                        continue;
                    }
                    values.push(lists[i].percent_intersection(&lists[j], bucket));
                }
            }
            sort_desc(&mut values);
            let cumulative = wwv_stats::descriptive::cumsum(&values);
            BucketIntersections { bucket, sorted: values, cumulative }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<BucketIntersections> {
        let (world, ds) = crate::testutil::small();
        let ctx = AnalysisContext::with_depth(world, ds, 2_000);
        bucket_intersections(&ctx, Platform::Windows, Metric::PageLoads, &[10, 100, 1_000])
    }

    #[test]
    fn descending_sort_survives_nan() {
        // Regression: a NaN intersection used to panic the
        // `partial_cmp().expect(...)` comparator. `total_cmp` orders it
        // deterministically (first, with the large values).
        let mut values = vec![0.5, f64::NAN, 1.0, 0.0];
        sort_desc(&mut values);
        assert!(values[0].is_nan());
        assert_eq!(&values[1..], &[1.0, 0.5, 0.0]);
    }

    #[test]
    fn all_pairs_present() {
        let s = series();
        for b in &s {
            assert_eq!(b.sorted.len(), 45 * 44 / 2);
            for v in &b.sorted {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }

    #[test]
    fn sorted_descending_with_cumulative() {
        let s = series();
        for b in &s {
            for pair in b.sorted.windows(2) {
                assert!(pair[0] >= pair[1]);
            }
            assert_eq!(b.cumulative.len(), b.sorted.len());
            assert!((b.cumulative.last().unwrap() - b.sorted.iter().sum::<f64>()).abs() < 1e-9);
        }
    }

    #[test]
    fn head_more_similar_than_tail() {
        // §5.3.3: countries' popular sites are more similar among topmost
        // ranks than deeper down.
        let s = series();
        let top10 = s[0].mean();
        let top1000 = s[2].mean();
        assert!(
            top10 > top1000,
            "top-10 mean {top10} should exceed top-1000 mean {top1000}"
        );
    }
}
