//! Property tests for the world model: demand laws under arbitrary seeds
//! and breakdowns, and traffic-curve laws under arbitrary anchors.

use proptest::prelude::*;
use wwv_world::{Breakdown, Metric, Month, Platform, TrafficCurve, World, WorldConfig};

/// A tiny world config (fast enough for many proptest cases).
fn tiny(seed: u64) -> WorldConfig {
    WorldConfig {
        global_pool: 80,
        language_pool: 40,
        regional_pool: 25,
        national_pool: 150,
        ..WorldConfig::small()
    }
    .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Demand is a probability distribution for every breakdown and seed.
    #[test]
    fn demand_is_a_distribution(
        seed in 0u64..1_000,
        country in 0usize..45,
        mobile in any::<bool>(),
        time in any::<bool>(),
        month_idx in 0usize..6,
    ) {
        let world = World::new(tiny(seed));
        let b = Breakdown {
            country,
            platform: if mobile { Platform::Android } else { Platform::Windows },
            metric: if time { Metric::TimeOnPage } else { Metric::PageLoads },
            month: Month::ALL[month_idx],
        };
        let demand = world.demand(b);
        prop_assert!(!demand.is_empty());
        let total: f64 = demand.iter().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        for (_, w) in &demand {
            prop_assert!(*w > 0.0 && *w <= 1.0);
        }
    }
}

proptest! {
    /// Any valid anchor set yields a monotone curve with decreasing-ish
    /// shares and exact anchor hits.
    #[test]
    fn curve_laws(
        c1 in 0.05f64..0.3,
        gap2 in 0.01f64..0.2,
        gap3 in 0.01f64..0.2,
        gap4 in 0.01f64..0.2,
    ) {
        let anchors = [
            (1u64, c1),
            (10, (c1 + gap2).min(0.9)),
            (1_000, (c1 + gap2 + gap3).min(0.95)),
            (100_000, (c1 + gap2 + gap3 + gap4).min(0.99)),
        ];
        let curve = TrafficCurve::from_anchors(&anchors).expect("valid anchors");
        for (rank, cum) in anchors {
            prop_assert!((curve.cumulative(rank) - cum).abs() < 1e-9);
        }
        let mut prev = 0.0;
        for rank in [1u64, 2, 5, 10, 50, 100, 1_000, 10_000, 100_000] {
            let v = curve.cumulative(rank);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        // Shares are non-negative and sum to the cumulative.
        let shares = curve.shares(500);
        prop_assert!(shares.iter().all(|s| *s >= 0.0));
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - curve.cumulative(500)).abs() < 1e-9);
    }
}
