//! The study window and seasonal structure (§3.1, §4.5).
//!
//! Chrome shared data for September 2021 through February 2022, aggregated
//! monthly. December is the anomalous month: e-commerce traffic rises,
//! education traffic falls, and rank lists churn more than in any other
//! adjacent-month pair.

use serde::{Deserialize, Serialize};
use std::fmt;
use wwv_taxonomy::{Category, CategoryProfile};

/// A month of the study window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Month {
    /// September 2021.
    September2021,
    /// October 2021.
    October2021,
    /// November 2021.
    November2021,
    /// December 2021 — the anomalous holiday month.
    December2021,
    /// January 2022.
    January2022,
    /// February 2022 — the paper's reference month.
    February2022,
}

impl Month {
    /// All six study months in chronological order.
    pub const ALL: [Month; 6] = [
        Month::September2021,
        Month::October2021,
        Month::November2021,
        Month::December2021,
        Month::January2022,
        Month::February2022,
    ];

    /// Zero-based chronological index (September = 0).
    pub fn index(&self) -> usize {
        Month::ALL.iter().position(|m| m == self).expect("every month is in ALL")
    }

    /// The next month, if still within the window.
    pub fn next(&self) -> Option<Month> {
        Month::ALL.get(self.index() + 1).copied()
    }

    /// Whether this is December 2021.
    pub fn is_december(&self) -> bool {
        matches!(self, Month::December2021)
    }

    /// The paper's reference month for all non-temporal analyses.
    pub fn reference() -> Month {
        Month::February2022
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Month::September2021 => "2021-09",
            Month::October2021 => "2021-10",
            Month::November2021 => "2021-11",
            Month::December2021 => "2021-12",
            Month::January2022 => "2022-01",
            Month::February2022 => "2022-02",
        })
    }
}

/// The seasonal traffic multiplier for a category in a month.
///
/// December applies each category's [`CategoryProfile::december_multiplier`];
/// November gets a quarter-strength preview of the December effect (holiday
/// shopping begins in late November); other months are neutral.
pub fn seasonal_multiplier(category: Category, month: Month) -> f64 {
    let dec = CategoryProfile::of(category).december_multiplier;
    match month {
        Month::December2021 => dec,
        Month::November2021 => 1.0 + (dec - 1.0) * 0.25,
        _ => 1.0,
    }
}

/// Per-month idiosyncratic churn scale: the standard deviation of the
/// log-normal noise applied to each site's demand in that month. December
/// churns hardest (§4.5: December is the least similar to its neighbors).
pub fn churn_sigma(month: Month) -> f64 {
    if month.is_december() {
        0.22
    } else {
        0.12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_months_in_order() {
        assert_eq!(Month::ALL.len(), 6);
        for (i, m) in Month::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
        assert_eq!(Month::September2021.next(), Some(Month::October2021));
        assert_eq!(Month::February2022.next(), None);
    }

    #[test]
    fn reference_month_is_february() {
        assert_eq!(Month::reference(), Month::February2022);
    }

    #[test]
    fn december_moves_commerce_up_education_down() {
        let ecom = seasonal_multiplier(Category::Ecommerce, Month::December2021);
        let edu = seasonal_multiplier(Category::Education, Month::December2021);
        assert!(ecom > 1.2);
        assert!(edu < 0.8);
    }

    #[test]
    fn non_holiday_months_neutral() {
        for m in [Month::September2021, Month::October2021, Month::January2022, Month::February2022] {
            assert_eq!(seasonal_multiplier(Category::Ecommerce, m), 1.0);
        }
    }

    #[test]
    fn november_previews_december() {
        let nov = seasonal_multiplier(Category::Ecommerce, Month::November2021);
        let dec = seasonal_multiplier(Category::Ecommerce, Month::December2021);
        assert!(nov > 1.0 && nov < dec);
    }

    #[test]
    fn december_churns_hardest() {
        for m in Month::ALL {
            if !m.is_december() {
                assert!(churn_sigma(m) < churn_sigma(Month::December2021));
            }
        }
    }
}
