//! World-model self-checks.
//!
//! The generator is calibrated against the paper's quantitative anchors;
//! this module measures the *generated* world against those same targets so
//! drift is caught at the source (rather than three crates downstream in a
//! failing analysis). The `reproduce` harness and the world-model tests both
//! consume these reports.

use crate::country::COUNTRIES;
use crate::demand::World;
use crate::season::Month;
use crate::types::{Breakdown, Metric, Platform};
use serde::Serialize;
use wwv_stats::powerlaw::fit_power_law;
use wwv_stats::QuantileSummary;

/// Calibration report for one platform/metric.
#[derive(Debug, Clone, Serialize)]
pub struct CalibrationReport {
    /// Platform.
    pub platform: Platform,
    /// Metric.
    pub metric: Metric,
    /// Per-country top-1 demand share summary (paper: 12–33%, median 20%).
    pub top1_share: QuantileSummary,
    /// Per-country top-10 cumulative share summary.
    pub top10_share: QuantileSummary,
    /// Median fitted rank–share power-law exponent over countries.
    pub median_zipf_exponent: f64,
    /// Median R² of the power-law fit (how Zipf-like the tail is).
    pub median_fit_r2: f64,
}

/// Measures the demand model against the §4.1.2 anchors for one breakdown
/// family (reference month).
pub fn calibrate(world: &World, platform: Platform, metric: Metric) -> CalibrationReport {
    let countries: Vec<usize> = (0..COUNTRIES.len()).collect();
    // Each country's ranking + fit is independent; evaluate on the pool and
    // fold in country order so the summaries see the same sequences as a
    // serial pass.
    let per_country = wwv_par::par_map("world.calibrate", &countries, |_, &ci| {
        let b = Breakdown { country: ci, platform, metric, month: Month::reference() };
        let ranked = world.ranked(b, 2_000);
        if ranked.is_empty() {
            return None;
        }
        let top1 = ranked[0].1;
        let top10 = ranked.iter().take(10).map(|(_, s)| s).sum::<f64>();
        // Fit the mid-range (ranks 20..) where the mixture tail is Zipf-like.
        let tail: Vec<f64> = ranked.iter().skip(20).map(|(_, s)| *s).collect();
        Some((top1, top10, fit_power_law(&tail)))
    });
    let mut top1 = Vec::new();
    let mut top10 = Vec::new();
    let mut exponents = Vec::new();
    let mut fits = Vec::new();
    for (t1, t10, fit) in per_country.into_iter().flatten() {
        top1.push(t1);
        top10.push(t10);
        if let Some(fit) = fit {
            exponents.push(fit.exponent);
            fits.push(fit.r_squared);
        }
    }
    let zero = QuantileSummary { q25: 0.0, median: 0.0, q75: 0.0 };
    CalibrationReport {
        platform,
        metric,
        top1_share: QuantileSummary::of(&top1).unwrap_or(zero),
        top10_share: QuantileSummary::of(&top10).unwrap_or(zero),
        median_zipf_exponent: wwv_stats::median(&exponents).unwrap_or(0.0),
        median_fit_r2: wwv_stats::median(&fits).unwrap_or(0.0),
    }
}

/// Cross-platform sanity: how much lighter mobile browser demand is for
/// desktop-leaning categories, measured directly from the demand model.
#[derive(Debug, Clone, Serialize)]
pub struct PlatformMassReport {
    /// Median across countries of (Android mass / Windows mass) for adult
    /// content — should exceed 1 in relative share terms.
    pub adult_mobile_ratio: f64,
    /// Same ratio for business — should sit below 1.
    pub business_mobile_ratio: f64,
}

/// Measures category demand mass ratios between platforms.
pub fn platform_mass(world: &World) -> PlatformMassReport {
    use wwv_taxonomy::Category;
    let countries: Vec<usize> = (0..COUNTRIES.len()).collect();
    let ratios = wwv_par::par_map("world.platform_mass", &countries, |_, &ci| {
        if COUNTRIES[ci].censors_adult {
            return (None, None);
        }
        let mass = |platform: Platform, cat: Category| -> f64 {
            let b = Breakdown { country: ci, platform, metric: Metric::PageLoads, month: Month::reference() };
            world
                .demand(b)
                .iter()
                .filter(|(id, _)| world.universe().site(*id).category == cat)
                .map(|(_, s)| s)
                .sum()
        };
        let aw = mass(Platform::Windows, Category::Pornography);
        let aa = mass(Platform::Android, Category::Pornography);
        let bw = mass(Platform::Windows, Category::Business);
        let ba = mass(Platform::Android, Category::Business);
        (
            (aw > 0.0).then(|| aa / aw),
            (bw > 0.0).then(|| ba / bw),
        )
    });
    let adult: Vec<f64> = ratios.iter().filter_map(|(a, _)| *a).collect();
    let business: Vec<f64> = ratios.iter().filter_map(|(_, b)| *b).collect();
    PlatformMassReport {
        adult_mobile_ratio: wwv_stats::median(&adult).unwrap_or(0.0),
        business_mobile_ratio: wwv_stats::median(&business).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::new(WorldConfig::small()))
    }

    #[test]
    fn top1_shares_in_paper_band() {
        let report = calibrate(world(), Platform::Windows, Metric::PageLoads);
        assert!(
            report.top1_share.median > 0.12 && report.top1_share.median < 0.30,
            "median top-1 share {:?}",
            report.top1_share
        );
        assert!(report.top1_share.q25 > 0.08);
        assert!(report.top1_share.q75 < 0.36);
    }

    #[test]
    fn top10_captures_a_quarter_to_half() {
        // §4.2.1: top ten sites typically account for a quarter to half of
        // traffic.
        let report = calibrate(world(), Platform::Windows, Metric::PageLoads);
        assert!(
            report.top10_share.median > 0.25 && report.top10_share.median < 0.60,
            "median top-10 share {:?}",
            report.top10_share
        );
    }

    #[test]
    fn tail_is_power_law_like() {
        let report = calibrate(world(), Platform::Windows, Metric::PageLoads);
        assert!(
            report.median_zipf_exponent > 0.4 && report.median_zipf_exponent < 2.0,
            "exponent {}",
            report.median_zipf_exponent
        );
        assert!(report.median_fit_r2 > 0.8, "R² {}", report.median_fit_r2);
    }

    #[test]
    fn time_metric_more_concentrated() {
        let loads = calibrate(world(), Platform::Windows, Metric::PageLoads);
        let time = calibrate(world(), Platform::Windows, Metric::TimeOnPage);
        assert!(
            time.top10_share.median > loads.top10_share.median,
            "time {:?} vs loads {:?}",
            time.top10_share,
            loads.top10_share
        );
    }

    #[test]
    fn platform_mass_directions() {
        let report = platform_mass(world());
        assert!(report.adult_mobile_ratio > 1.0, "adult ratio {}", report.adult_mobile_ratio);
        assert!(report.business_mobile_ratio < 1.0, "business ratio {}", report.business_mobile_ratio);
    }
}
