//! The demand model: per-(country, platform, metric, month) traffic shares.
//!
//! This is the latent quantity the Chrome telemetry pipeline observes. Each
//! site's demand in a breakdown combines: its pool weight in the country
//! (anchor registry weight, or pool-mixture × within-pool Zipf share), a
//! stable per-(site, country) taste factor (countries differ persistently),
//! platform substitution (Android multiplier), adult-content censorship,
//! seasonal category multipliers, month churn, and — for the time-on-page
//! metric — the site's dwell time.

use crate::anchors::ANCHORS;
use crate::config::WorldConfig;
use crate::country::{Country, Language, COUNTRIES};
use crate::season::{churn_sigma, seasonal_multiplier, Month};
use crate::site::{gauss, Pool, Site, SiteId, SiteUniverse};
use crate::types::{Breakdown, Metric, Platform};

/// The generated world: universe plus demand computation.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    universe: SiteUniverse,
}

impl World {
    /// Generates a world for `config`.
    pub fn new(config: WorldConfig) -> Self {
        let _span = wwv_obs::span!("world.generate");
        let universe = SiteUniverse::generate(&config);
        World { config, universe }
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The site universe.
    pub fn universe(&self) -> &SiteUniverse {
        &self.universe
    }

    /// The share of the country's `mix.language` weight allotted to `lang`:
    /// the primary language gets 70% when a second exists, otherwise all.
    fn language_share(country: &Country, lang: Language) -> f64 {
        match country.languages.iter().position(|l| *l == lang) {
            None => 0.0,
            Some(0) => {
                if country.languages.len() > 1 {
                    0.7
                } else {
                    1.0
                }
            }
            Some(_) => 0.3,
        }
    }

    /// Raw (unnormalized) demand weight of one site in a breakdown.
    pub fn weight(
        &self,
        site: &Site,
        country_idx: usize,
        platform: Platform,
        metric: Metric,
        month: Month,
    ) -> f64 {
        let country = &COUNTRIES[country_idx];
        let seed = self.config.seed;
        let noise_idx = site.id.0 as u64 * COUNTRIES.len() as u64 + country_idx as u64;
        let mut w = match site.pool {
            Pool::Anchor(i) => {
                let base = ANCHORS[i].weight_in(country_idx);
                // Small stable jitter: breaks cross-country ties without
                // disturbing the designed ordering.
                base * (gauss(seed, "anchor-noise", noise_idx) * 0.05).exp()
            }
            Pool::Global => self.pool_site_weight(site, country.mix.global, noise_idx),
            Pool::Language(lang) => self.pool_site_weight(
                site,
                country.mix.language * Self::language_share(country, lang),
                noise_idx,
            ),
            Pool::Regional(_) => self.pool_site_weight(site, country.mix.regional, noise_idx),
            Pool::National(_) => self.pool_site_weight(site, country.mix.national, noise_idx),
        };
        if w <= 0.0 {
            return 0.0;
        }
        // Synthetic adult sites are suppressed in censoring countries
        // (anchors already handle this in their registry weights).
        if site.adult && country.censors_adult && !matches!(site.pool, Pool::Anchor(_)) {
            w *= 0.05;
        }
        if platform.is_mobile() {
            w *= site.android_mult;
        }
        w *= seasonal_multiplier(site.category, month);
        let churn_idx = noise_idx * Month::ALL.len() as u64 + month.index() as u64;
        w *= (gauss(seed, "churn", churn_idx) * churn_sigma(month)).exp();
        if metric == Metric::TimeOnPage {
            // Seconds-per-load converts load demand into dwell demand; the
            // constant scale cancels on normalization.
            w *= site.dwell;
        }
        w
    }

    fn pool_site_weight(&self, site: &Site, mix_weight: f64, noise_idx: u64) -> f64 {
        if mix_weight <= 0.0 {
            return 0.0;
        }
        // Boosted national heads are calibrated like anchors: their designed
        // weights should survive the per-country taste noise.
        let sigma = if matches!(site.pool, Pool::National(_)) && site.pool_rank <= 6 {
            0.05
        } else {
            self.config.country_noise_sigma
        };
        mix_weight
            * site.pool_share
            * (gauss(self.config.seed, "country-noise", noise_idx) * sigma).exp()
    }

    /// Normalized demand shares over all candidate sites of a breakdown,
    /// in candidate order (unsorted).
    pub fn demand(&self, b: Breakdown) -> Vec<(SiteId, f64)> {
        let mut out: Vec<(SiteId, f64)> = self
            .universe
            .candidates(b.country)
            .iter()
            .map(|&i| {
                let site = &self.universe.sites[i as usize];
                (SiteId(i), self.weight(site, b.country, b.platform, b.metric, b.month))
            })
            .filter(|(_, w)| *w > 0.0)
            .collect();
        let total: f64 = out.iter().map(|(_, w)| w).sum();
        if total > 0.0 {
            for (_, w) in &mut out {
                *w /= total;
            }
        }
        out
    }

    /// The top `depth` sites of a breakdown by demand share, best first.
    pub fn ranked(&self, b: Breakdown, depth: usize) -> Vec<(SiteId, f64)> {
        let mut demand = self.demand(b);
        demand.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights").then(a.0.cmp(&b.0)));
        demand.truncate(depth);
        demand
    }

    /// The domain a site serves in a country.
    pub fn domain_of(&self, id: SiteId, country_idx: usize) -> String {
        self.universe.site(id).domain_in(country_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::Country;

    fn world() -> World {
        World::new(WorldConfig::small())
    }

    fn breakdown(code: &str, platform: Platform, metric: Metric) -> Breakdown {
        Breakdown {
            country: Country::index_of(code).unwrap(),
            platform,
            metric,
            month: Month::February2022,
        }
    }

    #[test]
    fn demand_normalizes() {
        let w = world();
        let d = w.demand(breakdown("US", Platform::Windows, Metric::PageLoads));
        let total: f64 = d.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(d.len() > 1000);
    }

    #[test]
    fn google_tops_page_loads_except_korea() {
        let w = world();
        let mut google_top = 0;
        for (ci, country) in COUNTRIES.iter().enumerate() {
            let b = Breakdown {
                country: ci,
                platform: Platform::Windows,
                metric: Metric::PageLoads,
                month: Month::February2022,
            };
            let top = w.ranked(b, 1)[0].0;
            let key = &w.universe().site(top).key;
            if key == "google" {
                google_top += 1;
            } else {
                assert_eq!(country.code, "KR", "unexpected non-google leader in {}", country.code);
                assert_eq!(key, "naver");
            }
        }
        assert_eq!(google_top, 44);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // ci is a country index, not a position
    fn youtube_leads_time_in_most_countries() {
        let w = world();
        let mut youtube = 0;
        let mut google = 0;
        for ci in 0..COUNTRIES.len() {
            let b = Breakdown {
                country: ci,
                platform: Platform::Windows,
                metric: Metric::TimeOnPage,
                month: Month::February2022,
            };
            let top = w.ranked(b, 1)[0].0;
            match w.universe().site(top).key.as_str() {
                "youtube" => youtube += 1,
                "google" => google += 1,
                other => panic!("unexpected time leader {other} in {}", COUNTRIES[ci].code),
            }
        }
        assert_eq!(youtube + google, 45);
        assert!((38..=42).contains(&youtube), "youtube leads {youtube}/45");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // ci is a country index, not a position
    fn top_site_share_in_paper_band() {
        // §4.1.2: per-country top site captures 12–33% of page loads.
        let w = world();
        for ci in 0..COUNTRIES.len() {
            let b = Breakdown {
                country: ci,
                platform: Platform::Windows,
                metric: Metric::PageLoads,
                month: Month::February2022,
            };
            let share = w.ranked(b, 1)[0].1;
            assert!(
                (0.10..=0.36).contains(&share),
                "{}: top share {share}",
                COUNTRIES[ci].code
            );
        }
    }

    #[test]
    fn android_differs_from_windows() {
        let w = world();
        let ci = Country::index_of("US").unwrap();
        let win: Vec<SiteId> = w
            .ranked(breakdown("US", Platform::Windows, Metric::PageLoads), 50)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let and: Vec<SiteId> = w
            .ranked(breakdown("US", Platform::Android, Metric::PageLoads), 50)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_ne!(win, and);
        // AMP Project must surge on Android.
        let amp = w.universe().by_key("ampproject").unwrap().id;
        let amp_rank_android = and.iter().position(|s| *s == amp);
        let amp_rank_windows = win.iter().position(|s| *s == amp);
        assert!(amp_rank_android.is_some(), "amp in Android top 50");
        assert!(
            amp_rank_windows.is_none() || amp_rank_android < amp_rank_windows,
            "amp ranks higher on Android"
        );
        let _ = ci;
    }

    #[test]
    fn december_boosts_ecommerce() {
        let w = world();
        let ci = Country::index_of("DE").unwrap();
        let site = w
            .universe()
            .sites
            .iter()
            .find(|s| s.category == wwv_taxonomy::Category::Ecommerce && !matches!(s.pool, Pool::Anchor(_)) && w.universe().candidates(ci).contains(&s.id.0))
            .unwrap()
            .clone();
        // Average ratio over churn noise by comparing expectations: the
        // seasonal multiplier is deterministic, churn is mean-one-ish; use
        // the raw weight ratio with churn stripped by comparing December to
        // November expectations across many sites instead of one.
        let dec = seasonal_multiplier(site.category, Month::December2021);
        assert!(dec > 1.2);
    }

    #[test]
    fn adult_suppressed_in_censoring_countries() {
        let w = world();
        let kr = breakdown("KR", Platform::Windows, Metric::PageLoads);
        let top10: Vec<String> = w
            .ranked(kr, 10)
            .into_iter()
            .map(|(s, _)| w.universe().site(s).key.clone())
            .collect();
        for adult in ["pornhub", "xnxx", "xvideos"] {
            assert!(!top10.contains(&adult.to_string()), "{adult} in KR top 10: {top10:?}");
        }
    }

    #[test]
    fn korea_top10_is_distinctive() {
        let w = world();
        let kr = breakdown("KR", Platform::Windows, Metric::PageLoads);
        let top10: Vec<String> = w
            .ranked(kr, 10)
            .into_iter()
            .map(|(s, _)| w.universe().site(s).key.clone())
            .collect();
        assert!(top10.contains(&"naver".to_string()));
        let endemic = top10
            .iter()
            .filter(|k| {
                k.starts_with("nkr")
                    || ["naver", "daum", "kakao", "namu", "dcinside", "arca", "fmkorea", "inven", "nexon", "afreecatv", "coupang", "wavve", "noonoo"].contains(&k.as_str())
            })
            .count();
        assert!(endemic >= 5, "KR top10 {top10:?}");
    }

    #[test]
    fn ranked_is_sorted_and_truncated() {
        let w = world();
        let r = w.ranked(breakdown("FR", Platform::Windows, Metric::PageLoads), 100);
        assert_eq!(r.len(), 100);
        for pair in r.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn deterministic_demand() {
        let a = world().demand(breakdown("IN", Platform::Android, Metric::TimeOnPage));
        let b = world().demand(breakdown("IN", Platform::Android, Metric::TimeOnPage));
        assert_eq!(a, b);
    }
}
