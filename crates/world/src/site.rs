//! The synthetic website universe.
//!
//! Sites come from five pools: the anchor registry, a global pool, one pool
//! per shared language, one per geographic cluster, and one national pool per
//! country. Pool membership is the ground truth behind the paper's
//! global/regional/national popularity structure (§5.1–§5.2): a country's
//! demand mixes its pools with the weights in [`crate::country::PoolMix`],
//! so sites in shared pools rank similarly across the countries sharing
//! them, while national-pool sites are endemic.

use crate::anchors::{AnchorSite, ANCHORS};
use crate::config::{WorldConfig, WorldSeed};
use crate::country::{Country, GeoCluster, Language, COUNTRIES};
use serde::{Deserialize, Serialize};
use wwv_stats::powerlaw::zipf_mandelbrot_shares;
use wwv_taxonomy::{Category, CategoryProfile};

/// Dense site identifier (index into [`SiteUniverse::sites`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// Which pool a site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pool {
    /// Index into [`ANCHORS`].
    Anchor(usize),
    /// Available in every country.
    Global,
    /// Shared by countries speaking the language.
    Language(Language),
    /// Shared by the geographic cluster.
    Regional(GeoCluster),
    /// Endemic to one country (index into [`COUNTRIES`]).
    National(usize),
}

/// One synthetic or anchor website.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Identifier (equal to the index in the universe).
    pub id: SiteId,
    /// Cross-country site key.
    pub key: String,
    /// Ground-truth category.
    pub category: Category,
    /// Pool membership.
    pub pool: Pool,
    /// 1-based popularity rank within the pool (0 for anchors).
    pub pool_rank: u32,
    /// Normalized within-pool popularity share (0 for anchors, which carry
    /// absolute weights in the registry).
    pub pool_share: f64,
    /// Mean foreground seconds per page load.
    pub dwell: f64,
    /// Demand multiplier on Android.
    pub android_mult: f64,
    /// Whether a dedicated Android app exists.
    pub has_android_app: bool,
    /// Adult content (suppressed where censored).
    pub adult: bool,
    /// Serves one ccTLD per country.
    pub cctld: bool,
    /// TLD (or full suffix) used when `cctld` is false.
    pub tld: String,
}

impl Site {
    /// The domain this site serves in the country at `country_idx`.
    pub fn domain_in(&self, country_idx: usize) -> String {
        if self.cctld {
            format!("{}.{}", self.key, COUNTRIES[country_idx].national_suffix)
        } else {
            format!("{}.{}", self.key, self.tld)
        }
    }

    /// The anchor entry, for anchor sites.
    pub fn anchor(&self) -> Option<&'static AnchorSite> {
        match self.pool {
            Pool::Anchor(i) => Some(&ANCHORS[i]),
            _ => None,
        }
    }
}

/// The full universe plus per-country candidate lists.
#[derive(Debug, Clone)]
pub struct SiteUniverse {
    /// All sites; `sites[id.0 as usize].id == id`.
    pub sites: Vec<Site>,
    /// For each country, the site indices with nonzero demand there.
    candidates: Vec<Vec<u32>>,
}

/// Uniform in `[0, 1)` from a sub-seed.
pub(crate) fn unit(seed: u64) -> f64 {
    (seed >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal via Box–Muller on two derived uniforms.
pub(crate) fn gauss(seed: WorldSeed, purpose: &str, index: u64) -> f64 {
    let u1 = unit(seed.derive_indexed(purpose, index.wrapping_mul(2))).max(1e-12);
    let u2 = unit(seed.derive_indexed(purpose, index.wrapping_mul(2) + 1));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Boosted shares of each country's strongest national sites — the
/// "3–4 nationally popular sites in every top 10" of Fig. 9.
const NATIONAL_HEAD_BOOST: [f64; 6] = [0.120, 0.100, 0.090, 0.055, 0.038, 0.026];

/// Categories rotated across countries' boosted national head sites:
/// portals/news/banks/classifieds/government/TV — the categories §5.3.2
/// finds to be top-10 in exactly one country.
const NATIONAL_HEAD_CATEGORIES: [Category; 6] = [
    Category::NewsMedia,
    Category::SearchEngines, // second national portal (21 countries in the paper)
    Category::EconomyFinance,
    Category::AuctionsMarketplaces,
    Category::GovernmentPolitics,
    Category::Television,
];

impl SiteUniverse {
    /// Generates the universe for `config`, deterministically.
    pub fn generate(config: &WorldConfig) -> Self {
        let _span = wwv_obs::span!("world.sites");
        let mut sites: Vec<Site> = Vec::new();
        // 1. Anchors.
        for (i, anchor) in ANCHORS.iter().enumerate() {
            sites.push(Site {
                id: SiteId(sites.len() as u32),
                key: anchor.key.to_owned(),
                category: anchor.category,
                pool: Pool::Anchor(i),
                pool_rank: 0,
                pool_share: 0.0,
                dwell: anchor.dwell,
                android_mult: anchor.android_mult,
                has_android_app: anchor.has_android_app,
                adult: anchor.adult,
                cctld: anchor.cctld,
                tld: anchor.tld.to_owned(),
            });
        }
        // 2. Global pool.
        generate_pool(&mut sites, config, Pool::Global, "g", config.global_pool);
        // 3. Language pools (only languages that appear in the country table).
        for lang in languages_in_use() {
            generate_pool(
                &mut sites,
                config,
                Pool::Language(lang),
                &format!("l{}", lang_code(lang)),
                config.language_pool,
            );
        }
        // 4. Regional pools.
        for geo in clusters_in_use() {
            generate_pool(
                &mut sites,
                config,
                Pool::Regional(geo),
                &format!("r{}", geo_code(geo)),
                config.regional_pool,
            );
        }
        // 5. National pools.
        for (ci, country) in COUNTRIES.iter().enumerate() {
            generate_national_pool(&mut sites, config, ci, country);
        }
        // Candidate lists.
        let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); COUNTRIES.len()];
        for site in &sites {
            for (ci, country) in COUNTRIES.iter().enumerate() {
                if site_available_in(site, ci, country) {
                    candidates[ci].push(site.id.0);
                }
            }
        }
        wwv_obs::global().counter("world.sites_generated").add(sites.len() as u64);
        SiteUniverse { sites, candidates }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site for an id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0 as usize]
    }

    /// Site indices with nonzero demand in the country.
    pub fn candidates(&self, country_idx: usize) -> &[u32] {
        &self.candidates[country_idx]
    }

    /// Looks a site up by key (linear scan; test convenience).
    pub fn by_key(&self, key: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.key == key)
    }
}

/// Whether a site can receive any demand in a country.
fn site_available_in(site: &Site, country_idx: usize, country: &Country) -> bool {
    match site.pool {
        Pool::Anchor(i) => ANCHORS[i].weight_in(country_idx) > 0.0,
        Pool::Global => true,
        Pool::Language(lang) => country.languages.contains(&lang),
        Pool::Regional(geo) => country.geo == geo,
        Pool::National(ci) => ci == country_idx,
    }
}

/// All languages spoken by at least one study country, deduplicated in
/// first-appearance order.
pub fn languages_in_use() -> Vec<Language> {
    let mut out: Vec<Language> = Vec::new();
    for c in &COUNTRIES {
        for l in c.languages {
            if !out.contains(l) {
                out.push(*l);
            }
        }
    }
    out
}

/// All geographic clusters with at least one member.
pub fn clusters_in_use() -> Vec<GeoCluster> {
    let mut out: Vec<GeoCluster> = Vec::new();
    for c in &COUNTRIES {
        if !out.contains(&c.geo) {
            out.push(c.geo);
        }
    }
    out
}

/// Short code for key prefixes.
fn lang_code(l: Language) -> &'static str {
    use Language as L;
    match l {
        L::English => "en",
        L::Spanish => "es",
        L::Portuguese => "pt",
        L::French => "fr",
        L::Dutch => "nl",
        L::German => "de",
        L::Italian => "it",
        L::Polish => "pl",
        L::Ukrainian => "uk",
        L::Russian => "ru",
        L::Arabic => "ar",
        L::Turkish => "tr",
        L::Japanese => "ja",
        L::Korean => "ko",
        L::Vietnamese => "vi",
        L::ChineseTraditional => "zh",
        L::Indonesian => "id",
        L::Thai => "th",
        L::Filipino => "fil",
        L::Hindi => "hi",
    }
}

/// Short code for key prefixes.
fn geo_code(g: GeoCluster) -> &'static str {
    use GeoCluster as G;
    match g {
        G::NorthAfrica => "naf",
        G::SubSaharanAfrica => "ssa",
        G::EastAsia => "eas",
        G::SoutheastAsia => "sea",
        G::SouthAsia => "sas",
        G::MiddleEast => "mde",
        G::WesternEurope => "weu",
        G::EasternEurope => "eeu",
        G::NorthAmerica => "nam",
        G::CentralAmerica => "cam",
        G::SouthAmerica => "sam",
        G::Oceania => "oce",
    }
}

/// Samples a category for a synthetic site at an effective global rank tier,
/// weighting by the category's rank-anchored prevalence and its locality
/// tendency for this pool kind.
fn sample_category(config: &WorldConfig, pool: Pool, effective_rank: usize, index: u64) -> Category {
    let mut weights = Vec::with_capacity(Category::ALL.len());
    let mut total = 0.0;
    for cat in Category::ALL {
        let profile = CategoryProfile::of(*cat);
        let rank_w = profile.windows_rank.weight_at_rank(effective_rank);
        let (g, r, n) = profile.locality.probabilities();
        let loc_w = match pool {
            Pool::Global | Pool::Anchor(_) => g,
            Pool::Language(_) | Pool::Regional(_) => r,
            Pool::National(_) => n,
        };
        let w = rank_w * loc_w;
        total += w;
        weights.push(w);
    }
    if total <= 0.0 {
        return Category::Unknown;
    }
    let u = unit(config.seed.derive_indexed("category", index)) * total;
    let mut acc = 0.0;
    for (cat, w) in Category::ALL.iter().zip(&weights) {
        acc += w;
        if u < acc {
            return *cat;
        }
    }
    Category::Unknown
}

/// Common attribute sampling for a synthetic site.
#[allow(clippy::too_many_arguments)]
fn synth_site(
    config: &WorldConfig,
    id: u32,
    key: String,
    pool: Pool,
    pool_rank: u32,
    pool_share: f64,
    category: Category,
    tld: String,
) -> Site {
    let seed = config.seed;
    let profile = CategoryProfile::of(category);
    let idx = id as u64;
    // Per-site dwell varies widely within a category, but the multiplier is
    // clamped so no synthetic site out-dwells the heaviest real category by
    // an order of magnitude (unclamped log-normal tails otherwise mint freak
    // "time on page" leaders no real dataset shows).
    let dwell = profile.dwell_seconds
        * (gauss(seed, "dwell", idx) * config.dwell_noise_sigma).exp().clamp(0.25, 4.0);
    // App likelihood falls with pool rank: popular brands ship apps.
    let app_prob = match pool_rank {
        0..=50 => 0.8,
        51..=500 => 0.55,
        _ => 0.30,
    };
    let has_android_app = unit(seed.derive_indexed("app", idx)) < app_prob;
    let mut android_mult = (config.platform_effect * profile.mobile_affinity * 0.5).exp()
        * (gauss(seed, "android", idx) * 0.30).exp();
    if has_android_app {
        // Native app substitutes for mobile-browser traffic.
        android_mult *= 0.55;
    }
    let adult = matches!(category, Category::Pornography | Category::AdultThemes);
    // Multi-country commerce brands serve per-country ccTLDs (§5.3.2).
    let cctld = matches!(pool, Pool::Global | Pool::Language(_))
        && matches!(category, Category::Ecommerce | Category::AuctionsMarketplaces)
        && unit(seed.derive_indexed("cctld", idx)) < 0.6;
    Site {
        id: SiteId(id),
        key,
        category,
        pool,
        pool_rank,
        pool_share,
        dwell,
        android_mult,
        has_android_app,
        adult,
        cctld,
        tld,
    }
}

/// Generic TLD mix for non-national synthetic sites.
fn generic_tld(config: &WorldConfig, index: u64) -> &'static str {
    let u = unit(config.seed.derive_indexed("tld", index));
    if u < 0.62 {
        "com"
    } else if u < 0.76 {
        "net"
    } else if u < 0.88 {
        "org"
    } else if u < 0.95 {
        "io"
    } else {
        "tv"
    }
}

/// Maps a within-pool rank onto an *effective* country-list rank in
/// 1..=10 000, used to pick category priors at the right tier. The mapping
/// stretches each pool across the whole rank range regardless of configured
/// pool size (so reduced test configs keep the same composition-by-rank
/// shapes), offset by where the pool's head typically lands in a country
/// list (global-pool leaders sit near the top; regional-pool leaders start
/// deeper).
pub fn effective_rank(pool: Pool, pool_rank: u32, count: usize) -> usize {
    let head_offset = match pool {
        Pool::Anchor(_) => 1.0,
        Pool::Global => 20.0,
        Pool::Language(_) => 120.0,
        Pool::Regional(_) => 300.0,
        Pool::National(_) => 8.0,
    };
    let span = 10_000.0 - head_offset;
    let frac = pool_rank as f64 / count.max(1) as f64;
    (head_offset + span * frac).round().max(1.0) as usize
}

fn generate_pool(
    sites: &mut Vec<Site>,
    config: &WorldConfig,
    pool: Pool,
    prefix: &str,
    count: usize,
) {
    let shares = zipf_mandelbrot_shares(count, config.zipf_exponent, config.zipf_shift);
    for (i, share) in shares.iter().enumerate() {
        let id = sites.len() as u32;
        let pool_rank = (i + 1) as u32;
        let tier = effective_rank(pool, pool_rank, count);
        let category = sample_category(config, pool, tier, id as u64);
        let key = format!("{prefix}{:05}", pool_rank);
        let tld = generic_tld(config, id as u64).to_owned();
        sites.push(synth_site(config, id, key, pool, pool_rank, *share, category, tld));
    }
}

fn generate_national_pool(
    sites: &mut Vec<Site>,
    config: &WorldConfig,
    country_idx: usize,
    country: &Country,
) {
    let count = config.national_pool;
    let boost_total: f64 = NATIONAL_HEAD_BOOST.iter().sum();
    let tail = zipf_mandelbrot_shares(count - NATIONAL_HEAD_BOOST.len(), config.zipf_exponent, config.zipf_shift);
    let pool = Pool::National(country_idx);
    // Deterministic per-country rotation of the boosted-head categories, so
    // different countries lead with different national institutions.
    let rotation = (config.seed.derive_indexed("nathead", country_idx as u64) % 6) as usize;
    for i in 0..count {
        let id = sites.len() as u32;
        let pool_rank = (i + 1) as u32;
        let key = format!("n{}{:05}", country.code.to_ascii_lowercase(), pool_rank);
        let (share, category) = if i < NATIONAL_HEAD_BOOST.len() {
            let cat = NATIONAL_HEAD_CATEGORIES[(i + rotation) % 6];
            (NATIONAL_HEAD_BOOST[i], cat)
        } else {
            let tier = effective_rank(pool, pool_rank, count);
            let cat = sample_category(config, pool, tier, id as u64);
            (tail[i - NATIONAL_HEAD_BOOST.len()] * (1.0 - boost_total), cat)
        };
        let tld = country.national_suffix.to_owned();
        let mut site = synth_site(config, id, key, pool, pool_rank, share, category, tld);
        // National sites never serve foreign ccTLDs.
        site.cctld = false;
        // Boosted heads are calibrated institutions (the country's top
        // portal/news/bank/TV); rein their dwell noise in so the calibration
        // survives (a 4× log-normal tail on a TV head would otherwise beat
        // YouTube for national time on page, which no country shows).
        if i < NATIONAL_HEAD_BOOST.len() {
            let profile = CategoryProfile::of(category);
            site.dwell = profile.dwell_seconds
                * (gauss(config.seed, "dwell", id as u64) * config.dwell_noise_sigma)
                    .exp()
                    .clamp(0.6, 1.5);
        }
        sites.push(site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> SiteUniverse {
        SiteUniverse::generate(&WorldConfig::small())
    }

    #[test]
    fn deterministic_generation() {
        let a = SiteUniverse::generate(&WorldConfig::small());
        let b = SiteUniverse::generate(&WorldConfig::small());
        assert_eq!(a.sites, b.sites);
    }

    #[test]
    fn ids_are_dense() {
        let u = universe();
        for (i, s) in u.sites.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i);
        }
    }

    #[test]
    fn keys_unique() {
        let u = universe();
        let mut keys: Vec<&str> = u.sites.iter().map(|s| s.key.as_str()).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn anchors_come_first() {
        let u = universe();
        assert_eq!(u.sites[0].key, "google");
        assert!(matches!(u.sites[ANCHORS.len() - 1].pool, Pool::Anchor(_)));
        assert!(!matches!(u.sites[ANCHORS.len()].pool, Pool::Anchor(_)));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // ci is a country index, not a position
    fn every_country_has_enough_candidates() {
        let u = universe();
        let config = WorldConfig::small();
        for ci in 0..COUNTRIES.len() {
            let c = u.candidates(ci).len();
            assert!(
                c > config.national_pool + config.global_pool,
                "{}: only {c} candidates",
                COUNTRIES[ci].code
            );
        }
    }

    #[test]
    fn national_sites_only_at_home() {
        let u = universe();
        let site = u.sites.iter().find(|s| matches!(s.pool, Pool::National(0))).unwrap();
        assert!(u.candidates(0).contains(&site.id.0));
        for ci in 1..COUNTRIES.len() {
            assert!(!u.candidates(ci).contains(&site.id.0));
        }
    }

    #[test]
    fn language_pool_shared_by_speakers() {
        let u = universe();
        let site = u
            .sites
            .iter()
            .find(|s| matches!(s.pool, Pool::Language(Language::Spanish)))
            .unwrap();
        let es = Country::index_of("ES").unwrap();
        let mx = Country::index_of("MX").unwrap();
        let jp = Country::index_of("JP").unwrap();
        assert!(u.candidates(es).contains(&site.id.0));
        assert!(u.candidates(mx).contains(&site.id.0));
        assert!(!u.candidates(jp).contains(&site.id.0));
    }

    #[test]
    fn pool_shares_normalized() {
        let u = universe();
        let total: f64 = u
            .sites
            .iter()
            .filter(|s| s.pool == Pool::Global)
            .map(|s| s.pool_share)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        // National pool shares sum to 1 too (boost + scaled tail).
        let nat: f64 = u
            .sites
            .iter()
            .filter(|s| s.pool == Pool::National(3))
            .map(|s| s.pool_share)
            .sum();
        assert!((nat - 1.0).abs() < 1e-9, "got {nat}");
    }

    #[test]
    fn national_domains_use_national_suffix() {
        let u = universe();
        let br = Country::index_of("BR").unwrap();
        let site = u.sites.iter().find(|s| matches!(s.pool, Pool::National(i) if i == br)).unwrap();
        assert!(site.domain_in(br).ends_with(".com.br"));
    }

    #[test]
    fn synthetic_domains_parse() {
        use wwv_domains::{DomainName, PublicSuffixList, SiteKey};
        let psl = PublicSuffixList::embedded();
        let u = universe();
        for site in u.sites.iter().step_by(37) {
            for ci in (0..COUNTRIES.len()).step_by(11) {
                let d = DomainName::parse(&site.domain_in(ci)).unwrap();
                let key = SiteKey::of(&d, &psl).unwrap();
                assert_eq!(key.as_str(), site.key);
            }
        }
    }

    #[test]
    fn dwell_positive_and_varied() {
        let u = universe();
        let dwells: Vec<f64> = u.sites.iter().take(500).map(|s| s.dwell).collect();
        assert!(dwells.iter().all(|d| *d > 0.0));
        let distinct = dwells.iter().filter(|d| (**d - dwells[0]).abs() > 1e-9).count();
        assert!(distinct > 100, "dwell noise should vary sites");
    }

    #[test]
    fn adult_flag_tracks_category() {
        let u = universe();
        for s in &u.sites {
            if s.category == Category::Pornography {
                assert!(s.adult);
            }
        }
    }

    #[test]
    fn boosted_national_heads_have_curated_categories() {
        let u = universe();
        for ci in [0usize, 7, 20] {
            let heads: Vec<&Site> = u
                .sites
                .iter()
                .filter(|s| matches!(s.pool, Pool::National(c) if c == ci) && s.pool_rank <= 6)
                .collect();
            assert_eq!(heads.len(), 6);
            for h in heads {
                assert!(NATIONAL_HEAD_CATEGORIES.contains(&h.category));
            }
        }
    }
}
