//! Shared dimension types: platform, popularity metric, breakdown key.

use crate::season::Month;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Browser platform. The paper restricts analysis to the two largest
/// platforms (§3.1): Windows (desktop) and Android (mobile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Platform {
    /// Desktop (Windows).
    Windows,
    /// Mobile (Android).
    Android,
}

impl Platform {
    /// Both platforms, desktop first.
    pub const ALL: [Platform; 2] = [Platform::Windows, Platform::Android];

    /// Whether this is the mobile platform.
    pub fn is_mobile(&self) -> bool {
        matches!(self, Platform::Android)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Platform::Windows => "Windows",
            Platform::Android => "Android",
        })
    }
}

/// Popularity metric. The paper analyzes completed page loads and time on
/// page (initiated page loads are excluded as nearly identical to completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Metric {
    /// Number of completed page loads (First Contentful Paint).
    PageLoads,
    /// Total foreground time on page.
    TimeOnPage,
}

impl Metric {
    /// Both metrics, page loads first.
    pub const ALL: [Metric; 2] = [Metric::PageLoads, Metric::TimeOnPage];
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Metric::PageLoads => "Page Loads",
            Metric::TimeOnPage => "Time on Page",
        })
    }
}

/// One (country, platform, metric, month) breakdown — the key of every rank
/// list in the Chrome dataset. Countries are referenced by index into
/// [`crate::country::COUNTRIES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Breakdown {
    /// Index into [`crate::country::COUNTRIES`].
    pub country: usize,
    /// Platform.
    pub platform: Platform,
    /// Popularity metric.
    pub metric: Metric,
    /// Month.
    pub month: Month,
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            crate::country::COUNTRIES[self.country].code,
            self.platform,
            self.metric,
            self.month
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_flags() {
        assert!(Platform::Android.is_mobile());
        assert!(!Platform::Windows.is_mobile());
        assert_eq!(Platform::ALL.len(), 2);
    }

    #[test]
    fn display_matches_paper_terms() {
        assert_eq!(Platform::Windows.to_string(), "Windows");
        assert_eq!(Metric::TimeOnPage.to_string(), "Time on Page");
    }

    #[test]
    fn breakdown_display_is_informative() {
        let b = Breakdown {
            country: 0,
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            month: Month::February2022,
        };
        let s = b.to_string();
        assert!(s.contains("Windows") && s.contains("Page Loads"));
    }
}
