//! Registry of real-world anchor sites.
//!
//! The paper's site-level findings name specific websites: Google is the top
//! site by page loads in 44/45 countries (Naver wins South Korea); users
//! spend the most time on YouTube in 40/45 countries; WhatsApp, Roblox and
//! Amazon appear in desktop top-6 lists; XNXX/XVideos/Pornhub and the AMP
//! Project dominate Android top-10s; South Korea fields four forums, Nexon,
//! Navere/Daum and namu.wiki; Vietnam censors adult content yet ranks
//! sex333; Japan's only video-related top sites are Twitch and Nico; and so
//! on (§4.1–§5.3). This module encodes those sites with per-country weights
//! so the synthetic dataset reproduces each fact.
//!
//! Weight semantics: `base` is the site's demand weight in every country
//! (relative to a per-country procedural-pool total of ≈1.0), and
//! `per_country` entries *replace* the base for that country. A weight of
//! 0.0 with country overrides models a site endemic to those countries.

use crate::country::COUNTRIES;
use wwv_taxonomy::Category;

/// One anchor site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorSite {
    /// Cross-country site key (the merged identity, e.g. `google`).
    pub key: &'static str,
    /// Ground-truth category.
    pub category: Category,
    /// Demand weight in countries without an override.
    pub base: f64,
    /// Mean foreground seconds per page load.
    pub dwell: f64,
    /// Demand multiplier on Android (captures native-app substitution:
    /// below 1 when users prefer the app, above 1 for mobile-first sites).
    pub android_mult: f64,
    /// Whether a dedicated Android app exists (§4.1.2's 82% statistic).
    pub has_android_app: bool,
    /// Whether the site serves a distinct ccTLD per country (`amazon.de`,
    /// `shopee.vn`, …) — §5.3.2's e-commerce pattern.
    pub cctld: bool,
    /// Adult content, suppressed in censoring countries unless the country
    /// has an explicit override (the sex333-in-Vietnam case).
    pub adult: bool,
    /// TLD used when `cctld` is false.
    pub tld: &'static str,
    /// Per-country weight overrides `(ISO code, weight)`.
    pub per_country: &'static [(&'static str, f64)],
}

impl AnchorSite {
    /// The demand weight of this anchor in the country at `country_idx`,
    /// before platform/metric/month adjustments.
    pub fn weight_in(&self, country_idx: usize) -> f64 {
        let country = &COUNTRIES[country_idx];
        if let Some((_, w)) = self.per_country.iter().find(|(code, _)| *code == country.code) {
            return *w;
        }
        let mut w = self.base;
        if self.adult && country.censors_adult {
            // Censorship with "varying efficacy" (§5.3.2): heavy suppression,
            // not elimination.
            w *= 0.05;
        }
        w
    }

    /// The domain this anchor serves in the country at `country_idx`.
    pub fn domain_in(&self, country_idx: usize) -> String {
        if self.cctld {
            format!("{}.{}", self.key, COUNTRIES[country_idx].national_suffix)
        } else {
            format!("{}.{}", self.key, self.tld)
        }
    }
}

/// Shorthand constructor for the static table.
const fn a(
    key: &'static str,
    category: Category,
    base: f64,
    dwell: f64,
    android_mult: f64,
    has_android_app: bool,
    per_country: &'static [(&'static str, f64)],
) -> AnchorSite {
    AnchorSite {
        key,
        category,
        base,
        dwell,
        android_mult,
        has_android_app,
        cctld: false,
        adult: false,
        tld: "com",
        per_country,
    }
}

/// Shorthand for national/endemic sites: like [`a`] with
/// `has_android_app = true` (most of these brands ship an app).
const fn n(
    key: &'static str,
    category: Category,
    base: f64,
    dwell: f64,
    android_mult: f64,
    per_country: &'static [(&'static str, f64)],
) -> AnchorSite {
    a(key, category, base, dwell, android_mult, true, per_country)
}

const fn adult(
    key: &'static str,
    base: f64,
    dwell: f64,
    android_mult: f64,
    per_country: &'static [(&'static str, f64)],
) -> AnchorSite {
    AnchorSite {
        key,
        category: Category::Pornography,
        base,
        dwell,
        android_mult,
        has_android_app: false,
        cctld: false,
        adult: true,
        tld: "com",
        per_country,
    }
}

const fn cc(
    key: &'static str,
    category: Category,
    base: f64,
    dwell: f64,
    android_mult: f64,
    per_country: &'static [(&'static str, f64)],
) -> AnchorSite {
    AnchorSite {
        key,
        category,
        base,
        dwell,
        android_mult,
        has_android_app: true,
        cctld: true,
        adult: false,
        tld: "com",
        per_country,
    }
}

use Category as C;

/// Countries where Google (not YouTube) leads time on page (§4.1.2 names the
/// US; the other four are unnamed in the paper, chosen here as large
/// English-speaking markets).
const YT_SOFT: f64 = 0.080;

/// The anchor registry.
pub static ANCHORS: &[AnchorSite] = &[
    // --- The global head. ---
    a("google", C::SearchEngines, 0.37, 120.0, 0.90, true, &[("KR", 0.16), ("US", 0.43), ("GB", 0.42), ("CA", 0.42), ("AU", 0.42), ("DE", 0.42)]),
    a("youtube", C::VideoStreaming, 0.15, 600.0, 0.35, true, &[("US", YT_SOFT), ("GB", YT_SOFT), ("CA", YT_SOFT), ("AU", YT_SOFT), ("DE", YT_SOFT), ("JP", 0.13), ("KR", 0.12)]),
    a("facebook", C::SocialNetworks, 0.09, 300.0, 0.80, true, &[("PH", 0.17), ("VN", 0.13), ("ID", 0.12), ("MX", 0.11), ("JP", 0.02), ("KR", 0.015), ("RU", 0.01)]),
    a("whatsapp", C::ChatMessaging, 0.045, 400.0, 0.15, true, &[("US", 0.02), ("JP", 0.002), ("KR", 0.002), ("VN", 0.004), ("RU", 0.004)]),
    a("instagram", C::SocialNetworks, 0.030, 250.0, 0.50, true, &[("RU", 0.008)]),
    a("twitter", C::SocialNetworks, 0.035, 250.0, 0.60, true, &[("JP", 0.08), ("RU", 0.01)]),
    a("netflix", C::VideoStreaming, 0.030, 900.0, 0.20, true, &[("JP", 0.0), ("VN", 0.0), ("RU", 0.0), ("DZ", 0.0), ("KR", 0.02)]),
    cc("amazon", C::Ecommerce, 0.0, 45.0, 0.55, &[("US", 0.050), ("GB", 0.045), ("DE", 0.050), ("FR", 0.040), ("IT", 0.042), ("ES", 0.038), ("CA", 0.042), ("JP", 0.045), ("IN", 0.036), ("AU", 0.040), ("MX", 0.022), ("BR", 0.012), ("NL", 0.022), ("BE", 0.024), ("TR", 0.010)]),
    a("roblox", C::Gaming, 0.025, 500.0, 0.30, true, &[("JP", 0.004), ("KR", 0.003), ("VN", 0.006), ("TW", 0.006), ("HK", 0.006)]),
    a("twitch", C::VideoStreaming, 0.022, 700.0, 0.40, true, &[("IN", 0.003), ("NG", 0.002), ("KE", 0.002), ("EG", 0.003), ("DZ", 0.002), ("MA", 0.002), ("TN", 0.002), ("VN", 0.004), ("ID", 0.004), ("TH", 0.004), ("BO", 0.003), ("DO", 0.002), ("GT", 0.003), ("PA", 0.002)]),
    // --- Adult content: global on both platforms, stronger on mobile,
    //     suppressed where censored (KR, TR, VN, RU). ---
    adult("pornhub", 0.036, 280.0, 1.8, &[]),
    adult("xnxx", 0.032, 280.0, 2.0, &[]),
    adult("xvideos", 0.026, 280.0, 2.0, &[("RU", 0.030)]),
    adult("sex333", 0.0, 280.0, 1.8, &[("VN", 0.020)]),
    // --- Mobile plumbing: AMP serving other sites' pages (Android only). ---
    a("ampproject", C::Redirect, 0.002, 30.0, 16.0, false, &[]),
    // --- Work and school platforms (desktop-leaning, §4.2.1's 22/45). ---
    a("office", C::Business, 0.020, 200.0, 0.20, true, &[("JP", 0.012), ("KR", 0.010)]),
    a("sharepoint", C::Business, 0.015, 180.0, 0.10, false, &[]),
    a("zoom", C::ChatMessaging, 0.012, 500.0, 0.25, true, &[]),
    a("linkedin", C::JobSearchCareers, 0.010, 150.0, 0.45, true, &[]),
    a("wikipedia", C::Education, 0.025, 150.0, 0.90, false, &[("KR", 0.006)]),
    // --- Other global consumer sites. ---
    a("tiktok", C::VideoStreaming, 0.020, 400.0, 0.70, true, &[("IN", 0.0)]),
    a("reddit", C::Forums, 0.015, 300.0, 0.55, true, &[("US", 0.030), ("CA", 0.028), ("GB", 0.024), ("AU", 0.028), ("NZ", 0.024), ("JP", 0.003), ("KR", 0.002)]),
    a("spotify", C::AudioStreaming, 0.012, 500.0, 0.30, true, &[]),
    a("discord", C::ChatMessaging, 0.012, 400.0, 0.30, true, &[]),
    a("pinterest", C::SocialNetworks, 0.012, 200.0, 1.40, true, &[]),
    a("ebay", C::AuctionsMarketplaces, 0.004, 60.0, 0.60, true, &[("US", 0.018), ("GB", 0.018), ("DE", 0.020), ("IT", 0.012), ("AU", 0.014)]),
    a("aliexpress", C::Ecommerce, 0.006, 55.0, 0.80, true, &[("RU", 0.036), ("ES", 0.036), ("PL", 0.036), ("BR", 0.014), ("CL", 0.014)]),
    n("primevideo", C::VideoStreaming, 0.0, 800.0, 0.30, &[("US", 0.010), ("GB", 0.008), ("DE", 0.008), ("IN", 0.010), ("JP", 0.0), ("BR", 0.006), ("MX", 0.006)]),
    n("hbomax", C::VideoStreaming, 0.0, 800.0, 0.30, &[("US", 0.008), ("ES", 0.006), ("MX", 0.007), ("AR", 0.006), ("CL", 0.006), ("CO", 0.006), ("PE", 0.005), ("BR", 0.006)]),
    n("disneyplus", C::VideoStreaming, 0.0, 800.0, 0.30, &[("US", 0.007), ("GB", 0.006), ("CA", 0.006), ("AU", 0.006), ("NZ", 0.005), ("DE", 0.005), ("FR", 0.005)]),
    // --- Technology head (stable 10–12% of ranks per Fig. 3). ---
    a("microsoft", C::Technology, 0.016, 90.0, 0.25, false, &[]),
    a("apple", C::Technology, 0.012, 100.0, 0.45, false, &[]),
    a("github", C::Technology, 0.006, 200.0, 0.15, false, &[]),
    a("adobe", C::Technology, 0.006, 120.0, 0.20, false, &[]),
    a("stackoverflow", C::Technology, 0.005, 180.0, 0.20, false, &[]),
    a("wordpress", C::Technology, 0.005, 110.0, 0.40, false, &[]),
    a("samsung", C::Technology, 0.005, 90.0, 0.80, true, &[("KR", 0.012)]),
    a("canva", C::Technology, 0.004, 200.0, 0.50, true, &[]),
    a("cloudflare", C::Technology, 0.003, 60.0, 0.30, false, &[]),
    a("speedtest", C::Technology, 0.003, 60.0, 0.70, true, &[]),
    a("bing", C::SearchEngines, 0.012, 25.0, 0.25, false, &[]),
    a("duckduckgo", C::SearchEngines, 0.006, 25.0, 0.40, true, &[]),
    a("yahoo", C::NewsMedia, 0.010, 120.0, 0.50, true, &[("JP", 0.090), ("TW", 0.030), ("US", 0.018)]),
    // --- Russia & Ukraine. ---
    a("yandex", C::SearchEngines, 0.002, 60.0, 0.70, true, &[("RU", 0.130), ("UA", 0.020), ("TR", 0.012)]),
    n("vk", C::SocialNetworks, 0.0, 350.0, 0.70, &[("RU", 0.080), ("UA", 0.018)]),
    n("ok", C::SocialNetworks, 0.0, 300.0, 0.70, &[("RU", 0.030), ("UA", 0.008)]),
    a("telegram", C::ChatMessaging, 0.008, 350.0, 0.40, true, &[("RU", 0.030), ("UA", 0.022)]),
    n("mailru", C::Webmail, 0.0, 150.0, 0.50, &[("RU", 0.035)]),
    n("kinopoisk", C::MoviesHomeVideo, 0.0, 400.0, 0.40, &[("RU", 0.016)]),
    // --- South Korea: the paper's showcase endemic ecosystem. ---
    n("naver", C::SearchEngines, 0.0, 180.0, 0.80, &[("KR", 0.270)]),
    n("daum", C::SearchEngines, 0.0, 150.0, 0.70, &[("KR", 0.055)]),
    n("kakao", C::ChatMessaging, 0.0, 300.0, 0.40, &[("KR", 0.040)]),
    n("namu", C::Education, 0.0, 200.0, 1.10, &[("KR", 0.035)]),
    n("dcinside", C::Forums, 0.0, 300.0, 0.90, &[("KR", 0.033)]),
    n("arca", C::Forums, 0.0, 300.0, 0.90, &[("KR", 0.028)]),
    n("fmkorea", C::Forums, 0.0, 300.0, 0.90, &[("KR", 0.027)]),
    n("inven", C::Forums, 0.0, 250.0, 0.80, &[("KR", 0.024)]),
    n("nexon", C::Gaming, 0.0, 400.0, 0.20, &[("KR", 0.026)]),
    n("afreecatv", C::VideoStreaming, 0.0, 700.0, 0.50, &[("KR", 0.024)]),
    n("wavve", C::VideoStreaming, 0.0, 700.0, 0.30, &[("KR", 0.014)]),
    n("noonoo", C::VideoStreaming, 0.0, 700.0, 0.70, &[("KR", 0.012)]),
    n("coupang", C::Ecommerce, 0.0, 50.0, 0.50, &[("KR", 0.040)]),
    // --- Japan: national-heavy, video = Twitch and Nico only. ---
    n("nicovideo", C::VideoStreaming, 0.0, 600.0, 0.60, &[("JP", 0.040)]),
    n("rakuten", C::Ecommerce, 0.0, 55.0, 0.55, &[("JP", 0.045)]),
    n("line", C::ChatMessaging, 0.0, 300.0, 0.30, &[("JP", 0.025), ("TH", 0.025), ("TW", 0.022)]),
    n("fc2", C::Forums, 0.0, 250.0, 0.90, &[("JP", 0.018)]),
    n("pixiv", C::Arts, 0.0, 300.0, 0.80, &[("JP", 0.016)]),
    n("5ch", C::Forums, 0.0, 300.0, 0.90, &[("JP", 0.020)]),
    n("dmm", C::Gaming, 0.0, 300.0, 0.40, &[("JP", 0.014)]),
    // --- Vietnam. ---
    n("zalo", C::ChatMessaging, 0.0, 350.0, 0.40, &[("VN", 0.045)]),
    n("vnexpress", C::NewsMedia, 0.0, 150.0, 0.90, &[("VN", 0.035)]),
    n("coccoc", C::SearchEngines, 0.0, 40.0, 0.30, &[("VN", 0.020)]),
    // --- Southeast Asia e-commerce (per-country ccTLDs, §5.3.2). ---
    cc("shopee", C::Ecommerce, 0.0, 50.0, 1.10, &[("VN", 0.044), ("TW", 0.042), ("ID", 0.042), ("TH", 0.042), ("PH", 0.042), ("BR", 0.012)]),
    cc("lazada", C::Ecommerce, 0.0, 50.0, 1.00, &[("VN", 0.018), ("ID", 0.016), ("TH", 0.018), ("PH", 0.016)]),
    n("tokopedia", C::Ecommerce, 0.0, 50.0, 0.90, &[("ID", 0.040)]),
    n("detik", C::NewsMedia, 0.0, 130.0, 1.20, &[("ID", 0.025)]),
    n("bilibili", C::VideoStreaming, 0.0, 600.0, 0.60, &[("TW", 0.016), ("HK", 0.016)]),
    n("pixnet", C::Lifestyle, 0.0, 150.0, 1.00, &[("TW", 0.014)]),
    n("ltn", C::NewsMedia, 0.0, 130.0, 1.10, &[("TW", 0.018)]),
    n("hk01", C::NewsMedia, 0.0, 130.0, 1.10, &[("HK", 0.020)]),
    n("pantip", C::Forums, 0.0, 280.0, 1.10, &[("TH", 0.022)]),
    n("inquirer", C::NewsMedia, 0.0, 130.0, 1.10, &[("PH", 0.018)]),
    // --- India. ---
    n("cricbuzz", C::Sports, 0.0, 180.0, 1.30, &[("IN", 0.028)]),
    n("hotstar", C::VideoStreaming, 0.0, 700.0, 0.50, &[("IN", 0.026)]),
    n("flipkart", C::Ecommerce, 0.0, 50.0, 0.80, &[("IN", 0.038)]),
    n("timesofindia", C::NewsMedia, 0.0, 130.0, 1.20, &[("IN", 0.020)]),
    // --- Turkey. ---
    n("trendyol", C::Ecommerce, 0.0, 50.0, 1.00, &[("TR", 0.044)]),
    n("sahibinden", C::AuctionsMarketplaces, 0.0, 90.0, 0.90, &[("TR", 0.030)]),
    n("hepsiburada", C::Ecommerce, 0.0, 50.0, 0.90, &[("TR", 0.024)]),
    n("sozcu", C::NewsMedia, 0.0, 130.0, 1.10, &[("TR", 0.020)]),
    // --- Europe nationals. ---
    a("bbc", C::NewsMedia, 0.003, 140.0, 0.90, true, &[("GB", 0.040)]),
    a("dailymail", C::NewsMedia, 0.001, 140.0, 1.10, false, &[("GB", 0.016)]),
    n("leboncoin", C::AuctionsMarketplaces, 0.0, 90.0, 0.90, &[("FR", 0.035)]),
    n("orange", C::Webmail, 0.0, 120.0, 0.60, &[("FR", 0.022)]),
    n("lemonde", C::NewsMedia, 0.0, 140.0, 0.90, &[("FR", 0.016)]),
    n("allegro", C::AuctionsMarketplaces, 0.0, 90.0, 0.80, &[("PL", 0.045)]),
    n("onet", C::NewsMedia, 0.0, 130.0, 0.90, &[("PL", 0.028)]),
    n("wp", C::NewsMedia, 0.0, 130.0, 0.90, &[("PL", 0.024)]),
    n("marktplaats", C::AuctionsMarketplaces, 0.0, 90.0, 0.80, &[("NL", 0.035)]),
    n("bol", C::Ecommerce, 0.0, 50.0, 0.70, &[("NL", 0.038), ("BE", 0.014)]),
    n("nu", C::NewsMedia, 0.0, 130.0, 1.00, &[("NL", 0.026)]),
    n("2dehands", C::AuctionsMarketplaces, 0.0, 90.0, 0.80, &[("BE", 0.028)]),
    n("kuleuven", C::EducationalInstitutions, 0.0, 200.0, 0.30, &[("BE", 0.013)]),
    n("hln", C::NewsMedia, 0.0, 130.0, 1.00, &[("BE", 0.024)]),
    n("idealo", C::Ecommerce, 0.0, 60.0, 0.70, &[("DE", 0.034)]),
    n("gmx", C::Webmail, 0.0, 150.0, 0.50, &[("DE", 0.024)]),
    n("bild", C::NewsMedia, 0.0, 130.0, 1.00, &[("DE", 0.026)]),
    n("subito", C::AuctionsMarketplaces, 0.0, 90.0, 0.80, &[("IT", 0.024)]),
    n("repubblica", C::NewsMedia, 0.0, 140.0, 0.90, &[("IT", 0.022)]),
    n("elpais", C::NewsMedia, 0.0, 140.0, 0.90, &[("ES", 0.020)]),
    n("marca", C::Sports, 0.0, 150.0, 1.00, &[("ES", 0.022)]),
    n("milanuncios", C::AuctionsMarketplaces, 0.0, 90.0, 0.90, &[("ES", 0.018)]),
    // --- Americas nationals. ---
    n("craigslist", C::AuctionsMarketplaces, 0.0, 90.0, 0.60, &[("US", 0.018)]),
    n("espn", C::Sports, 0.0, 150.0, 0.80, &[("US", 0.016)]),
    a("cnn", C::NewsMedia, 0.001, 140.0, 0.90, true, &[("US", 0.018)]),
    n("kijiji", C::AuctionsMarketplaces, 0.0, 90.0, 0.70, &[("CA", 0.022)]),
    n("cbc", C::NewsMedia, 0.0, 140.0, 0.90, &[("CA", 0.018)]),
    cc("mercadolibre", C::Ecommerce, 0.0, 55.0, 0.80, &[("AR", 0.050), ("MX", 0.038), ("CL", 0.038), ("CO", 0.038), ("PE", 0.038), ("UY", 0.038), ("VE", 0.036), ("EC", 0.038), ("BO", 0.036), ("BR", 0.030)]),
    n("globo", C::Television, 0.0, 300.0, 0.80, &[("BR", 0.040)]),
    n("uol", C::NewsMedia, 0.0, 140.0, 0.90, &[("BR", 0.028)]),
    n("americanas", C::Ecommerce, 0.0, 50.0, 0.80, &[("BR", 0.016)]),
    n("infobae", C::NewsMedia, 0.0, 140.0, 1.00, &[("AR", 0.024), ("CO", 0.010)]),
    n("clarin", C::NewsMedia, 0.0, 140.0, 0.90, &[("AR", 0.020)]),
    n("yapo", C::AuctionsMarketplaces, 0.0, 90.0, 0.90, &[("CL", 0.024)]),
    n("emol", C::NewsMedia, 0.0, 140.0, 0.90, &[("CL", 0.018)]),
    n("eltiempo", C::NewsMedia, 0.0, 140.0, 0.90, &[("CO", 0.022)]),
    n("elcomercio", C::NewsMedia, 0.0, 140.0, 0.90, &[("PE", 0.022), ("EC", 0.018)]),
    n("unam", C::EducationalInstitutions, 0.0, 200.0, 0.40, &[("MX", 0.014)]),
    n("uba", C::EducationalInstitutions, 0.0, 200.0, 0.40, &[("AR", 0.011)]),
    n("udelar", C::EducationalInstitutions, 0.0, 200.0, 0.40, &[("UY", 0.012)]),
    // --- Oceania nationals. ---
    n("tvnz", C::Television, 0.0, 300.0, 0.70, &[("NZ", 0.024)]),
    n("trademe", C::AuctionsMarketplaces, 0.0, 90.0, 0.80, &[("NZ", 0.032)]),
    n("stuff", C::NewsMedia, 0.0, 140.0, 1.00, &[("NZ", 0.022)]),
    n("gumtree", C::AuctionsMarketplaces, 0.0, 90.0, 0.80, &[("AU", 0.020), ("ZA", 0.018)]),
    n("abc", C::NewsMedia, 0.0, 140.0, 0.90, &[("AU", 0.020)]),
    n("realestate", C::RealEstate, 0.0, 110.0, 0.80, &[("AU", 0.014)]),
    // --- Africa nationals. ---
    n("ouedkniss", C::AuctionsMarketplaces, 0.0, 90.0, 1.10, &[("DZ", 0.030)]),
    n("echoroukonline", C::NewsMedia, 0.0, 130.0, 1.20, &[("DZ", 0.018)]),
    n("youm7", C::NewsMedia, 0.0, 130.0, 1.20, &[("EG", 0.026)]),
    n("hespress", C::NewsMedia, 0.0, 130.0, 1.20, &[("MA", 0.028)]),
    n("avito", C::AuctionsMarketplaces, 0.0, 90.0, 1.00, &[("MA", 0.020), ("RU", 0.028)]),
    n("jumia", C::Ecommerce, 0.0, 50.0, 1.00, &[("NG", 0.038), ("KE", 0.038), ("EG", 0.036)]),
    n("nairaland", C::Forums, 0.0, 250.0, 1.20, &[("NG", 0.026)]),
    n("punchng", C::NewsMedia, 0.0, 130.0, 1.20, &[("NG", 0.018)]),
    n("tuko", C::NewsMedia, 0.0, 130.0, 1.30, &[("KE", 0.024)]),
    n("standardmedia", C::NewsMedia, 0.0, 130.0, 1.10, &[("KE", 0.016)]),
    n("news24", C::NewsMedia, 0.0, 130.0, 1.00, &[("ZA", 0.026)]),
    n("takealot", C::Ecommerce, 0.0, 50.0, 0.80, &[("ZA", 0.038)]),
    n("mosaiquefm", C::NewsMedia, 0.0, 130.0, 1.20, &[("TN", 0.024)]),
    n("tayara", C::AuctionsMarketplaces, 0.0, 90.0, 1.10, &[("TN", 0.020)]),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::Country;
    use std::collections::HashSet;

    #[test]
    fn keys_unique() {
        let keys: HashSet<&str> = ANCHORS.iter().map(|a| a.key).collect();
        assert_eq!(keys.len(), ANCHORS.len());
    }

    #[test]
    fn every_override_names_a_study_country() {
        for anchor in ANCHORS {
            for (code, w) in anchor.per_country {
                assert!(Country::by_code(code).is_some(), "{} references {code}", anchor.key);
                assert!(*w >= 0.0);
            }
        }
    }

    #[test]
    fn google_dominates_by_loads_except_korea() {
        let google = ANCHORS.iter().find(|a| a.key == "google").unwrap();
        let naver = ANCHORS.iter().find(|a| a.key == "naver").unwrap();
        let kr = Country::index_of("KR").unwrap();
        assert!(naver.weight_in(kr) > google.weight_in(kr), "Naver must beat Google in KR");
        for (idx, country) in COUNTRIES.iter().enumerate() {
            if country.code == "KR" {
                continue;
            }
            for other in ANCHORS.iter().filter(|a| a.key != "google") {
                assert!(
                    google.weight_in(idx) > other.weight_in(idx),
                    "google must outweigh {} in {}",
                    other.key,
                    country.code
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // idx is a country index, not a position
    fn youtube_wins_time_in_most_countries() {
        // time weight = loads weight × dwell.
        let mut youtube_wins = 0;
        let mut google_wins = 0;
        for idx in 0..COUNTRIES.len() {
            let best = ANCHORS
                .iter()
                .max_by(|a, b| {
                    let ta = a.weight_in(idx) * a.dwell;
                    let tb = b.weight_in(idx) * b.dwell;
                    ta.partial_cmp(&tb).unwrap()
                })
                .unwrap();
            match best.key {
                "youtube" => youtube_wins += 1,
                "google" => google_wins += 1,
                other => panic!("unexpected time leader {other} in {}", COUNTRIES[idx].code),
            }
        }
        assert_eq!(youtube_wins, 40, "paper: YouTube leads time in 40/45");
        assert_eq!(google_wins, 5, "paper: Google leads time in the remaining 5");
    }

    #[test]
    fn adult_sites_suppressed_in_censoring_countries() {
        let pornhub = ANCHORS.iter().find(|a| a.key == "pornhub").unwrap();
        let us = Country::index_of("US").unwrap();
        let kr = Country::index_of("KR").unwrap();
        assert!(pornhub.weight_in(kr) < pornhub.weight_in(us) * 0.1);
    }

    #[test]
    fn sex333_survives_vietnamese_censorship() {
        let sex333 = ANCHORS.iter().find(|a| a.key == "sex333").unwrap();
        let vn = Country::index_of("VN").unwrap();
        assert!(sex333.weight_in(vn) > 0.01, "explicit override bypasses suppression");
        let us = Country::index_of("US").unwrap();
        assert_eq!(sex333.weight_in(us), 0.0);
    }

    #[test]
    fn cctld_sites_get_national_domains() {
        let amazon = ANCHORS.iter().find(|a| a.key == "amazon").unwrap();
        let gb = Country::index_of("GB").unwrap();
        let br = Country::index_of("BR").unwrap();
        assert_eq!(amazon.domain_in(gb), "amazon.co.uk");
        assert_eq!(amazon.domain_in(br), "amazon.com.br");
        let google = ANCHORS.iter().find(|a| a.key == "google").unwrap();
        assert_eq!(google.domain_in(gb), "google.com");
    }

    #[test]
    fn ampproject_is_android_heavy() {
        let amp = ANCHORS.iter().find(|a| a.key == "ampproject").unwrap();
        assert!(amp.android_mult > 5.0);
    }

    #[test]
    fn korea_has_a_rich_endemic_ecosystem() {
        let kr = Country::index_of("KR").unwrap();
        let endemic: Vec<&AnchorSite> = ANCHORS
            .iter()
            .filter(|a| a.base == 0.0 && a.weight_in(kr) > 0.0)
            .collect();
        assert!(endemic.len() >= 10, "found {}", endemic.len());
        let forums = endemic.iter().filter(|a| a.category == C::Forums).count();
        assert_eq!(forums, 4, "the paper's four Korean forums");
    }

    #[test]
    fn anchor_domains_parse_and_merge() {
        use wwv_domains::{DomainName, PublicSuffixList, SiteKey};
        let psl = PublicSuffixList::embedded();
        for anchor in ANCHORS {
            for idx in 0..COUNTRIES.len() {
                if anchor.weight_in(idx) <= 0.0 {
                    continue;
                }
                let d = DomainName::parse(&anchor.domain_in(idx)).unwrap();
                let key = SiteKey::of(&d, &psl).unwrap();
                assert_eq!(key.as_str(), anchor.key, "domain {} must merge to its key", d);
            }
        }
    }
}
