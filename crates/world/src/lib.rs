//! # wwv-world
//!
//! A calibrated generative model of the browsing world: the stand-in for the
//! real population of Chrome users whose aggregate telemetry the paper
//! analyzes.
//!
//! The model generates, deterministically from a seed:
//!
//! * the 45 study countries (Appendix A) with their languages, regions, and
//!   latent affinity clusters ([`country`]);
//! * a universe of websites — a registry of real-world *anchor* sites whose
//!   per-country behavior is encoded from the paper's qualitative findings
//!   ([`anchors`]), plus procedurally generated global / regional / national
//!   long-tail sites ([`site`]);
//! * per-(country, platform, metric, month) demand distributions over those
//!   sites ([`demand`]), shaped by the category priors of `wwv-taxonomy`;
//! * global traffic-concentration curves calibrated to every Fig. 1 anchor
//!   the paper states ([`curve`]);
//! * seasonal structure — the December e-commerce/education shift and
//!   month-to-month churn ([`season`]).
//!
//! `wwv-telemetry` consumes the demand model to simulate the telemetry
//! pipeline; `wwv-core` then analyzes the result exactly as the paper does.

pub mod anchors;
pub mod calibration;
pub mod config;
pub mod country;
pub mod curve;
pub mod demand;
pub mod season;
pub mod site;
pub mod types;

pub use calibration::{calibrate, CalibrationReport};
pub use config::{WorldConfig, WorldSeed};
pub use country::{Country, Language, Region, COUNTRIES};
pub use curve::TrafficCurve;
pub use demand::World;
pub use season::Month;
pub use site::{Site, SiteId, SiteUniverse};
pub use types::{Breakdown, Metric, Platform};
