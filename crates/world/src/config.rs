//! World configuration and deterministic seeding.

use serde::{Deserialize, Serialize};

/// Master seed with cheap derivation of independent sub-seeds.
///
/// Every stochastic component of the world draws from its own purpose-tagged
/// sub-seed, so adding a new consumer never shifts the random stream of an
/// existing one (SplitMix64 mixing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorldSeed(pub u64);

impl WorldSeed {
    /// Derives an independent sub-seed tagged by `purpose`.
    pub fn derive(&self, purpose: &str) -> u64 {
        let mut h: u64 = self.0 ^ 0x5851_F42D_4C95_7F2D;
        for b in purpose.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
            h = splitmix(h);
        }
        h
    }

    /// Derives a sub-seed tagged by `purpose` and an index (e.g. a site id).
    pub fn derive_indexed(&self, purpose: &str, index: u64) -> u64 {
        splitmix(self.derive(purpose) ^ splitmix(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Size and shape parameters of the synthetic world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: WorldSeed,
    /// Number of sites in the global pool (beyond anchors).
    pub global_pool: usize,
    /// Number of sites in each shared-language pool.
    pub language_pool: usize,
    /// Number of sites in each geographic-cluster pool.
    pub regional_pool: usize,
    /// Number of national sites per country. Must exceed the rank-list depth
    /// (10 000) so every country's list can fill even where shared pools are
    /// thin.
    pub national_pool: usize,
    /// Zipf exponent of within-pool base popularity.
    pub zipf_exponent: f64,
    /// Zipf–Mandelbrot shift flattening the head of within-pool popularity.
    pub zipf_shift: f64,
    /// Strength of the platform-affinity effect (multiplier exponent).
    pub platform_effect: f64,
    /// Log-normal σ of per-site idiosyncratic popularity noise per country.
    pub country_noise_sigma: f64,
    /// Log-normal σ of per-site dwell-time noise.
    pub dwell_noise_sigma: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: WorldSeed(0xC0FFEE),
            global_pool: 4_000,
            language_pool: 2_500,
            regional_pool: 1_500,
            national_pool: 14_000,
            zipf_exponent: 1.05,
            zipf_shift: 2.0,
            platform_effect: 1.6,
            country_noise_sigma: 0.55,
            dwell_noise_sigma: 0.85,
        }
    }
}

impl WorldConfig {
    /// A reduced-size configuration for fast unit tests: same structure, an
    /// order of magnitude fewer sites (rank lists reach ~1–2K deep).
    pub fn small() -> Self {
        WorldConfig {
            global_pool: 600,
            language_pool: 350,
            regional_pool: 200,
            national_pool: 1_800,
            ..Default::default()
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = WorldSeed(seed);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subseeds_differ_by_purpose() {
        let s = WorldSeed(1);
        assert_ne!(s.derive("sites"), s.derive("traffic"));
        assert_ne!(s.derive("a"), s.derive("b"));
    }

    #[test]
    fn subseeds_differ_by_master() {
        assert_ne!(WorldSeed(1).derive("x"), WorldSeed(2).derive("x"));
    }

    #[test]
    fn subseeds_deterministic() {
        assert_eq!(WorldSeed(7).derive("x"), WorldSeed(7).derive("x"));
        assert_eq!(WorldSeed(7).derive_indexed("x", 3), WorldSeed(7).derive_indexed("x", 3));
    }

    #[test]
    fn indexed_subseeds_differ_by_index() {
        let s = WorldSeed(9);
        assert_ne!(s.derive_indexed("site", 1), s.derive_indexed("site", 2));
    }

    #[test]
    fn default_config_large_enough_for_rank_lists() {
        let c = WorldConfig::default();
        assert!(c.national_pool >= 10_000);
    }

    #[test]
    fn small_config_is_smaller() {
        let small = WorldConfig::small();
        let full = WorldConfig::default();
        assert!(small.national_pool < full.national_pool);
        assert!(small.global_pool < full.global_pool);
    }
}
