//! Global traffic-concentration curves (Fig. 1).
//!
//! The paper's Fig. 1 curves come directly from Chrome's global traffic
//! distribution data. We reconstruct them by monotone-cubic interpolation of
//! every quantitative anchor §4.1.2 states, in (log10 rank → cumulative
//! share) space. The per-rank share at rank *r* is the cumulative difference
//! `C(r) − C(r−1)`; monotonicity of the interpolant guarantees shares are
//! positive, and the log-rank parameterization makes them decreasing.
//!
//! These curves serve two roles, as in the paper: the Fig. 1 artifact itself,
//! and the weights used to model traffic volume in §4.2.2 and beyond
//! (traffic-weighted category counts, weighted RBO).

use crate::types::{Metric, Platform};
use serde::{Deserialize, Serialize};
use wwv_stats::MonotoneCubic;

/// A calibrated cumulative traffic-share curve over ranks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficCurve {
    interp: MonotoneCubic,
    /// Calibration anchors `(rank, cumulative share)` used to build the curve.
    anchors: Vec<(u64, f64)>,
}

impl TrafficCurve {
    /// Builds a curve through `(rank, cumulative share)` anchors. Ranks must
    /// be strictly increasing starting at 1; shares non-decreasing in
    /// `(0, 1]`. Returns `None` on malformed anchors.
    pub fn from_anchors(anchors: &[(u64, f64)]) -> Option<Self> {
        wwv_obs::global().counter("world.traffic_curves_built").inc();
        if anchors.is_empty() || anchors[0].0 != 1 {
            return None;
        }
        for w in anchors.windows(2) {
            if w[1].0 <= w[0].0 || w[1].1 < w[0].1 {
                return None;
            }
        }
        if anchors.iter().any(|(_, s)| !(0.0..=1.0).contains(s)) {
            return None;
        }
        // Interpolate in log10(rank); prepend a virtual zero at rank 0.5 so
        // share(1) = C(1) exactly.
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(anchors.len() + 1);
        pts.push(((0.5f64).log10(), 0.0));
        pts.extend(anchors.iter().map(|(r, s)| ((*r as f64).log10(), *s)));
        let interp = MonotoneCubic::new(&pts)?;
        Some(TrafficCurve { interp, anchors: anchors.to_vec() })
    }

    /// The calibration anchors.
    pub fn anchors(&self) -> &[(u64, f64)] {
        &self.anchors
    }

    /// Cumulative share of traffic captured by the top `rank` sites.
    pub fn cumulative(&self, rank: u64) -> f64 {
        if rank == 0 {
            return 0.0;
        }
        let max_rank = self.anchors.last().expect("non-empty anchors").0;
        self.interp.eval((rank.min(max_rank) as f64).log10())
    }

    /// Share of traffic captured by the site at 1-based `rank`.
    pub fn share(&self, rank: u64) -> f64 {
        (self.cumulative(rank) - self.cumulative(rank.saturating_sub(1))).max(0.0)
    }

    /// Materializes per-rank shares for ranks `1..=depth`.
    pub fn shares(&self, depth: usize) -> Vec<f64> {
        (1..=depth as u64).map(|r| self.share(r)).collect()
    }

    /// The paper's Windows page-loads curve (§4.1.2: top-1 17%, top-6 25%,
    /// top-100 just under 40%, top-10K ≈ 70%, top-1M > 95%).
    pub fn windows_page_loads() -> Self {
        Self::from_anchors(&[
            (1, 0.17),
            (6, 0.25),
            (100, 0.395),
            (10_000, 0.70),
            (1_000_000, 0.955),
        ])
        .expect("static anchors are well-formed")
    }

    /// The paper's Windows time-on-page curve (top-1 24%, top-7 = half of
    /// user time, top-100 > 60%, top-10K > 85%).
    pub fn windows_time_on_page() -> Self {
        Self::from_anchors(&[
            (1, 0.24),
            (7, 0.50),
            (100, 0.62),
            (10_000, 0.86),
            (1_000_000, 0.97),
        ])
        .expect("static anchors are well-formed")
    }

    /// The paper's Android page-loads curve (ten sites = 25% of traffic;
    /// less concentrated than desktop overall).
    pub fn android_page_loads() -> Self {
        Self::from_anchors(&[
            (1, 0.10),
            (10, 0.25),
            (100, 0.36),
            (10_000, 0.65),
            (1_000_000, 0.94),
        ])
        .expect("static anchors are well-formed")
    }

    /// The paper's Android time-on-page curve (25% of time on 8 sites; top
    /// 10K just under 80%). §4.1.2's "top 10 sites cover over 40% of user
    /// time" is mutually inconsistent with the top-8 figure under any
    /// decreasing share sequence, so the top-8 and top-10K anchors are kept
    /// and the top-10 value lands where monotonicity allows (~28%); see
    /// EXPERIMENTS.md.
    pub fn android_time_on_page() -> Self {
        Self::from_anchors(&[
            (1, 0.08),
            (8, 0.25),
            (100, 0.45),
            (10_000, 0.79),
            (1_000_000, 0.95),
        ])
        .expect("static anchors are well-formed")
    }

    /// The calibrated curve for a (platform, metric) pair.
    pub fn for_breakdown(platform: Platform, metric: Metric) -> Self {
        match (platform, metric) {
            (Platform::Windows, Metric::PageLoads) => Self::windows_page_loads(),
            (Platform::Windows, Metric::TimeOnPage) => Self::windows_time_on_page(),
            (Platform::Android, Metric::PageLoads) => Self::android_page_loads(),
            (Platform::Android, Metric::TimeOnPage) => Self::android_time_on_page(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_paper_anchors_exactly() {
        let c = TrafficCurve::windows_page_loads();
        assert!((c.cumulative(1) - 0.17).abs() < 1e-9);
        assert!((c.cumulative(6) - 0.25).abs() < 1e-9);
        assert!((c.cumulative(100) - 0.395).abs() < 1e-9);
        assert!((c.cumulative(10_000) - 0.70).abs() < 1e-9);
        assert!((c.cumulative(1_000_000) - 0.955).abs() < 1e-9);
    }

    #[test]
    fn shares_positive_and_decreasing() {
        for curve in [
            TrafficCurve::windows_page_loads(),
            TrafficCurve::windows_time_on_page(),
            TrafficCurve::android_page_loads(),
            TrafficCurve::android_time_on_page(),
        ] {
            let shares = curve.shares(10_000);
            assert!(shares.iter().all(|s| *s >= 0.0));
            let mut violations = 0usize;
            for w in shares.windows(2) {
                if w[1] > w[0] + 1e-12 {
                    violations += 1;
                }
            }
            // The interpolant is monotone in cumulative share; per-rank
            // shares decrease everywhere except possibly at knot joins.
            assert!(violations <= 5, "{violations} increasing-share violations");
        }
    }

    #[test]
    fn time_more_concentrated_than_loads_on_windows() {
        let loads = TrafficCurve::windows_page_loads();
        let time = TrafficCurve::windows_time_on_page();
        for rank in [1, 10, 100, 10_000] {
            assert!(time.cumulative(rank) > loads.cumulative(rank), "rank {rank}");
        }
    }

    #[test]
    fn android_less_concentrated_than_windows() {
        let win = TrafficCurve::windows_page_loads();
        let and = TrafficCurve::android_page_loads();
        for rank in [1, 6, 100, 10_000] {
            assert!(and.cumulative(rank) < win.cumulative(rank), "rank {rank}");
        }
    }

    #[test]
    fn cumulative_is_monotone() {
        let c = TrafficCurve::windows_time_on_page();
        let mut prev = 0.0;
        for rank in (1..=1_000_000u64).step_by(9973) {
            let v = c.cumulative(rank);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn cumulative_saturates_beyond_last_anchor() {
        let c = TrafficCurve::windows_page_loads();
        assert_eq!(c.cumulative(2_000_000), c.cumulative(1_000_000));
        assert_eq!(c.cumulative(0), 0.0);
    }

    #[test]
    fn share_sums_match_cumulative() {
        let c = TrafficCurve::windows_page_loads();
        let total: f64 = c.shares(10_000).iter().sum();
        assert!((total - c.cumulative(10_000)).abs() < 1e-9);
    }

    #[test]
    fn malformed_anchors_rejected() {
        assert!(TrafficCurve::from_anchors(&[]).is_none());
        assert!(TrafficCurve::from_anchors(&[(2, 0.5)]).is_none(), "must start at rank 1");
        assert!(TrafficCurve::from_anchors(&[(1, 0.5), (1, 0.6)]).is_none());
        assert!(TrafficCurve::from_anchors(&[(1, 0.5), (10, 0.4)]).is_none());
        assert!(TrafficCurve::from_anchors(&[(1, 1.5)]).is_none());
    }

    #[test]
    fn headline_facts_hold() {
        // "a single website accounts for 17% of all Windows page loads" and
        // "25% ... served by only six sites".
        let c = TrafficCurve::windows_page_loads();
        assert!((c.share(1) - 0.17).abs() < 1e-9);
        assert!((c.cumulative(6) - 0.25).abs() < 1e-9);
        // "half of user time is spent on just 7 sites".
        let t = TrafficCurve::windows_time_on_page();
        assert!((t.cumulative(7) - 0.50).abs() < 1e-9);
    }
}
