//! The 45 study countries (Appendix A) and their latent structure.
//!
//! Each country carries the attributes that drive the paper's geographic
//! findings: continent, language(s) (shared-language pools produce the
//! Hispanic-Americas and Anglosphere clusters), a geographic cluster
//! (producing the North-Africa and Taiwan/Hong-Kong clusters), mixture
//! weights over the global / language / regional / national site pools
//! (Japan and South Korea lean national, making them the outliers of
//! Fig. 10), an adult-content-censorship flag (South Korea, Turkey, Vietnam,
//! Russia — §5.3.2), and a relative web-usage weight (global aggregates are
//! usage-weighted, §4.1.1).

use serde::{Deserialize, Serialize};

/// Continent, as the paper groups countries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Africa (7 countries).
    Africa,
    /// Asia (10 countries).
    Asia,
    /// Europe (10 countries).
    Europe,
    /// North America (7 countries).
    NorthAmerica,
    /// Oceania (2 countries).
    Oceania,
    /// South America (9 countries).
    SouthAmerica,
}

/// Primary web language of a country. Shared languages create shared site
/// pools and hence browsing similarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Language {
    English,
    Spanish,
    Portuguese,
    French,
    Dutch,
    German,
    Italian,
    Polish,
    Ukrainian,
    Russian,
    Arabic,
    Turkish,
    Japanese,
    Korean,
    Vietnamese,
    ChineseTraditional,
    Indonesian,
    Thai,
    Filipino,
    Hindi,
}

/// Geographic proximity cluster used for the regional site pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum GeoCluster {
    NorthAfrica,
    SubSaharanAfrica,
    EastAsia,
    SoutheastAsia,
    SouthAsia,
    MiddleEast,
    WesternEurope,
    EasternEurope,
    NorthAmerica,
    CentralAmerica,
    SouthAmerica,
    Oceania,
}

/// Mixture weights over the four site pools a country draws demand from.
/// They need not sum to 1; demand generation normalizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolMix {
    /// Weight on the global pool.
    pub global: f64,
    /// Weight on the shared-language pool(s).
    pub language: f64,
    /// Weight on the geographic-cluster pool.
    pub regional: f64,
    /// Weight on the country's own national pool.
    pub national: f64,
}

/// One study country.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Country {
    /// ISO 3166-1 alpha-2 code.
    pub code: &'static str,
    /// English name.
    pub name: &'static str,
    /// Continent.
    pub region: Region,
    /// Languages, primary first (at most two matter for pooling).
    pub languages: &'static [Language],
    /// Geographic cluster.
    pub geo: GeoCluster,
    /// Pool mixture.
    pub mix: PoolMix,
    /// Relative web-usage weight (drives globally-aggregated statistics).
    pub usage_weight: f64,
    /// Whether the country effectively censors adult content (§5.3.2:
    /// South Korea, Turkey, Vietnam, Russia).
    pub censors_adult: bool,
    /// Registrable-domain suffix national sites use (e.g. `com.br`).
    pub national_suffix: &'static str,
}

impl Country {
    /// Index of a country by ISO code.
    pub fn index_of(code: &str) -> Option<usize> {
        COUNTRIES.iter().position(|c| c.code == code)
    }

    /// Country by ISO code.
    pub fn by_code(code: &str) -> Option<&'static Country> {
        COUNTRIES.iter().find(|c| c.code == code)
    }
}

/// Shorthand constructor used by the static table.
#[allow(clippy::too_many_arguments)]
const fn c(
    code: &'static str,
    name: &'static str,
    region: Region,
    languages: &'static [Language],
    geo: GeoCluster,
    mix: PoolMix,
    usage_weight: f64,
    censors_adult: bool,
    national_suffix: &'static str,
) -> Country {
    Country { code, name, region, languages, geo, mix, usage_weight, censors_adult, national_suffix }
}

const STD: PoolMix = PoolMix { global: 0.40, language: 0.15, regional: 0.08, national: 0.37 };
/// Tight language cluster (North Africa, Hispanic Americas): more weight on
/// shared-language sites.
const LANG_HEAVY: PoolMix = PoolMix { global: 0.38, language: 0.22, regional: 0.10, national: 0.30 };
/// Outliers (Japan, South Korea): national platforms dominate.
const NATIONAL_HEAVY: PoolMix = PoolMix { global: 0.28, language: 0.04, regional: 0.04, national: 0.64 };

use GeoCluster as G;
use Language as L;
use Region as R;

/// The 45 study countries, grouped by continent as in Appendix A.
pub static COUNTRIES: [Country; 45] = [
    // --- Africa (7). ---
    c("DZ", "Algeria", R::Africa, &[L::Arabic, L::French], G::NorthAfrica, LANG_HEAVY, 1.0, false, "dz"),
    c("EG", "Egypt", R::Africa, &[L::Arabic], G::NorthAfrica, LANG_HEAVY, 2.0, false, "com.eg"),
    c("KE", "Kenya", R::Africa, &[L::English], G::SubSaharanAfrica, STD, 0.8, false, "co.ke"),
    c("MA", "Morocco", R::Africa, &[L::Arabic, L::French], G::NorthAfrica, LANG_HEAVY, 1.0, false, "ma"),
    c("NG", "Nigeria", R::Africa, &[L::English], G::SubSaharanAfrica, STD, 1.5, false, "com.ng"),
    c("TN", "Tunisia", R::Africa, &[L::Arabic, L::French], G::NorthAfrica, LANG_HEAVY, 0.6, false, "com.tn"),
    c("ZA", "South Africa", R::Africa, &[L::English], G::SubSaharanAfrica, STD, 1.5, false, "co.za"),
    // --- Asia (10). ---
    c("JP", "Japan", R::Asia, &[L::Japanese], G::EastAsia, NATIONAL_HEAVY, 5.0, false, "co.jp"),
    c("IN", "India", R::Asia, &[L::Hindi, L::English], G::SouthAsia, STD, 8.0, false, "co.in"),
    c("KR", "South Korea", R::Asia, &[L::Korean], G::EastAsia, NATIONAL_HEAVY, 3.0, true, "co.kr"),
    c("TR", "Turkey", R::Asia, &[L::Turkish], G::MiddleEast, STD, 3.5, true, "com.tr"),
    c("VN", "Vietnam", R::Asia, &[L::Vietnamese], G::SoutheastAsia, STD, 3.0, true, "com.vn"),
    c("TW", "Taiwan", R::Asia, &[L::ChineseTraditional], G::EastAsia, LANG_HEAVY, 1.8, false, "com.tw"),
    c("ID", "Indonesia", R::Asia, &[L::Indonesian], G::SoutheastAsia, STD, 4.0, false, "co.id"),
    c("TH", "Thailand", R::Asia, &[L::Thai], G::SoutheastAsia, STD, 2.0, false, "co.th"),
    c("PH", "Philippines", R::Asia, &[L::Filipino, L::English], G::SoutheastAsia, STD, 2.5, false, "com.ph"),
    c("HK", "Hong Kong", R::Asia, &[L::ChineseTraditional], G::EastAsia, LANG_HEAVY, 1.0, false, "com.hk"),
    // --- Europe (10). ---
    c("GB", "United Kingdom", R::Europe, &[L::English], G::WesternEurope, STD, 4.0, false, "co.uk"),
    c("FR", "France", R::Europe, &[L::French], G::WesternEurope, LANG_HEAVY, 4.0, false, "fr"),
    c("RU", "Russia", R::Europe, &[L::Russian], G::EasternEurope, PoolMix { global: 0.33, language: 0.12, regional: 0.08, national: 0.47 }, 5.0, true, "ru"),
    c("DE", "Germany", R::Europe, &[L::German], G::WesternEurope, STD, 4.0, false, "de"),
    c("IT", "Italy", R::Europe, &[L::Italian], G::WesternEurope, STD, 3.5, false, "it"),
    c("ES", "Spain", R::Europe, &[L::Spanish], G::WesternEurope, STD, 3.0, false, "es"),
    c("NL", "Netherlands", R::Europe, &[L::Dutch], G::WesternEurope, LANG_HEAVY, 1.8, false, "nl"),
    c("PL", "Poland", R::Europe, &[L::Polish], G::EasternEurope, STD, 2.5, false, "pl"),
    c("UA", "Ukraine", R::Europe, &[L::Ukrainian, L::Russian], G::EasternEurope, STD, 2.0, false, "com.ua"),
    c("BE", "Belgium", R::Europe, &[L::French, L::Dutch], G::WesternEurope, LANG_HEAVY, 1.2, false, "be"),
    // --- North America (7). ---
    c("CA", "Canada", R::NorthAmerica, &[L::English, L::French], G::NorthAmerica, STD, 2.5, false, "ca"),
    c("CR", "Costa Rica", R::NorthAmerica, &[L::Spanish], G::CentralAmerica, LANG_HEAVY, 0.5, false, "co.cr"),
    c("DO", "Dominican Republic", R::NorthAmerica, &[L::Spanish], G::CentralAmerica, LANG_HEAVY, 0.6, false, "com.do"),
    c("GT", "Guatemala", R::NorthAmerica, &[L::Spanish], G::CentralAmerica, LANG_HEAVY, 0.7, false, "com.gt"),
    c("MX", "Mexico", R::NorthAmerica, &[L::Spanish], G::CentralAmerica, LANG_HEAVY, 4.0, false, "com.mx"),
    c("PA", "Panama", R::NorthAmerica, &[L::Spanish], G::CentralAmerica, LANG_HEAVY, 0.4, false, "com.pa"),
    c("US", "United States", R::NorthAmerica, &[L::English], G::NorthAmerica, STD, 10.0, false, "us"),
    // --- Oceania (2). ---
    c("AU", "Australia", R::Oceania, &[L::English], G::Oceania, STD, 1.8, false, "com.au"),
    c("NZ", "New Zealand", R::Oceania, &[L::English], G::Oceania, STD, 0.6, false, "co.nz"),
    // --- South America (9). ---
    c("AR", "Argentina", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 2.5, false, "com.ar"),
    c("BO", "Bolivia", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 0.5, false, "com.bo"),
    c("BR", "Brazil", R::SouthAmerica, &[L::Portuguese], G::SouthAmerica, PoolMix { global: 0.40, language: 0.08, regional: 0.10, national: 0.42 }, 6.0, false, "com.br"),
    c("CL", "Chile", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 1.2, false, "cl"),
    c("CO", "Colombia", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 2.0, false, "com.co"),
    c("EC", "Ecuador", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 0.8, false, "com.ec"),
    c("PE", "Peru", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 1.2, false, "com.pe"),
    c("UY", "Uruguay", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 0.4, false, "com.uy"),
    c("VE", "Venezuela", R::SouthAmerica, &[L::Spanish], G::SouthAmerica, LANG_HEAVY, 0.8, false, "com.ve"),
];

/// Number of study countries.
pub const COUNTRY_COUNT: usize = 45;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn forty_five_countries() {
        assert_eq!(COUNTRIES.len(), COUNTRY_COUNT);
    }

    #[test]
    fn continental_composition_matches_appendix_a() {
        let count = |r: Region| COUNTRIES.iter().filter(|c| c.region == r).count();
        assert_eq!(count(Region::Africa), 7);
        assert_eq!(count(Region::Asia), 10);
        assert_eq!(count(Region::Europe), 10);
        assert_eq!(count(Region::NorthAmerica), 7);
        assert_eq!(count(Region::Oceania), 2);
        assert_eq!(count(Region::SouthAmerica), 9);
    }

    #[test]
    fn codes_unique() {
        let codes: HashSet<&str> = COUNTRIES.iter().map(|c| c.code).collect();
        assert_eq!(codes.len(), 45);
    }

    #[test]
    fn censorship_flags_match_paper() {
        for code in ["KR", "TR", "VN", "RU"] {
            assert!(Country::by_code(code).unwrap().censors_adult, "{code}");
        }
        let censoring = COUNTRIES.iter().filter(|c| c.censors_adult).count();
        assert_eq!(censoring, 4);
    }

    #[test]
    fn outliers_are_national_heavy() {
        let jp = Country::by_code("JP").unwrap();
        let kr = Country::by_code("KR").unwrap();
        for outlier in [jp, kr] {
            for other in COUNTRIES.iter().filter(|c| c.code != "JP" && c.code != "KR") {
                assert!(
                    outlier.mix.national > other.mix.national,
                    "{} should be more national than {}",
                    outlier.code,
                    other.code
                );
            }
        }
    }

    #[test]
    fn hispanic_americas_share_language() {
        let hispanic = COUNTRIES
            .iter()
            .filter(|c| c.languages.first() == Some(&Language::Spanish))
            .count();
        // ES + MX/GT/CR/PA/DO + AR/BO/CL/CO/EC/PE/UY/VE.
        assert_eq!(hispanic, 14);
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(Country::by_code("US").unwrap().name, "United States");
        assert_eq!(Country::index_of("DZ"), Some(0));
        assert!(Country::by_code("XX").is_none());
    }

    #[test]
    fn suffixes_parse_under_embedded_psl() {
        use wwv_domains::{DomainName, PublicSuffixList};
        let psl = PublicSuffixList::embedded();
        for country in &COUNTRIES {
            let name = format!("example.{}", country.national_suffix);
            let d = DomainName::parse(&name).unwrap();
            let m = psl.public_suffix(&d);
            assert_eq!(
                m.suffix, country.national_suffix,
                "suffix {} for {} must be a known public suffix",
                country.national_suffix, country.code
            );
        }
    }

    #[test]
    fn usage_weights_positive_and_us_largest() {
        for c in &COUNTRIES {
            assert!(c.usage_weight > 0.0);
        }
        let max = COUNTRIES.iter().map(|c| c.usage_weight).fold(0.0, f64::max);
        assert_eq!(Country::by_code("US").unwrap().usage_weight, max);
    }
}
