//! The tick loop: generate → (faults) → ingest → assemble → emit → detect.
//!
//! Parallelism vs determinism, stage by stage:
//!
//! * **generate** — `par_map` over cells; each cell's batches are a pure
//!   function of `(seeds, tick, cell)`, and `par_map` returns index order.
//! * **faults** — [`FaultPlan::decide`] advances a global per-point arrival
//!   counter, so decisions are taken *serially*, in canonical cell/batch
//!   order, before ingest. The same plan therefore drops/delays the same
//!   batches at any worker count.
//! * **ingest** — `par_map` over cells again; state is cell-local (one
//!   mutex per cell, locked only by its own index — never contended, just
//!   satisfying the shared-reference bound), and within a cell batches
//!   apply in generation order.
//! * **assemble + emit** — serial: one pass in canonical cell order interns
//!   domains in deterministic first-seen order and builds the
//!   `ChromeDataset`, so `persist::write_snapshot` emits identical bytes
//!   for identical window state.
//!
//! Wall time never touches the data path: it is only *measured* (tick
//! latency histogram) and, under [`TickClock::Wall`], *spent* (pacing,
//! delay faults).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use wwv_fault::{FaultKind, FaultPlan};
use wwv_par::Pool;
use wwv_telemetry::dataset::{ChromeDataset, DomainTable, RankListData};
use wwv_telemetry::event::ClientBatch;
use wwv_telemetry::persist;
use wwv_world::{Breakdown, Metric, Month, SiteId, World};

use crate::anomaly::{category_shares, AnomalyDetector, AnomalyEvent, DomainIndex};
use crate::config::{StreamConfig, TickClock};
use crate::gen::TickGenerator;
use crate::rolling::CellAggregator;
use crate::sink::SnapshotSink;
use crate::STREAM_INGEST;

/// Delay faults sleep at most this long per batch (wall mode only), so a
/// hostile plan slows a tick without stalling the run.
const MAX_DELAY_SLEEP_MS: u64 = 100;

/// What a stream run did. `to_json` is hand-rolled (no serde at runtime) —
/// this is the payload `wwv stream --metrics-out` writes and
/// `scripts/bench_stream.sh` consumes.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Scenario name.
    pub scenario: String,
    /// Ticks completed.
    pub ticks: u64,
    /// Cells (countries × platforms).
    pub cells: usize,
    /// Events generated before faults.
    pub events_generated: u64,
    /// Events reaching the aggregators.
    pub events_ingested: u64,
    /// Events rejected at ingest as non-public.
    pub non_public_drops: u64,
    /// Client batches lost to `Drop` faults.
    pub batches_dropped: u64,
    /// Client batches held by `Delay` faults (still delivered).
    pub batches_delayed: u64,
    /// Fault firings of any kind (from the plan's counters).
    pub faults_fired: u64,
    /// Snapshots emitted (one per tick).
    pub snapshots_emitted: u64,
    /// Size of the last emitted snapshot.
    pub last_snapshot_bytes: usize,
    /// Full top-K rebuilds across all cells and metrics (the incremental
    /// path's miss count).
    pub topk_rebuilds: u64,
    /// Retire-time underflow clamps across all cells and metrics: a
    /// retiring bucket carried more count than the window total. Always
    /// zero unless the ring and the totals have drifted apart.
    pub retire_underflows: u64,
    /// Every anomaly flagged, in tick order.
    pub anomalies: Vec<AnomalyEvent>,
    /// Wall-clock duration of the run.
    pub elapsed_ms: u64,
    /// Ingest throughput over the whole run.
    pub events_per_sec: f64,
    /// Median tick latency (generate→emit, excluding pacing sleep).
    pub tick_ms_p50: f64,
    /// p99 tick latency.
    pub tick_ms_p99: f64,
}

impl StreamReport {
    /// Serializes the report as JSON.
    pub fn to_json(&self) -> String {
        let anomalies: Vec<String> = self
            .anomalies
            .iter()
            .map(|a| {
                format!(
                    "{{\"tick\":{},\"category\":\"{}\",\"before\":{:.6},\"after\":{:.6},\"delta\":{:.6},\"z\":{:.3}}}",
                    a.tick,
                    a.category.name(),
                    a.before,
                    a.after,
                    a.delta,
                    a.z
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"scenario\": \"{}\",\n",
                "  \"ticks\": {},\n",
                "  \"cells\": {},\n",
                "  \"events_generated\": {},\n",
                "  \"events_ingested\": {},\n",
                "  \"non_public_drops\": {},\n",
                "  \"batches_dropped\": {},\n",
                "  \"batches_delayed\": {},\n",
                "  \"faults_fired\": {},\n",
                "  \"snapshots_emitted\": {},\n",
                "  \"last_snapshot_bytes\": {},\n",
                "  \"topk_rebuilds\": {},\n",
                "  \"retire_underflows\": {},\n",
                "  \"elapsed_ms\": {},\n",
                "  \"events_per_sec\": {:.1},\n",
                "  \"tick_ms_p50\": {:.3},\n",
                "  \"tick_ms_p99\": {:.3},\n",
                "  \"anomalies\": [{}]\n",
                "}}"
            ),
            self.scenario,
            self.ticks,
            self.cells,
            self.events_generated,
            self.events_ingested,
            self.non_public_drops,
            self.batches_dropped,
            self.batches_delayed,
            self.faults_fired,
            self.snapshots_emitted,
            self.last_snapshot_bytes,
            self.topk_rebuilds,
            self.retire_underflows,
            self.elapsed_ms,
            self.events_per_sec,
            self.tick_ms_p50,
            self.tick_ms_p99,
            anomalies.join(",")
        )
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs a full stream: `config.ticks` ticks of generate→ingest→emit against
/// `world`, pushing one snapshot per tick into `sink`. `plan` injects
/// faults at [`STREAM_INGEST`] (one arrival per generated client batch);
/// pass `FaultPlan::none()` for a clean run.
pub fn run(
    world: &World,
    config: &StreamConfig,
    plan: &FaultPlan,
    sink: &mut dyn SnapshotSink,
    pool: &Pool,
) -> std::io::Result<StreamReport> {
    let _span = wwv_obs::span!("stream.run");
    let generator = TickGenerator::new(world, config);
    let index = DomainIndex::build(world, config.countries.min(wwv_world::COUNTRIES.len()));
    let cells = generator.cells().to_vec();
    let aggs: Vec<Mutex<CellAggregator>> = cells
        .iter()
        .map(|_| Mutex::new(CellAggregator::new(config.window, config.top_k)))
        .collect();
    let mut detector =
        AnomalyDetector::new(config.anomaly_min_share_delta, config.anomaly_mad_threshold);

    let reg = wwv_obs::global();
    let ticks_ctr = reg.counter("stream.ticks");
    let ingested_ctr = reg.counter("stream.events_ingested");
    let dropped_ctr = reg.counter("stream.batches_dropped");
    let anomaly_ctr = reg.counter("stream.anomaly.flagged");
    let swap_ctr = reg.counter("stream.snapshots_emitted");
    let tick_hist = reg.histogram("stream.tick_ms");

    let started = Instant::now();
    let mut report = StreamReport {
        scenario: config.scenario.name().to_owned(),
        ticks: 0,
        cells: cells.len(),
        events_generated: 0,
        events_ingested: 0,
        non_public_drops: 0,
        batches_dropped: 0,
        batches_delayed: 0,
        faults_fired: 0,
        snapshots_emitted: 0,
        last_snapshot_bytes: 0,
        topk_rebuilds: 0,
        retire_underflows: 0,
        anomalies: Vec::new(),
        elapsed_ms: 0,
        events_per_sec: 0.0,
        tick_ms_p50: 0.0,
        tick_ms_p99: 0.0,
    };
    let mut tick_ms: Vec<f64> = Vec::with_capacity(config.ticks as usize);

    for tick in 0..config.ticks {
        let tick_started = Instant::now();

        // 1. Generate (parallel, pure per cell).
        let generated: Vec<Vec<ClientBatch>> =
            pool.par_map("stream.gen", &cells, |i, _| generator.tick_batches(tick, i));
        report.events_generated +=
            generated.iter().flatten().map(|b| b.events.len() as u64).sum::<u64>();

        // 2. Fault decisions — strictly serial, canonical cell/batch order.
        let mut delay_budget_ms = 0u64;
        let kept: Vec<Vec<ClientBatch>> = generated
            .into_iter()
            .map(|batches| {
                batches
                    .into_iter()
                    .filter(|_| match plan.decide(STREAM_INGEST) {
                        Some((FaultKind::Drop, _)) => {
                            report.batches_dropped += 1;
                            dropped_ctr.inc();
                            false
                        }
                        Some((FaultKind::Delay(ms), _)) => {
                            report.batches_delayed += 1;
                            delay_budget_ms += ms.min(MAX_DELAY_SLEEP_MS);
                            true
                        }
                        // Byte-level faults don't apply to structured
                        // batches; the batch is delivered intact.
                        Some(_) | None => true,
                    })
                    .collect()
            })
            .collect();
        if config.clock == TickClock::Wall && delay_budget_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_budget_ms.min(MAX_DELAY_SLEEP_MS * 4)));
        }

        // 3. Ingest (parallel, cell-local state) and seal the tick.
        let sealed: Vec<(u64, u64)> = pool.par_map("stream.ingest", &kept, |i, batches| {
            let mut agg = aggs[i].lock().expect("cell aggregator lock");
            for batch in batches {
                agg.ingest(batch);
            }
            agg.seal_tick()
        });
        for (events, np) in sealed {
            report.events_ingested += events;
            report.non_public_drops += np;
            ingested_ctr.add(events);
        }

        // 4. Assemble the window into a dataset (serial, canonical order)
        //    and collect the PageLoads mass for share computation.
        let mut domains = DomainTable::new();
        let mut lists = std::collections::HashMap::new();
        let mut load_mass: Vec<(String, u64)> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let mut agg = aggs[i].lock().expect("cell aggregator lock");
            for metric in Metric::ALL {
                let top = agg.top_k(metric, config.top_k, config.min_count);
                if top.is_empty() {
                    continue;
                }
                let entries: Vec<_> = top
                    .iter()
                    .map(|&(domain, count)| {
                        // Domains outside the universe (shouldn't survive
                        // the public filter, but belt and braces) get a
                        // sentinel site id; serve queries never resolve it.
                        let site = index.site(domain).unwrap_or(SiteId(u32::MAX));
                        (domains.intern(domain, site), count)
                    })
                    .collect();
                if metric == Metric::PageLoads {
                    load_mass
                        .extend(top.iter().map(|&(d, c)| (d.to_owned(), c)));
                }
                let b = Breakdown {
                    country: cell.country,
                    platform: cell.platform,
                    metric,
                    month: Month::reference(),
                };
                lists.insert(b, RankListData { entries });
            }
        }
        let dataset = ChromeDataset {
            domains,
            lists,
            client_threshold: config.min_count,
            max_depth: config.top_k,
        };

        // 5. Anomaly detection on the emitted window's category shares.
        // Shares over a partially-filled window are high-variance (fewer
        // buckets averaged), so the detector only starts observing once the
        // ring is full — tick `window - 1` becomes its baseline.
        let shares = if tick + 1 >= config.window as u64 {
            category_shares(load_mass.iter().map(|(d, c)| (d.as_str(), *c)), &index)
        } else {
            Vec::new()
        };
        let events =
            if shares.is_empty() { Vec::new() } else { detector.observe(tick, &shares) };
        for event in events {
            anomaly_ctr.inc();
            wwv_obs::info!(
                target: "stream",
                "anomaly: {} share {:.4} -> {:.4} at tick {}",
                event.category.name(),
                event.before,
                event.after,
                tick;
                delta = format!("{:.4}", event.delta)
            );
            report.anomalies.push(event);
        }

        // 6. Emit atomically.
        let bytes = persist::write_snapshot(&dataset);
        sink.emit(tick, &bytes)?;
        report.last_snapshot_bytes = bytes.len();
        report.snapshots_emitted += 1;
        swap_ctr.inc();
        ticks_ctr.inc();
        report.ticks += 1;

        let spent = tick_started.elapsed();
        tick_ms.push(spent.as_secs_f64() * 1e3);
        tick_hist.record(spent.as_millis() as u64);

        // 7. Pace (wall clock only).
        if config.clock == TickClock::Wall && spent < config.tick_interval {
            std::thread::sleep(config.tick_interval - spent);
        }
    }

    report.topk_rebuilds = aggs
        .iter()
        .map(|m| m.lock().expect("cell aggregator lock").rebuilds())
        .sum();
    report.retire_underflows = aggs
        .iter()
        .map(|m| m.lock().expect("cell aggregator lock").retire_underflow())
        .sum();
    reg.counter("stream.rolling.retire_underflow").add(report.retire_underflows);
    report.faults_fired = plan.fired_total();
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    let secs = started.elapsed().as_secs_f64();
    report.events_per_sec =
        if secs > 0.0 { report.events_ingested as f64 / secs } else { 0.0 };
    tick_ms.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite tick latency"));
    report.tick_ms_p50 = percentile(&tick_ms, 0.50);
    report.tick_ms_p99 = percentile(&tick_ms, 0.99);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scenario;
    use crate::sink::MemSink;
    use bytes::Bytes;
    use wwv_world::WorldConfig;

    fn small_cfg() -> StreamConfig {
        StreamConfig {
            countries: 2,
            ticks: 5,
            window: 3,
            top_k: 50,
            clients_per_tick: 10,
            mean_loads: 12.0,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn emits_one_parseable_snapshot_per_tick() {
        let world = World::new(WorldConfig::small());
        let mut sink = MemSink::new();
        let report =
            run(&world, &small_cfg(), &FaultPlan::none(), &mut sink, &Pool::new(2)).unwrap();
        assert_eq!(report.ticks, 5);
        assert_eq!(report.snapshots_emitted, 5);
        assert_eq!(sink.snapshots.len(), 5);
        for (tick, bytes) in &sink.snapshots {
            let ds = persist::read_auto(Bytes::from(bytes.clone()))
                .unwrap_or_else(|e| panic!("tick {tick} snapshot unreadable: {e:?}"));
            assert!(!ds.lists.is_empty(), "tick {tick} emitted an empty dataset");
        }
        assert!(report.events_ingested > 0);
        assert_eq!(report.batches_dropped, 0);
    }

    #[test]
    fn drop_faults_shrink_ingest_deterministically() {
        let world = World::new(WorldConfig::small());
        let plan = || {
            FaultPlan::new(7).with(wwv_fault::FaultRule {
                point: STREAM_INGEST,
                kind: FaultKind::Drop,
                rate: 0.5,
            })
        };
        let mut s1 = MemSink::new();
        let r1 = run(&world, &small_cfg(), &plan(), &mut s1, &Pool::new(1)).unwrap();
        let mut s2 = MemSink::new();
        let r2 = run(&world, &small_cfg(), &plan(), &mut s2, &Pool::new(4)).unwrap();
        assert!(r1.batches_dropped > 0, "a 50% drop plan must fire");
        assert_eq!(r1.batches_dropped, r2.batches_dropped);
        assert_eq!(r1.events_ingested, r2.events_ingested);
        assert_eq!(s1.snapshots, s2.snapshots, "fault schedule must not depend on workers");
        let mut clean = MemSink::new();
        let rc = run(&world, &small_cfg(), &FaultPlan::none(), &mut clean, &Pool::new(2)).unwrap();
        assert!(r1.events_ingested < rc.events_ingested);
    }

    #[test]
    fn seasonality_scenario_is_flagged_within_two_ticks() {
        let world = World::new(WorldConfig::small());
        let cfg = StreamConfig {
            countries: 3,
            ticks: 8,
            window: 2,
            clients_per_tick: 30,
            mean_loads: 30.0,
            scenario: Scenario::Seasonality,
            shock_tick: 4,
            ..StreamConfig::default()
        };
        let mut sink = MemSink::new();
        let report = run(&world, &cfg, &FaultPlan::none(), &mut sink, &Pool::new(2)).unwrap();
        assert!(
            report
                .anomalies
                .iter()
                .any(|a| a.tick >= 4 && a.tick <= 5),
            "seasonality shock at tick 4 must flag by tick 5; got {:?}",
            report.anomalies
        );
        assert!(
            report.anomalies.iter().all(|a| a.tick >= 4),
            "no anomalies may fire before the shock: {:?}",
            report.anomalies
        );
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let world = World::new(WorldConfig::small());
        let mut sink = MemSink::new();
        let report =
            run(&world, &small_cfg(), &FaultPlan::none(), &mut sink, &Pool::new(1)).unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in ["events_per_sec", "tick_ms_p50", "tick_ms_p99", "anomalies", "scenario"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
