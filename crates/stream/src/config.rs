//! Stream run configuration: window geometry, tick pacing, scenarios.

use std::time::Duration;

/// Mid-run perturbation of the generated client stream (the §4.5 temporal
/// scenarios, compressed from months to ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No perturbation.
    None,
    /// From the shock tick on, every site's demand weight is multiplied by
    /// its December seasonal factor (e-commerce up, education down) — the
    /// paper's holiday-season shift, compressed into one tick boundary.
    Seasonality,
    /// From the shock tick on, one country's client volume collapses to 5%
    /// (a national network outage).
    Outage,
    /// From the shock tick on, one globally-available site's demand weight
    /// is multiplied 50× (a viral flash crowd).
    FlashCrowd,
}

impl Scenario {
    /// Parses a CLI scenario name.
    pub fn parse(s: &str) -> Option<Scenario> {
        match s {
            "none" => Some(Scenario::None),
            "seasonality" => Some(Scenario::Seasonality),
            "outage" => Some(Scenario::Outage),
            "flashcrowd" => Some(Scenario::FlashCrowd),
            _ => None,
        }
    }

    /// Stable name (reports, metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::None => "none",
            Scenario::Seasonality => "seasonality",
            Scenario::Outage => "outage",
            Scenario::FlashCrowd => "flashcrowd",
        }
    }
}

/// How ticks advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickClock {
    /// Ticks run back-to-back with no pacing — the deterministic mode used
    /// by the byte-identity gates (no wall time enters the data path).
    Logical,
    /// Each tick is paced to `tick_interval` of wall time — the live mode
    /// used when a server watches the emitted snapshot.
    Wall,
}

impl TickClock {
    /// Parses a CLI clock name.
    pub fn parse(s: &str) -> Option<TickClock> {
        match s {
            "logical" => Some(TickClock::Logical),
            "wall" => Some(TickClock::Wall),
            _ => None,
        }
    }
}

/// Configuration for a stream run. Everything that influences the emitted
/// bytes is deterministic; only pacing ([`TickClock::Wall`]) touches wall
/// time.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Stream-level seed, folded into every generation draw (lets several
    /// distinct streams run against one world seed).
    pub seed: u64,
    /// Number of countries covered (the first `countries` of `COUNTRIES`);
    /// cells = countries × 2 platforms.
    pub countries: usize,
    /// Ticks to run.
    pub ticks: u64,
    /// Rolling window length in ticks (ring of tick-buckets).
    pub window: usize,
    /// Rank-list depth emitted per (country, platform, metric).
    pub top_k: usize,
    /// Simulated clients per cell per tick.
    pub clients_per_tick: u64,
    /// Mean page loads per client per tick (Poisson).
    pub mean_loads: f64,
    /// Foreground-event upload probability. Deliberately higher than the
    /// production 0.35% so tick-scale TimeOnPage lists are non-degenerate.
    pub fg_rate: f64,
    /// Probability a load targets a non-public domain (dropped at ingest).
    pub non_public_rate: f64,
    /// Privacy floor: windowed counts below this are not emitted.
    pub min_count: u64,
    /// Wall-clock tick pacing (ignored under [`TickClock::Logical`]).
    pub tick_interval: Duration,
    /// Tick pacing mode.
    pub clock: TickClock,
    /// Mid-run perturbation.
    pub scenario: Scenario,
    /// First tick the scenario is active in.
    pub shock_tick: u64,
    /// Country index whose volume collapses under [`Scenario::Outage`].
    pub outage_country: usize,
    /// Anomaly floor: category share deltas below this are never flagged.
    pub anomaly_min_share_delta: f64,
    /// MAD modified-z threshold for flagging a category share delta.
    pub anomaly_mad_threshold: f64,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            seed: 42,
            countries: 8,
            ticks: 12,
            window: 4,
            top_k: 200,
            clients_per_tick: 24,
            mean_loads: 40.0,
            fg_rate: 0.05,
            non_public_rate: 0.01,
            min_count: 1,
            tick_interval: Duration::from_millis(250),
            clock: TickClock::Logical,
            scenario: Scenario::None,
            shock_tick: 0,
            outage_country: 0,
            anomaly_min_share_delta: 0.004,
            anomaly_mad_threshold: 6.0,
        }
    }
}

impl StreamConfig {
    /// Whether the scenario perturbs tick `tick`.
    pub fn shock_active(&self, tick: u64) -> bool {
        self.scenario != Scenario::None && tick >= self.shock_tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_roundtrip() {
        for s in [Scenario::None, Scenario::Seasonality, Scenario::Outage, Scenario::FlashCrowd] {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("tsunami"), None);
    }

    #[test]
    fn clock_parses() {
        assert_eq!(TickClock::parse("logical"), Some(TickClock::Logical));
        assert_eq!(TickClock::parse("wall"), Some(TickClock::Wall));
        assert_eq!(TickClock::parse("sundial"), None);
    }

    #[test]
    fn default_shock_is_inert() {
        let cfg = StreamConfig::default();
        assert!(!cfg.shock_active(0));
        assert!(!cfg.shock_active(100));
    }
}
