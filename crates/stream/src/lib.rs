//! # wwv-stream
//!
//! The streaming half of the reproduction: turns the batch-monthly pipeline
//! into a continuously-evolving one, reproducing the paper's §4.5 temporal
//! analysis (seasonality, category-share shifts) as a *live* process
//! instead of six frozen monthly builds.
//!
//! Every tick the driver:
//!
//! 1. **generates** a deterministic slice of client telemetry per
//!    (country, platform) cell ([`gen`]) — optionally perturbed mid-run by
//!    a [`Scenario`] (seasonality shock, country outage, flash crowd);
//! 2. **ingests** it into per-cell rolling rank state ([`rolling`]): a ring
//!    of `window` tick-buckets whose oldest bucket retires on rotate, with
//!    the per-metric top-K maintained *incrementally* (bench + high-water
//!    mark, exactness-triggered rebuilds) instead of re-sorting all totals;
//! 3. **emits** a fresh columnar `wwv-snap` snapshot of the window
//!    ([`driver`]) through an atomic tmp+fsync+rename ([`SnapshotSink`]),
//!    which `wwv serve --watch-snapshot` hot-swaps with zero downtime;
//! 4. **detects** tick-over-tick category-share anomalies ([`anomaly`])
//!    with the `wwv-stats` MAD rule, surfacing flags through `wwv-obs`
//!    counters (and therefore the live `/metrics` endpoint).
//!
//! Determinism: with the logical clock, the emitted snapshot byte sequence
//! is a pure function of `(world seed, stream seed, tick schedule)` at any
//! `wwv-par` worker count — generation is keyed draws per cell, ingestion
//! is cell-local in event order, fault decisions are applied serially in
//! canonical cell order, and emission re-interns domains serially in
//! canonical order. `tests/stream_determinism.rs` (workspace root) is the
//! gate.

pub mod anomaly;
pub mod config;
pub mod driver;
pub mod gen;
pub mod rolling;
pub mod sink;

pub use anomaly::{category_shares, AnomalyDetector, AnomalyEvent, DomainIndex};
pub use config::{Scenario, StreamConfig, TickClock};
pub use driver::{run, StreamReport};
pub use gen::{Cell, TickGenerator};
pub use rolling::CellAggregator;
pub use sink::{FileSink, MemSink, SnapshotSink};

/// Fault-injection point for the stream ingest path: one arrival per
/// generated client batch, decided serially in canonical cell order (so a
/// seeded plan reproduces the identical drop/delay schedule every run).
pub const STREAM_INGEST: &str = "stream.ingest";
