//! Where emitted snapshots go: an atomic file (for a watching server) or
//! memory (for the determinism gates).

use std::path::PathBuf;

/// Receives one complete snapshot per tick.
pub trait SnapshotSink {
    /// Emits the snapshot for `tick`. `bytes` is a complete, checksummed
    /// `wwv-snap` container.
    fn emit(&mut self, tick: u64, bytes: &[u8]) -> std::io::Result<()>;
}

/// Writes each snapshot to one path via `wwv_snap::write_atomic`
/// (tmp + fsync + rename), so a concurrent `--watch-snapshot` reader never
/// observes a torn file.
pub struct FileSink {
    path: PathBuf,
}

impl FileSink {
    /// A sink replacing `path` atomically every tick.
    pub fn new(path: PathBuf) -> FileSink {
        FileSink { path }
    }

    /// The sink's target path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl SnapshotSink for FileSink {
    fn emit(&mut self, _tick: u64, bytes: &[u8]) -> std::io::Result<()> {
        wwv_snap::write_atomic(&self.path, bytes)
    }
}

/// Retains every emitted snapshot in memory — the determinism gate compares
/// the full byte sequences across worker counts.
#[derive(Default)]
pub struct MemSink {
    /// `(tick, snapshot bytes)` in emission order.
    pub snapshots: Vec<(u64, Vec<u8>)>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }
}

impl SnapshotSink for MemSink {
    fn emit(&mut self, tick: u64, bytes: &[u8]) -> std::io::Result<()> {
        self.snapshots.push((tick, bytes.to_vec()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_retains_emission_order() {
        let mut sink = MemSink::new();
        sink.emit(0, b"aa").unwrap();
        sink.emit(1, b"bb").unwrap();
        assert_eq!(sink.snapshots, vec![(0, b"aa".to_vec()), (1, b"bb".to_vec())]);
    }

    #[test]
    fn file_sink_replaces_atomically() {
        let path = std::env::temp_dir()
            .join(format!("wwv-stream-sink-{}.snap", std::process::id()));
        let mut sink = FileSink::new(path.clone());
        sink.emit(0, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        sink.emit(1, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _ = std::fs::remove_file(&path);
    }
}
