//! Deterministic per-tick telemetry generation.
//!
//! Each (country, platform) **cell** generates its own client batches for a
//! tick as a pure function of `(world seed, stream seed, tick, cell)` — no
//! shared mutable state, so cells parallelize freely and any `wwv-par`
//! worker count produces identical batches. The sampling idiom mirrors
//! `wwv_telemetry::ClientSimulator` (cumulative demand weights +
//! `partition_point`), with the tick index folded into every draw stream.
//!
//! Scenario perturbations reweight the demand table ([`Scenario::Seasonality`]
//! multiplies every site by its December factor, [`Scenario::FlashCrowd`]
//! boosts one global site 50×) or scale client volume
//! ([`Scenario::Outage`]); the perturbed table is itself deterministic and
//! cached per cell.

use std::sync::OnceLock;

use wwv_telemetry::event::{ClientBatch, TelemetryEvent};
use wwv_telemetry::sampling::{bernoulli, poisson};
use wwv_world::season::seasonal_multiplier;
use wwv_world::{Breakdown, Metric, Month, Platform, SiteId, World, COUNTRIES};

use crate::config::{Scenario, StreamConfig};

/// One generation/aggregation cell: a (country, platform) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Country index into `COUNTRIES`.
    pub country: usize,
    /// Client platform.
    pub platform: Platform,
}

/// The canonical cell order: country-major, Windows before Android. Every
/// serial pass (fault decisions, snapshot assembly) iterates in this order.
pub fn cells(config: &StreamConfig) -> Vec<Cell> {
    let countries = config.countries.clamp(1, COUNTRIES.len());
    let mut out = Vec::with_capacity(countries * 2);
    for country in 0..countries {
        for platform in [Platform::Windows, Platform::Android] {
            out.push(Cell { country, platform });
        }
    }
    out
}

/// A demand distribution prepared for weighted sampling.
struct DemandTable {
    sites: Vec<SiteId>,
    /// Cumulative weights; the last element is the total.
    cumulative: Vec<f64>,
}

impl DemandTable {
    fn from_weights(weights: &[(SiteId, f64)]) -> DemandTable {
        let mut sites = Vec::with_capacity(weights.len());
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for (id, w) in weights {
            acc += *w;
            sites.push(*id);
            cumulative.push(acc);
        }
        DemandTable { sites, cumulative }
    }
}

/// Per-cell demand state: the unperturbed table plus the lazily-built
/// scenario-perturbed variant.
struct CellDemand {
    base_weights: Vec<(SiteId, f64)>,
    base: DemandTable,
    shocked: OnceLock<DemandTable>,
}

/// Generates client event batches per (tick, cell). Shared immutably across
/// workers; see the module docs for the determinism argument.
pub struct TickGenerator<'w> {
    world: &'w World,
    config: StreamConfig,
    cells: Vec<Cell>,
    demand: Vec<CellDemand>,
    /// The flash-crowd target: first non-ccTLD site in universe order.
    flash_site: Option<SiteId>,
}

/// SplitMix64 finalizer — mixes tick/cell/client coordinates into one draw
/// stream index.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(parts: &[u64]) -> u64 {
    parts.iter().fold(0xA076_1D64_78BD_642F, |h, &p| splitmix64(h ^ p))
}

impl<'w> TickGenerator<'w> {
    /// Builds the per-cell demand tables (one `World::demand` call per
    /// cell; the month axis is fixed to [`Month::reference`] — the stream
    /// models *ticks*, not months).
    pub fn new(world: &'w World, config: &StreamConfig) -> TickGenerator<'w> {
        let cells = cells(config);
        let demand = cells
            .iter()
            .map(|cell| {
                let b = Breakdown {
                    country: cell.country,
                    platform: cell.platform,
                    metric: Metric::PageLoads,
                    month: Month::reference(),
                };
                let base_weights = world.demand(b);
                let base = DemandTable::from_weights(&base_weights);
                CellDemand { base_weights, base, shocked: OnceLock::new() }
            })
            .collect();
        let flash_site = world
            .universe()
            .sites
            .iter()
            .position(|s| !s.cctld)
            .map(|i| SiteId(i as u32));
        TickGenerator { world, config: config.clone(), cells, demand, flash_site }
    }

    /// The canonical cell list (see [`cells`]).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The site a [`Scenario::FlashCrowd`] run boosts.
    pub fn flash_site(&self) -> Option<SiteId> {
        self.flash_site
    }

    /// The scenario's demand-weight multiplier for one site.
    fn scenario_multiplier(&self, id: SiteId) -> f64 {
        match self.config.scenario {
            Scenario::Seasonality => {
                let site = self.world.universe().site(id);
                seasonal_multiplier(site.category, Month::December2021)
            }
            Scenario::FlashCrowd if Some(id) == self.flash_site => 50.0,
            _ => 1.0,
        }
    }

    /// The demand table for a cell at a tick: base, or the perturbed table
    /// once the shock is active (built once per cell, deterministically).
    fn table(&self, tick: u64, cell_idx: usize) -> &DemandTable {
        let d = &self.demand[cell_idx];
        let reweights = matches!(
            self.config.scenario,
            Scenario::Seasonality | Scenario::FlashCrowd
        );
        if !(reweights && self.config.shock_active(tick)) {
            return &d.base;
        }
        d.shocked.get_or_init(|| {
            let perturbed: Vec<(SiteId, f64)> = d
                .base_weights
                .iter()
                .map(|&(id, w)| (id, w * self.scenario_multiplier(id)))
                .collect();
            DemandTable::from_weights(&perturbed)
        })
    }

    /// Clients generated by a cell at a tick (outage scenarios collapse the
    /// target country's volume to 5%).
    pub fn clients_at(&self, tick: u64, cell: Cell) -> u64 {
        let base = self.config.clients_per_tick;
        if self.config.scenario == Scenario::Outage
            && self.config.shock_active(tick)
            && cell.country == self.config.outage_country
        {
            (base / 20).max(1)
        } else {
            base
        }
    }

    /// Generates one cell's client batches for one tick. Pure: the result
    /// depends only on seeds, tick, and cell.
    ///
    /// Only `PageLoadCompleted` and `ForegroundTime` events are emitted —
    /// the rolling aggregator never consumes `PageLoadInitiated`, and at
    /// tick cadence the abandoned-load distinction adds allocations without
    /// adding signal.
    pub fn tick_batches(&self, tick: u64, cell_idx: usize) -> Vec<ClientBatch> {
        let cell = self.cells[cell_idx];
        let table = self.table(tick, cell_idx);
        let seed = self.world.config().seed;
        let clients = self.clients_at(tick, cell);
        let mut out = Vec::with_capacity(clients as usize);
        for c in 0..clients {
            let client_id = seed.derive_indexed(
                "stream-client",
                mix(&[self.config.seed, tick, cell_idx as u64, c]),
            );
            let stream = client_id;
            let n_loads = poisson(seed, "stream-loads", stream, self.config.mean_loads);
            let mut events = Vec::with_capacity((n_loads as usize).min(4096) * 2);
            for l in 0..n_loads {
                let draw_idx = stream.wrapping_mul(1 + l).wrapping_add(l);
                let site = if bernoulli(seed, "stream-np", draw_idx, self.config.non_public_rate) {
                    None
                } else {
                    Some(self.sample_site(table, draw_idx))
                };
                let domain = match site {
                    Some(id) => self.world.domain_of(id, cell.country),
                    None => format!("host{}.corp", draw_idx % 50),
                };
                events.push(TelemetryEvent::PageLoadCompleted { domain: domain.clone() });
                if bernoulli(seed, "stream-fg", draw_idx, self.config.fg_rate) {
                    let millis = match site {
                        Some(id) => {
                            (self.world.universe().site(id).dwell * 1000.0).round() as u64
                        }
                        None => 30_000,
                    };
                    events.push(TelemetryEvent::ForegroundTime { domain, millis });
                }
            }
            out.push(ClientBatch {
                client_id,
                country: cell.country as u8,
                platform: cell.platform,
                month: Month::reference(),
                events,
            });
        }
        out
    }

    fn sample_site(&self, table: &DemandTable, idx: u64) -> SiteId {
        let seed = self.world.config().seed;
        let total = *table.cumulative.last().expect("non-empty demand");
        let u =
            ((seed.derive_indexed("stream-draw", idx) >> 11) as f64 / (1u64 << 53) as f64) * total;
        let pos = table.cumulative.partition_point(|c| *c < u);
        table.sites[pos.min(table.sites.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TickClock;
    use wwv_world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::small())
    }

    fn cfg() -> StreamConfig {
        StreamConfig {
            countries: 3,
            clients_per_tick: 6,
            mean_loads: 10.0,
            clock: TickClock::Logical,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn cell_order_is_canonical() {
        let cs = cells(&cfg());
        assert_eq!(cs.len(), 6);
        assert_eq!(cs[0], Cell { country: 0, platform: Platform::Windows });
        assert_eq!(cs[1], Cell { country: 0, platform: Platform::Android });
        assert_eq!(cs[5], Cell { country: 2, platform: Platform::Android });
    }

    #[test]
    fn batches_are_deterministic_per_tick_and_differ_across_ticks() {
        let w = world();
        let gen = TickGenerator::new(&w, &cfg());
        let a = gen.tick_batches(3, 1);
        let b = gen.tick_batches(3, 1);
        assert_eq!(a, b);
        let c = gen.tick_batches(4, 1);
        assert_ne!(a, c, "distinct ticks must draw distinct traffic");
    }

    #[test]
    fn seasonality_shock_changes_traffic_only_after_shock_tick() {
        let w = world();
        let quiet = TickGenerator::new(&w, &cfg());
        let shocked = TickGenerator::new(
            &w,
            &StreamConfig { scenario: Scenario::Seasonality, shock_tick: 5, ..cfg() },
        );
        assert_eq!(quiet.tick_batches(4, 0), shocked.tick_batches(4, 0));
        assert_ne!(quiet.tick_batches(5, 0), shocked.tick_batches(5, 0));
    }

    #[test]
    fn outage_collapses_client_volume() {
        let w = world();
        let gen = TickGenerator::new(
            &w,
            &StreamConfig { scenario: Scenario::Outage, shock_tick: 2, outage_country: 1, ..cfg() },
        );
        let hit = Cell { country: 1, platform: Platform::Windows };
        let spared = Cell { country: 0, platform: Platform::Windows };
        assert_eq!(gen.clients_at(1, hit), 6);
        assert_eq!(gen.clients_at(2, hit), 1);
        assert_eq!(gen.clients_at(2, spared), 6);
    }

    #[test]
    fn flashcrowd_boosts_target_site_share() {
        let w = world();
        let base_cfg = StreamConfig { clients_per_tick: 40, ..cfg() };
        let gen = TickGenerator::new(
            &w,
            &StreamConfig { scenario: Scenario::FlashCrowd, shock_tick: 0, ..base_cfg.clone() },
        );
        let quiet = TickGenerator::new(&w, &base_cfg);
        let target = gen.flash_site().expect("universe has a global site");
        let domain = w.domain_of(target, 0);
        let count = |batches: &[ClientBatch]| {
            batches
                .iter()
                .flat_map(|b| &b.events)
                .filter(|e| e.domain() == domain)
                .count()
        };
        assert!(
            count(&gen.tick_batches(0, 0)) > count(&quiet.tick_batches(0, 0)),
            "a 50x weight boost must raise the target's traffic"
        );
    }
}
