//! Rolling-window rank state with incremental top-K maintenance.
//!
//! [`Rolling`] keeps a ring of `window` tick-buckets per metric. On every
//! tick the newest bucket is pushed, the bucket falling off the back
//! retires, and the windowed totals absorb both deltas — O(changed keys),
//! never O(all keys).
//!
//! The top-K is **not** recomputed from all totals each tick. A *bench* (a
//! bounded superset of the true top-K, capacity `2k`) is maintained
//! incrementally alongside a *high-water mark* `static_max`: the largest
//! windowed count any key held at the moment it was evicted from the bench.
//!
//! Exactness argument: a key outside the bench has not had its count change
//! since eviction (any delta to a key makes it *dirty*, and every dirty key
//! is readmitted), so every off-bench count is ≤ `static_max`. Therefore if
//! the k-th count inside the bench exceeds `static_max`, no off-bench key
//! can belong in the top-K and the bench answer is exact. When that check
//! fails (or the bench ran dry), [`Rolling::top_k`] falls back to one full
//! rebuild from the totals — counted, so the determinism gate and the bench
//! report can show how rarely the slow path runs.

use std::collections::{HashMap, VecDeque};

use wwv_telemetry::event::{ClientBatch, TelemetryEvent};
use wwv_telemetry::privacy::is_public_domain;
use wwv_world::Metric;

/// Bench capacity as a multiple of K.
const BENCH_FACTOR: usize = 2;

/// Count-descending, id-ascending: the strict total order used everywhere a
/// rank list is materialized (ids are per-cell intern order, so the order —
/// and the emitted bytes — are deterministic).
fn rank_cmp(a: &(u32, u64), b: &(u32, u64)) -> std::cmp::Ordering {
    b.1.cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Rolling window over one metric of one cell.
#[derive(Debug)]
pub struct Rolling {
    window: usize,
    cap: usize,
    buckets: VecDeque<HashMap<u32, u64>>,
    totals: HashMap<u32, u64>,
    bench: HashMap<u32, u64>,
    static_max: u64,
    rebuilds: u64,
    retire_underflow: u64,
}

impl Rolling {
    /// A window of `window` ticks serving top-`k` queries.
    pub fn new(window: usize, k: usize) -> Rolling {
        let window = window.max(1);
        Rolling {
            window,
            cap: (k.max(1) * BENCH_FACTOR).max(k + 1),
            buckets: VecDeque::with_capacity(window + 1),
            totals: HashMap::new(),
            bench: HashMap::new(),
            static_max: 0,
            rebuilds: 0,
            retire_underflow: 0,
        }
    }

    /// Rotates the window: admits `bucket` as the newest tick, retires the
    /// oldest beyond `window`, and folds both deltas into the totals and
    /// the bench.
    pub fn push_bucket(&mut self, bucket: HashMap<u32, u64>) {
        let retiring = if self.buckets.len() == self.window {
            self.buckets.pop_front()
        } else {
            None
        };
        // Every key whose windowed count changes this tick is dirty and
        // must be re-benched — that invariant is what freezes off-bench
        // counts at ≤ static_max.
        let mut dirty: Vec<u32> = bucket.keys().copied().collect();
        if let Some(r) = &retiring {
            dirty.extend(r.keys().copied());
        }
        dirty.sort_unstable();
        dirty.dedup();

        for (&id, &n) in &bucket {
            *self.totals.entry(id).or_insert(0) += n;
        }
        if let Some(r) = &retiring {
            for (&id, &n) in r {
                match self.totals.get_mut(&id) {
                    Some(t) => {
                        // A retiring bucket can never carry more count than
                        // the window total it once contributed to — if it
                        // does, state has drifted. Clamp so the totals stay
                        // non-negative, but *count* the clamp: a silent
                        // saturating_sub here would mask the drift forever.
                        if n > *t {
                            self.retire_underflow += 1;
                        }
                        *t = t.saturating_sub(n);
                        if *t == 0 {
                            self.totals.remove(&id);
                        }
                    }
                    // The key's total is gone entirely while its bucket
                    // entry still retires: the same drift, fully advanced.
                    None => self.retire_underflow += 1,
                }
            }
        }
        self.buckets.push_back(bucket);

        for id in dirty {
            match self.totals.get(&id) {
                Some(&t) => {
                    self.bench.insert(id, t);
                }
                None => {
                    self.bench.remove(&id);
                }
            }
        }
        if self.bench.len() > self.cap {
            self.evict_overflow();
        }
    }

    /// Shrinks an overgrown bench back to capacity, raising the high-water
    /// mark to the largest evicted count.
    fn evict_overflow(&mut self) {
        let mut all: Vec<(u32, u64)> = self.bench.iter().map(|(&i, &c)| (i, c)).collect();
        all.select_nth_unstable_by(self.cap - 1, rank_cmp);
        for &(_, c) in &all[self.cap..] {
            self.static_max = self.static_max.max(c);
        }
        all.truncate(self.cap);
        self.bench = all.into_iter().collect();
    }

    /// The exact top-`k` of the current window, `(id, windowed count)`,
    /// ordered count-descending then id-ascending. `k` must be ≤ the `k`
    /// the state was built for.
    pub fn top_k(&mut self, k: usize) -> Vec<(u32, u64)> {
        let need = k.min(self.totals.len());
        let mut top = self.bench_top(need);
        let exact = top.len() >= need
            && (self.totals.len() <= self.bench.len()
                || top.last().map(|&(_, c)| c > self.static_max).unwrap_or(true));
        if !exact {
            self.rebuild();
            top = self.bench_top(need);
        }
        top
    }

    fn bench_top(&self, need: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.bench.iter().map(|(&i, &c)| (i, c)).collect();
        v.sort_unstable_by(rank_cmp);
        v.truncate(need);
        v
    }

    /// Full rebuild from the totals: the bench becomes the true top-`cap`
    /// and the high-water mark drops to the (cap+1)-th count.
    fn rebuild(&mut self) {
        let mut all: Vec<(u32, u64)> = self.totals.iter().map(|(&i, &c)| (i, c)).collect();
        if all.len() > self.cap {
            all.select_nth_unstable_by(self.cap - 1, rank_cmp);
            self.static_max = all[self.cap..].iter().map(|&(_, c)| c).max().unwrap_or(0);
            all.truncate(self.cap);
        } else {
            self.static_max = 0;
        }
        self.bench = all.into_iter().collect();
        self.rebuilds += 1;
    }

    /// Full-rebuild count so far (the incremental path's miss rate).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Retire-time clamp count: how often a retiring bucket carried more
    /// count than the window total (or a missing total). Nonzero means the
    /// ring and the totals have drifted apart — always zero in a healthy
    /// window.
    pub fn retire_underflow(&self) -> u64 {
        self.retire_underflow
    }

    /// Number of distinct keys currently in the window.
    pub fn distinct(&self) -> usize {
        self.totals.len()
    }
}

/// Per-tick accumulation for one cell: both metric buckets plus drop
/// accounting, before the tick is sealed into the rings.
#[derive(Debug, Default)]
struct TickAccum {
    loads: HashMap<u32, u64>,
    fg_ms: HashMap<u32, u64>,
    non_public_drops: u64,
    events: u64,
}

/// All rolling state for one (country, platform) cell: a per-cell domain
/// interner (ids are dense, assigned in first-seen event order — which is
/// deterministic because ingest is cell-local and event order is
/// generation order) and one [`Rolling`] per metric.
#[derive(Debug)]
pub struct CellAggregator {
    ids: HashMap<String, u32>,
    domains: Vec<String>,
    public: Vec<bool>,
    accum: TickAccum,
    loads: Rolling,
    fg_ms: Rolling,
}

impl CellAggregator {
    /// Fresh state for a `window`-tick ring serving top-`k`.
    pub fn new(window: usize, k: usize) -> CellAggregator {
        CellAggregator {
            ids: HashMap::new(),
            domains: Vec::new(),
            public: Vec::new(),
            accum: TickAccum::default(),
            loads: Rolling::new(window, k),
            fg_ms: Rolling::new(window, k),
        }
    }

    fn intern(&mut self, domain: &str) -> u32 {
        if let Some(&id) = self.ids.get(domain) {
            return id;
        }
        let id = self.domains.len() as u32;
        self.ids.insert(domain.to_owned(), id);
        self.domains.push(domain.to_owned());
        // The privacy check is cached per distinct domain — it also feeds
        // the global rejection counter, which must count distinct domains,
        // not raw event volume.
        self.public.push(is_public_domain(domain));
        id
    }

    /// Ingests one client batch into the current (unsealed) tick. Events on
    /// non-public domains are dropped and counted.
    pub fn ingest(&mut self, batch: &ClientBatch) {
        for event in &batch.events {
            self.accum.events += 1;
            let id = self.intern(event.domain());
            if !self.public[id as usize] {
                self.accum.non_public_drops += 1;
                continue;
            }
            match event {
                TelemetryEvent::PageLoadInitiated { .. } => {}
                TelemetryEvent::PageLoadCompleted { .. } => {
                    *self.accum.loads.entry(id).or_insert(0) += 1;
                }
                TelemetryEvent::ForegroundTime { millis, .. } => {
                    *self.accum.fg_ms.entry(id).or_insert(0) += millis;
                }
            }
        }
    }

    /// Seals the current tick: rotates both rings and resets the
    /// accumulator. Returns `(events ingested, non-public drops)` for the
    /// tick.
    pub fn seal_tick(&mut self) -> (u64, u64) {
        let accum = std::mem::take(&mut self.accum);
        self.loads.push_bucket(accum.loads);
        self.fg_ms.push_bucket(accum.fg_ms);
        (accum.events, accum.non_public_drops)
    }

    /// The exact windowed top-`k` for one metric, as
    /// `(domain, windowed count)` in rank order, counts below `min_count`
    /// filtered (the stream's privacy floor).
    pub fn top_k(&mut self, metric: Metric, k: usize, min_count: u64) -> Vec<(&str, u64)> {
        let rolling = match metric {
            Metric::PageLoads => &mut self.loads,
            Metric::TimeOnPage => &mut self.fg_ms,
        };
        let top = rolling.top_k(k);
        top.into_iter()
            .filter(|&(_, c)| c >= min_count)
            .map(|(id, c)| (self.domains[id as usize].as_str(), c))
            .collect()
    }

    /// Total full rebuilds across both metric rings.
    pub fn rebuilds(&self) -> u64 {
        self.loads.rebuilds() + self.fg_ms.rebuilds()
    }

    /// Total retire-time underflow clamps across both metric rings.
    pub fn retire_underflow(&self) -> u64 {
        self.loads.retire_underflow() + self.fg_ms.retire_underflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::{Month, Platform};

    /// Reference implementation: naive window totals + full sort.
    struct Naive {
        window: usize,
        buckets: VecDeque<HashMap<u32, u64>>,
    }

    impl Naive {
        fn new(window: usize) -> Naive {
            Naive { window, buckets: VecDeque::new() }
        }

        fn push_bucket(&mut self, bucket: HashMap<u32, u64>) {
            self.buckets.push_back(bucket);
            if self.buckets.len() > self.window {
                self.buckets.pop_front();
            }
        }

        fn top_k(&self, k: usize) -> Vec<(u32, u64)> {
            let mut totals: HashMap<u32, u64> = HashMap::new();
            for b in &self.buckets {
                for (&id, &n) in b {
                    *totals.entry(id).or_insert(0) += n;
                }
            }
            let mut v: Vec<(u32, u64)> = totals.into_iter().collect();
            v.sort_unstable_by(rank_cmp);
            v.truncate(k);
            v
        }
    }

    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A deterministic adversarial bucket: many keys relative to the bench
    /// capacity, skewed counts that shuffle ranks every tick.
    fn bucket(tick: u64, keys: u32) -> HashMap<u32, u64> {
        let mut b = HashMap::new();
        for i in 0..keys {
            let r = mix(tick.wrapping_mul(10_007).wrapping_add(i as u64));
            if r.is_multiple_of(3) {
                continue; // sparse: not every key appears every tick
            }
            b.insert(i, 1 + r % 97);
        }
        b
    }

    #[test]
    fn incremental_matches_naive_rebuild_every_tick() {
        let (window, k, keys) = (4, 5, 120);
        let mut fast = Rolling::new(window, k);
        let mut slow = Naive::new(window);
        for tick in 0..60 {
            let b = bucket(tick, keys);
            fast.push_bucket(b.clone());
            slow.push_bucket(b);
            assert_eq!(fast.top_k(k), slow.top_k(k), "divergence at tick {tick}");
        }
        // With 120 keys against a bench of 10, the test only means
        // something if both paths actually ran.
        assert!(fast.rebuilds() > 0, "rebuild path never exercised");
        assert!(fast.rebuilds() < 60, "incremental path never exercised");
        // A healthy window never clamps at retire time: every retiring
        // bucket count is exactly what it once contributed.
        assert_eq!(fast.retire_underflow(), 0, "ring/totals drift detected");
    }

    #[test]
    fn retired_ticks_leave_the_window() {
        let mut r = Rolling::new(2, 3);
        r.push_bucket(HashMap::from([(1, 100)]));
        r.push_bucket(HashMap::from([(2, 50)]));
        assert_eq!(r.top_k(3), vec![(1, 100), (2, 50)]);
        r.push_bucket(HashMap::from([(2, 5)]));
        // Tick 0 (key 1) has retired; key 2's windowed total is 55.
        assert_eq!(r.top_k(3), vec![(2, 55)]);
        assert_eq!(r.distinct(), 1);
    }

    #[test]
    fn ties_break_by_id_ascending() {
        let mut r = Rolling::new(3, 4);
        r.push_bucket(HashMap::from([(7, 10), (3, 10), (9, 10), (1, 2)]));
        assert_eq!(r.top_k(4), vec![(3, 10), (7, 10), (9, 10), (1, 2)]);
    }

    #[test]
    fn aggregator_filters_non_public_and_floors_counts() {
        let mut agg = CellAggregator::new(4, 8);
        let batch = ClientBatch {
            client_id: 1,
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            events: vec![
                TelemetryEvent::PageLoadCompleted { domain: "a.example".into() },
                TelemetryEvent::PageLoadCompleted { domain: "a.example".into() },
                TelemetryEvent::PageLoadCompleted { domain: "intranet.corp".into() },
                TelemetryEvent::PageLoadCompleted { domain: "b.example".into() },
                TelemetryEvent::ForegroundTime { domain: "a.example".into(), millis: 1234 },
            ],
        };
        agg.ingest(&batch);
        let (events, drops) = agg.seal_tick();
        assert_eq!((events, drops), (5, 1));
        assert_eq!(agg.top_k(Metric::PageLoads, 8, 1), vec![("a.example", 2), ("b.example", 1)]);
        assert_eq!(agg.top_k(Metric::PageLoads, 8, 2), vec![("a.example", 2)]);
        assert_eq!(agg.top_k(Metric::TimeOnPage, 8, 1), vec![("a.example", 1234)]);
    }

    #[test]
    fn proptest_like_sweep_over_geometries() {
        for &(window, k, keys) in &[(1usize, 1usize, 30u32), (2, 3, 40), (5, 8, 16), (3, 20, 10)] {
            let mut fast = Rolling::new(window, k);
            let mut slow = Naive::new(window);
            for tick in 0u64..30 {
                let b = bucket(tick.wrapping_mul(31).wrapping_add(keys as u64), keys);
                fast.push_bucket(b.clone());
                slow.push_bucket(b);
                assert_eq!(
                    fast.top_k(k),
                    slow.top_k(k),
                    "divergence: window={window} k={k} keys={keys} tick={tick}"
                );
            }
            assert_eq!(
                fast.retire_underflow(),
                0,
                "ring/totals drift: window={window} k={k} keys={keys}"
            );
        }
    }

    #[test]
    fn retire_underflow_counts_simulated_drift() {
        // The counter must actually fire when state drifts. Simulate both
        // drift shapes by corrupting the totals directly (the public API
        // cannot produce them — that is the point of the counter).
        let mut r = Rolling::new(2, 3);
        r.push_bucket(HashMap::from([(1, 10), (2, 4)]));
        // Drift shape 1: the total is smaller than what the bucket will
        // retire. Shape 2: the total is gone entirely.
        *r.totals.get_mut(&1).expect("key 1 tracked") = 3;
        r.totals.remove(&2);
        r.push_bucket(HashMap::new());
        r.push_bucket(HashMap::new()); // retires tick 0: both keys clamp
        assert_eq!(r.retire_underflow(), 2);
        // Totals stay non-negative and the window keeps serving.
        assert_eq!(r.top_k(3), vec![]);
    }
}
