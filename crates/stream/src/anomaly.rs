//! Tick-over-tick category-share anomaly detection.
//!
//! The paper's §4.5 temporal analysis observes that category shares are
//! stable month-over-month *except* under shocks (the December e-commerce
//! bump). The streaming analogue: compute the category share vector of the
//! emitted window every tick, difference it against the previous tick, and
//! flag categories whose share delta is a MAD outlier among this tick's
//! deltas (`wwv_stats::mad_outliers`) *and* exceeds an absolute floor —
//! the floor keeps the detector quiet on steady streams, where even the
//! largest of 12 near-zero deltas is technically an "outlier".

use std::collections::HashMap;

use wwv_stats::{mad_outliers, median, OutlierVerdict};
use wwv_taxonomy::Category;
use wwv_world::{SiteId, World};

/// Domain → (site, category) lookup covering every domain the generator can
/// emit for the active countries. Built once per run; snapshot assembly and
/// share computation both resolve through it.
pub struct DomainIndex {
    map: HashMap<String, (SiteId, Category)>,
}

impl DomainIndex {
    /// Indexes all domains of `world`'s universe as rendered in the first
    /// `countries` countries (ccTLD sites render a different domain per
    /// country).
    pub fn build(world: &World, countries: usize) -> DomainIndex {
        let universe = world.universe();
        let mut map = HashMap::new();
        for (i, site) in universe.sites.iter().enumerate() {
            let id = SiteId(i as u32);
            if site.cctld {
                for country in 0..countries {
                    map.insert(site.domain_in(country), (id, site.category));
                }
            } else {
                map.insert(site.domain_in(0), (id, site.category));
            }
        }
        DomainIndex { map }
    }

    /// Resolves a domain to its site, if it belongs to the universe.
    pub fn site(&self, domain: &str) -> Option<SiteId> {
        self.map.get(domain).map(|&(id, _)| id)
    }

    /// Resolves a domain to its category, if it belongs to the universe.
    pub fn category(&self, domain: &str) -> Option<Category> {
        self.map.get(domain).map(|&(_, c)| c)
    }

    /// Number of indexed domains.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The load-weighted category share vector (one entry per `Category::ALL`,
/// in that order) of a set of `(domain, count)` rank entries. Domains
/// outside the universe contribute nothing. All-zero input yields all-zero
/// shares.
pub fn category_shares<'a, I>(entries: I, index: &DomainIndex) -> Vec<f64>
where
    I: IntoIterator<Item = (&'a str, u64)>,
{
    let mut counts = vec![0u64; Category::ALL.len()];
    for (domain, n) in entries {
        if let Some(cat) = index.category(domain) {
            let slot = Category::ALL.iter().position(|c| *c == cat).expect("category in ALL");
            counts[slot] += n;
        }
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; Category::ALL.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// One flagged category-share shift.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// Tick the shift was observed at.
    pub tick: u64,
    /// The shifting category.
    pub category: Category,
    /// Share at the previous tick.
    pub before: f64,
    /// Share at this tick.
    pub after: f64,
    /// `after − before`.
    pub delta: f64,
    /// Modified z-score of the delta among this tick's deltas (0 when the
    /// MAD degenerates).
    pub z: f64,
}

/// Stateful tick-over-tick detector. Feed it the emitted share vector once
/// per tick; it returns the categories whose shift is anomalous.
pub struct AnomalyDetector {
    min_share_delta: f64,
    mad_threshold: f64,
    prev: Option<Vec<f64>>,
    flagged_total: u64,
}

impl AnomalyDetector {
    /// A detector flagging deltas that are MAD outliers beyond
    /// `mad_threshold` and at least `min_share_delta` in magnitude.
    pub fn new(min_share_delta: f64, mad_threshold: f64) -> AnomalyDetector {
        AnomalyDetector { min_share_delta, mad_threshold, prev: None, flagged_total: 0 }
    }

    /// Observes tick `tick`'s share vector (in `Category::ALL` order) and
    /// returns any flagged shifts. The first observation only establishes
    /// the baseline.
    pub fn observe(&mut self, tick: u64, shares: &[f64]) -> Vec<AnomalyEvent> {
        debug_assert_eq!(shares.len(), Category::ALL.len());
        let Some(prev) = self.prev.replace(shares.to_vec()) else {
            return Vec::new();
        };
        let deltas: Vec<f64> = shares.iter().zip(&prev).map(|(a, b)| a - b).collect();
        let Some(verdicts) = mad_outliers(&deltas, self.mad_threshold) else {
            return Vec::new();
        };
        let med = median(&deltas).unwrap_or(0.0);
        let mad = {
            let dev: Vec<f64> = deltas.iter().map(|d| (d - med).abs()).collect();
            median(&dev).unwrap_or(0.0)
        };
        let mut out = Vec::new();
        for (slot, (&delta, verdict)) in deltas.iter().zip(verdicts).enumerate() {
            if verdict == OutlierVerdict::Inlier || delta.abs() < self.min_share_delta {
                continue;
            }
            let z = if mad > 0.0 { 0.6745 * (delta - med) / mad } else { 0.0 };
            out.push(AnomalyEvent {
                tick,
                category: Category::ALL[slot],
                before: prev[slot],
                after: shares[slot],
                delta,
                z,
            });
            self.flagged_total += 1;
        }
        out
    }

    /// Total flags emitted over the detector's lifetime.
    pub fn flagged_total(&self) -> u64 {
        self.flagged_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::WorldConfig;

    fn even_shares() -> Vec<f64> {
        vec![1.0 / Category::ALL.len() as f64; Category::ALL.len()]
    }

    #[test]
    fn index_covers_universe_domains() {
        let world = World::new(WorldConfig::small());
        let index = DomainIndex::build(&world, 3);
        assert!(!index.is_empty());
        let domain = world.domain_of(SiteId(0), 0);
        assert_eq!(index.site(&domain), Some(SiteId(0)));
        assert!(index.category(&domain).is_some());
        assert_eq!(index.site("not-in-universe.example"), None);
    }

    #[test]
    fn steady_shares_are_never_flagged() {
        let mut det = AnomalyDetector::new(0.004, 6.0);
        for tick in 0..10 {
            assert!(det.observe(tick, &even_shares()).is_empty(), "flag at tick {tick}");
        }
        assert_eq!(det.flagged_total(), 0);
    }

    #[test]
    fn a_share_shock_is_flagged_on_the_next_tick() {
        let mut det = AnomalyDetector::new(0.004, 6.0);
        let base = even_shares();
        assert!(det.observe(0, &base).is_empty());
        // Move 10 points of share into category 0, draining the rest evenly.
        let n = base.len();
        let mut shocked = base.clone();
        shocked[0] += 0.10;
        for s in shocked.iter_mut().skip(1) {
            *s -= 0.10 / (n - 1) as f64;
        }
        let events = det.observe(1, &shocked);
        assert_eq!(events.len(), 1, "exactly the shocked category flags: {events:?}");
        assert_eq!(events[0].category, Category::ALL[0]);
        assert!(events[0].delta > 0.09);
        assert_eq!(events[0].tick, 1);
        // Stabilizing at the new level stops the flagging.
        assert!(det.observe(2, &shocked).is_empty());
    }

    #[test]
    fn sub_floor_shifts_stay_quiet() {
        let mut det = AnomalyDetector::new(0.05, 6.0);
        let base = even_shares();
        assert!(det.observe(0, &base).is_empty());
        let n = base.len();
        let mut nudged = base.clone();
        nudged[0] += 0.01;
        for s in nudged.iter_mut().skip(1) {
            *s -= 0.01 / (n - 1) as f64;
        }
        assert!(det.observe(1, &nudged).is_empty(), "1-point shift is below the 5-point floor");
    }

    #[test]
    fn shares_are_normalized_and_aligned_to_category_all() {
        let world = World::new(WorldConfig::small());
        let index = DomainIndex::build(&world, 1);
        let d0 = world.domain_of(SiteId(0), 0);
        let shares = category_shares([(d0.as_str(), 10u64)], &index);
        assert_eq!(shares.len(), Category::ALL.len());
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let cat = index.category(&d0).unwrap();
        let slot = Category::ALL.iter().position(|c| *c == cat).unwrap();
        assert_eq!(shares[slot], 1.0);
    }
}
