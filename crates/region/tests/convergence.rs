//! Convergence gate for multi-region replication: any delta delivery
//! permutation — including duplicates, faulted wires, and a crashed then
//! restored replica — must yield merged monthly aggregates byte-identical
//! to the single-collector build. Run by name from `scripts/verify.sh`.
//!
//! The plain `#[test]` sweeps below enumerate deterministic seeded
//! permutations so the gate also runs in environments where proptest
//! generation is unavailable; the `proptest!` block widens the same
//! property over generated orders.

use proptest::prelude::*;
use wwv_fault::{points, FaultKind, FaultPlan, FaultRule};
use wwv_region::{
    partitioned_ingest, raw_deltas, run_region, Delta, RegionConfig, Replica, SyncPlan,
};
use wwv_world::{World, WorldConfig};

fn world() -> World {
    World::new(WorldConfig::small())
}

fn cfg(seed: u64, replicas: usize) -> RegionConfig {
    RegionConfig {
        seed,
        replicas,
        ticks: 4,
        countries: 2,
        clients_per_tick: 8,
        ..RegionConfig::default()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = splitmix64(seed);
    for i in (1..items.len()).rev() {
        state = splitmix64(state);
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

/// Applies `deltas` to every replica in the given order (each replica sees
/// the ones addressed to it) and asserts all of them land byte-identical
/// to the reference.
fn assert_converges(
    replicas: &mut [Replica],
    reference: &Replica,
    deltas: &[(u8, Delta)],
    label: &str,
) {
    for (peer, delta) in deltas {
        replicas[*peer as usize].apply_delta(delta.clone());
    }
    let target = reference.merged_bytes();
    for r in replicas.iter() {
        assert_eq!(r.merged_bytes(), target, "{label}: replica {} diverged", r.id());
    }
}

#[test]
fn every_seeded_permutation_with_duplicates_converges() {
    let world = world();
    for replicas_n in [2usize, 3, 5] {
        let (template, reference) = partitioned_ingest(&world, &cfg(0xC0FFEE, replicas_n));
        let base = raw_deltas(&template);
        assert!(!base.is_empty());
        for perm_seed in 0..12u64 {
            let mut deltas = base.clone();
            // Duplicate every third delta, then shuffle the whole stream:
            // redelivery in an arbitrary interleaving.
            let dups: Vec<_> = deltas.iter().step_by(3).cloned().collect();
            deltas.extend(dups);
            shuffle(&mut deltas, perm_seed);
            let mut fresh = template.clone();
            assert_converges(
                &mut fresh,
                &reference,
                &deltas,
                &format!("n={replicas_n} perm={perm_seed}"),
            );
        }
    }
}

#[test]
fn recovery_faults_converge_under_every_plan() {
    let world = world();
    for plan in [SyncPlan::Order, SyncPlan::Shuffle, SyncPlan::Partition] {
        for kind in [
            FaultKind::Drop,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Delay(1),
        ] {
            for point in [points::REGION_SYNC_SEND, points::REGION_SYNC_RECV] {
                let faults = FaultPlan::new(0xFA11)
                    .with(FaultRule { point, kind, rate: 0.3 });
                let config = RegionConfig { plan, ..cfg(0xBEEF, 3) };
                let report = run_region(&world, &config, &faults);
                assert!(
                    report.converged,
                    "{}/{:?}@{point} diverged after {} extra rounds",
                    plan.name(),
                    kind,
                    report.convergence_rounds
                );
                assert_eq!(report.decode_errors, 0, "recovery faults never corrupt");
                assert_eq!(report.pending_after_gc, 0, "GC drained the bookkeeping");
            }
        }
    }
}

#[test]
fn corruption_faults_surface_typed_and_still_converge() {
    let world = world();
    for kind in [FaultKind::BitFlip, FaultKind::Truncate] {
        let faults = FaultPlan::new(0xBAD)
            .with(FaultRule { point: points::REGION_SYNC_SEND, kind, rate: 0.25 });
        let report = run_region(&world, &cfg(0xFEED, 3), &faults);
        assert!(report.converged, "{kind:?} diverged");
        assert!(
            report.decode_errors > 0,
            "{kind:?} at 25% must surface typed decode errors"
        );
        assert_eq!(report.pending_after_gc, 0);
    }
}

#[test]
fn crashed_then_restored_replica_converges_under_drops() {
    let world = world();
    let faults = FaultPlan::new(0xC4A5)
        .with(FaultRule { point: points::REGION_SYNC_SEND, kind: FaultKind::Drop, rate: 0.2 });
    let config = RegionConfig {
        crash_replica: Some(1),
        crash_tick: 2,
        ..cfg(0xD00D, 3)
    };
    let report = run_region(&world, &config, &faults);
    assert_eq!(report.crash_restores, 1, "the crash must actually happen");
    assert!(report.converged, "catch-up from the wwv-snap checkpoint failed");
    assert_eq!(report.pending_after_gc, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated delivery order of the full delta stream (with a
    /// generated duplicate fraction) converges byte-identically.
    #[test]
    fn generated_permutations_converge(
        seed in 0u64..u64::MAX / 2,
        replicas_n in 2usize..5,
        dup_stride in 2usize..6,
    ) {
        let world = World::new(WorldConfig::small());
        let (template, reference) = partitioned_ingest(&world, &cfg(seed, replicas_n));
        let mut deltas = raw_deltas(&template);
        let dups: Vec<_> = deltas.iter().step_by(dup_stride).cloned().collect();
        deltas.extend(dups);
        shuffle(&mut deltas, seed ^ 0x5eed);
        let mut fresh = template.clone();
        for (peer, delta) in &deltas {
            fresh[*peer as usize].apply_delta(delta.clone());
        }
        let target = reference.merged_bytes();
        for r in &fresh {
            prop_assert_eq!(&r.merged_bytes(), &target, "replica {} diverged", r.id());
        }
    }
}
