//! A region replica: partitioned ingest, versioned merge, ack-driven
//! retransmission, coordination-free GC, and snapshot checkpointing.
//!
//! ## Merge semantics
//!
//! State is a map `(origin, cell) → (version, counts)`. A delta carries a
//! full cell partial at one origin-assigned version, and the merge keeps
//! whichever version is higher:
//!
//! * **Commutative** — `merge(a, b) = merge(b, a)`: max() doesn't care
//!   about order.
//! * **Idempotent** — applying a delta twice is a no-op the second time.
//! * **Symmetric** — every replica runs the identical rule; there is no
//!   leader.
//!
//! Because versions are assigned by a single writer (the origin) and only
//! ever grow, the highest version seen *is* the newest state — no clock,
//! no tie-break, no conflict. Any delivery order, any gossip topology, and
//! any amount of duplication therefore converge to the same map, and the
//! canonical [`Replica::merged_bytes`] encoding makes that convergence
//! checkable byte for byte.

use crate::state::{CellKey, VersionedCounts};
use crate::sync::{Delta, DeltaError};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use wwv_snap::{SnapError, SnapshotFile, SnapshotWriter};
use wwv_telemetry::privacy::is_public_domain;
use wwv_telemetry::{ClientBatch, TelemetryEvent};
use wwv_world::{Metric, Month};

/// Snapshot chunk kinds for a replica checkpoint.
const CHUNK_META: u16 = 0x5230;
const CHUNK_CELL: u16 = 0x5231;
const CHUNK_ACK: u16 = 0x5232;
const CHUNK_SEAL: u16 = 0x5233;
const CHUNK_RETIRED: u16 = 0x5234;

/// A failure restoring a replica from a checkpoint.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot container itself is damaged.
    Snap(SnapError),
    /// A stored cell payload failed to decode.
    Delta(DeltaError),
    /// A bookkeeping chunk is structurally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Snap(e) => write!(f, "checkpoint container: {e:?}"),
            RestoreError::Delta(e) => write!(f, "checkpoint cell payload: {e}"),
            RestoreError::Malformed(what) => write!(f, "checkpoint bookkeeping: {what}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// One regional collector replica.
#[derive(Debug, Clone)]
pub struct Replica {
    id: u8,
    peers: Vec<u8>,
    /// `(origin, cell) → versioned partial`. Own cells use `origin == id`.
    merged: BTreeMap<(u8, CellKey), VersionedCounts>,
    /// Highest version each peer has acknowledged for each own-origin cell.
    acked: HashMap<(u8, CellKey), u64>,
    /// Months whose own-origin versions are frozen.
    sealed: BTreeSet<Month>,
    /// Own-origin cells fully acknowledged at their sealed version: all
    /// sync bookkeeping for them has been dropped.
    retired: BTreeSet<CellKey>,
    deltas_applied: u64,
    stale_merges: u64,
    events_ingested: u64,
}

impl Replica {
    /// A replica with id `id` out of `replicas` total.
    pub fn new(id: u8, replicas: u8) -> Replica {
        assert!(id < replicas.max(1), "replica id out of range");
        Replica {
            id,
            peers: (0..replicas.max(1)).filter(|p| *p != id).collect(),
            merged: BTreeMap::new(),
            acked: HashMap::new(),
            sealed: BTreeSet::new(),
            retired: BTreeSet::new(),
            deltas_applied: 0,
            stale_merges: 0,
            events_ingested: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Peer ids (everyone but self).
    pub fn peers(&self) -> &[u8] {
        &self.peers
    }

    /// Ingests one client batch into the own-origin partials, applying the
    /// same privacy filter and metric mapping as the single collector:
    /// completed loads count toward [`Metric::PageLoads`], foreground time
    /// accumulates milliseconds under [`Metric::TimeOnPage`], and initiated
    /// loads are carried but not analyzed (the paper drops them as nearly
    /// identical to completed loads).
    pub fn ingest_batch(&mut self, batch: &ClientBatch) {
        debug_assert!(
            !self.sealed.contains(&batch.month),
            "ingest into a sealed month breaks version freezing"
        );
        let mut touched: BTreeSet<CellKey> = BTreeSet::new();
        for event in &batch.events {
            let domain = event.domain();
            if !is_public_domain(domain) {
                continue;
            }
            let (metric, amount) = match event {
                TelemetryEvent::PageLoadInitiated { .. } => continue,
                TelemetryEvent::PageLoadCompleted { .. } => (Metric::PageLoads, 1),
                TelemetryEvent::ForegroundTime { millis, .. } => (Metric::TimeOnPage, *millis),
            };
            let cell = CellKey {
                country: batch.country,
                platform: batch.platform,
                metric,
                month: batch.month,
            };
            let entry = self.merged.entry((self.id, cell)).or_default();
            *entry.counts.entry(domain.to_owned()).or_insert(0) += amount;
            touched.insert(cell);
            self.events_ingested += 1;
        }
        // One version bump per touched cell per batch: versions count
        // states, not events, so a delta per batch is the worst case.
        for cell in touched {
            self.merged
                .get_mut(&(self.id, cell))
                .expect("touched cell exists")
                .version += 1;
        }
    }

    /// Freezes the own-origin versions of a month: no further ingest may
    /// touch it, which is the precondition for [`Replica::gc_sealed`].
    pub fn seal(&mut self, month: Month) {
        self.sealed.insert(month);
    }

    /// The deltas this replica owes `peer`: every own-origin cell whose
    /// current version the peer has not acknowledged. Drop faults need no
    /// special handling — an unacked delta is simply offered again on the
    /// next round.
    pub fn deltas_for(&self, peer: u8) -> Vec<Delta> {
        self.merged
            .iter()
            .filter(|((origin, cell), vc)| {
                *origin == self.id
                    && !self.retired.contains(cell)
                    && self.acked.get(&(peer, *cell)).copied().unwrap_or(0) < vc.version
            })
            .map(|((origin, cell), vc)| Delta {
                origin: *origin,
                cell: *cell,
                version: vc.version,
                counts: vc.counts.clone(),
            })
            .collect()
    }

    /// Merges one delta. Returns the version now held for `(origin, cell)`
    /// — the value the receiver acknowledges back to the sender.
    pub fn apply_delta(&mut self, delta: Delta) -> u64 {
        let key = (delta.origin, delta.cell);
        let held = self.merged.get(&key).map(|vc| vc.version).unwrap_or(0);
        if delta.version > held {
            let version = delta.version;
            self.merged.insert(key, delta.into_versioned());
            self.deltas_applied += 1;
            version
        } else {
            self.stale_merges += 1;
            held
        }
    }

    /// Records that `peer` acknowledged `version` of own-origin `cell`.
    /// Acks are monotone: a late or duplicated ack can only be a no-op.
    pub fn record_ack(&mut self, peer: u8, cell: CellKey, version: u64) {
        let slot = self.acked.entry((peer, cell)).or_insert(0);
        *slot = (*slot).max(version);
    }

    /// Forgets every acknowledgement received from `peer` — called when a
    /// peer crashes and restores from a checkpoint. The restored peer may
    /// have lost state it acked after its checkpoint, so the only safe
    /// assumption is that it acked nothing; retransmission re-converges it
    /// and the idempotent merge makes the re-sends harmless.
    pub fn forget_acks_from(&mut self, peer: u8) {
        self.acked.retain(|(p, _), _| *p != peer);
        // Retired cells were retired on the strength of that peer's acks;
        // un-retire everything so those cells are offered again too.
        self.retired.clear();
    }

    /// Coordination-free GC of a sealed month: every own-origin cell of the
    /// month whose frozen version all peers have acknowledged needs no
    /// further sync bookkeeping, so its ack rows are dropped and the cell
    /// is marked retired (never offered again). Safe because the seal
    /// freezes the version and acks are monotone — no peer can ever need a
    /// retired delta. Returns the number of cells retired.
    pub fn gc_sealed(&mut self, month: Month) -> usize {
        if !self.sealed.contains(&month) {
            return 0;
        }
        let candidates: Vec<(CellKey, u64)> = self
            .merged
            .iter()
            .filter(|((origin, cell), _)| {
                *origin == self.id && cell.month == month && !self.retired.contains(cell)
            })
            .map(|((_, cell), vc)| (*cell, vc.version))
            .collect();
        let mut retired = 0;
        for (cell, version) in candidates {
            let all_acked = self
                .peers
                .iter()
                .all(|p| self.acked.get(&(*p, cell)).copied().unwrap_or(0) >= version);
            if all_acked {
                self.retired.insert(cell);
                self.acked.retain(|(_, c), _| *c != cell);
                retired += 1;
            }
        }
        retired
    }

    /// Number of `(origin, cell)` entries held.
    pub fn cells_held(&self) -> usize {
        self.merged.len()
    }

    /// Deltas successfully merged (non-stale).
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Deltas that arrived at or below the held version (duplicates,
    /// reorderings, gossip echoes) — all safely ignored.
    pub fn stale_merges(&self) -> u64 {
        self.stale_merges
    }

    /// Events ingested locally.
    pub fn events_ingested(&self) -> u64 {
        self.events_ingested
    }

    /// Canonical byte encoding of the *union* aggregate this replica
    /// currently believes in: per cell, counts summed across all origins,
    /// cells and domains in sorted order. Two replicas hold the same view
    /// if and only if their `merged_bytes` are identical — the convergence
    /// check the whole crate is built around.
    pub fn merged_bytes(&self) -> Vec<u8> {
        let mut union: BTreeMap<CellKey, BTreeMap<&str, u64>> = BTreeMap::new();
        for ((_, cell), vc) in &self.merged {
            let slot = union.entry(*cell).or_default();
            for (domain, count) in &vc.counts {
                *slot.entry(domain.as_str()).or_insert(0) += count;
            }
        }
        let mut buf = Vec::new();
        for (cell, counts) in &union {
            if counts.is_empty() {
                continue;
            }
            buf.extend_from_slice(&cell.packed());
            buf.extend_from_slice(&(counts.len() as u32).to_le_bytes());
            for (domain, count) in counts {
                buf.extend_from_slice(&(domain.len() as u16).to_le_bytes());
                buf.extend_from_slice(domain.as_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
            }
        }
        buf
    }

    /// Serializes the replica into a `wwv-snap` checkpoint. Every cell
    /// payload reuses the checksummed delta encoding, so a damaged
    /// checkpoint fails typed at restore rather than resurrecting garbage.
    pub fn checkpoint(&self) -> Bytes {
        let mut w = SnapshotWriter::new();
        let mut meta = vec![self.id, self.peers.len() as u8 + 1];
        // The ingest counter reflects persisted counts, so it rides along;
        // the merge diagnostics (applied/stale) are process-lifetime only.
        meta.extend_from_slice(&self.events_ingested.to_le_bytes());
        w.add_chunk(CHUNK_META, b"replica", &meta);
        for ((origin, cell), vc) in &self.merged {
            let delta = Delta {
                origin: *origin,
                cell: *cell,
                version: vc.version,
                counts: vc.counts.clone(),
            };
            let mut key = vec![*origin];
            key.extend_from_slice(&cell.packed());
            w.add_chunk(CHUNK_CELL, &key, &delta.encode());
        }
        let mut acks: Vec<u8> = Vec::with_capacity(self.acked.len() * 13);
        let mut rows: Vec<(u8, CellKey, u64)> =
            self.acked.iter().map(|((p, c), v)| (*p, *c, *v)).collect();
        rows.sort_by_key(|(p, c, _)| (*p, c.packed()));
        for (peer, cell, version) in rows {
            acks.push(peer);
            acks.extend_from_slice(&cell.packed());
            acks.extend_from_slice(&version.to_le_bytes());
        }
        w.add_chunk(CHUNK_ACK, b"acks", &acks);
        let sealed: Vec<u8> = self.sealed.iter().map(|m| m.index() as u8).collect();
        w.add_chunk(CHUNK_SEAL, b"sealed", &sealed);
        let mut retired = Vec::with_capacity(self.retired.len() * 4);
        for cell in &self.retired {
            retired.extend_from_slice(&cell.packed());
        }
        w.add_chunk(CHUNK_RETIRED, b"retired", &retired);
        w.finish()
    }

    /// Restores a replica from a [`Replica::checkpoint`], verifying every
    /// chunk checksum and every cell payload end to end.
    pub fn restore(bytes: Bytes) -> Result<Replica, RestoreError> {
        let snap = SnapshotFile::parse(bytes).map_err(RestoreError::Snap)?;
        snap.verify_all().map_err(RestoreError::Snap)?;
        let meta = snap
            .find(CHUNK_META, b"replica")
            .map_err(RestoreError::Snap)?
            .ok_or(RestoreError::Malformed("missing replica meta chunk"))?;
        if meta.len() != 10 {
            return Err(RestoreError::Malformed("meta chunk is not 10 bytes"));
        }
        let mut replica = Replica::new(meta[0], meta[1]);
        replica.events_ingested =
            u64::from_le_bytes(meta[2..10].try_into().expect("8-byte counter"));
        for (i, entry) in snap.entries().iter().enumerate() {
            if entry.kind != CHUNK_CELL {
                continue;
            }
            let payload = snap.payload(i).map_err(RestoreError::Snap)?;
            let delta = Delta::decode(&payload).map_err(RestoreError::Delta)?;
            replica.merged.insert((delta.origin, delta.cell), delta.into_versioned());
        }
        if let Some(acks) = snap.find(CHUNK_ACK, b"acks").map_err(RestoreError::Snap)? {
            if acks.len() % 13 != 0 {
                return Err(RestoreError::Malformed("ack rows are 13 bytes each"));
            }
            for row in acks.chunks_exact(13) {
                let cell = CellKey::unpack(&row[1..5])
                    .ok_or(RestoreError::Malformed("bad cell key in ack row"))?;
                let version =
                    u64::from_le_bytes(row[5..13].try_into().expect("8-byte version"));
                replica.acked.insert((row[0], cell), version);
            }
        }
        if let Some(sealed) = snap.find(CHUNK_SEAL, b"sealed").map_err(RestoreError::Snap)? {
            for idx in sealed.iter() {
                let month = crate::state::month_from_index(*idx)
                    .ok_or(RestoreError::Malformed("bad month index in seal chunk"))?;
                replica.sealed.insert(month);
            }
        }
        if let Some(retired) = snap.find(CHUNK_RETIRED, b"retired").map_err(RestoreError::Snap)? {
            if retired.len() % 4 != 0 {
                return Err(RestoreError::Malformed("retired rows are 4 bytes each"));
            }
            for row in retired.chunks_exact(4) {
                let cell = CellKey::unpack(row)
                    .ok_or(RestoreError::Malformed("bad cell key in retired chunk"))?;
                replica.retired.insert(cell);
            }
        }
        Ok(replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::Platform;

    fn batch(client: u64, domain: &str, loads: u64, fg: u64) -> ClientBatch {
        let mut events = Vec::new();
        for _ in 0..loads {
            events.push(TelemetryEvent::PageLoadCompleted { domain: domain.to_owned() });
        }
        if fg > 0 {
            events.push(TelemetryEvent::ForegroundTime { domain: domain.to_owned(), millis: fg });
        }
        ClientBatch {
            client_id: client,
            country: 1,
            platform: Platform::Windows,
            month: Month::reference(),
            events,
        }
    }

    fn loads_cell() -> CellKey {
        CellKey {
            country: 1,
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            month: Month::reference(),
        }
    }

    #[test]
    fn ingest_maps_events_to_metric_cells_and_filters_privacy() {
        let mut r = Replica::new(0, 1);
        let mut b = batch(9, "site.example", 3, 250);
        b.events.push(TelemetryEvent::PageLoadCompleted { domain: "localhost".to_owned() });
        b.events.push(TelemetryEvent::PageLoadInitiated { domain: "site.example".to_owned() });
        r.ingest_batch(&b);
        let loads = r.merged.get(&(0, loads_cell())).expect("loads cell");
        assert_eq!(loads.counts.get("site.example"), Some(&3));
        assert_eq!(loads.counts.get("localhost"), None, "non-public dropped");
        assert_eq!(loads.version, 1);
        let fg_cell = CellKey { metric: Metric::TimeOnPage, ..loads_cell() };
        let fg = r.merged.get(&(0, fg_cell)).expect("fg cell");
        assert_eq!(fg.counts.get("site.example"), Some(&250));
    }

    #[test]
    fn merge_is_idempotent_commutative_and_version_monotone() {
        let mut a = Replica::new(0, 2);
        a.ingest_batch(&batch(1, "one.example", 2, 0));
        a.ingest_batch(&batch(2, "two.example", 1, 0));
        let deltas = a.deltas_for(1);
        assert_eq!(deltas.len(), 1, "one touched cell");

        let mut fwd = Replica::new(1, 2);
        let mut rev = Replica::new(1, 2);
        for d in &deltas {
            fwd.apply_delta(d.clone());
        }
        for d in deltas.iter().rev() {
            rev.apply_delta(d.clone());
        }
        assert_eq!(fwd.merged_bytes(), rev.merged_bytes(), "commutative");

        let before = fwd.merged_bytes();
        for d in &deltas {
            fwd.apply_delta(d.clone()); // duplicate delivery
        }
        assert_eq!(fwd.merged_bytes(), before, "idempotent");
        assert_eq!(fwd.stale_merges(), 1);

        // A stale (older-version) delta can never regress the state.
        let mut old = deltas[0].clone();
        old.version = 1;
        old.counts.clear();
        fwd.apply_delta(old);
        assert_eq!(fwd.merged_bytes(), before, "stale delta ignored");
    }

    #[test]
    fn acks_gate_retransmission() {
        let mut a = Replica::new(0, 2);
        a.ingest_batch(&batch(1, "one.example", 2, 0));
        let d = a.deltas_for(1).remove(0);
        assert_eq!(a.deltas_for(1).len(), 1, "unacked: offered again");
        a.record_ack(1, d.cell, d.version);
        assert!(a.deltas_for(1).is_empty(), "acked: nothing owed");
        a.ingest_batch(&batch(2, "one.example", 1, 0));
        assert_eq!(a.deltas_for(1).len(), 1, "new version: owed again");
    }

    #[test]
    fn gc_retires_only_sealed_fully_acked_cells() {
        let mut a = Replica::new(0, 3);
        a.ingest_batch(&batch(1, "one.example", 2, 0));
        let cell = loads_cell();
        let version = a.merged.get(&(0, cell)).expect("cell").version;
        assert_eq!(a.gc_sealed(Month::reference()), 0, "not sealed yet");
        a.seal(Month::reference());
        assert_eq!(a.gc_sealed(Month::reference()), 0, "no acks yet");
        a.record_ack(1, cell, version);
        assert_eq!(a.gc_sealed(Month::reference()), 0, "peer 2 missing");
        a.record_ack(2, cell, version);
        assert_eq!(a.gc_sealed(Month::reference()), 1, "fully acked: retired");
        assert!(a.deltas_for(1).is_empty() && a.deltas_for(2).is_empty());
        assert_eq!(a.gc_sealed(Month::reference()), 0, "gc is idempotent");
    }

    #[test]
    fn checkpoint_restore_roundtrips_exactly() {
        let mut a = Replica::new(1, 3);
        a.ingest_batch(&batch(1, "one.example", 2, 500));
        a.ingest_batch(&batch(2, "two.example", 4, 0));
        let mut peer = Replica::new(0, 3);
        peer.ingest_batch(&batch(3, "three.example", 1, 0));
        for d in peer.deltas_for(1) {
            a.apply_delta(d);
        }
        a.record_ack(0, loads_cell(), 1);
        a.seal(Month::September2021);
        let restored = Replica::restore(a.checkpoint()).expect("restore");
        assert_eq!(restored.id(), 1);
        assert_eq!(restored.merged, a.merged);
        assert_eq!(restored.acked, a.acked);
        assert_eq!(restored.sealed, a.sealed);
        assert_eq!(restored.merged_bytes(), a.merged_bytes());
    }

    #[test]
    fn corrupt_checkpoint_fails_typed() {
        let mut a = Replica::new(0, 2);
        a.ingest_batch(&batch(1, "one.example", 2, 0));
        let bytes = a.checkpoint();
        let mut bad = bytes.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let err = Replica::restore(Bytes::from(bad)).expect_err("corruption must fail");
        // Either the container or the cell payload catches it — both typed.
        match err {
            RestoreError::Snap(_) | RestoreError::Delta(_) => {}
            RestoreError::Malformed(w) => panic!("unexpected malformed: {w}"),
        }
    }

    #[test]
    fn forget_acks_forces_full_retransmit() {
        let mut a = Replica::new(0, 2);
        a.ingest_batch(&batch(1, "one.example", 2, 0));
        let d = a.deltas_for(1).remove(0);
        a.record_ack(1, d.cell, d.version);
        assert!(a.deltas_for(1).is_empty());
        a.forget_acks_from(1);
        assert_eq!(a.deltas_for(1).len(), 1, "crashed peer is re-sent everything");
    }
}
