//! wwv-region — multi-region replicated collectors with deterministic
//! delta sync.
//!
//! The paper's collection pipeline is logically one collector; a
//! deployment would run several, one per region, each seeing only the
//! clients routed to it. This crate models that split end to end and
//! proves (by construction and by byte-identical comparison) that the
//! distributed build equals the single-collector build:
//!
//! * **Partitioned ingest** — [`wwv_telemetry::client_partition`] routes
//!   each client to exactly one replica, so the union of the partitions
//!   is exactly the single-collector stream.
//! * **Versioned cells** — each replica keeps per-`(country, platform,
//!   metric, month)` partials stamped with an origin-assigned version
//!   ([`state`]).
//! * **Delta sync** — replicas exchange only changed cells over a
//!   checksummed wire format; the merge is symmetric, commutative, and
//!   idempotent, so any gossip order, topology, or duplication converges
//!   ([`sync`], [`replica`]).
//! * **Coordination-free GC** — once every peer acknowledged a sealed
//!   cell's frozen version, its sync bookkeeping is dropped locally with
//!   no extra protocol ([`Replica::gc_sealed`]).
//! * **Faults & crash recovery** — sync frames route through `wwv-fault`
//!   at `region.sync.send` / `region.sync.recv`; replicas checkpoint to
//!   `wwv-snap` snapshots and catch up after a crash ([`driver`]).

#![warn(missing_docs)]

pub mod driver;
pub mod replica;
pub mod state;
pub mod sync;

pub use driver::{partitioned_ingest, raw_deltas, run_region, union_cells, RegionConfig, RegionReport};
pub use replica::{Replica, RestoreError};
pub use state::{CellKey, VersionedCounts};
pub use sync::{Delta, DeltaError, SyncPlan, DELTA_MAGIC};
