//! The delta wire format and sync plans.
//!
//! A delta carries one `(origin, cell)` partial **in full** at one version
//! — not an increment. That choice is what makes the merge idempotent and
//! duplication-safe: applying the same delta twice, or applying version 7
//! after version 9, changes nothing. The frame is checksummed end to end,
//! so a corrupted delta decodes to a typed [`DeltaError`] instead of
//! poisoning a replica's state; the sender simply retransmits (no ack) on
//! the next round.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "WWVD" | origin u8 | cell packed [u8;4] | version u64 | n u32
//!        | n × (len u16 | domain utf8 | count u64) | fnv1a64 u64
//! ```

use crate::state::{CellKey, VersionedCounts};
use std::collections::BTreeMap;
use std::fmt;
use wwv_snap::fnv1a64;

/// Leading magic of a delta frame.
pub const DELTA_MAGIC: &[u8; 4] = b"WWVD";

/// Smallest possible frame: magic + header + count + checksum.
const MIN_FRAME: usize = 4 + 1 + 4 + 8 + 4 + 8;

/// One replication delta: a full cell partial at one version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Replica that owns (and versioned) this partial.
    pub origin: u8,
    /// The cell.
    pub cell: CellKey,
    /// Origin-assigned version of this state.
    pub version: u64,
    /// The full per-domain counts at that version.
    pub counts: BTreeMap<String, u64>,
}

impl Delta {
    /// Encodes the delta into a checksummed wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(MIN_FRAME + self.counts.len() * 24);
        buf.extend_from_slice(DELTA_MAGIC);
        buf.push(self.origin);
        buf.extend_from_slice(&self.cell.packed());
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&(self.counts.len() as u32).to_le_bytes());
        for (domain, count) in &self.counts {
            let bytes = domain.as_bytes();
            debug_assert!(bytes.len() <= u16::MAX as usize, "domain too long for wire");
            buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            buf.extend_from_slice(bytes);
            buf.extend_from_slice(&count.to_le_bytes());
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes a wire frame. Every failure is typed; the checksum is
    /// verified before any structure is trusted, so in-flight corruption
    /// surfaces as [`DeltaError::Checksum`] rather than garbage counts.
    pub fn decode(frame: &[u8]) -> Result<Delta, DeltaError> {
        if frame.len() >= 4 && &frame[..4] != DELTA_MAGIC {
            return Err(DeltaError::Magic);
        }
        if frame.len() < MIN_FRAME {
            return Err(DeltaError::Truncated);
        }
        let (body, tail) = frame.split_at(frame.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(body) != stored {
            return Err(DeltaError::Checksum);
        }
        // The checksum matched, so the frame is exactly what the sender
        // built: any structural inconsistency from here on is Malformed.
        let mut at = 4;
        let origin = body[at];
        at += 1;
        let cell_bytes = &body[at..at + 4];
        at += 4;
        let cell = CellKey::unpack(cell_bytes).ok_or_else(|| {
            if cell_bytes[1] > 1 {
                DeltaError::BadPlatform(cell_bytes[1])
            } else if cell_bytes[2] > 1 {
                DeltaError::BadMetric(cell_bytes[2])
            } else {
                DeltaError::BadMonth(cell_bytes[3])
            }
        })?;
        let version = u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        let n = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        let mut counts = BTreeMap::new();
        for _ in 0..n {
            if at + 2 > body.len() {
                return Err(DeltaError::Malformed("domain length overruns frame"));
            }
            let len = u16::from_le_bytes(body[at..at + 2].try_into().expect("2 bytes")) as usize;
            at += 2;
            if at + len + 8 > body.len() {
                return Err(DeltaError::Malformed("domain entry overruns frame"));
            }
            let domain = std::str::from_utf8(&body[at..at + len])
                .map_err(|_| DeltaError::Malformed("domain is not utf-8"))?
                .to_owned();
            at += len;
            let count = u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
            at += 8;
            if counts.insert(domain, count).is_some() {
                return Err(DeltaError::Malformed("duplicate domain in delta"));
            }
        }
        if at != body.len() {
            return Err(DeltaError::Malformed("trailing bytes after entries"));
        }
        Ok(Delta { origin, cell, version, counts })
    }

    /// View of the payload as a [`VersionedCounts`].
    pub fn into_versioned(self) -> VersionedCounts {
        VersionedCounts { version: self.version, counts: self.counts }
    }
}

/// Typed decode failures for a delta frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// Frame shorter than the minimum layout.
    Truncated,
    /// Leading magic is not `WWVD`.
    Magic,
    /// End-to-end checksum mismatch (bit corruption or mid-frame cut).
    Checksum,
    /// Unknown platform code.
    BadPlatform(u8),
    /// Unknown metric code.
    BadMetric(u8),
    /// Unknown month index.
    BadMonth(u8),
    /// Checksum passed but the structure is inconsistent.
    Malformed(&'static str),
}

impl DeltaError {
    /// Stable short name, used as an obs counter suffix.
    pub fn kind_name(&self) -> &'static str {
        match self {
            DeltaError::Truncated => "truncated",
            DeltaError::Magic => "magic",
            DeltaError::Checksum => "checksum",
            DeltaError::BadPlatform(_) => "bad_platform",
            DeltaError::BadMetric(_) => "bad_metric",
            DeltaError::BadMonth(_) => "bad_month",
            DeltaError::Malformed(_) => "malformed",
        }
    }
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Truncated => write!(f, "delta frame truncated"),
            DeltaError::Magic => write!(f, "not a delta frame (bad magic)"),
            DeltaError::Checksum => write!(f, "delta checksum mismatch"),
            DeltaError::BadPlatform(c) => write!(f, "unknown platform code {c}"),
            DeltaError::BadMetric(c) => write!(f, "unknown metric code {c}"),
            DeltaError::BadMonth(c) => write!(f, "unknown month index {c}"),
            DeltaError::Malformed(what) => write!(f, "malformed delta: {what}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// How a sync round orders (and routes) delta exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPlan {
    /// Canonical order: replica 0's sends first, peers in id order.
    Order,
    /// Deterministic seeded shuffle of the round's sends — exercises the
    /// claim that merge order is irrelevant.
    Shuffle,
    /// The replica set is split in two halves that cannot reach each other
    /// while ingest is running; the partition heals afterwards.
    Partition,
}

impl SyncPlan {
    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<SyncPlan> {
        match name {
            "order" => Some(SyncPlan::Order),
            "shuffle" => Some(SyncPlan::Shuffle),
            "partition" => Some(SyncPlan::Partition),
            _ => None,
        }
    }

    /// Stable CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            SyncPlan::Order => "order",
            SyncPlan::Shuffle => "shuffle",
            SyncPlan::Partition => "partition",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::{Metric, Month, Platform};

    fn sample() -> Delta {
        Delta {
            origin: 2,
            cell: CellKey {
                country: 5,
                platform: Platform::Android,
                metric: Metric::TimeOnPage,
                month: Month::December2021,
            },
            version: 41,
            counts: BTreeMap::from([
                ("news.example".to_owned(), 1_200),
                ("video.example".to_owned(), 88),
            ]),
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        let d = sample();
        assert_eq!(Delta::decode(&d.encode()).expect("roundtrip"), d);
        let empty = Delta { counts: BTreeMap::new(), ..sample() };
        assert_eq!(Delta::decode(&empty.encode()).expect("empty roundtrip"), empty);
    }

    #[test]
    fn encoding_is_canonical() {
        // Same logical delta built in any insertion order encodes
        // identically (BTreeMap sorts domains).
        let mut a = sample();
        a.counts = BTreeMap::new();
        a.counts.insert("zz.example".to_owned(), 1);
        a.counts.insert("aa.example".to_owned(), 2);
        let mut b = sample();
        b.counts = BTreeMap::new();
        b.counts.insert("aa.example".to_owned(), 2);
        b.counts.insert("zz.example".to_owned(), 1);
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = sample().encode();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                let err = Delta::decode(&bad).expect_err("flip must not decode clean");
                assert!(
                    matches!(err, DeltaError::Checksum | DeltaError::Magic),
                    "byte {byte} bit {bit}: unexpected {err:?}"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_typed() {
        let frame = sample().encode();
        for cut in 0..frame.len() {
            let err = Delta::decode(&frame[..cut]).expect_err("prefix must not decode");
            assert!(
                matches!(err, DeltaError::Truncated | DeltaError::Checksum),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bad_codes_are_typed_when_authentically_sent() {
        // A sender that legitimately signs a frame with unknown codes (a
        // version skew, not corruption) gets a Bad* error, not Checksum.
        let mut body = Vec::new();
        body.extend_from_slice(DELTA_MAGIC);
        body.push(0);
        body.extend_from_slice(&[0, 7, 0, 0]); // platform code 7
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        let sum = fnv1a64(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(Delta::decode(&body), Err(DeltaError::BadPlatform(7)));
    }

    #[test]
    fn plan_names_roundtrip() {
        for plan in [SyncPlan::Order, SyncPlan::Shuffle, SyncPlan::Partition] {
            assert_eq!(SyncPlan::parse(plan.name()), Some(plan));
        }
        assert_eq!(SyncPlan::parse("ring"), None);
    }
}
