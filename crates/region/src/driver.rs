//! The multi-region run: partitioned ingest, faulted sync rounds, the
//! convergence check against a single-collector reference, and GC.
//!
//! Every round is deterministic in `(world seed, config, fault plan)`:
//! the generator draws, the client partition, the send order (including
//! the shuffle plan's permutation), and every fault decision are pure
//! functions of seeds and arrival indices — so a convergence failure
//! replays exactly.

use crate::replica::Replica;
use crate::state::CellKey;
use crate::sync::{Delta, SyncPlan};
use std::collections::BTreeMap;
use wwv_fault::{points, FaultPlan, FrameFate};
use wwv_stream::{StreamConfig, TickClock, TickGenerator};
use wwv_telemetry::client_partition;
use wwv_world::{Month, World};

/// Configuration for a region run.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Stream seed (generator draws and the shuffle permutation).
    pub seed: u64,
    /// Number of collector replicas.
    pub replicas: usize,
    /// Sync ordering/topology plan.
    pub plan: SyncPlan,
    /// Ingest ticks.
    pub ticks: u64,
    /// Countries covered (cells = countries × platforms).
    pub countries: usize,
    /// Simulated clients per cell per tick.
    pub clients_per_tick: u64,
    /// Mean page loads per client per tick.
    pub mean_loads: f64,
    /// Post-ingest sync-round budget for convergence.
    pub max_rounds: u64,
    /// Replica to crash and restore from its checkpoint, if any.
    pub crash_replica: Option<u8>,
    /// Tick after which the crash happens.
    pub crash_tick: u64,
}

impl Default for RegionConfig {
    fn default() -> RegionConfig {
        RegionConfig {
            seed: 77,
            replicas: 3,
            plan: SyncPlan::Order,
            ticks: 6,
            countries: 3,
            clients_per_tick: 12,
            mean_loads: 8.0,
            max_rounds: 64,
            crash_replica: None,
            crash_tick: 3,
        }
    }
}

/// Outcome of a region run.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Replica count.
    pub replicas: usize,
    /// Plan name.
    pub plan: &'static str,
    /// Stream seed.
    pub seed: u64,
    /// Ingest ticks run.
    pub ticks: u64,
    /// Whether every replica's union matched the single-collector build.
    pub converged: bool,
    /// Sync rounds run while ingest was still producing.
    pub ingest_rounds: u64,
    /// Extra rounds needed after ingest stopped before every replica
    /// matched the reference (0 = converged the moment ingest ended).
    pub convergence_rounds: u64,
    /// Events ingested across all replicas (equals the reference's count).
    pub events: u64,
    /// Deltas offered to the wire.
    pub deltas_sent: u64,
    /// Encoded delta bytes offered to the wire.
    pub delta_bytes: u64,
    /// Deltas merged as news by a receiver.
    pub deltas_applied: u64,
    /// Deltas ignored as stale (duplicates, echoes, reorderings).
    pub stale_merges: u64,
    /// Frames that failed typed decode (corruption faults).
    pub decode_errors: u64,
    /// Frames dropped by the fault plan.
    pub dropped: u64,
    /// Frames duplicated by the fault plan.
    pub duplicated: u64,
    /// Frames held and delivered out of order by the fault plan.
    pub reordered: u64,
    /// Frames delayed to the end of their round by the fault plan.
    pub delayed: u64,
    /// Cells retired by coordination-free GC after convergence.
    pub gc_cells: u64,
    /// Deltas still owed to any peer after GC (0 when converged: GC only
    /// retires what every peer acknowledged).
    pub pending_after_gc: u64,
    /// Crash/restore cycles exercised.
    pub crash_restores: u64,
    /// Bytes the naive alternative would ship for the same round
    /// structure: every replica's full current state to every reachable
    /// peer, every round.
    pub full_state_bytes: u64,
    /// Size of the canonical converged state.
    pub state_bytes: u64,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Deltas offered to the wire per second of run time.
    pub deltas_per_sec: f64,
    /// Wire bytes actually shipped relative to the naive full-state
    /// exchange (< 1.0 means delta sync beat the baseline).
    pub delta_to_full_ratio: f64,
}

impl RegionReport {
    /// Hand-rolled JSON (workspace idiom: no serde at runtime).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"replicas\": {},\n  \"plan\": \"{}\",\n  \"seed\": {},\n  \"ticks\": {},\n  \"converged\": {},\n  \"ingest_rounds\": {},\n  \"convergence_rounds\": {},\n  \"events\": {},\n  \"deltas_sent\": {},\n  \"delta_bytes\": {},\n  \"deltas_applied\": {},\n  \"stale_merges\": {},\n  \"decode_errors\": {},\n  \"dropped\": {},\n  \"duplicated\": {},\n  \"reordered\": {},\n  \"delayed\": {},\n  \"gc_cells\": {},\n  \"pending_after_gc\": {},\n  \"crash_restores\": {},\n  \"full_state_bytes\": {},\n  \"state_bytes\": {},\n  \"elapsed_ms\": {},\n  \"deltas_per_sec\": {:.1},\n  \"delta_to_full_ratio\": {:.4}\n}}\n",
            self.replicas,
            self.plan,
            self.seed,
            self.ticks,
            self.converged,
            self.ingest_rounds,
            self.convergence_rounds,
            self.events,
            self.deltas_sent,
            self.delta_bytes,
            self.deltas_applied,
            self.stale_merges,
            self.decode_errors,
            self.dropped,
            self.duplicated,
            self.reordered,
            self.delayed,
            self.gc_cells,
            self.pending_after_gc,
            self.crash_restores,
            self.full_state_bytes,
            self.state_bytes,
            self.elapsed_ms,
            self.deltas_per_sec,
            self.delta_to_full_ratio,
        )
    }
}

/// Wire-stage tallies for one run.
#[derive(Debug, Default)]
struct WireStats {
    deltas_sent: u64,
    delta_bytes: u64,
    /// What a full-state-every-round protocol would have shipped instead.
    full_state_baseline: u64,
    decode_errors: u64,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
    delayed: u64,
}

/// SplitMix64 for the shuffle plan's permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic Fisher–Yates keyed on `(seed, round)`.
fn shuffle<T>(items: &mut [T], seed: u64, round: u64) {
    let mut state = splitmix64(seed ^ round.wrapping_mul(0xA076_1D64_78BD_642F));
    for i in (1..items.len()).rev() {
        state = splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Whether `from` can reach `to` in `round` under the plan: the partition
/// plan splits the replica set into two halves (low ids vs high ids) for
/// the ingest rounds and heals afterwards.
fn reachable(plan: SyncPlan, n: usize, ingest_ticks: u64, round: u64, from: usize, to: usize) -> bool {
    match plan {
        SyncPlan::Order | SyncPlan::Shuffle => true,
        SyncPlan::Partition => {
            if round >= ingest_ticks {
                return true; // healed
            }
            let half = n / 2;
            (from < half) == (to < half)
        }
    }
}

/// Runs one faulted sync round over the full mesh the plan allows.
fn sync_round(
    replicas: &mut [Replica],
    cfg: &RegionConfig,
    plan: &FaultPlan,
    round: u64,
    stats: &mut WireStats,
) {
    let n = replicas.len();
    let mut sends: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    for (from, sender) in replicas.iter().enumerate() {
        let full_state = sender.merged_bytes().len() as u64;
        for to in 0..n {
            if to == from || !reachable(cfg.plan, n, cfg.ticks, round, from, to) {
                continue;
            }
            // The naive alternative re-ships this replica's whole current
            // state to this peer this round — the bar delta sync is
            // measured against.
            stats.full_state_baseline += full_state;
            for delta in sender.deltas_for(to as u8) {
                sends.push((from, to, delta.encode()));
            }
        }
    }
    if cfg.plan == SyncPlan::Shuffle {
        shuffle(&mut sends, cfg.seed, round);
    }

    // Send stage: each frame consults the plan at region.sync.send. Fates
    // reshape the delivery list; Dropped frames are simply absent (the
    // missing ack retransmits them next round).
    let mut deliveries: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    let mut end_of_round: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    let mut held: Option<(usize, usize, Vec<u8>)> = None;
    for (from, to, frame) in sends {
        stats.deltas_sent += 1;
        stats.delta_bytes += frame.len() as u64;
        match plan.apply_to_frame(points::REGION_SYNC_SEND, frame) {
            FrameFate::Deliver(f) => deliveries.push((from, to, f)),
            FrameFate::DeliverTwice(f) => {
                stats.duplicated += 1;
                deliveries.push((from, to, f.clone()));
                deliveries.push((from, to, f));
            }
            FrameFate::HoldForReorder(f) => {
                stats.reordered += 1;
                if let Some(prev) = held.replace((from, to, f)) {
                    deliveries.push(prev);
                }
            }
            FrameFate::Delayed(f, _) => {
                stats.delayed += 1;
                end_of_round.push((from, to, f));
            }
            FrameFate::Dropped => stats.dropped += 1,
        }
        // A held frame is released right after the frame that overtook it.
        if deliveries.len() >= 2 {
            if let Some(prev) = held.take() {
                deliveries.push(prev);
            }
        }
    }
    if let Some(prev) = held.take() {
        deliveries.push(prev);
    }
    deliveries.append(&mut end_of_round);

    // Receive stage: the same fate vocabulary at region.sync.recv, then a
    // typed decode. A decode error yields no ack, so the sender simply
    // offers the cell again next round.
    let obs = wwv_obs::global();
    let mut held_rx: Option<(usize, usize, Vec<u8>)> = None;
    let mut arrivals: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    let mut delayed_rx: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    for (from, to, frame) in deliveries {
        match plan.apply_to_frame(points::REGION_SYNC_RECV, frame) {
            FrameFate::Deliver(f) => arrivals.push((from, to, f)),
            FrameFate::DeliverTwice(f) => {
                stats.duplicated += 1;
                arrivals.push((from, to, f.clone()));
                arrivals.push((from, to, f));
            }
            FrameFate::HoldForReorder(f) => {
                stats.reordered += 1;
                if let Some(prev) = held_rx.replace((from, to, f)) {
                    arrivals.push(prev);
                }
            }
            FrameFate::Delayed(f, _) => {
                stats.delayed += 1;
                delayed_rx.push((from, to, f));
            }
            FrameFate::Dropped => stats.dropped += 1,
        }
        if arrivals.len() >= 2 {
            if let Some(prev) = held_rx.take() {
                arrivals.push(prev);
            }
        }
    }
    if let Some(prev) = held_rx.take() {
        arrivals.push(prev);
    }
    arrivals.append(&mut delayed_rx);

    for (from, to, frame) in arrivals {
        match Delta::decode(&frame) {
            Ok(delta) => {
                let cell = delta.cell;
                let origin = delta.origin;
                let acked_version = replicas[to].apply_delta(delta);
                // Acks ride the reverse path un-faulted: losing an ack only
                // delays retransmission/GC, it can never corrupt state, so
                // the model keeps them reliable. Only the origin tracks
                // acks (gossip forwards would ack to the forwarder).
                if origin == replicas[from].id() {
                    replicas[from].record_ack(replicas[to].id(), cell, acked_version);
                }
            }
            Err(e) => {
                stats.decode_errors += 1;
                obs.counter("region.sync.decode_error").inc();
                // Per-frame, so debug: the counter and report carry the
                // aggregate signal; chaos corruption cells fire hundreds.
                wwv_obs::debug!(target: "region", "delta decode failed: {e}");
            }
        }
    }
}

/// Whether every replica's union aggregate matches the reference build.
fn all_converged(replicas: &[Replica], target: &[u8]) -> bool {
    replicas.iter().all(|r| r.merged_bytes() == target)
}

/// Runs the full multi-region scenario and checks convergence against a
/// single-collector reference fed the identical stream.
pub fn run_region(world: &World, cfg: &RegionConfig, plan: &FaultPlan) -> RegionReport {
    let _span = wwv_obs::span!("region.run");
    let started = std::time::Instant::now();
    let obs = wwv_obs::global();
    let n = cfg.replicas.max(1);
    let stream_cfg = StreamConfig {
        seed: cfg.seed,
        countries: cfg.countries,
        ticks: cfg.ticks,
        clients_per_tick: cfg.clients_per_tick,
        mean_loads: cfg.mean_loads,
        clock: TickClock::Logical,
        ..StreamConfig::default()
    };
    let gen = TickGenerator::new(world, &stream_cfg);
    let cells = gen.cells().len();

    let mut replicas: Vec<Replica> = (0..n).map(|id| Replica::new(id as u8, n as u8)).collect();
    // The reference is the single-collector build: one replica that
    // ingests the whole stream.
    let mut reference = Replica::new(0, 1);
    let mut stats = WireStats::default();
    let mut crash_restores = 0u64;
    let mut round = 0u64;

    for tick in 0..cfg.ticks {
        for cell_idx in 0..cells {
            for batch in gen.tick_batches(tick, cell_idx) {
                reference.ingest_batch(&batch);
                let target = client_partition(batch.client_id, n);
                replicas[target].ingest_batch(&batch);
            }
        }
        sync_round(&mut replicas, cfg, plan, round, &mut stats);
        round += 1;
        if let Some(victim) = cfg.crash_replica {
            if tick == cfg.crash_tick && (victim as usize) < n {
                // Checkpoint after ingest, run one more (possibly faulted)
                // sync round, then crash back to the checkpoint: the round's
                // merges and outgoing acks are lost, exactly the window a
                // real crash loses.
                let checkpoint = replicas[victim as usize].checkpoint();
                sync_round(&mut replicas, cfg, plan, round, &mut stats);
                round += 1;
                replicas[victim as usize] =
                    Replica::restore(checkpoint).expect("own checkpoint restores");
                for (i, r) in replicas.iter_mut().enumerate() {
                    if i != victim as usize {
                        // Peers reset their ack window for the restarted
                        // replica: it may have lost state it acked.
                        r.forget_acks_from(victim);
                    }
                }
                crash_restores += 1;
                obs.counter("region.crash_restores").inc();
            }
        }
    }
    let ingest_rounds = round;

    for month in Month::ALL {
        reference.seal(month);
        for r in &mut replicas {
            r.seal(month);
        }
    }

    let target = reference.merged_bytes();
    let mut convergence_rounds = 0u64;
    while !all_converged(&replicas, &target) && convergence_rounds < cfg.max_rounds {
        sync_round(&mut replicas, cfg, plan, round, &mut stats);
        round += 1;
        convergence_rounds += 1;
    }
    let converged = all_converged(&replicas, &target);

    // GC only after convergence: it is driven purely by local acks, so
    // running it earlier would also be safe — this just makes the report's
    // pending_after_gc a meaningful "all bookkeeping drained" check.
    let mut gc_cells = 0u64;
    if converged {
        for r in &mut replicas {
            for month in Month::ALL {
                gc_cells += r.gc_sealed(month) as u64;
            }
        }
    }
    let pending_after_gc: u64 = replicas
        .iter()
        .map(|r| {
            r.peers()
                .iter()
                .map(|p| r.deltas_for(*p).len() as u64)
                .sum::<u64>()
        })
        .sum();

    let deltas_applied: u64 = replicas.iter().map(|r| r.deltas_applied()).sum();
    let stale_merges: u64 = replicas.iter().map(|r| r.stale_merges()).sum();
    let events: u64 = replicas.iter().map(|r| r.events_ingested()).sum();
    debug_assert_eq!(events, reference.events_ingested(), "partition must be exact");

    obs.counter("region.deltas_sent").add(stats.deltas_sent);
    obs.counter("region.delta_bytes").add(stats.delta_bytes);
    obs.counter("region.deltas_applied").add(deltas_applied);
    obs.counter("region.merge_stale").add(stale_merges);
    obs.counter("region.sync.dropped").add(stats.dropped);
    obs.counter("region.sync.duplicated").add(stats.duplicated);
    obs.counter("region.sync.reordered").add(stats.reordered);
    obs.counter("region.sync.delayed").add(stats.delayed);
    obs.counter("region.gc_cells").add(gc_cells);
    if converged {
        obs.counter("region.converged").inc();
    } else {
        obs.counter("region.diverged").inc();
        wwv_obs::error!(target: "region", "run did not converge within {} rounds", cfg.max_rounds);
    }

    let elapsed = started.elapsed();
    let full_state_bytes = stats.full_state_baseline;
    RegionReport {
        replicas: n,
        plan: cfg.plan.name(),
        seed: cfg.seed,
        ticks: cfg.ticks,
        converged,
        ingest_rounds,
        convergence_rounds,
        events,
        deltas_sent: stats.deltas_sent,
        delta_bytes: stats.delta_bytes,
        deltas_applied,
        stale_merges,
        decode_errors: stats.decode_errors,
        dropped: stats.dropped,
        duplicated: stats.duplicated,
        reordered: stats.reordered,
        delayed: stats.delayed,
        gc_cells,
        pending_after_gc,
        crash_restores,
        full_state_bytes,
        state_bytes: target.len() as u64,
        elapsed_ms: elapsed.as_millis() as u64,
        deltas_per_sec: stats.deltas_sent as f64 / elapsed.as_secs_f64().max(1e-9),
        delta_to_full_ratio: stats.delta_bytes as f64 / (full_state_bytes as f64).max(1.0),
    }
}

/// Replays a run's partitioned ingest without sync — exposed for tests
/// that want the raw per-replica partials plus the reference build.
pub fn partitioned_ingest(world: &World, cfg: &RegionConfig) -> (Vec<Replica>, Replica) {
    let n = cfg.replicas.max(1);
    let stream_cfg = StreamConfig {
        seed: cfg.seed,
        countries: cfg.countries,
        ticks: cfg.ticks,
        clients_per_tick: cfg.clients_per_tick,
        mean_loads: cfg.mean_loads,
        clock: TickClock::Logical,
        ..StreamConfig::default()
    };
    let gen = TickGenerator::new(world, &stream_cfg);
    let cells = gen.cells().len();
    let mut replicas: Vec<Replica> = (0..n).map(|id| Replica::new(id as u8, n as u8)).collect();
    let mut reference = Replica::new(0, 1);
    for tick in 0..cfg.ticks {
        for cell_idx in 0..cells {
            for batch in gen.tick_batches(tick, cell_idx) {
                reference.ingest_batch(&batch);
                replicas[client_partition(batch.client_id, n)].ingest_batch(&batch);
            }
        }
    }
    (replicas, reference)
}

/// Convenience: merge every replica's own-origin deltas into every other
/// replica in the given `(from, to)` order — the raw material for
/// permutation tests.
pub fn raw_deltas(replicas: &[Replica]) -> Vec<(u8, Delta)> {
    let mut out = Vec::new();
    for r in replicas {
        for peer in r.peers() {
            for d in r.deltas_for(*peer) {
                out.push((*peer, d));
            }
        }
    }
    out
}

/// Per-cell union totals, for report-level sanity checks.
pub fn union_cells(replica: &Replica) -> BTreeMap<CellKey, u64> {
    let bytes = replica.merged_bytes();
    let mut out = BTreeMap::new();
    let mut at = 0;
    while at < bytes.len() {
        let cell = CellKey::unpack(&bytes[at..at + 4]).expect("canonical encoding");
        at += 4;
        let n = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        let mut total = 0u64;
        for _ in 0..n {
            let len = u16::from_le_bytes(bytes[at..at + 2].try_into().expect("2 bytes")) as usize;
            at += 2 + len;
            total += u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
            at += 8;
        }
        out.insert(cell, total);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::small())
    }

    fn cfg() -> RegionConfig {
        RegionConfig { ticks: 4, countries: 2, clients_per_tick: 8, ..RegionConfig::default() }
    }

    #[test]
    fn partition_union_equals_single_collector_stream() {
        let world = world();
        let (replicas, reference) = partitioned_ingest(&world, &cfg());
        let events: u64 = replicas.iter().map(|r| r.events_ingested()).sum();
        assert_eq!(events, reference.events_ingested(), "no client lost or double-counted");
        assert!(replicas.iter().all(|r| r.events_ingested() > 0), "every replica got work");
        // The union of the partials is the single-collector aggregate.
        let mut merged = Replica::new(0, 1);
        for (_, delta) in raw_deltas(&replicas) {
            merged.apply_delta(delta);
        }
        assert_eq!(merged.merged_bytes(), reference.merged_bytes());
    }

    #[test]
    fn clean_run_converges_with_zero_extra_rounds() {
        let world = world();
        let report = run_region(&world, &cfg(), &FaultPlan::none());
        assert!(report.converged);
        assert_eq!(report.convergence_rounds, 0, "per-tick rounds suffice unfaulted");
        assert_eq!(report.decode_errors, 0);
        assert_eq!(report.pending_after_gc, 0, "GC drained all bookkeeping");
        assert!(report.gc_cells > 0, "sealed month retired its cells");
        assert!(report.delta_bytes > 0);
    }

    #[test]
    fn all_plans_converge_identically() {
        let world = world();
        let base = run_region(&world, &cfg(), &FaultPlan::none());
        for plan in [SyncPlan::Shuffle, SyncPlan::Partition] {
            let report =
                run_region(&world, &RegionConfig { plan, ..cfg() }, &FaultPlan::none());
            assert!(report.converged, "{} diverged", plan.name());
            assert_eq!(report.state_bytes, base.state_bytes, "same converged state");
            assert_eq!(report.events, base.events, "same stream either way");
        }
    }

    #[test]
    fn crash_and_catch_up_recovers() {
        let world = world();
        let config = RegionConfig { crash_replica: Some(1), crash_tick: 1, ..cfg() };
        let report = run_region(&world, &config, &FaultPlan::none());
        assert_eq!(report.crash_restores, 1);
        assert!(report.converged, "restored replica must catch up");
        assert_eq!(report.pending_after_gc, 0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let world = world();
        let report = run_region(&world, &cfg(), &FaultPlan::none());
        let json = report.to_json();
        assert!(json.contains("\"converged\": true"));
        assert!(json.contains("\"plan\": \"order\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
