//! Replication cells: the unit of versioning, delta exchange, and GC.
//!
//! A *cell* is one `(country, platform, metric, month)` corner of the
//! monthly aggregate. Each replica keeps, per `(origin, cell)`, a
//! version-stamped partial count map. The version is bumped by the origin
//! on every local mutation and never by anyone else, so a delta tagged
//! `(origin, version)` identifies one exact state of one replica's partial
//! — the property the idempotent merge in [`crate::replica`] builds on.

use std::collections::BTreeMap;
use wwv_world::{Metric, Month, Platform};

/// One replication cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Country index (into `wwv_world::COUNTRIES`).
    pub country: u8,
    /// Platform.
    pub platform: Platform,
    /// Metric the counts feed.
    pub metric: Metric,
    /// Month of the aggregate.
    pub month: Month,
}

impl CellKey {
    /// Canonical 4-byte encoding — the wire and snapshot key for the cell.
    /// Derived `Ord` on the struct and byte order of `packed` agree, so
    /// sorted iteration and sorted encodings line up.
    pub fn packed(&self) -> [u8; 4] {
        [
            self.country,
            platform_code(self.platform),
            metric_code(self.metric),
            self.month.index() as u8,
        ]
    }

    /// Decodes a [`CellKey::packed`] encoding. `None` on any bad code.
    pub fn unpack(bytes: &[u8]) -> Option<CellKey> {
        if bytes.len() != 4 {
            return None;
        }
        Some(CellKey {
            country: bytes[0],
            platform: platform_from_code(bytes[1])?,
            metric: metric_from_code(bytes[2])?,
            month: month_from_index(bytes[3])?,
        })
    }
}

/// Wire code for a platform.
pub fn platform_code(p: Platform) -> u8 {
    match p {
        Platform::Windows => 0,
        Platform::Android => 1,
    }
}

/// Platform for a wire code.
pub fn platform_from_code(code: u8) -> Option<Platform> {
    match code {
        0 => Some(Platform::Windows),
        1 => Some(Platform::Android),
        _ => None,
    }
}

/// Wire code for a metric.
pub fn metric_code(m: Metric) -> u8 {
    match m {
        Metric::PageLoads => 0,
        Metric::TimeOnPage => 1,
    }
}

/// Metric for a wire code.
pub fn metric_from_code(code: u8) -> Option<Metric> {
    match code {
        0 => Some(Metric::PageLoads),
        1 => Some(Metric::TimeOnPage),
        _ => None,
    }
}

/// Month for a chronological index.
pub fn month_from_index(index: u8) -> Option<Month> {
    Month::ALL.get(index as usize).copied()
}

/// One replica's partial aggregate for one cell, stamped with the version
/// the origin assigned to this exact state. Counts are a `BTreeMap` so
/// every encoding of the cell is canonical (domain-sorted).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionedCounts {
    /// Origin-assigned version: bumped on every local mutation, frozen
    /// once the month is sealed.
    pub version: u64,
    /// Per-domain counts (page loads or foreground milliseconds).
    pub counts: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_roundtrips_every_cell() {
        for country in [0u8, 7, 200] {
            for platform in Platform::ALL {
                for metric in Metric::ALL {
                    for month in Month::ALL {
                        let cell = CellKey { country, platform, metric, month };
                        assert_eq!(CellKey::unpack(&cell.packed()), Some(cell));
                    }
                }
            }
        }
    }

    #[test]
    fn unpack_rejects_bad_codes_and_lengths() {
        assert_eq!(CellKey::unpack(&[0, 2, 0, 0]), None, "bad platform");
        assert_eq!(CellKey::unpack(&[0, 0, 9, 0]), None, "bad metric");
        assert_eq!(CellKey::unpack(&[0, 0, 0, 6]), None, "bad month");
        assert_eq!(CellKey::unpack(&[0, 0, 0]), None, "short");
        assert_eq!(CellKey::unpack(&[0, 0, 0, 0, 0]), None, "long");
    }

    #[test]
    fn derived_order_matches_packed_byte_order() {
        let mut cells = Vec::new();
        for country in [0u8, 1, 9] {
            for platform in Platform::ALL {
                for metric in Metric::ALL {
                    for month in [Month::September2021, Month::February2022] {
                        cells.push(CellKey { country, platform, metric, month });
                    }
                }
            }
        }
        let mut by_derive = cells.clone();
        by_derive.sort();
        let mut by_bytes = cells;
        by_bytes.sort_by_key(|c| c.packed());
        assert_eq!(by_derive, by_bytes);
    }
}
