//! Deterministic trace IDs and head sampling.
//!
//! The whole pipeline is seed-reproducible (loadgen RNG, fault plans, world
//! build), and tracing must not break that: a trace ID is a pure
//! SplitMix64-style hash of `(seed, thread, seq)`, and the sampling
//! decision is a pure function of the ID. Re-running with the same seed
//! therefore traces the *same* requests, which is what makes byte-identical
//! JSONL exports possible.

/// One SplitMix64 output for input `x` (also used by `wwv-fault`).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit request-scoped trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints the ID for request `seq` on client thread `thread` under
    /// `seed`. Pure: the same triple always yields the same ID, and the
    /// three mixing rounds keep distinct triples from colliding in practice
    /// (64-bit avalanche per round).
    pub fn mint(seed: u64, thread: u64, seq: u64) -> TraceId {
        TraceId(splitmix64(seed ^ splitmix64(thread ^ splitmix64(seq))))
    }

    /// The raw 64-bit value (what travels on the wire).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Fixed-width lowercase hex, the JSONL representation.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses [`TraceId::to_hex`] output.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// Deterministic head sampler: keep 1 in `every` requests.
///
/// Trace IDs are uniform hashes, so `id % every == 0` selects an unbiased
/// 1/N subset — and the *same* subset on every run with the same seed.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    every: u64,
}

impl Sampler {
    /// `every = 0` disables sampling entirely; `1` keeps every request.
    pub fn new(every: u64) -> Sampler {
        Sampler { every }
    }

    /// Whether any request can ever be sampled.
    pub fn is_active(&self) -> bool {
        self.every != 0
    }

    /// The (pure) sampling decision for one ID.
    pub fn sample(&self, id: TraceId) -> bool {
        self.every != 0 && id.0.is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_deterministic_and_distinct() {
        assert_eq!(TraceId::mint(1, 2, 3), TraceId::mint(1, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for thread in 0..8u64 {
            for seq in 0..256u64 {
                assert!(seen.insert(TraceId::mint(42, thread, seq)), "collision");
            }
        }
        // Different seeds diverge.
        assert_ne!(TraceId::mint(1, 0, 0), TraceId::mint(2, 0, 0));
    }

    #[test]
    fn hex_roundtrips() {
        let id = TraceId::mint(7, 1, 9);
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(id.to_hex().len(), 16);
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex(""), None);
    }

    #[test]
    fn sampler_rates_and_determinism() {
        assert!(!Sampler::new(0).sample(TraceId(0)), "0 disables");
        assert!(Sampler::new(1).sample(TraceId(12345)), "1 keeps all");
        let s = Sampler::new(16);
        let picked: Vec<bool> =
            (0..4_096).map(|i| s.sample(TraceId::mint(9, 0, i))).collect();
        let again: Vec<bool> =
            (0..4_096).map(|i| s.sample(TraceId::mint(9, 0, i))).collect();
        assert_eq!(picked, again);
        let kept = picked.iter().filter(|p| **p).count();
        // 1/16 of 4096 = 256 expected; uniform hashing keeps it in range.
        assert!((128..512).contains(&kept), "kept {kept} of 4096 at 1/16");
    }
}
