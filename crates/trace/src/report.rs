//! `wwv trace report` — aggregate exported JSONL into a per-stage
//! latency breakdown.
//!
//! Answers the question cumulative metrics cannot: *where* does a slow
//! request spend its time? The analyzer groups stage events across all
//! traces (queue vs cache vs engine vs serialize), computes per-stage
//! quantiles via `wwv-stats`, flags anomalous requests with Tukey's fences
//! over end-to-end latency, and renders the critical path of the worst
//! exemplars — the requests a p99 investigation would start from.

use crate::event::{RequestTrace, Stage};
use serde::Serialize;
use std::collections::BTreeMap;
use wwv_stats::outlier::{tukey_outliers, OutlierVerdict};
use wwv_stats::quantile::{quantile_sorted, QuantileSummary};

/// Tukey fence multiplier for anomaly flagging (3.0 = "far out" fence —
/// conservative, so flagged requests are genuinely anomalous).
const TUKEY_K: f64 = 3.0;
/// Worst exemplars rendered with their critical path.
const EXEMPLARS: usize = 5;

/// Aggregate latency profile of one stage across all traces.
#[derive(Debug, Clone, Serialize)]
pub struct StageBreakdown {
    /// Stage name (`queue`, `engine`, …).
    pub stage: String,
    /// Events observed.
    pub count: u64,
    /// Total time attributed to this stage, microseconds.
    pub total_us: u64,
    /// Mean event duration, microseconds.
    pub mean_us: f64,
    /// Median event duration, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Share of the summed stage time across all stages, in `[0, 1]`.
    pub share: f64,
}

/// One worst-case request with its per-stage decomposition.
#[derive(Debug, Clone, Serialize)]
pub struct Exemplar {
    /// Trace ID (hex).
    pub trace: String,
    /// Query kind.
    pub kind: String,
    /// End-to-end latency, microseconds.
    pub total_us: u64,
    /// `(stage, us)` in causal order.
    pub stages: Vec<(String, u64)>,
    /// The stage dominating this request (the critical path head).
    pub critical_stage: String,
    /// Fraction of the stage sum spent in the critical stage.
    pub critical_share: f64,
}

/// The aggregated trace report (JSON-serializable).
#[derive(Debug, Clone, Serialize)]
pub struct TraceReport {
    /// Traces parsed.
    pub traces: u64,
    /// Traces with a recorded client outcome (finished).
    pub complete: u64,
    /// Error-outcome traces.
    pub errored: u64,
    /// Traces per query kind.
    pub kinds: BTreeMap<String, u64>,
    /// End-to-end latency quantiles over complete traces, microseconds.
    pub total_p50_us: f64,
    /// 95th percentile end-to-end.
    pub total_p95_us: f64,
    /// 99th percentile end-to-end.
    pub total_p99_us: f64,
    /// Per-stage aggregate breakdown (canonical stage order).
    pub stages: Vec<StageBreakdown>,
    /// Requests whose end-to-end latency is a Tukey high outlier.
    pub anomalies: u64,
    /// The upper Tukey fence used, microseconds.
    pub anomaly_threshold_us: f64,
    /// Mean ratio of stage-sum to end-to-end latency (how much of the
    /// client-observed time the recorded stages explain).
    pub stage_coverage: f64,
    /// Worst end-to-end requests with their critical paths.
    pub exemplars: Vec<Exemplar>,
}

impl TraceReport {
    /// Parses JSONL (one [`RequestTrace`] per non-empty line) and
    /// aggregates. Malformed lines are typed errors, never panics.
    pub fn from_jsonl(text: &str) -> Result<TraceReport, String> {
        let mut traces = Vec::new();
        for (no, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let t: RequestTrace = serde_json::from_str(line)
                .map_err(|e| format!("line {}: {e}", no + 1))?;
            traces.push(t);
        }
        Ok(TraceReport::from_traces(&traces))
    }

    /// Aggregates already-parsed traces.
    pub fn from_traces(traces: &[RequestTrace]) -> TraceReport {
        let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
        for t in traces {
            let kind = if t.kind.is_empty() { "unknown".to_owned() } else { t.kind.clone() };
            *kinds.entry(kind).or_insert(0) += 1;
        }

        // Per-stage event durations across every trace.
        let mut per_stage: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        for t in traces {
            for e in &t.events {
                per_stage.entry(e.stage.as_str()).or_default().push(e.us as f64);
            }
        }
        let grand_total: f64 =
            per_stage.values().flat_map(|v| v.iter()).sum::<f64>().max(1.0);
        let mut stages = Vec::new();
        for stage in Stage::ALL {
            let Some(values) = per_stage.get(stage.as_str()) else { continue };
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            let total: f64 = sorted.iter().sum();
            let q = |p: f64| quantile_sorted(&sorted, p).unwrap_or(0.0);
            stages.push(StageBreakdown {
                stage: stage.as_str().to_owned(),
                count: sorted.len() as u64,
                total_us: total as u64,
                mean_us: total / sorted.len().max(1) as f64,
                p50_us: q(0.50),
                p95_us: q(0.95),
                p99_us: q(0.99),
                share: total / grand_total,
            });
        }

        // End-to-end latency distribution and anomaly flagging.
        let complete: Vec<&RequestTrace> =
            traces.iter().filter(|t| t.total_us.is_some()).collect();
        let mut totals: Vec<f64> =
            complete.iter().map(|t| t.total_us.unwrap_or(0) as f64).collect();
        let verdicts = tukey_outliers(&totals, TUKEY_K);
        let anomalies = verdicts
            .as_ref()
            .map(|v| v.iter().filter(|o| **o == OutlierVerdict::High).count() as u64)
            .unwrap_or(0);
        let anomaly_threshold_us = QuantileSummary::of(&totals)
            .map(|s| s.q75 + TUKEY_K * s.iqr())
            .unwrap_or(0.0);
        totals.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let tq = |p: f64| quantile_sorted(&totals, p).unwrap_or(0.0);

        // How much of the end-to-end time the recorded stages explain.
        let coverages: Vec<f64> = complete
            .iter()
            .filter(|t| t.total_us.unwrap_or(0) > 0)
            .map(|t| t.stage_sum_us() as f64 / t.total_us.unwrap_or(1) as f64)
            .collect();
        let stage_coverage = if coverages.is_empty() {
            0.0
        } else {
            coverages.iter().sum::<f64>() / coverages.len() as f64
        };

        // Worst requests, decomposed.
        let mut by_total: Vec<&&RequestTrace> = complete.iter().collect();
        by_total.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        let exemplars = by_total
            .iter()
            .take(EXEMPLARS)
            .map(|t| {
                let stages: Vec<(String, u64)> = t
                    .events
                    .iter()
                    .map(|e| (e.stage.as_str().to_owned(), e.us))
                    .collect();
                let sum = t.stage_sum_us().max(1);
                let (critical_stage, critical_us) = t
                    .events
                    .iter()
                    .filter(|e| e.stage != Stage::Fault)
                    .map(|e| (e.stage.as_str().to_owned(), e.us))
                    .max_by_key(|(_, us)| *us)
                    .unwrap_or(("none".to_owned(), 0));
                Exemplar {
                    trace: t.trace.clone(),
                    kind: t.kind.clone(),
                    total_us: t.total_us.unwrap_or(0),
                    stages,
                    critical_stage,
                    critical_share: critical_us as f64 / sum as f64,
                }
            })
            .collect();

        TraceReport {
            traces: traces.len() as u64,
            complete: complete.len() as u64,
            errored: complete.iter().filter(|t| t.ok == Some(false)).count() as u64,
            kinds,
            total_p50_us: tq(0.50),
            total_p95_us: tq(0.95),
            total_p99_us: tq(0.99),
            stages,
            anomalies,
            anomaly_threshold_us,
            stage_coverage,
            exemplars,
        }
    }

    /// Pretty JSON for `--metrics-out`-style artifacts.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// A human-readable rendering: per-stage table + worst exemplars.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2_048);
        out.push_str(&format!(
            "trace report: {} traces ({} complete, {} errored)\n",
            self.traces, self.complete, self.errored
        ));
        let kinds: Vec<String> =
            self.kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        out.push_str(&format!("kinds: {}\n", kinds.join(" ")));
        out.push_str(&format!(
            "end-to-end: p50 {:.0}us  p95 {:.0}us  p99 {:.0}us  (stages explain {:.0}% of it)\n",
            self.total_p50_us,
            self.total_p95_us,
            self.total_p99_us,
            100.0 * self.stage_coverage
        ));
        out.push_str(&format!(
            "anomalies: {} request(s) above the {:.0}us Tukey fence\n\n",
            self.anomalies, self.anomaly_threshold_us
        ));
        out.push_str(&format!(
            "{:<11} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
            "stage", "count", "total_us", "mean_us", "p50_us", "p95_us", "p99_us", "share"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<11} {:>8} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>6.1}%\n",
                s.stage,
                s.count,
                s.total_us,
                s.mean_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                100.0 * s.share
            ));
        }
        if !self.exemplars.is_empty() {
            out.push_str("\nworst exemplars (critical path):\n");
            for e in &self.exemplars {
                let path: Vec<String> =
                    e.stages.iter().map(|(s, us)| format!("{s} {us}us")).collect();
                out.push_str(&format!(
                    "  {} {} {}us: {}  [critical: {} {:.0}%]\n",
                    &e.trace[..e.trace.len().min(8)],
                    e.kind,
                    e.total_us,
                    path.join(" -> "),
                    e.critical_stage,
                    100.0 * e.critical_share
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn trace(seq: u64, kind: &str, queue: u64, engine: u64, total: u64) -> RequestTrace {
        RequestTrace {
            trace: format!("{seq:016x}"),
            thread: 0,
            seq,
            kind: kind.to_owned(),
            ok: Some(true),
            total_us: Some(total),
            events: vec![
                TraceEvent { stage: Stage::Queue, us: queue, detail: None },
                TraceEvent { stage: Stage::Engine, us: engine, detail: None },
                TraceEvent { stage: Stage::Serialize, us: 2, detail: None },
            ],
        }
    }

    fn fixture() -> Vec<RequestTrace> {
        let mut traces: Vec<RequestTrace> =
            (0..40).map(|i| trace(i, "top_k", 5, 100 + i, 110 + i)).collect();
        // One pathological request: queue-dominated, 100x slower.
        traces.push(trace(99, "rbo", 9_000, 1_000, 10_050));
        traces
    }

    #[test]
    fn breakdown_aggregates_per_stage() {
        let report = TraceReport::from_traces(&fixture());
        assert_eq!(report.traces, 41);
        assert_eq!(report.complete, 41);
        assert_eq!(report.kinds["top_k"], 40);
        assert_eq!(report.kinds["rbo"], 1);
        let queue = report.stages.iter().find(|s| s.stage == "queue").unwrap();
        let engine = report.stages.iter().find(|s| s.stage == "engine").unwrap();
        assert_eq!(queue.count, 41);
        assert_eq!(queue.total_us, 40 * 5 + 9_000);
        assert_eq!(engine.count, 41);
        // Shares sum to ~1 over present stages.
        let share_sum: f64 = report.stages.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "{share_sum}");
        // Stage order follows the canonical order.
        let names: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(names, ["queue", "engine", "serialize"]);
    }

    #[test]
    fn anomaly_flagging_catches_the_outlier() {
        let report = TraceReport::from_traces(&fixture());
        assert_eq!(report.anomalies, 1, "exactly the 10ms request");
        assert!(report.anomaly_threshold_us < 10_050.0);
        assert!(report.total_p99_us > report.total_p50_us);
    }

    #[test]
    fn exemplars_rank_worst_first_with_critical_path() {
        let report = TraceReport::from_traces(&fixture());
        let worst = &report.exemplars[0];
        assert_eq!(worst.kind, "rbo");
        assert_eq!(worst.total_us, 10_050);
        assert_eq!(worst.critical_stage, "queue");
        assert!(worst.critical_share > 0.8);
        // Sorted descending by total.
        let totals: Vec<u64> = report.exemplars.iter().map(|e| e.total_us).collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]), "{totals:?}");
    }

    #[test]
    fn stage_coverage_tracks_stage_sums() {
        // stage sum = 5 + 100 + 2 = 107 of total 110 → ~0.97 for the bulk.
        let report = TraceReport::from_traces(&fixture());
        assert!(report.stage_coverage > 0.9 && report.stage_coverage <= 1.0);
    }

    #[test]
    fn jsonl_roundtrip_and_malformed_lines_are_typed_errors() {
        let jsonl: String = fixture()
            .iter()
            .map(|t| serde_json::to_string(t).unwrap() + "\n")
            .collect();
        let report = TraceReport::from_jsonl(&jsonl).expect("parses");
        assert_eq!(report.traces, 41);
        let rendered = report.render();
        assert!(rendered.contains("queue"), "{rendered}");
        assert!(rendered.contains("worst exemplars"), "{rendered}");
        assert!(report.to_json().contains("\"anomalies\": 1"));

        let err = TraceReport::from_jsonl("{not json}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn empty_input_yields_an_empty_report() {
        let report = TraceReport::from_jsonl("").expect("empty ok");
        assert_eq!(report.traces, 0);
        assert_eq!(report.anomalies, 0);
        assert!(report.stages.is_empty());
        assert!(report.exemplars.is_empty());
    }
}
