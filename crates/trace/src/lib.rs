//! # wwv-trace
//!
//! Per-request visibility for the serve layer, in three pieces:
//!
//! * [`id`]/[`recorder`] — **request-scoped tracing**. A 64-bit trace ID is
//!   minted deterministically from `(seed, thread, seq)` in the load
//!   generator (or any client), carried through the binary protocol via the
//!   backward-compatible extension byte (`wwv-serve::protocol`), and
//!   threaded through queue → engine → cache → encode. Each component
//!   appends a typed [`TraceEvent`] (queue wait, cache hit/miss, engine
//!   eval, serialize, injected fault) to the [`TraceRecorder`], which
//!   exports the per-request timelines as sorted JSONL. Head sampling is a
//!   pure function of the ID ([`Sampler`]), so "1 in N" picks the same
//!   requests on every run.
//! * [`window`] — **rolling-window metrics**. A ring of per-slot
//!   log2-histogram + rate buckets (default 12 × 5 s) layered over the
//!   `wwv-obs` primitives, answering "qps / p50 / p95 / p99 / cache hit
//!   rate *over the last minute*" instead of since process start. Window
//!   snapshots are epoch-tagged and seqlock-consistent across catalog hot
//!   swaps.
//! * [`expo`]/[`report`] — **exposition + analysis**. [`MetricsServer`] is
//!   a second listener serving the live window as Prometheus-style text and
//!   JSON, safe to scrape mid-loadgen; [`TraceReport`] aggregates exported
//!   JSONL into a per-stage latency breakdown, flags anomalous requests via
//!   `wwv-stats` quantiles, and renders the critical path of the worst
//!   exemplars.
//!
//! The crate deliberately depends only on `wwv-obs` + `wwv-stats`:
//! `wwv-serve` depends on it (not the other way around), and the binary
//! wires the two together.

pub mod event;
pub mod expo;
pub mod id;
pub mod recorder;
pub mod report;
pub mod window;

pub use event::{RequestTrace, Stage, TraceEvent};
pub use expo::MetricsServer;
pub use id::{Sampler, TraceId};
pub use recorder::{ClockMode, TraceRecorder};
pub use report::{StageBreakdown, TraceReport};
pub use window::{LiveMetrics, WindowSnapshot};
