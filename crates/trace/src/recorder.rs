//! The in-memory trace sink and its JSONL export.
//!
//! Components on a request's path append events keyed by [`TraceId`]; the
//! recorder assembles them into per-request timelines. Events within one
//! request form a causal chain (client start → queue → engine → serialize →
//! client finish), so their order is deterministic even though different
//! threads append them.
//!
//! **Export determinism.** JSONL lines are sorted by `(thread, seq, trace)`
//! — independent of completion order. Under [`ClockMode::Logical`] every
//! `us` value is replaced by the event's index in its timeline and
//! `total_us` by the event count, removing wall-clock noise entirely: the
//! same seed then produces byte-identical output at any worker count. Wall
//! mode keeps real microseconds for `wwv trace report`.

use crate::event::{RequestTrace, Stage, TraceEvent};
use crate::id::TraceId;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// How exported timestamps are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Real stage durations in microseconds (default; feeds the analyzer).
    Wall,
    /// Deterministic event indices (determinism tests, golden files).
    Logical,
}

impl ClockMode {
    /// Parses the `--trace-clock` CLI value.
    pub fn parse(s: &str) -> Option<ClockMode> {
        match s {
            "wall" => Some(ClockMode::Wall),
            "logical" => Some(ClockMode::Logical),
            _ => None,
        }
    }
}

/// Collects events for sampled requests; exports sorted JSONL.
pub struct TraceRecorder {
    clock: ClockMode,
    traces: Mutex<BTreeMap<u64, RequestTrace>>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceRecorder({} traces, {:?})", self.len(), self.clock)
    }
}

impl TraceRecorder {
    /// An empty recorder exporting under the given clock.
    pub fn new(clock: ClockMode) -> TraceRecorder {
        TraceRecorder { clock, traces: Mutex::new(BTreeMap::new()) }
    }

    /// The export clock mode.
    pub fn clock(&self) -> ClockMode {
        self.clock
    }

    /// Number of requests with at least one recorded event.
    pub fn len(&self) -> usize {
        self.traces.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a sampled request at mint time (client side).
    pub fn start(&self, id: TraceId, thread: u32, seq: u64, kind: &str) {
        let mut traces = self.traces.lock();
        traces.insert(
            id.0,
            RequestTrace {
                trace: id.to_hex(),
                thread,
                seq,
                kind: kind.to_owned(),
                ok: None,
                total_us: None,
                events: Vec::with_capacity(4),
            },
        );
    }

    /// Appends a stage event. Unknown IDs get a stub entry (a server-side
    /// trace for a remote client whose start this recorder never saw).
    pub fn event(&self, id: TraceId, stage: Stage, us: u64) {
        self.push(id, TraceEvent { stage, us, detail: None });
    }

    /// [`TraceRecorder::event`] with a detail string (fault point/kind).
    pub fn event_detail(&self, id: TraceId, stage: Stage, us: u64, detail: &str) {
        self.push(id, TraceEvent { stage, us, detail: Some(detail.to_owned()) });
    }

    fn push(&self, id: TraceId, event: TraceEvent) {
        let mut traces = self.traces.lock();
        traces
            .entry(id.0)
            .or_insert_with(|| RequestTrace {
                trace: id.to_hex(),
                thread: u32::MAX,
                seq: id.0,
                kind: String::new(),
                ok: None,
                total_us: None,
                events: Vec::with_capacity(4),
            })
            .events
            .push(event);
    }

    /// Records the client-observed outcome and end-to-end latency.
    pub fn finish(&self, id: TraceId, total_us: u64, ok: bool) {
        let mut traces = self.traces.lock();
        if let Some(t) = traces.get_mut(&id.0) {
            t.ok = Some(ok);
            t.total_us = Some(total_us);
        }
    }

    /// The recorded timelines, sorted by `(thread, seq, trace)` with the
    /// clock mode applied.
    pub fn export(&self) -> Vec<RequestTrace> {
        let mut out: Vec<RequestTrace> = self.traces.lock().values().cloned().collect();
        out.sort_by(|a, b| {
            (a.thread, a.seq, &a.trace).cmp(&(b.thread, b.seq, &b.trace))
        });
        if self.clock == ClockMode::Logical {
            for t in &mut out {
                for (i, e) in t.events.iter_mut().enumerate() {
                    e.us = i as u64;
                }
                if t.ok.is_some() {
                    t.total_us = Some(t.events.len() as u64);
                }
            }
        }
        out
    }

    /// One JSON object per line, deterministic field order, trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for t in self.export() {
            out.push_str(&serde_json::to_string(&t).expect("trace serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_one(rec: &TraceRecorder, thread: u32, seq: u64) -> TraceId {
        let id = TraceId::mint(1, thread as u64, seq);
        rec.start(id, thread, seq, "top_k");
        rec.event(id, Stage::Queue, 12);
        rec.event(id, Stage::Engine, 340);
        rec.event(id, Stage::Serialize, 5);
        rec.finish(id, 400, true);
        id
    }

    #[test]
    fn timeline_assembles_in_causal_order() {
        let rec = TraceRecorder::new(ClockMode::Wall);
        record_one(&rec, 0, 0);
        let out = rec.export();
        assert_eq!(out.len(), 1);
        let t = &out[0];
        assert_eq!(t.kind, "top_k");
        assert_eq!(t.ok, Some(true));
        assert_eq!(t.total_us, Some(400));
        let stages: Vec<Stage> = t.events.iter().map(|e| e.stage).collect();
        assert_eq!(stages, [Stage::Queue, Stage::Engine, Stage::Serialize]);
        assert_eq!(t.stage_sum_us(), 357);
    }

    #[test]
    fn export_sorts_by_thread_then_seq() {
        let rec = TraceRecorder::new(ClockMode::Wall);
        // Insert out of order; export must not care.
        record_one(&rec, 1, 1);
        record_one(&rec, 0, 1);
        record_one(&rec, 1, 0);
        record_one(&rec, 0, 0);
        let keys: Vec<(u32, u64)> =
            rec.export().iter().map(|t| (t.thread, t.seq)).collect();
        assert_eq!(keys, [(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn logical_clock_erases_wall_time() {
        let rec = TraceRecorder::new(ClockMode::Logical);
        record_one(&rec, 0, 0);
        let t = &rec.export()[0];
        let us: Vec<u64> = t.events.iter().map(|e| e.us).collect();
        assert_eq!(us, [0, 1, 2]);
        assert_eq!(t.total_us, Some(3));
    }

    #[test]
    fn jsonl_roundtrips_and_is_line_per_trace() {
        let rec = TraceRecorder::new(ClockMode::Wall);
        record_one(&rec, 0, 0);
        record_one(&rec, 0, 1);
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let back: RequestTrace = serde_json::from_str(line).expect("line parses");
            assert_eq!(back.events.len(), 3);
        }
    }

    #[test]
    fn orphan_events_get_a_stub_entry() {
        let rec = TraceRecorder::new(ClockMode::Wall);
        let id = TraceId(77);
        rec.event(id, Stage::Engine, 9);
        let out = rec.export();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].thread, u32::MAX);
        assert_eq!(out[0].ok, None);
        // finish on an unknown id is a silent no-op (client gave up).
        rec.finish(TraceId(123), 1, true);
        assert_eq!(rec.len(), 1);
    }
}
