//! The metrics exposition endpoint: a second listener, scrape-safe.
//!
//! Serves the live [`LiveMetrics`] window over a minimal HTTP/1.0
//! implementation (std-only, like the serve-layer TCP transport):
//!
//! * `GET /metrics` — Prometheus-style text: the window snapshot followed
//!   by the cumulative `wwv-obs` counters and gauges (names mangled
//!   `serve.cache.hit` → `wwv_counter_serve_cache_hit`);
//! * `GET /metrics.json` (or `/json`) — the window snapshot as JSON;
//! * `GET /healthz` — liveness probe.
//!
//! Scrapes are handled sequentially on the accept thread — a scrape is a
//! few hundred bytes, and keeping the endpoint single-threaded means it can
//! never amplify load on a server that is already melting. Snapshot
//! assembly is epoch-consistent (see [`LiveMetrics::snapshot`]), so
//! scraping mid-loadgen or across catalog hot swaps is safe by
//! construction.

use crate::window::LiveMetrics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for the non-blocking accept loop.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Per-connection read budget: a scrape request head is tiny.
const MAX_REQUEST_BYTES: usize = 4 * 1024;

/// The exposition listener. Bind with [`MetricsServer::bind`], stop with
/// [`MetricsServer::shutdown`].
pub struct MetricsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts answering scrapes
    /// from the given live window.
    pub fn bind(addr: &str, live: Arc<LiveMetrics>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("wwv-metrics".to_owned())
            .spawn(move || {
                wwv_obs::info!(target: "trace", "metrics endpoint on {local_addr}");
                while !accept_shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            wwv_obs::global().counter("trace.expo.scrapes").inc();
                            if serve_scrape(stream, &live).is_err() {
                                wwv_obs::global().counter("trace.expo.errors").inc();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn metrics thread");
        Ok(MetricsServer { local_addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the endpoint thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Reads one request head, answers it, closes the connection.
fn serve_scrape(mut stream: TcpStream, live: &LiveMetrics) -> std::io::Result<()> {
    // A stalled client must not wedge the single accept thread.
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 1_024];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/")
        .to_owned();
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => {
            let mut text = live.snapshot().to_prometheus();
            text.push_str(&cumulative_text());
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", text)
        }
        "/metrics.json" | "/json" => {
            ("200 OK", "application/json", live.snapshot().to_json())
        }
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_owned()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Cumulative obs counters and gauges in exposition format, appended after
/// the window block so one scrape carries both time scales.
fn cumulative_text() -> String {
    let report = wwv_obs::Report::capture();
    let mut out = String::with_capacity(1_024);
    for (name, value) in &report.counters {
        out.push_str(&format!("wwv_counter_{} {value}\n", mangle(name)));
    }
    for (name, value) in &report.gauges {
        out.push_str(&format!("wwv_gauge_{} {value}\n", mangle(name)));
    }
    out
}

/// `serve.cache.hit` → `serve_cache_hit` (exposition-safe metric names).
fn mangle(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect metrics");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: wwv\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read scrape");
        let (head, body) = raw.split_once("\r\n\r\n").expect("http split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn endpoint_serves_text_json_health_and_404() {
        let live = Arc::new(LiveMetrics::new(4, 1_000));
        live.record(250, true, Some(false));
        live.set_epoch(7);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&live)).expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("wwv_window_requests 1"), "{body}");
        assert!(body.contains("wwv_serve_epoch 7"), "{body}");

        let (head, body) = get(addr, "/metrics.json");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"epoch\": 7"), "{body}");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn mangle_produces_exposition_safe_names() {
        assert_eq!(mangle("serve.cache.hit"), "serve_cache_hit");
        assert_eq!(mangle("a-b c"), "a_b_c");
    }
}
