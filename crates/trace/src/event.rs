//! Typed trace events and the per-request timeline.

use serde::{Deserialize, Serialize};

/// What happened at one point of a request's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Stage {
    /// Time spent waiting in the bounded worker queue.
    Queue,
    /// Result-cache lookup that hit (duration = lookup cost).
    CacheHit,
    /// Result-cache lookup that missed (duration = lookup cost).
    CacheMiss,
    /// Engine evaluation (compute against the pinned catalog).
    Engine,
    /// Response encoding at the transport boundary.
    Serialize,
    /// An injected `wwv-fault` event fired on this request's path.
    Fault,
}

impl Stage {
    /// Canonical reporting order for per-stage breakdowns.
    pub const ALL: [Stage; 6] = [
        Stage::Queue,
        Stage::CacheHit,
        Stage::CacheMiss,
        Stage::Engine,
        Stage::Serialize,
        Stage::Fault,
    ];

    /// The snake_case name used in JSONL and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::CacheHit => "cache_hit",
            Stage::CacheMiss => "cache_miss",
            Stage::Engine => "engine",
            Stage::Serialize => "serialize",
            Stage::Fault => "fault",
        }
    }
}

/// One event on a request timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Which stage this measures.
    pub stage: Stage,
    /// Stage duration in microseconds (or the event index, under the
    /// logical clock used by determinism tests).
    pub us: u64,
    /// Optional detail, e.g. the fault point and kind (`serve.worker/delay`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub detail: Option<String>,
}

/// The full recorded timeline of one sampled request — one JSONL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Trace ID as fixed-width lowercase hex.
    pub trace: String,
    /// Client thread that minted the ID (`u32::MAX` when unknown, e.g. a
    /// server-side trace for a remote client the recorder never saw start).
    pub thread: u32,
    /// Per-thread request sequence number.
    pub seq: u64,
    /// Query kind label (`top_k`, `rbo`, …; empty when unknown).
    pub kind: String,
    /// Whether the response was a success (`None` until finished).
    pub ok: Option<bool>,
    /// Client-observed end-to-end latency in microseconds (`None` until
    /// finished; the event index count under the logical clock).
    pub total_us: Option<u64>,
    /// Stage events in causal order.
    pub events: Vec<TraceEvent>,
}

impl RequestTrace {
    /// Sum of recorded stage durations (fault events excluded: an injected
    /// delay already shows up inside the stage it stalled).
    pub fn stage_sum_us(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.stage != Stage::Fault)
            .map(|e| e.us)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_canonical_order() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            ["queue", "cache_hit", "cache_miss", "engine", "serialize", "fault"]
        );
    }

    #[test]
    fn stage_sum_skips_fault_events() {
        let t = RequestTrace {
            trace: "00".into(),
            thread: 0,
            seq: 0,
            kind: "ping".into(),
            ok: Some(true),
            total_us: Some(10),
            events: vec![
                TraceEvent { stage: Stage::Queue, us: 3, detail: None },
                TraceEvent {
                    stage: Stage::Fault,
                    us: 1_000,
                    detail: Some("serve.worker/delay".into()),
                },
                TraceEvent { stage: Stage::Engine, us: 5, detail: None },
            ],
        };
        assert_eq!(t.stage_sum_us(), 8);
    }
}
