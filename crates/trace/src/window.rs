//! Rolling-window metrics: a ring of per-slot log2-histogram + rate
//! buckets over wall time.
//!
//! The cumulative `wwv-obs` registry answers "since process start"; this
//! layer answers "over the last minute". Time is divided into fixed-width
//! slots (default 12 × 5 s); each slot holds its own counts and log2
//! latency buckets, tagged with the absolute slot number it belongs to. A
//! recording thread that finds a stale tag zeroes the slot and re-tags it —
//! the ring recycles itself with no sweeper thread. A snapshot merges only
//! slots whose tag falls inside the window, so expired data vanishes
//! without ever being touched.
//!
//! **Approximation contract.** Slot rotation is lock-free: a record racing
//! a concurrent reset may be dropped, and a reader may observe a slot
//! mid-zero. Live metrics trade per-event exactness at slot boundaries for
//! zero contention on the hot path; the *cumulative* obs counters remain
//! exact. Quantiles resolve to log2 bucket midpoints exactly like
//! [`wwv_obs::histogram`] (see `bucket_midpoint` there for the ±error
//! bounds).
//!
//! **Epoch tagging.** [`LiveMetrics`] carries the serve-layer swap epoch.
//! [`LiveMetrics::snapshot`] is seqlock-style: it reads the epoch, merges
//! the window, and retries if the epoch moved — a scrape concurrent with
//! catalog hot swaps never reports a half-updated, mixed-epoch view.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wwv_obs::histogram::{bucket_index, bucket_midpoint, BUCKET_COUNT};

/// Default slot count (together: a one-minute window).
pub const DEFAULT_SLOTS: usize = 12;
/// Default slot width in milliseconds.
pub const DEFAULT_SLOT_MS: u64 = 5_000;

/// Tag value marking a slot mid-reset.
const RESETTING: u64 = u64::MAX;

/// Claims `tag` for `slot_no`, running `zero` first when the slot held an
/// older slot number. Returns whether the caller may record into the slot.
fn claim<F: FnOnce()>(tag: &AtomicU64, slot_no: u64, zero: F) -> bool {
    loop {
        let cur = tag.load(Ordering::Acquire);
        if cur == slot_no {
            return true;
        }
        // Mid-reset by another thread, or a lagging writer whose slot the
        // window already left behind: drop the event (see module docs).
        if cur == RESETTING || cur > slot_no {
            return false;
        }
        if tag
            .compare_exchange(cur, RESETTING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            zero();
            tag.store(slot_no, Ordering::Release);
            return true;
        }
    }
}

/// Whether a slot tagged `tag` belongs to the window ending at `now_slot`.
fn in_window(tag: u64, now_slot: u64, nslots: u64) -> bool {
    tag <= now_slot && now_slot - tag < nslots
}

struct HistSlot {
    tag: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl HistSlot {
    fn new() -> HistSlot {
        HistSlot {
            tag: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A windowed log2 histogram (ring of [`HistSlot`]s).
pub struct WindowHistogram {
    slots: Vec<HistSlot>,
    width_ms: u64,
}

impl WindowHistogram {
    /// A ring of `nslots` slots, each `width_ms` wide.
    pub fn new(nslots: usize, width_ms: u64) -> WindowHistogram {
        WindowHistogram {
            slots: (0..nslots.max(1)).map(|_| HistSlot::new()).collect(),
            width_ms: width_ms.max(1),
        }
    }

    /// Records `value` at absolute time `now_ms`.
    pub fn record(&self, now_ms: u64, value: u64) {
        let slot_no = now_ms / self.width_ms;
        let slot = &self.slots[(slot_no % self.slots.len() as u64) as usize];
        if claim(&slot.tag, slot_no, || slot.zero()) {
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.sum.fetch_add(value, Ordering::Relaxed);
            slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Merged `(count, sum, buckets)` over the window ending at `now_ms`.
    pub fn merged(&self, now_ms: u64) -> (u64, u64, [u64; BUCKET_COUNT]) {
        let now_slot = now_ms / self.width_ms;
        let nslots = self.slots.len() as u64;
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut buckets = [0u64; BUCKET_COUNT];
        for slot in &self.slots {
            if !in_window(slot.tag.load(Ordering::Acquire), now_slot, nslots) {
                continue;
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += slot.sum.load(Ordering::Relaxed);
            for (acc, b) in buckets.iter_mut().zip(&slot.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        (count, sum, buckets)
    }
}

struct CountSlot {
    tag: AtomicU64,
    count: AtomicU64,
}

/// A windowed event counter (ring of tagged counters).
pub struct WindowCounter {
    slots: Vec<CountSlot>,
    width_ms: u64,
}

impl WindowCounter {
    /// A ring of `nslots` slots, each `width_ms` wide.
    pub fn new(nslots: usize, width_ms: u64) -> WindowCounter {
        WindowCounter {
            slots: (0..nslots.max(1))
                .map(|_| CountSlot { tag: AtomicU64::new(0), count: AtomicU64::new(0) })
                .collect(),
            width_ms: width_ms.max(1),
        }
    }

    /// Adds `n` events at absolute time `now_ms`.
    pub fn add(&self, now_ms: u64, n: u64) {
        let slot_no = now_ms / self.width_ms;
        let slot = &self.slots[(slot_no % self.slots.len() as u64) as usize];
        if claim(&slot.tag, slot_no, || slot.count.store(0, Ordering::Relaxed)) {
            slot.count.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total events in the window ending at `now_ms`.
    pub fn total(&self, now_ms: u64) -> u64 {
        let now_slot = now_ms / self.width_ms;
        let nslots = self.slots.len() as u64;
        self.slots
            .iter()
            .filter(|s| in_window(s.tag.load(Ordering::Acquire), now_slot, nslots))
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }
}

/// Quantile over merged window buckets: cumulative walk to the target
/// count, resolved at the bucket midpoint (same estimator family as
/// [`wwv_obs::histogram`]; worst-case relative error +50%/−25%).
fn bucket_quantile(buckets: &[u64; BUCKET_COUNT], count: u64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut acc = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        acc += n;
        if acc >= target {
            return Some(bucket_midpoint(i));
        }
    }
    None
}

/// Point-in-time view of the rolling window, tagged with the swap epoch it
/// was assembled under.
#[derive(Debug, Clone, Serialize)]
pub struct WindowSnapshot {
    /// Serve-layer catalog swap epoch (stable across the whole assembly).
    pub epoch: u64,
    /// Seconds of traffic the window actually covers.
    pub window_s: f64,
    /// Requests completed in the window.
    pub requests: u64,
    /// Error responses in the window.
    pub errors: u64,
    /// Request rate over the covered window.
    pub qps: f64,
    /// Windowed latency quantiles, microseconds (None when idle).
    pub p50_us: Option<f64>,
    /// 95th percentile, microseconds.
    pub p95_us: Option<f64>,
    /// 99th percentile, microseconds.
    pub p99_us: Option<f64>,
    /// Mean latency, microseconds.
    pub mean_us: Option<f64>,
    /// Result-cache hits in the window.
    pub cache_hits: u64,
    /// Result-cache misses in the window.
    pub cache_misses: u64,
    /// Windowed hit rate in `[0, 1]` (0 when no cacheable traffic).
    pub cache_hit_rate: f64,
}

impl WindowSnapshot {
    /// Pretty JSON (the `/metrics.json` body).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Prometheus-style exposition text (the `/metrics` body).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1_024);
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v}"),
            None => "NaN".to_owned(),
        };
        out.push_str("# HELP wwv_window_seconds Seconds covered by the rolling window.\n");
        out.push_str("# TYPE wwv_window_seconds gauge\n");
        out.push_str(&format!("wwv_window_seconds {}\n", self.window_s));
        out.push_str("# HELP wwv_window_requests Requests completed in the window.\n");
        out.push_str("# TYPE wwv_window_requests gauge\n");
        out.push_str(&format!("wwv_window_requests {}\n", self.requests));
        out.push_str("# HELP wwv_window_errors Error responses in the window.\n");
        out.push_str("# TYPE wwv_window_errors gauge\n");
        out.push_str(&format!("wwv_window_errors {}\n", self.errors));
        out.push_str("# HELP wwv_window_qps Request rate over the window.\n");
        out.push_str("# TYPE wwv_window_qps gauge\n");
        out.push_str(&format!("wwv_window_qps {}\n", self.qps));
        out.push_str("# HELP wwv_window_latency_us Windowed latency quantiles.\n");
        out.push_str("# TYPE wwv_window_latency_us summary\n");
        for (q, v) in
            [("0.5", self.p50_us), ("0.95", self.p95_us), ("0.99", self.p99_us)]
        {
            out.push_str(&format!(
                "wwv_window_latency_us{{quantile=\"{q}\"}} {}\n",
                fmt_opt(v)
            ));
        }
        out.push_str(&format!("wwv_window_latency_us_mean {}\n", fmt_opt(self.mean_us)));
        out.push_str("# HELP wwv_window_cache_hit_rate Windowed result-cache hit rate.\n");
        out.push_str("# TYPE wwv_window_cache_hit_rate gauge\n");
        out.push_str(&format!("wwv_window_cache_hits {}\n", self.cache_hits));
        out.push_str(&format!("wwv_window_cache_misses {}\n", self.cache_misses));
        out.push_str(&format!("wwv_window_cache_hit_rate {}\n", self.cache_hit_rate));
        out.push_str("# HELP wwv_serve_epoch Catalog swap epoch the window was read under.\n");
        out.push_str("# TYPE wwv_serve_epoch gauge\n");
        out.push_str(&format!("wwv_serve_epoch {}\n", self.epoch));
        out
    }
}

/// The serve layer's live, epoch-tagged rolling-window metrics.
pub struct LiveMetrics {
    origin: Instant,
    nslots: usize,
    width_ms: u64,
    latency: WindowHistogram,
    requests: WindowCounter,
    errors: WindowCounter,
    cache_hits: WindowCounter,
    cache_misses: WindowCounter,
    epoch: AtomicU64,
}

impl std::fmt::Debug for LiveMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LiveMetrics({} x {}ms, epoch {})",
            self.nslots,
            self.width_ms,
            self.epoch.load(Ordering::Relaxed)
        )
    }
}

impl LiveMetrics {
    /// A window of `nslots` slots, each `width_ms` wide.
    pub fn new(nslots: usize, width_ms: u64) -> LiveMetrics {
        let (nslots, width_ms) = (nslots.max(1), width_ms.max(1));
        LiveMetrics {
            origin: Instant::now(),
            nslots,
            width_ms,
            latency: WindowHistogram::new(nslots, width_ms),
            requests: WindowCounter::new(nslots, width_ms),
            errors: WindowCounter::new(nslots, width_ms),
            cache_hits: WindowCounter::new(nslots, width_ms),
            cache_misses: WindowCounter::new(nslots, width_ms),
            epoch: AtomicU64::new(0),
        }
    }

    /// The default 12 × 5 s one-minute window.
    pub fn default_window() -> LiveMetrics {
        LiveMetrics::new(DEFAULT_SLOTS, DEFAULT_SLOT_MS)
    }

    /// Milliseconds since this instance was created (the window clock).
    pub fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    /// Records one completed request (hot path: a handful of relaxed
    /// atomics). `cache` is `Some(hit?)` for cacheable queries.
    pub fn record(&self, latency_us: u64, ok: bool, cache: Option<bool>) {
        self.record_at(self.now_ms(), latency_us, ok, cache);
    }

    /// [`LiveMetrics::record`] at an explicit window time (tests).
    pub fn record_at(&self, now_ms: u64, latency_us: u64, ok: bool, cache: Option<bool>) {
        self.latency.record(now_ms, latency_us);
        self.requests.add(now_ms, 1);
        if !ok {
            self.errors.add(now_ms, 1);
        }
        match cache {
            Some(true) => self.cache_hits.add(now_ms, 1),
            Some(false) => self.cache_misses.add(now_ms, 1),
            None => {}
        }
    }

    /// Stamps the catalog swap epoch (called by the serve layer on swap).
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
    }

    /// The current swap epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// An epoch-consistent snapshot of the current window (seqlock-style:
    /// retried until the epoch is stable across the whole assembly).
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_ms())
    }

    /// [`LiveMetrics::snapshot`] at an explicit window time (tests).
    pub fn snapshot_at(&self, now_ms: u64) -> WindowSnapshot {
        loop {
            let epoch = self.epoch.load(Ordering::SeqCst);
            let snap = self.assemble(now_ms, epoch);
            if self.epoch.load(Ordering::SeqCst) == epoch {
                return snap;
            }
            std::hint::spin_loop();
        }
    }

    fn assemble(&self, now_ms: u64, epoch: u64) -> WindowSnapshot {
        let (count, sum, buckets) = self.latency.merged(now_ms);
        let requests = self.requests.total(now_ms);
        let errors = self.errors.total(now_ms);
        let cache_hits = self.cache_hits.total(now_ms);
        let cache_misses = self.cache_misses.total(now_ms);
        // Covered time: full past slots plus the elapsed part of the
        // current slot, capped by the process' actual lifetime.
        let in_slot = now_ms % self.width_ms + 1;
        let covered_ms =
            ((self.nslots as u64 - 1) * self.width_ms + in_slot).min(now_ms + 1);
        let window_s = covered_ms as f64 / 1e3;
        let q = |p: f64| bucket_quantile(&buckets, count, p);
        WindowSnapshot {
            epoch,
            window_s,
            requests,
            errors,
            qps: if window_s > 0.0 { requests as f64 / window_s } else { 0.0 },
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
            mean_us: if count > 0 { Some(sum as f64 / count as f64) } else { None },
            cache_hits,
            cache_misses,
            cache_hit_rate: if cache_hits + cache_misses > 0 {
                cache_hits as f64 / (cache_hits + cache_misses) as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_counter_expires_old_slots() {
        let c = WindowCounter::new(3, 1_000);
        c.add(0, 5);
        c.add(1_500, 2);
        assert_eq!(c.total(1_500), 7, "both slots inside the 3s window");
        // At t=3.5s the slot-0 data (t<1s) has left the 3-slot window.
        assert_eq!(c.total(3_500), 2);
        // At t=10s everything is gone — without any writer touching slots.
        assert_eq!(c.total(10_000), 0);
    }

    #[test]
    fn window_counter_recycles_slots() {
        let c = WindowCounter::new(2, 100);
        c.add(0, 1);
        // Slot 0's ring position is reused by slot_no 2; old count must be
        // zeroed by the claiming writer, not added to.
        c.add(200, 3);
        assert_eq!(c.total(200), 3);
    }

    #[test]
    fn lagging_writer_is_dropped_not_resurrected() {
        let c = WindowCounter::new(2, 100);
        c.add(500, 4);
        // A writer stuck in the past must not clobber the newer slot.
        c.add(90, 9);
        assert_eq!(c.total(500), 4);
    }

    #[test]
    fn histogram_quantiles_use_bucket_midpoints() {
        let h = WindowHistogram::new(4, 1_000);
        for _ in 0..100 {
            h.record(10, 1_025); // bucket 11, midpoint 1536
        }
        let (count, sum, buckets) = h.merged(10);
        assert_eq!(count, 100);
        assert_eq!(sum, 102_500);
        assert_eq!(bucket_quantile(&buckets, count, 0.5), Some(1_536.0));
        assert_eq!(bucket_quantile(&buckets, count, 0.99), Some(1_536.0));
        assert_eq!(bucket_quantile(&buckets, 0, 0.5), None);
    }

    #[test]
    fn snapshot_reports_windowed_rates() {
        let m = LiveMetrics::new(12, 5_000);
        // 600 requests spread over the first 30s, half cacheable.
        for i in 0..600u64 {
            let cache = match i % 4 {
                0 => Some(true),
                1 => Some(false),
                _ => None,
            };
            m.record_at(i * 50, 100 + i, i % 10 != 0, cache);
        }
        let s = m.snapshot_at(30_000);
        assert_eq!(s.requests, 600);
        assert_eq!(s.errors, 60);
        assert_eq!(s.cache_hits, 150);
        assert_eq!(s.cache_misses, 150);
        assert!((s.cache_hit_rate - 0.5).abs() < 1e-9);
        assert!(s.qps > 0.0);
        assert!(s.p50_us.is_some() && s.p95_us.is_some() && s.p99_us.is_some());
        assert!(s.p50_us.unwrap() <= s.p99_us.unwrap());
        // A minute later the whole window has rolled over: idle.
        let idle = m.snapshot_at(120_000);
        assert_eq!(idle.requests, 0);
        assert_eq!(idle.p50_us, None);
        assert_eq!(idle.qps, 0.0);
    }

    #[test]
    fn fully_stale_ring_scrapes_as_zero_then_recovers() {
        // A scrape after the ring has been idle longer than the whole
        // window (the ">60s idle" case for the default geometry) must see
        // zero everything — no writer has touched the slots, so expiry is
        // purely the reader's in_window check on the absolute slot tags.
        let m = LiveMetrics::new(12, 5_000);
        for i in 0..100u64 {
            m.record_at(i * 100, 250, i % 5 != 0, Some(i % 2 == 0));
        }
        assert_eq!(m.snapshot_at(10_000).requests, 100, "sanity: traffic visible live");
        // 10 minutes later: every slot tag is stale.
        let idle = m.snapshot_at(600_000);
        assert_eq!(idle.requests, 0);
        assert_eq!(idle.errors, 0);
        assert_eq!(idle.cache_hits, 0);
        assert_eq!(idle.cache_misses, 0);
        assert_eq!(idle.cache_hit_rate, 0.0);
        assert_eq!(idle.qps, 0.0);
        assert_eq!(idle.p50_us, None);
        assert_eq!(idle.mean_us, None);
        // And the first write after the gap recycles its slot cleanly: the
        // old generation's counts must not bleed into the new one.
        m.record_at(600_100, 400, true, Some(true));
        let woke = m.snapshot_at(600_200);
        assert_eq!(woke.requests, 1);
        assert_eq!(woke.errors, 0);
        assert_eq!(woke.cache_hits, 1);
        assert!(woke.p50_us.is_some());
    }

    #[test]
    fn counter_ring_wraparound_across_idle_gap() {
        // Slot 1 and slot 1+k·nslots share a ring position. After an idle
        // gap of exactly whole ring revolutions, the new write must claim
        // and zero the position — never add to the stale count — and the
        // stale count must never have been readable in between.
        let c = WindowCounter::new(4, 100);
        c.add(150, 7); // slot 1
        assert_eq!(c.total(150), 7);
        // Mid-gap: slot 1 left the window, nothing wrote since.
        assert_eq!(c.total(700), 0);
        // One full revolution later: same ring position, new slot number.
        c.add(950, 2); // slot 9 -> ring position 1
        assert_eq!(c.total(950), 2, "stale count resurrected across wraparound");
    }

    #[test]
    fn histogram_ring_wraparound_across_idle_gap() {
        let h = WindowHistogram::new(4, 100);
        h.record(150, 1_000); // slot 1
        let (count, _, _) = h.merged(150);
        assert_eq!(count, 1);
        let (count, sum, _) = h.merged(700);
        assert_eq!((count, sum), (0, 0), "stale slot readable after idle gap");
        h.record(950, 3_000); // slot 9 -> same ring position as slot 1
        let (count, sum, buckets) = h.merged(950);
        assert_eq!(count, 1, "old observation resurrected across wraparound");
        assert_eq!(sum, 3_000);
        assert_eq!(bucket_quantile(&buckets, count, 0.5), Some(bucket_midpoint(bucket_index(3_000))));
    }

    #[test]
    fn snapshot_epoch_is_stable_under_concurrent_swaps() {
        use std::sync::Arc;
        let m = Arc::new(LiveMetrics::new(4, 50));
        m.record(100, true, None);
        let swapper = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for e in 1..=500u64 {
                    m.set_epoch(e);
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..200 {
            let s = m.snapshot();
            assert!(s.epoch >= last, "epoch went backwards: {} < {last}", s.epoch);
            last = s.epoch;
        }
        swapper.join().unwrap();
        assert_eq!(m.snapshot().epoch, 500);
    }

    #[test]
    fn prometheus_text_and_json_expose_the_window() {
        let m = LiveMetrics::new(4, 1_000);
        m.record_at(10, 500, true, Some(true));
        m.set_epoch(3);
        let s = m.snapshot_at(20);
        let text = s.to_prometheus();
        for needle in [
            "wwv_window_qps",
            "wwv_window_requests 1",
            "wwv_window_latency_us{quantile=\"0.99\"}",
            "wwv_serve_epoch 3",
            "wwv_window_cache_hit_rate 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let json = s.to_json();
        assert!(json.contains("\"epoch\": 3"), "{json}");
        assert!(json.contains("\"requests\": 1"), "{json}");
    }
}
