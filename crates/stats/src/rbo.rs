//! Rank-Biased Overlap (RBO) — classic and traffic-weighted.
//!
//! RBO compares two ranked lists, weighting agreement at the top of the
//! lists more heavily than agreement further down. The classic formulation
//! (Webber et al. 2010) uses geometric depth weights `p^(d-1)`. The paper
//! (§5.3.1) replaces the geometric weights with the **empirical web traffic
//! distribution** from its Fig. 1, so that agreement at rank *d* counts in
//! proportion to the real share of traffic rank *d* receives. Both weightings
//! share the same agreement machinery here.

use crate::ranking::RankedList;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::Hash;

/// Depth-weighting scheme for RBO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightModel {
    /// Geometric weights `p^(d-1)` with persistence parameter `p ∈ (0, 1)`.
    Geometric {
        /// Persistence parameter; larger values look deeper down the lists.
        p: f64,
    },
    /// Empirical per-rank weights: `weights[d-1]` is the weight of depth `d`
    /// (e.g. the share of traffic captured by the site at rank `d`). Depths
    /// beyond the vector get weight 0.
    Empirical {
        /// Per-rank weights, rank 1 first. Need not be normalized.
        weights: Vec<f64>,
    },
}

impl WeightModel {
    /// Weight of 1-based depth `d`.
    pub fn weight(&self, d: usize) -> f64 {
        match self {
            WeightModel::Geometric { p } => p.powi(d as i32 - 1),
            WeightModel::Empirical { weights } => weights.get(d - 1).copied().unwrap_or(0.0),
        }
    }
}

/// Agreement profile `A_d` for depths `1..=depth`: the proportion of overlap
/// between the two depth-`d` prefixes, `|S_:d ∩ T_:d| / d`.
pub fn agreement_profile<K: Eq + Hash + Clone>(
    a: &RankedList<K>,
    b: &RankedList<K>,
    depth: usize,
) -> Vec<f64> {
    let mut seen_a: HashSet<&K> = HashSet::new();
    let mut seen_b: HashSet<&K> = HashSet::new();
    let mut both: HashSet<&K> = HashSet::new();
    let mut out = Vec::with_capacity(depth);
    for d in 1..=depth {
        let ka = a.at_rank(d);
        let kb = b.at_rank(d);
        if let Some(ka) = ka {
            seen_a.insert(ka);
        }
        if let Some(kb) = kb {
            seen_b.insert(kb);
        }
        // New intersections at depth d can only involve the keys introduced
        // at depth d; `both` deduplicates the ka == kb case.
        if let Some(ka) = ka {
            if seen_b.contains(ka) {
                both.insert(ka);
            }
        }
        if let Some(kb) = kb {
            if seen_a.contains(kb) {
                both.insert(kb);
            }
        }
        out.push(both.len() as f64 / d as f64);
    }
    out
}

/// Finite-depth RBO with arbitrary weights, normalized so identical lists
/// score exactly 1:
///
/// `RBO = Σ_d w_d · A_d / Σ_d w_d`, over `d = 1..=depth`.
///
/// Returns `None` when the total weight over the evaluated depths is not
/// strictly positive.
pub fn rbo_weighted<K: Eq + Hash + Clone>(
    a: &RankedList<K>,
    b: &RankedList<K>,
    model: &WeightModel,
    depth: usize,
) -> Option<f64> {
    if depth == 0 {
        return None;
    }
    let profile = agreement_profile(a, b, depth);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, a_d) in profile.iter().enumerate() {
        let w = model.weight(i + 1);
        num += w * a_d;
        den += w;
    }
    if den <= 0.0 {
        return None;
    }
    Some(num / den)
}

/// Classic geometric-weight RBO at finite `depth`.
pub fn rbo_classic<K: Eq + Hash + Clone>(
    a: &RankedList<K>,
    b: &RankedList<K>,
    p: f64,
    depth: usize,
) -> Option<f64> {
    if !(0.0 < p && p < 1.0) {
        return None;
    }
    rbo_weighted(a, b, &WeightModel::Geometric { p }, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(keys: &[&str]) -> RankedList<String> {
        RankedList::new(keys.iter().map(|s| s.to_string()))
    }

    #[test]
    fn identical_lists_score_one() {
        let a = list(&["a", "b", "c", "d"]);
        let r = rbo_classic(&a, &a, 0.9, 4).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_lists_score_zero() {
        let a = list(&["a", "b"]);
        let b = list(&["x", "y"]);
        assert_eq!(rbo_classic(&a, &b, 0.9, 2).unwrap(), 0.0);
    }

    #[test]
    fn agreement_profile_manual() {
        let a = list(&["a", "b", "c"]);
        let b = list(&["b", "a", "d"]);
        let prof = agreement_profile(&a, &b, 3);
        // d=1: {a} vs {b} → 0. d=2: {a,b} vs {b,a} → 2/2 = 1. d=3: overlap 2/3.
        assert_eq!(prof[0], 0.0);
        assert!((prof[1] - 1.0).abs() < 1e-12);
        assert!((prof[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn same_key_same_depth_counts_once() {
        let a = list(&["a", "b"]);
        let b = list(&["a", "c"]);
        let prof = agreement_profile(&a, &b, 2);
        assert!((prof[0] - 1.0).abs() < 1e-12, "shared head counts exactly once, got {}", prof[0]);
        assert!((prof[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_weighted_vs_bottom_swap() {
        // Swapping the top differs more than swapping the bottom under
        // top-heavy weights.
        let base = list(&["a", "b", "c", "d", "e"]);
        let top_swapped = list(&["b", "a", "c", "d", "e"]);
        let bottom_swapped = list(&["a", "b", "c", "e", "d"]);
        let p = 0.5; // strongly top-weighted
        let r_top = rbo_classic(&base, &top_swapped, p, 5).unwrap();
        let r_bottom = rbo_classic(&base, &bottom_swapped, p, 5).unwrap();
        assert!(r_top < r_bottom);
    }

    #[test]
    fn empirical_weights_emphasize_head() {
        let base = list(&["a", "b", "c", "d"]);
        let other = list(&["x", "b", "c", "d"]); // disagrees only at rank 1
        // All weight on rank 1 → score must be 0.
        let m = WeightModel::Empirical { weights: vec![1.0, 0.0, 0.0, 0.0] };
        assert_eq!(rbo_weighted(&base, &other, &m, 4).unwrap(), 0.0);
        // All weight on rank 4 → prefixes of depth 4 overlap 3/4.
        let m = WeightModel::Empirical { weights: vec![0.0, 0.0, 0.0, 1.0] };
        assert!((rbo_weighted(&base, &other, &m, 4).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_rejected() {
        let a = list(&["a"]);
        let m = WeightModel::Empirical { weights: vec![] };
        assert_eq!(rbo_weighted(&a, &a, &m, 1), None);
    }

    #[test]
    fn invalid_p_rejected() {
        let a = list(&["a"]);
        assert_eq!(rbo_classic(&a, &a, 0.0, 1), None);
        assert_eq!(rbo_classic(&a, &a, 1.0, 1), None);
    }

    #[test]
    fn bounded_zero_one() {
        let a = list(&["a", "b", "c", "q", "r"]);
        let b = list(&["c", "x", "a", "y", "z"]);
        let r = rbo_classic(&a, &b, 0.9, 5).unwrap();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn symmetric() {
        let a = list(&["a", "b", "c", "d"]);
        let b = list(&["b", "d", "a", "x"]);
        let r1 = rbo_classic(&a, &b, 0.8, 4).unwrap();
        let r2 = rbo_classic(&b, &a, 0.8, 4).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn uneven_lengths_handled() {
        let a = list(&["a", "b", "c", "d", "e"]);
        let b = list(&["a", "b"]);
        let r = rbo_classic(&a, &b, 0.9, 5).unwrap();
        assert!(r > 0.0 && r < 1.0);
    }
}

/// Webber et al.'s extrapolated RBO (`RBO_EXT`): the point estimate that
/// assumes agreement at unseen depths stays at the deepest observed level.
///
/// `RBO_EXT = (1−p)·Σ_{d=1..k} p^(d−1)·A_d + p^k·A_k`, where `k` is the
/// evaluation depth. Unlike the finite normalized form, this estimates the
/// *infinite-depth* geometric RBO from a `k`-deep prefix. Returns `None` for
/// invalid `p` or zero depth.
pub fn rbo_extrapolated<K: Eq + Hash + Clone>(
    a: &RankedList<K>,
    b: &RankedList<K>,
    p: f64,
    depth: usize,
) -> Option<f64> {
    if !(0.0 < p && p < 1.0) || depth == 0 {
        return None;
    }
    let profile = agreement_profile(a, b, depth);
    let mut acc = 0.0;
    for (i, a_d) in profile.iter().enumerate() {
        acc += p.powi(i as i32) * a_d;
    }
    let a_k = *profile.last().expect("depth >= 1");
    Some((1.0 - p) * acc + p.powi(depth as i32) * a_k)
}

#[cfg(test)]
mod ext_tests {
    use super::*;

    fn list(keys: &[&str]) -> RankedList<String> {
        RankedList::new(keys.iter().map(|s| s.to_string()))
    }

    #[test]
    fn identical_lists_extrapolate_to_one() {
        let a = list(&["a", "b", "c", "d", "e"]);
        let r = rbo_extrapolated(&a, &a, 0.9, 5).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn disjoint_lists_extrapolate_to_zero() {
        let a = list(&["a", "b"]);
        let b = list(&["x", "y"]);
        assert_eq!(rbo_extrapolated(&a, &b, 0.9, 2).unwrap(), 0.0);
    }

    #[test]
    fn bounded_and_close_to_normalized_form() {
        let a = list(&["a", "b", "c", "d", "e", "f"]);
        let b = list(&["b", "a", "c", "x", "e", "y"]);
        let ext = rbo_extrapolated(&a, &b, 0.8, 6).unwrap();
        let norm = rbo_classic(&a, &b, 0.8, 6).unwrap();
        assert!((0.0..=1.0).contains(&ext));
        assert!((ext - norm).abs() < 0.25, "ext {ext} vs normalized {norm}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = list(&["a"]);
        assert!(rbo_extrapolated(&a, &a, 1.0, 1).is_none());
        assert!(rbo_extrapolated(&a, &a, 0.9, 0).is_none());
    }
}
