//! Spearman's rank correlation coefficient with tie handling.

/// Spearman's ρ between paired observations `x` and `y`.
///
/// Values are converted to average ranks (ties receive the mean of the ranks
/// they span), then Pearson correlation is computed on the ranks — the
/// standard tie-corrected definition. Returns `None` when the slices differ
/// in length, have fewer than 2 elements, or either side is constant
/// (correlation undefined).
///
/// ```
/// use wwv_stats::spearman_rho;
/// // Monotone relationship → ρ = 1 regardless of scale.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [10.0, 100.0, 1000.0, 10000.0];
/// assert!((spearman_rho(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman_rho(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Converts values to 1-based average ranks (ties share the mean rank).
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("non-NaN values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Positions i..=j are tied; ranks are 1-based.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation; `None` when undefined (length mismatch, <2 points, or
/// zero variance on either side).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert!((spearman_rho(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [9.0, 5.0, 1.0];
        assert!((spearman_rho(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_still_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman_rho(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_ties_with_average_ranks() {
        let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_tied_is_undefined() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(spearman_rho(&x, &y), None);
    }

    #[test]
    fn length_mismatch_and_short_input() {
        assert_eq!(spearman_rho(&[1.0], &[1.0]), None);
        assert_eq!(spearman_rho(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn known_textbook_value() {
        // Classic example: ranks with one swap.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 3.0, 2.0, 4.0, 5.0];
        // d = [0, -1, 1, 0, 0]; ρ = 1 − 6·2 / (5·24) = 0.9.
        assert!((spearman_rho(&x, &y).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tie_corrected_value_in_range() {
        let x = [1.0, 2.0, 2.0, 3.0, 4.0];
        let y = [2.0, 1.0, 3.0, 3.0, 5.0];
        let rho = spearman_rho(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&rho));
        assert!(rho > 0.0, "roughly increasing data should correlate positively");
    }
}
