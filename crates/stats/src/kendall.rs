//! Kendall's rank correlation (τ-b).
//!
//! The paper reports Spearman's ρ; Kendall's τ is the standard robustness
//! companion (less sensitive to single large displacements). The analysis
//! suite exposes both so list-agreement findings can be checked under
//! either statistic.

/// Kendall's τ-b between paired observations, with tie correction.
///
/// Returns `None` for mismatched lengths, fewer than 2 points, or when
/// either side is entirely tied. O(n²) pair enumeration — fine for the
/// ≤10K-deep lists this workspace compares.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in 0..i {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // Tied in both: contributes to neither.
                continue;
            }
            if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if (dx > 0.0) == (dy > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = concordant + discordant + ties_x;
    let n1 = concordant + discordant + ties_y;
    if n0 == 0 || n1 == 0 {
        return None;
    }
    Some((concordant - discordant) as f64 / ((n0 as f64) * (n1 as f64)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&x, &x).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_known_value() {
        // n=4 with one adjacent swap: 5 concordant, 1 discordant → 4/6.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        assert!((kendall_tau(&x, &y).unwrap() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_handled() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau(&x, &y).unwrap();
        assert!(tau > 0.8 && tau < 1.0, "tau {tau}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(kendall_tau(&[1.0], &[1.0]).is_none());
        assert!(kendall_tau(&[1.0, 2.0], &[1.0]).is_none());
        assert!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn tracks_spearman_direction() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v + ((v * 7.0).sin() * 5.0)).collect();
        let tau = kendall_tau(&x, &y).unwrap();
        let rho = crate::spearman::spearman_rho(&x, &y).unwrap();
        assert!(tau > 0.0 && rho > 0.0);
        assert!(tau <= rho + 0.05, "tau {tau} vs rho {rho}");
    }
}
