//! Zipf / power-law fitting for traffic-model calibration.
//!
//! The paper's Fig. 1 traffic-concentration curves are the empirical
//! counterpart of a heavy-tailed rank–share law. `wwv-world` calibrates its
//! generator against the paper's anchor points; this module provides the
//! log–log least-squares fit used by calibration tests to confirm the
//! generated rank–share relationship is indeed power-law-like.

use serde::{Deserialize, Serialize};

/// A fitted rank–share power law `share(rank) ≈ c · rank^(−s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Exponent `s` (positive for decreasing shares).
    pub exponent: f64,
    /// Scale constant `c`.
    pub scale: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted share at a 1-based rank.
    pub fn predict(&self, rank: usize) -> f64 {
        self.scale * (rank as f64).powf(-self.exponent)
    }
}

/// Fits `share ≈ c · rank^(−s)` by least squares in log–log space over
/// 1-based ranks. Zero or negative shares are skipped (they have no
/// logarithm). Returns `None` with fewer than 2 usable points.
pub fn fit_power_law(shares: &[f64]) -> Option<PowerLawFit> {
    let points: Vec<(f64, f64)> = shares
        .iter()
        .enumerate()
        .filter(|(_, s)| **s > 0.0)
        .map(|(i, s)| (((i + 1) as f64).ln(), s.ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in &points {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy > 0.0 { (sxy * sxy) / (sxx * syy) } else { 1.0 };
    Some(PowerLawFit { exponent: -slope, scale: intercept.exp(), r_squared })
}

/// Generates `n` normalized Zipf–Mandelbrot shares
/// `w_r ∝ 1 / (r + q)^s`, rank 1 first.
///
/// The shift `q ≥ 0` flattens the head: `q = 0` is pure Zipf. Returns an
/// empty vector for `n == 0`.
pub fn zipf_mandelbrot_shares(n: usize, s: f64, q: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64 + q).powf(s)).collect();
    let total: f64 = w.iter().sum();
    if total > 0.0 {
        for v in &mut w {
            *v /= total;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_power_law() {
        let shares: Vec<f64> = (1..=100).map(|r| 2.0 * (r as f64).powf(-1.3)).collect();
        let fit = fit_power_law(&shares).unwrap();
        assert!((fit.exponent - 1.3).abs() < 1e-9);
        assert!((fit.scale - 2.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn predict_inverts_fit() {
        let shares: Vec<f64> = (1..=50).map(|r| (r as f64).powf(-0.8)).collect();
        let fit = fit_power_law(&shares).unwrap();
        assert!((fit.predict(10) - shares[9]).abs() < 1e-9);
    }

    #[test]
    fn skips_zero_shares() {
        let shares = [1.0, 0.0, 1.0 / 9.0];
        // ranks 1 and 3 define share = rank^-2 exactly.
        let fit = fit_power_law(&shares).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_power_law(&[1.0]).is_none());
        assert!(fit_power_law(&[0.0, 0.0, 1.0]).is_none());
        assert!(fit_power_law(&[]).is_none());
    }

    #[test]
    fn zipf_shares_normalized_and_decreasing() {
        let w = zipf_mandelbrot_shares(1000, 1.1, 2.0);
        assert_eq!(w.len(), 1000);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn mandelbrot_shift_flattens_head() {
        let pure = zipf_mandelbrot_shares(100, 1.2, 0.0);
        let shifted = zipf_mandelbrot_shares(100, 1.2, 5.0);
        // The shifted head captures a smaller fraction.
        assert!(shifted[0] < pure[0]);
    }

    #[test]
    fn zipf_fit_roundtrip() {
        // A pure Zipf sample should be recovered with the right exponent.
        let w = zipf_mandelbrot_shares(500, 0.9, 0.0);
        let fit = fit_power_law(&w).unwrap();
        assert!((fit.exponent - 0.9).abs() < 1e-6);
    }

    #[test]
    fn empty_n_is_empty() {
        assert!(zipf_mandelbrot_shares(0, 1.0, 0.0).is_empty());
    }
}
