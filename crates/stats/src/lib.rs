//! # wwv-stats
//!
//! Statistics substrate for the `wwv` workspace: every statistical method the
//! IMC'22 paper uses, implemented from scratch.
//!
//! * [`descriptive`] — means, weighted sums, normalization.
//! * [`quantile`] — linear-interpolation quantiles, medians, IQR summaries.
//! * [`ranking`] — ranked lists, percent intersection, rank maps.
//! * [`spearman`] — Spearman's rank correlation with tie handling (§4.4, §4.5).
//! * [`rbo`] — rank-biased overlap, classic and traffic-weighted (§5.3.1).
//! * [`proportion`] — two-proportion tests with Bonferroni correction (§4.3).
//! * [`affinity`] — affinity propagation clustering (§5.3.1, Fig. 11).
//! * [`silhouette`] — silhouette coefficients (Fig. 21).
//! * [`outlier`] — IQR/MAD outlier detection (§5.1, global-vs-national split).
//! * [`powerlaw`] — Zipf/power-law fitting for traffic-model calibration.
//! * [`matrix`] — dense symmetric matrices for similarity/distance data.

pub mod affinity;
pub mod interp;
pub mod kendall;
pub mod descriptive;
pub mod matrix;
pub mod outlier;
pub mod powerlaw;
pub mod proportion;
pub mod quantile;
pub mod ranking;
pub mod rbo;
pub mod silhouette;
pub mod spearman;

pub use affinity::{AffinityParams, AffinityPropagation, Clustering};
pub use interp::MonotoneCubic;
pub use kendall::kendall_tau;
pub use matrix::SymmetricMatrix;
pub use outlier::{mad_outliers, tukey_outliers, OutlierVerdict};
pub use proportion::{bonferroni_threshold, two_proportion_test, ProportionTest};
pub use quantile::{iqr, median, quantile, QuantileSummary};
pub use ranking::RankedList;
pub use rbo::{rbo_classic, rbo_weighted, WeightModel};
pub use silhouette::{silhouette_samples, silhouette_score, ClusterSilhouette};
pub use spearman::spearman_rho;
