//! Quantiles, medians, and interquartile summaries.
//!
//! The paper reports most cross-country statistics as "median and 25–75%
//! quartiles among the 45 countries"; [`QuantileSummary`] is that triple.

use serde::{Deserialize, Serialize};

/// Linear-interpolation quantile (the "R-7" / NumPy `linear` definition).
///
/// `q` must lie in `[0, 1]`. Returns `None` for an empty slice or an
/// out-of-range `q`. The input need not be sorted.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    Some(quantile_sorted(&sorted, q).expect("bounds checked"))
}

/// Like [`quantile`] but assumes `sorted` is already ascending, avoiding the
/// O(n log n) sort for repeated queries.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median; `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Interquartile range (Q3 − Q1); `None` for an empty slice.
pub fn iqr(values: &[f64]) -> Option<f64> {
    Some(quantile(values, 0.75)? - quantile(values, 0.25)?)
}

/// Median plus 25th/75th percentiles — the paper's standard cross-country
/// summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    /// 25th percentile.
    pub q25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
}

impl QuantileSummary {
    /// Computes the summary; `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = values.to_vec();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
        Some(QuantileSummary {
            q25: quantile_sorted(&sorted, 0.25)?,
            median: quantile_sorted(&sorted, 0.5)?,
            q75: quantile_sorted(&sorted, 0.75)?,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q75 - self.q25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(3.0));
        assert_eq!(quantile(&v, 0.5), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        // pos = 0.5 * 3 = 1.5 → halfway between 2 and 3.
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        // pos = 0.25 * 3 = 0.75.
        assert!((quantile(&v, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_input() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
    }

    #[test]
    fn single_value() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[1.0, 3.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn iqr_basic() {
        let v: Vec<f64> = (1..=5).map(|x| x as f64).collect();
        assert_eq!(iqr(&v), Some(2.0));
    }

    #[test]
    fn summary_matches_parts() {
        let v: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let s = QuantileSummary::of(&v).unwrap();
        assert_eq!(s.median, median(&v).unwrap());
        assert!((s.iqr() - iqr(&v).unwrap()).abs() < 1e-12);
        assert!(s.q25 <= s.median && s.median <= s.q75);
    }
}
