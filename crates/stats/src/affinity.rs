//! Affinity propagation clustering (Frey & Dueck 2007).
//!
//! The paper clusters countries by browsing similarity with affinity
//! propagation because it does not require choosing the number of clusters
//! and accepts an arbitrary similarity matrix (§5.3.1). This implementation
//! uses the standard responsibility/availability message-passing updates with
//! damping, the median-similarity preference default, and convergence
//! detection on a stable exemplar set.

use crate::matrix::SymmetricMatrix;
use crate::quantile::median;
use serde::{Deserialize, Serialize};

/// Tuning parameters for affinity propagation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AffinityParams {
    /// Damping factor λ ∈ [0.5, 1). Messages update as
    /// `λ·old + (1−λ)·new`; higher values converge more slowly but avoid
    /// oscillation.
    pub damping: f64,
    /// Hard iteration cap.
    pub max_iter: usize,
    /// Number of consecutive iterations the exemplar set must stay unchanged
    /// to declare convergence.
    pub convergence_iter: usize,
    /// Self-similarity (preference) for every point; `None` uses the median
    /// of the off-diagonal similarities (the standard default, yielding a
    /// moderate number of clusters).
    pub preference: Option<f64>,
}

impl Default for AffinityParams {
    fn default() -> Self {
        AffinityParams { damping: 0.7, max_iter: 1000, convergence_iter: 20, preference: None }
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// `labels[i]` is the cluster index of point `i` (0-based, contiguous).
    pub labels: Vec<usize>,
    /// Indices of the exemplar point of each cluster.
    pub exemplars: Vec<usize>,
    /// Whether the run converged before `max_iter`.
    pub converged: bool,
    /// Iterations executed.
    pub iterations: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.exemplars.len()
    }

    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels.iter().enumerate().filter(|(_, l)| **l == c).map(|(i, _)| i).collect()
    }
}

/// Affinity propagation over a symmetric similarity matrix.
#[derive(Debug, Clone)]
pub struct AffinityPropagation {
    params: AffinityParams,
}

impl AffinityPropagation {
    /// Creates a runner with the given parameters.
    pub fn new(params: AffinityParams) -> Self {
        AffinityPropagation { params }
    }

    /// Clusters the points of `similarity` (larger = more similar).
    ///
    /// Returns `None` for an empty matrix or invalid damping.
    pub fn fit(&self, similarity: &SymmetricMatrix) -> Option<Clustering> {
        let n = similarity.n();
        if n == 0 || !(0.5..1.0).contains(&self.params.damping) {
            return None;
        }
        if n == 1 {
            return Some(Clustering { labels: vec![0], exemplars: vec![0], converged: true, iterations: 0 });
        }
        let preference = match self.params.preference {
            Some(p) => p,
            None => median(&similarity.off_diagonal()).expect("n >= 2 has off-diagonal cells"),
        };
        // Dense similarity with preference on the diagonal. Exactly symmetric
        // inputs make the message passing oscillate between equivalent
        // configurations (the same degeneracy scikit-learn breaks with random
        // noise), so a deterministic, index-derived jitter far below any real
        // similarity difference is added to off-diagonal cells.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            for j in 0..i {
                let v = similarity.get(i, j);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let range = (hi - lo).max(preference.abs()).max(1e-12);
        let jitter_scale = range * 1e-9;
        let mut s = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                s[i * n + j] = if i == j {
                    preference
                } else {
                    let h = (i.wrapping_mul(2_654_435_761) ^ j.wrapping_mul(40_503)) % 997;
                    similarity.get(i, j) + jitter_scale * (h as f64 / 997.0)
                };
            }
        }
        let lam = self.params.damping;
        let mut r = vec![0.0f64; n * n];
        let mut a = vec![0.0f64; n * n];
        let mut prev_exemplars: Vec<usize> = Vec::new();
        let mut stable = 0usize;
        let mut iterations = 0usize;
        let mut converged = false;

        for it in 1..=self.params.max_iter {
            iterations = it;
            // Responsibilities: r(i,k) = s(i,k) − max_{k'≠k}(a(i,k') + s(i,k')).
            for i in 0..n {
                // Find the largest and second-largest of a + s over k'.
                let mut best = f64::NEG_INFINITY;
                let mut second = f64::NEG_INFINITY;
                let mut best_k = 0usize;
                for k in 0..n {
                    let v = a[i * n + k] + s[i * n + k];
                    if v > best {
                        second = best;
                        best = v;
                        best_k = k;
                    } else if v > second {
                        second = v;
                    }
                }
                for k in 0..n {
                    let cap = if k == best_k { second } else { best };
                    let new_r = s[i * n + k] - cap;
                    r[i * n + k] = lam * r[i * n + k] + (1.0 - lam) * new_r;
                }
            }
            // Availabilities.
            for k in 0..n {
                // Sum of positive responsibilities toward k (excluding r(k,k)).
                let mut pos_sum = 0.0;
                for i in 0..n {
                    if i != k {
                        pos_sum += r[i * n + k].max(0.0);
                    }
                }
                for i in 0..n {
                    let new_a = if i == k {
                        pos_sum
                    } else {
                        let without_i = pos_sum - r[i * n + k].max(0.0);
                        (r[k * n + k] + without_i).min(0.0)
                    };
                    a[i * n + k] = lam * a[i * n + k] + (1.0 - lam) * new_a;
                }
            }
            // Current exemplars: points where r(k,k) + a(k,k) > 0.
            let exemplars: Vec<usize> =
                (0..n).filter(|&k| r[k * n + k] + a[k * n + k] > 0.0).collect();
            if !exemplars.is_empty() && exemplars == prev_exemplars {
                stable += 1;
                if stable >= self.params.convergence_iter {
                    converged = true;
                    break;
                }
            } else {
                stable = 0;
                prev_exemplars = exemplars;
            }
        }

        let mut exemplars: Vec<usize> =
            (0..n).filter(|&k| r[k * n + k] + a[k * n + k] > 0.0).collect();
        if exemplars.is_empty() {
            // Degenerate fallback: the point with the best net self-message.
            let best = (0..n)
                .max_by(|&x, &y| {
                    let vx = r[x * n + x] + a[x * n + x];
                    let vy = r[y * n + y] + a[y * n + y];
                    vx.partial_cmp(&vy).expect("finite messages")
                })
                .expect("n >= 1");
            exemplars = vec![best];
        }
        // Assign every point to its most similar exemplar; exemplars to themselves.
        let mut labels = vec![0usize; n];
        for i in 0..n {
            if let Some(pos) = exemplars.iter().position(|&e| e == i) {
                labels[i] = pos;
                continue;
            }
            let mut best_c = 0usize;
            let mut best_sim = f64::NEG_INFINITY;
            for (c, &e) in exemplars.iter().enumerate() {
                let sim = s[i * n + e];
                if sim > best_sim {
                    best_sim = sim;
                    best_c = c;
                }
            }
            labels[i] = best_c;
        }
        Some(Clustering { labels, exemplars, converged, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a similarity matrix from squared-distance of 1-D points:
    /// s(i,j) = −(x_i − x_j)².
    fn sim_from_points(points: &[f64]) -> SymmetricMatrix {
        SymmetricMatrix::build(points.len(), |i, j| -((points[i] - points[j]).powi(2)))
    }

    #[test]
    fn two_well_separated_blobs() {
        let points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let clustering = AffinityPropagation::new(AffinityParams::default())
            .fit(&sim_from_points(&points))
            .unwrap();
        assert_eq!(clustering.k(), 2, "labels: {:?}", clustering.labels);
        assert!(clustering.converged);
        // First three points together, last three together.
        assert_eq!(clustering.labels[0], clustering.labels[1]);
        assert_eq!(clustering.labels[1], clustering.labels[2]);
        assert_eq!(clustering.labels[3], clustering.labels[4]);
        assert_eq!(clustering.labels[4], clustering.labels[5]);
        assert_ne!(clustering.labels[0], clustering.labels[3]);
    }

    #[test]
    fn three_blobs() {
        let points = [0.0, 0.2, 5.0, 5.2, 10.0, 10.2];
        let clustering = AffinityPropagation::new(AffinityParams::default())
            .fit(&sim_from_points(&points))
            .unwrap();
        assert_eq!(clustering.k(), 3, "labels: {:?}", clustering.labels);
    }

    #[test]
    fn exemplars_belong_to_their_clusters() {
        let points = [0.0, 0.3, 8.0, 8.5, 20.0];
        let clustering = AffinityPropagation::new(AffinityParams::default())
            .fit(&sim_from_points(&points))
            .unwrap();
        for (c, &e) in clustering.exemplars.iter().enumerate() {
            assert_eq!(clustering.labels[e], c, "exemplar must be in its own cluster");
        }
    }

    #[test]
    fn labels_are_contiguous() {
        let points = [0.0, 1.0, 2.0, 50.0, 51.0];
        let clustering = AffinityPropagation::new(AffinityParams::default())
            .fit(&sim_from_points(&points))
            .unwrap();
        let max = *clustering.labels.iter().max().unwrap();
        assert_eq!(max + 1, clustering.k());
    }

    #[test]
    fn single_point() {
        let m = SymmetricMatrix::new(1, 0.0);
        let c = AffinityPropagation::new(AffinityParams::default()).fit(&m).unwrap();
        assert_eq!(c.k(), 1);
        assert_eq!(c.labels, vec![0]);
    }

    #[test]
    fn empty_matrix_rejected() {
        let m = SymmetricMatrix::new(0, 0.0);
        assert!(AffinityPropagation::new(AffinityParams::default()).fit(&m).is_none());
    }

    #[test]
    fn invalid_damping_rejected() {
        let m = SymmetricMatrix::new(2, 0.0);
        let params = AffinityParams { damping: 0.2, ..Default::default() };
        assert!(AffinityPropagation::new(params).fit(&m).is_none());
    }

    #[test]
    fn low_preference_merges_clusters() {
        // With a very low preference, being an exemplar is costly → one cluster.
        let points = [0.0, 1.0, 2.0, 3.0];
        let params = AffinityParams { preference: Some(-1000.0), ..Default::default() };
        let clustering =
            AffinityPropagation::new(params).fit(&sim_from_points(&points)).unwrap();
        assert_eq!(clustering.k(), 1, "labels: {:?}", clustering.labels);
    }

    #[test]
    fn high_preference_splits_clusters() {
        // With preference 0 (= max similarity), every point wants to be its
        // own exemplar.
        let points = [0.0, 5.0, 10.0];
        let params = AffinityParams { preference: Some(0.0), ..Default::default() };
        let clustering =
            AffinityPropagation::new(params).fit(&sim_from_points(&points)).unwrap();
        assert_eq!(clustering.k(), 3);
    }

    #[test]
    fn members_partition_points() {
        let points = [0.0, 0.1, 9.0, 9.1];
        let clustering = AffinityPropagation::new(AffinityParams::default())
            .fit(&sim_from_points(&points))
            .unwrap();
        let total: usize = (0..clustering.k()).map(|c| clustering.members(c).len()).sum();
        assert_eq!(total, points.len());
    }
}
