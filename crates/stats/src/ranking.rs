//! Ranked lists and set-overlap statistics.
//!
//! A [`RankedList`] is an ordered sequence of distinct keys, most popular
//! first — the shape of every per-(country, platform, metric) list in the
//! Chrome dataset. Rank values are **1-based** throughout, matching the
//! paper's convention ("the top ranked website", rank 1).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// An ordered list of distinct keys, rank 1 first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedList<K: Eq + Hash + Clone> {
    items: Vec<K>,
}

impl<K: Eq + Hash + Clone> RankedList<K> {
    /// Builds a list from already-ordered items. Duplicate keys are dropped,
    /// keeping the first (best-ranked) occurrence.
    pub fn new<I: IntoIterator<Item = K>>(items: I) -> Self {
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for item in items {
            if seen.insert(item.clone(), ()).is_none() {
                out.push(item);
            }
        }
        RankedList { items: out }
    }

    /// Builds a list by sorting `(key, score)` pairs descending by score.
    /// Ties break by the keys' own ordering for determinism.
    pub fn from_scores<I: IntoIterator<Item = (K, f64)>>(pairs: I) -> Self
    where
        K: Ord,
    {
        let mut v: Vec<(K, f64)> = pairs.into_iter().collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("non-NaN scores").then_with(|| a.0.cmp(&b.0))
        });
        RankedList::new(v.into_iter().map(|(k, _)| k))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates keys best-first.
    pub fn iter(&self) -> std::slice::Iter<'_, K> {
        self.items.iter()
    }

    /// The key at 1-based `rank`, if present.
    pub fn at_rank(&self, rank: usize) -> Option<&K> {
        if rank == 0 {
            return None;
        }
        self.items.get(rank - 1)
    }

    /// 1-based rank of `key`, if present. O(n); use [`RankedList::rank_map`]
    /// for repeated lookups.
    pub fn rank_of(&self, key: &K) -> Option<usize> {
        self.items.iter().position(|k| k == key).map(|i| i + 1)
    }

    /// A map from key to 1-based rank.
    pub fn rank_map(&self) -> HashMap<K, usize> {
        self.items.iter().cloned().enumerate().map(|(i, k)| (k, i + 1)).collect()
    }

    /// A new list containing only the first `n` entries.
    pub fn truncate(&self, n: usize) -> RankedList<K> {
        RankedList { items: self.items.iter().take(n).cloned().collect() }
    }

    /// The underlying slice, best-first.
    pub fn as_slice(&self) -> &[K] {
        &self.items
    }

    /// Fraction of `self`'s top-`depth` keys also present in `other`'s
    /// top-`depth` (symmetric; both lists truncated to `depth`).
    ///
    /// This is the paper's "percent intersection" (§4.4, §4.5, §5.3.3),
    /// expressed in `[0, 1]`. The denominator is the smaller of the two
    /// truncated lengths so short lists are not penalized.
    pub fn percent_intersection(&self, other: &RankedList<K>, depth: usize) -> f64 {
        let a = self.truncate(depth);
        let b = other.truncate(depth);
        let denom = a.len().min(b.len());
        if denom == 0 {
            return 0.0;
        }
        let bset: HashMap<&K, ()> = b.items.iter().map(|k| (k, ())).collect();
        let inter = a.items.iter().filter(|k| bset.contains_key(k)).count();
        inter as f64 / denom as f64
    }

    /// Keys present in both top-`depth` truncations, in `self`'s order.
    pub fn intersection(&self, other: &RankedList<K>, depth: usize) -> Vec<K> {
        let b = other.truncate(depth);
        let bset: HashMap<&K, ()> = b.items.iter().map(|k| (k, ())).collect();
        self.items.iter().take(depth).filter(|k| bset.contains_key(k)).cloned().collect()
    }

    /// Spearman's rank correlation over the keys common to both top-`depth`
    /// truncations, using each key's rank within the truncated lists. This is
    /// the paper's "Spearman within the intersection" (§4.4). Returns `None`
    /// when fewer than two keys are shared.
    pub fn spearman_within_intersection(&self, other: &RankedList<K>, depth: usize) -> Option<f64> {
        let a_ranks = self.truncate(depth).rank_map();
        let b_ranks = other.truncate(depth).rank_map();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (k, &ra) in &a_ranks {
            if let Some(&rb) = b_ranks.get(k) {
                xs.push(ra as f64);
                ys.push(rb as f64);
            }
        }
        crate::spearman::spearman_rho(&xs, &ys)
    }
}

impl<K: Eq + Hash + Clone> FromIterator<K> for RankedList<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        RankedList::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(keys: &[&str]) -> RankedList<String> {
        RankedList::new(keys.iter().map(|s| s.to_string()))
    }

    #[test]
    fn dedup_keeps_first() {
        let l = list(&["a", "b", "a", "c"]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.rank_of(&"a".to_string()), Some(1));
    }

    #[test]
    fn from_scores_orders_descending() {
        let l = RankedList::from_scores([("a".to_string(), 1.0), ("b".to_string(), 5.0), ("c".to_string(), 3.0)]);
        assert_eq!(l.as_slice(), &["b".to_string(), "c".to_string(), "a".to_string()]);
    }

    #[test]
    fn from_scores_ties_break_by_key() {
        let l = RankedList::from_scores([("b".to_string(), 1.0), ("a".to_string(), 1.0)]);
        assert_eq!(l.at_rank(1).unwrap(), "a");
    }

    #[test]
    fn ranks_are_one_based() {
        let l = list(&["x", "y"]);
        assert_eq!(l.at_rank(0), None);
        assert_eq!(l.at_rank(1).unwrap(), "x");
        assert_eq!(l.rank_of(&"y".to_string()), Some(2));
        assert_eq!(l.rank_map()[&"y".to_string()], 2);
    }

    #[test]
    fn percent_intersection_identical() {
        let l = list(&["a", "b", "c"]);
        assert_eq!(l.percent_intersection(&l, 3), 1.0);
        assert_eq!(l.percent_intersection(&l, 10), 1.0);
    }

    #[test]
    fn percent_intersection_disjoint() {
        let a = list(&["a", "b"]);
        let b = list(&["c", "d"]);
        assert_eq!(a.percent_intersection(&b, 2), 0.0);
    }

    #[test]
    fn percent_intersection_partial_and_symmetric() {
        let a = list(&["a", "b", "c", "d"]);
        let b = list(&["c", "d", "e", "f"]);
        assert_eq!(a.percent_intersection(&b, 4), 0.5);
        assert_eq!(b.percent_intersection(&a, 4), 0.5);
        // Depth 2: {a,b} vs {c,d} are disjoint.
        assert_eq!(a.percent_intersection(&b, 2), 0.0);
    }

    #[test]
    fn percent_intersection_empty_lists() {
        let a = list(&[]);
        let b = list(&["x"]);
        assert_eq!(a.percent_intersection(&b, 5), 0.0);
    }

    #[test]
    fn spearman_within_intersection_perfect() {
        let a = list(&["a", "b", "c", "d"]);
        let rho = a.spearman_within_intersection(&a, 4).unwrap();
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_within_intersection_reversed() {
        let a = list(&["a", "b", "c", "d"]);
        let b = list(&["d", "c", "b", "a"]);
        let rho = a.spearman_within_intersection(&b, 4).unwrap();
        assert!((rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_needs_two_shared() {
        let a = list(&["a", "b"]);
        let b = list(&["a", "z"]);
        assert!(a.spearman_within_intersection(&b, 2).is_none());
    }

    #[test]
    fn truncate_shortens() {
        let l = list(&["a", "b", "c"]);
        assert_eq!(l.truncate(2).len(), 2);
        assert_eq!(l.truncate(9).len(), 3);
    }
}
