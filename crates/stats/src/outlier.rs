//! Outlier detection (§5.1).
//!
//! The paper labels a site "globally popular" when its distance from the
//! theoretical maximum endemicity is an *outlier* relative to the other
//! sites. We provide the two standard robust detectors: Tukey's fences
//! (IQR-based) and the MAD rule.

use crate::quantile::{median, QuantileSummary};
use serde::{Deserialize, Serialize};

/// Classification of a single value relative to the bulk of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutlierVerdict {
    /// Below the lower fence.
    Low,
    /// Within the fences.
    Inlier,
    /// Above the upper fence.
    High,
}

/// Tukey's fences: values outside `[Q1 − k·IQR, Q3 + k·IQR]` are outliers.
/// The conventional `k` is 1.5. Returns one verdict per input value; `None`
/// for an empty slice.
pub fn tukey_outliers(values: &[f64], k: f64) -> Option<Vec<OutlierVerdict>> {
    let s = QuantileSummary::of(values)?;
    let iqr = s.iqr();
    let lo = s.q25 - k * iqr;
    let hi = s.q75 + k * iqr;
    Some(
        values
            .iter()
            .map(|&v| {
                if v < lo {
                    OutlierVerdict::Low
                } else if v > hi {
                    OutlierVerdict::High
                } else {
                    OutlierVerdict::Inlier
                }
            })
            .collect(),
    )
}

/// MAD rule: values whose modified z-score
/// `0.6745 · |x − median| / MAD` exceeds `threshold` (conventionally 3.5)
/// are outliers. Falls back to [`tukey_outliers`] when MAD is zero (more
/// than half the values identical). `None` for an empty slice.
pub fn mad_outliers(values: &[f64], threshold: f64) -> Option<Vec<OutlierVerdict>> {
    let med = median(values)?;
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    let mad = median(&deviations)?;
    if mad <= 0.0 {
        return tukey_outliers(values, 1.5);
    }
    Some(
        values
            .iter()
            .map(|&v| {
                let z = 0.6745 * (v - med) / mad;
                if z < -threshold {
                    OutlierVerdict::Low
                } else if z > threshold {
                    OutlierVerdict::High
                } else {
                    OutlierVerdict::Inlier
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tukey_flags_extremes() {
        let mut values: Vec<f64> = (0..20).map(|x| x as f64).collect();
        values.push(1000.0);
        let verdicts = tukey_outliers(&values, 1.5).unwrap();
        assert_eq!(verdicts[20], OutlierVerdict::High);
        assert!(verdicts[..20].iter().all(|v| *v == OutlierVerdict::Inlier));
    }

    #[test]
    fn tukey_flags_low() {
        let mut values: Vec<f64> = (100..120).map(|x| x as f64).collect();
        values.push(-500.0);
        let verdicts = tukey_outliers(&values, 1.5).unwrap();
        assert_eq!(verdicts[20], OutlierVerdict::Low);
    }

    #[test]
    fn mad_flags_extremes() {
        let mut values: Vec<f64> = (0..20).map(|x| x as f64).collect();
        values.push(1000.0);
        let verdicts = mad_outliers(&values, 3.5).unwrap();
        assert_eq!(verdicts[20], OutlierVerdict::High);
    }

    #[test]
    fn mad_zero_falls_back_to_tukey() {
        // >50% identical values → MAD = 0.
        let values = [5.0, 5.0, 5.0, 5.0, 5.0, 100.0];
        let verdicts = mad_outliers(&values, 3.5).unwrap();
        assert_eq!(verdicts[5], OutlierVerdict::High);
        assert_eq!(verdicts[0], OutlierVerdict::Inlier);
    }

    #[test]
    fn empty_rejected() {
        assert!(tukey_outliers(&[], 1.5).is_none());
        assert!(mad_outliers(&[], 3.5).is_none());
    }

    #[test]
    fn uniform_data_has_no_outliers() {
        let values = vec![3.0; 10];
        let verdicts = tukey_outliers(&values, 1.5).unwrap();
        assert!(verdicts.iter().all(|v| *v == OutlierVerdict::Inlier));
    }

    #[test]
    fn larger_k_is_more_permissive() {
        let mut values: Vec<f64> = (0..10).map(|x| x as f64).collect();
        values.push(16.0);
        let tight = tukey_outliers(&values, 0.5).unwrap();
        let loose = tukey_outliers(&values, 3.0).unwrap();
        assert_eq!(tight[10], OutlierVerdict::High);
        assert_eq!(loose[10], OutlierVerdict::Inlier);
    }
}
