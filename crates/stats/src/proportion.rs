//! Proportion tests and multiple-comparison correction (§4.3).
//!
//! The paper compares traffic volume per category across platforms with a
//! binomial proportion test at `p = 0.05` under a Bonferroni correction. We
//! provide both the pooled two-proportion z-test (used for the large counts
//! typical of traffic data) and the exact Fisher test (for small counts),
//! built on an ln-Γ implementation so factorials never overflow.

use serde::{Deserialize, Serialize};

/// Result of a two-proportion comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionTest {
    /// Sample proportion of group A.
    pub p_a: f64,
    /// Sample proportion of group B.
    pub p_b: f64,
    /// Test statistic (z for the normal-approximation test; `NaN` for the
    /// exact test, which has no statistic).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl ProportionTest {
    /// Whether the difference is significant at family-wise level `alpha`
    /// over `m` comparisons (Bonferroni).
    pub fn significant(&self, alpha: f64, m: usize) -> bool {
        self.p_value < bonferroni_threshold(alpha, m)
    }
}

/// Per-comparison significance threshold under Bonferroni correction:
/// `alpha / m`. `m == 0` is treated as a single comparison.
pub fn bonferroni_threshold(alpha: f64, m: usize) -> f64 {
    alpha / m.max(1) as f64
}

/// Pooled two-proportion z-test (two-sided).
///
/// Tests H0: the success probability is equal in both groups, given
/// `k_a` successes out of `n_a` trials vs `k_b` out of `n_b`. Returns `None`
/// when either trial count is zero or the pooled proportion is degenerate
/// (all successes or all failures — no variance to test against).
pub fn two_proportion_test(k_a: u64, n_a: u64, k_b: u64, n_b: u64) -> Option<ProportionTest> {
    if n_a == 0 || n_b == 0 || k_a > n_a || k_b > n_b {
        return None;
    }
    let p_a = k_a as f64 / n_a as f64;
    let p_b = k_b as f64 / n_b as f64;
    let pooled = (k_a + k_b) as f64 / (n_a + n_b) as f64;
    let var = pooled * (1.0 - pooled) * (1.0 / n_a as f64 + 1.0 / n_b as f64);
    if var <= 0.0 {
        return None;
    }
    let z = (p_a - p_b) / var.sqrt();
    let p_value = 2.0 * normal_sf(z.abs());
    Some(ProportionTest { p_a, p_b, statistic: z, p_value: p_value.min(1.0) })
}

/// Two-sided Fisher exact test on the 2×2 table
/// `[[k_a, n_a-k_a], [k_b, n_b-k_b]]`.
///
/// The two-sided p-value sums the probabilities of all tables (with the same
/// margins) no more likely than the observed one — the "sum of small p"
/// convention used by R's `fisher.test`.
pub fn fisher_exact(k_a: u64, n_a: u64, k_b: u64, n_b: u64) -> Option<ProportionTest> {
    if n_a == 0 || n_b == 0 || k_a > n_a || k_b > n_b {
        return None;
    }
    let successes = k_a + k_b;
    let total = n_a + n_b;
    let observed = hypergeom_ln_pmf(k_a, n_a, successes, total);
    let lo = successes.saturating_sub(n_b);
    let hi = successes.min(n_a);
    let mut p_value = 0.0;
    for k in lo..=hi {
        let lp = hypergeom_ln_pmf(k, n_a, successes, total);
        // Tolerance guards against ln-Γ rounding flipping equal-probability
        // tables in or out of the tail.
        if lp <= observed + 1e-9 {
            p_value += lp.exp();
        }
    }
    Some(ProportionTest {
        p_a: k_a as f64 / n_a as f64,
        p_b: k_b as f64 / n_b as f64,
        statistic: f64::NAN,
        p_value: p_value.min(1.0),
    })
}

/// ln P[X = k] for X ~ Hypergeometric(total, successes, draws=n_a):
/// drawing `n_a` items from `total` of which `successes` are marked.
fn hypergeom_ln_pmf(k: u64, n_a: u64, successes: u64, total: u64) -> f64 {
    ln_choose(successes, k) + ln_choose(total - successes, n_a - k) - ln_choose(total, n_a)
}

/// ln C(n, k); `-inf` when k > n.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
/// Accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Standard normal survival function P[Z > z], via the complementary error
/// function (Abramowitz & Stegun 7.1.26, |ε| < 1.5e-7).
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let val = poly * (-x_abs * x_abs).exp();
    if sign_neg {
        2.0 - val
    } else {
        val
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..15 {
            let fact: f64 = (1..=n).map(|i| i as f64).product();
            assert!((ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn normal_sf_known_points() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.959_964) - 0.025).abs() < 1e-4);
        assert!((normal_sf(-1.0) - 0.841_344_7).abs() < 1e-4);
    }

    #[test]
    fn z_test_equal_proportions_not_significant() {
        let t = two_proportion_test(50, 100, 500, 1000).unwrap();
        assert!(t.statistic.abs() < 1e-9);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn z_test_detects_large_difference() {
        let t = two_proportion_test(900, 1000, 100, 1000).unwrap();
        assert!(t.p_value < 1e-10);
        assert!(t.statistic > 0.0, "A dominates so z must be positive");
    }

    #[test]
    fn z_test_rejects_degenerate_input() {
        assert!(two_proportion_test(0, 0, 1, 10).is_none());
        assert!(two_proportion_test(5, 3, 1, 10).is_none());
        assert!(two_proportion_test(10, 10, 5, 5).is_none(), "pooled p = 1 has no variance");
    }

    #[test]
    fn fisher_matches_textbook_example() {
        // Lady tasting tea: table [[3,1],[1,3]]; two-sided p ≈ 0.4857.
        let t = fisher_exact(3, 4, 1, 4).unwrap();
        assert!((t.p_value - 0.485_714_28).abs() < 1e-6, "got {}", t.p_value);
    }

    #[test]
    fn fisher_extreme_table() {
        // [[10, 0], [0, 10]]: p = 2 / C(20,10) ≈ 1.08e-5.
        let t = fisher_exact(10, 10, 0, 10).unwrap();
        assert!((t.p_value - 2.0 / 184_756.0).abs() < 1e-9);
    }

    #[test]
    fn fisher_agrees_with_z_on_large_counts() {
        let f = fisher_exact(300, 1000, 200, 1000).unwrap();
        let z = two_proportion_test(300, 1000, 200, 1000).unwrap();
        // Both strongly significant and within an order of magnitude.
        assert!(f.p_value < 1e-5);
        assert!(z.p_value < 1e-5);
    }

    #[test]
    fn bonferroni_scales_threshold() {
        assert_eq!(bonferroni_threshold(0.05, 1), 0.05);
        assert_eq!(bonferroni_threshold(0.05, 10), 0.005);
        assert_eq!(bonferroni_threshold(0.05, 0), 0.05);
    }

    #[test]
    fn significance_respects_bonferroni() {
        let t = two_proportion_test(60, 100, 40, 100).unwrap();
        // p ≈ 0.0047: significant alone, not after correcting for 50 tests.
        assert!(t.significant(0.05, 1));
        assert!(!t.significant(0.05, 50));
    }
}
