//! Silhouette coefficients for cluster validation (Rousseeuw 1987).
//!
//! Given cluster labels and pairwise distances, the silhouette of sample `i`
//! is `(b_i − a_i) / max(a_i, b_i)` where `a_i` is the mean distance to the
//! other members of its own cluster and `b_i` the mean distance to the
//! nearest other cluster. Samples in singleton clusters score 0 by
//! convention. The paper uses the average coefficient to quantify how
//! well-separated its country clusters are (§5.3.1, Fig. 21).

use crate::matrix::SymmetricMatrix;
use serde::{Deserialize, Serialize};

/// Per-cluster silhouette summary (one row of the paper's Fig. 21).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSilhouette {
    /// Cluster index.
    pub cluster: usize,
    /// Member sample indices sorted by descending silhouette (plot order).
    pub members: Vec<usize>,
    /// Silhouette values aligned with `members`.
    pub values: Vec<f64>,
    /// Mean silhouette of the cluster.
    pub mean: f64,
}

/// Per-sample silhouette coefficients.
///
/// Returns `None` when `labels` and the distance matrix disagree in size,
/// or there are fewer than 2 clusters (silhouette undefined).
pub fn silhouette_samples(distances: &SymmetricMatrix, labels: &[usize]) -> Option<Vec<f64>> {
    let n = distances.n();
    if labels.len() != n || n == 0 {
        return None;
    }
    let k = labels.iter().max().map(|m| m + 1)?;
    if k < 2 {
        return None;
    }
    let mut cluster_size = vec![0usize; k];
    for &l in labels {
        cluster_size[l] += 1;
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let own = labels[i];
        if cluster_size[own] <= 1 {
            out.push(0.0);
            continue;
        }
        // Mean distance to every cluster.
        let mut sum = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sum[labels[j]] += distances.get(i, j);
        }
        let a = sum[own] / (cluster_size[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && cluster_size[c] > 0)
            .map(|c| sum[c] / cluster_size[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            out.push(0.0);
            continue;
        }
        let denom = a.max(b);
        out.push(if denom > 0.0 { (b - a) / denom } else { 0.0 });
    }
    Some(out)
}

/// Mean silhouette over all samples.
pub fn silhouette_score(distances: &SymmetricMatrix, labels: &[usize]) -> Option<f64> {
    let vals = silhouette_samples(distances, labels)?;
    Some(vals.iter().sum::<f64>() / vals.len() as f64)
}

/// Groups per-sample silhouettes by cluster, ordering members by descending
/// value — the layout of a silhouette plot.
pub fn silhouette_by_cluster(
    distances: &SymmetricMatrix,
    labels: &[usize],
) -> Option<Vec<ClusterSilhouette>> {
    let vals = silhouette_samples(distances, labels)?;
    let k = labels.iter().max().map(|m| m + 1)?;
    let mut out = Vec::with_capacity(k);
    for c in 0..k {
        let mut members: Vec<usize> =
            labels.iter().enumerate().filter(|(_, l)| **l == c).map(|(i, _)| i).collect();
        members.sort_by(|&x, &y| vals[y].partial_cmp(&vals[x]).expect("finite silhouettes"));
        let values: Vec<f64> = members.iter().map(|&i| vals[i]).collect();
        let mean = if values.is_empty() { 0.0 } else { values.iter().sum::<f64>() / values.len() as f64 };
        out.push(ClusterSilhouette { cluster: c, members, values, mean });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_from_points(points: &[f64]) -> SymmetricMatrix {
        SymmetricMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let labels = [0, 0, 0, 1, 1, 1];
        let s = silhouette_score(&dist_from_points(&points), &labels).unwrap();
        assert!(s > 0.9, "got {s}");
    }

    #[test]
    fn shuffled_labels_score_low() {
        let points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let labels = [0, 1, 0, 1, 0, 1];
        let s = silhouette_score(&dist_from_points(&points), &labels).unwrap();
        assert!(s < 0.0, "mismatched labels must score negative, got {s}");
    }

    #[test]
    fn values_bounded() {
        let points = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let labels = [0, 0, 1, 1, 0, 1];
        for v in silhouette_samples(&dist_from_points(&points), &labels).unwrap() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn singleton_cluster_scores_zero() {
        let points = [0.0, 0.1, 10.0];
        let labels = [0, 0, 1];
        let vals = silhouette_samples(&dist_from_points(&points), &labels).unwrap();
        assert_eq!(vals[2], 0.0);
        assert!(vals[0] > 0.0);
    }

    #[test]
    fn single_cluster_undefined() {
        let points = [0.0, 1.0];
        let labels = [0, 0];
        assert!(silhouette_score(&dist_from_points(&points), &labels).is_none());
    }

    #[test]
    fn length_mismatch_rejected() {
        let d = SymmetricMatrix::new(3, 1.0);
        assert!(silhouette_samples(&d, &[0, 1]).is_none());
    }

    #[test]
    fn by_cluster_orders_descending() {
        let points = [0.0, 0.5, 0.1, 9.0, 9.5];
        let labels = [0, 0, 0, 1, 1];
        let groups = silhouette_by_cluster(&dist_from_points(&points), &labels).unwrap();
        assert_eq!(groups.len(), 2);
        for g in &groups {
            for w in g.values.windows(2) {
                assert!(w[0] >= w[1], "values must be sorted descending");
            }
            assert_eq!(g.members.len(), g.values.len());
        }
    }

    #[test]
    fn score_is_mean_of_samples() {
        let points = [0.0, 1.0, 5.0, 6.0];
        let labels = [0, 0, 1, 1];
        let d = dist_from_points(&points);
        let samples = silhouette_samples(&d, &labels).unwrap();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((silhouette_score(&d, &labels).unwrap() - mean).abs() < 1e-12);
    }
}
