//! Dense symmetric matrices for pairwise similarity/distance data.

use serde::{Deserialize, Serialize};

/// A dense symmetric `n × n` matrix storing the lower triangle plus diagonal.
///
/// Used for country-pair similarity (RBO) and distance matrices. Writes to
/// `(i, j)` and `(j, i)` are the same cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymmetricMatrix {
    n: usize,
    /// Row-major lower triangle: index(i ≥ j) = i(i+1)/2 + j.
    data: Vec<f64>,
}

impl SymmetricMatrix {
    /// Creates an `n × n` matrix filled with `fill`.
    pub fn new(n: usize, fill: f64) -> Self {
        SymmetricMatrix { n, data: vec![fill; n * (n + 1) / 2] }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    fn index(&self, i: usize, j: usize) -> usize {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        assert!(hi < self.n, "index ({i}, {j}) out of bounds for n = {}", self.n);
        hi * (hi + 1) / 2 + lo
    }

    /// Reads cell `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)]
    }

    /// Writes cell `(i, j)` (and implicitly `(j, i)`).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.index(i, j);
        self.data[idx] = value;
    }

    /// All strictly-off-diagonal values (each unordered pair once).
    pub fn off_diagonal(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n * self.n.saturating_sub(1) / 2);
        for i in 0..self.n {
            for j in 0..i {
                out.push(self.get(i, j));
            }
        }
        out
    }

    /// Builds a matrix by evaluating `f(i, j)` for every pair `i ≥ j`.
    pub fn build<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = SymmetricMatrix::new(n, 0.0);
        for i in 0..n {
            for j in 0..=i {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Elementwise map into a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Self {
        SymmetricMatrix { n: self.n, data: self.data.iter().map(|v| f(*v)).collect() }
    }

    /// Full row `i` as a vector of length `n` (including the diagonal).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.n).map(|j| self.get(i, j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_reads_and_writes() {
        let mut m = SymmetricMatrix::new(3, 0.0);
        m.set(0, 2, 5.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(0, 2), 5.0);
    }

    #[test]
    fn diagonal_independent() {
        let mut m = SymmetricMatrix::new(2, 1.0);
        m.set(0, 0, 7.0);
        assert_eq!(m.get(0, 0), 7.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn off_diagonal_counts_pairs_once() {
        let m = SymmetricMatrix::build(4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.off_diagonal().len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = SymmetricMatrix::new(2, 0.0);
        m.get(2, 0);
    }

    #[test]
    fn build_and_row() {
        let m = SymmetricMatrix::build(3, |i, j| (i + j) as f64);
        assert_eq!(m.row(1), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_preserves_shape() {
        let m = SymmetricMatrix::build(3, |i, j| (i + j) as f64);
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.get(2, 1), 6.0);
        assert_eq!(doubled.n(), 3);
    }
}
