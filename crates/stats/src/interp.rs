//! Monotone cubic interpolation (Fritsch–Carlson / PCHIP).
//!
//! `wwv-world` calibrates its traffic-concentration curves by interpolating
//! the paper's cumulative-share anchor points (Fig. 1) monotonically in
//! log-rank space; a non-monotone interpolant would produce negative traffic
//! shares, so plain cubic splines are not an option.

use serde::{Deserialize, Serialize};

/// A monotone piecewise-cubic Hermite interpolant through `(x, y)` knots.
///
/// If the knot `y` values are non-decreasing, every interpolated value is
/// non-decreasing too (Fritsch–Carlson tangent limiting). Queries outside the
/// knot range clamp to the end values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Tangent (dy/dx) at each knot.
    tangents: Vec<f64>,
}

impl MonotoneCubic {
    /// Builds the interpolant. Requires at least 2 knots with strictly
    /// increasing `x`; returns `None` otherwise.
    pub fn new(points: &[(f64, f64)]) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        for pair in points.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return None;
            }
        }
        let n = points.len();
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        // Secant slopes.
        let d: Vec<f64> =
            (0..n - 1).map(|i| (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i])).collect();
        // Initial tangents: average of adjacent secants (one-sided at ends).
        let mut m = vec![0.0; n];
        m[0] = d[0];
        m[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            m[i] = if d[i - 1] * d[i] <= 0.0 { 0.0 } else { (d[i - 1] + d[i]) / 2.0 };
        }
        // Fritsch–Carlson limiting to preserve monotonicity.
        for i in 0..n - 1 {
            if d[i] == 0.0 {
                m[i] = 0.0;
                m[i + 1] = 0.0;
                continue;
            }
            let a = m[i] / d[i];
            let b = m[i + 1] / d[i];
            let s = a * a + b * b;
            if s > 9.0 {
                let tau = 3.0 / s.sqrt();
                m[i] = tau * a * d[i];
                m[i + 1] = tau * b * d[i];
            }
        }
        Some(MonotoneCubic { xs, ys, tangents: m })
    }

    /// Evaluates the interpolant at `x` (clamped to the knot range).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the containing interval.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let h = self.xs[hi] - self.xs[lo];
        let t = (x - self.xs[lo]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[lo]
            + h10 * h * self.tangents[lo]
            + h01 * self.ys[hi]
            + h11 * h * self.tangents[hi]
    }

    /// The knot x-range.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("at least 2 knots"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_knots() {
        let pts = [(0.0, 1.0), (1.0, 4.0), (3.0, 9.0)];
        let c = MonotoneCubic::new(&pts).unwrap();
        for (x, y) in pts {
            assert!((c.eval(x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_between_monotone_knots() {
        let pts = [(0.0, 0.0), (1.0, 0.17), (2.0, 0.25), (4.0, 0.70), (6.0, 0.95)];
        let c = MonotoneCubic::new(&pts).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=600 {
            let x = i as f64 * 0.01;
            let y = c.eval(x);
            assert!(y >= prev - 1e-12, "non-monotone at x = {x}");
            prev = y;
        }
    }

    #[test]
    fn clamps_outside_domain() {
        let c = MonotoneCubic::new(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert_eq!(c.eval(-5.0), 1.0);
        assert_eq!(c.eval(9.0), 2.0);
    }

    #[test]
    fn flat_segments_stay_flat() {
        let c = MonotoneCubic::new(&[(0.0, 1.0), (1.0, 1.0), (2.0, 3.0)]).unwrap();
        assert!((c.eval(0.5) - 1.0).abs() < 1e-12, "no overshoot on a flat segment");
    }

    #[test]
    fn rejects_bad_knots() {
        assert!(MonotoneCubic::new(&[(0.0, 1.0)]).is_none());
        assert!(MonotoneCubic::new(&[(1.0, 0.0), (1.0, 1.0)]).is_none());
        assert!(MonotoneCubic::new(&[(2.0, 0.0), (1.0, 1.0)]).is_none());
    }

    #[test]
    fn no_overshoot_beyond_knot_values() {
        // Monotone data: interpolant must stay within [min, max] of knots.
        let pts = [(0.0, 0.0), (1.0, 0.9), (2.0, 1.0)];
        let c = MonotoneCubic::new(&pts).unwrap();
        for i in 0..=200 {
            let y = c.eval(i as f64 * 0.01);
            assert!((0.0..=1.0 + 1e-12).contains(&y));
        }
    }
}
