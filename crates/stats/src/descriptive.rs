//! Basic descriptive statistics and normalization helpers.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance; `None` for an empty slice.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Weighted mean with weights `w`; `None` when lengths differ or the total
/// weight is not strictly positive.
pub fn weighted_mean(values: &[f64], w: &[f64]) -> Option<f64> {
    if values.len() != w.len() {
        return None;
    }
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return None;
    }
    Some(values.iter().zip(w).map(|(v, w)| v * w).sum::<f64>() / total)
}

/// Scales `values` in place so they sum to 1.0. Returns `false` (leaving the
/// input untouched) when the sum is not strictly positive and finite.
pub fn normalize_in_place(values: &mut [f64]) -> bool {
    let total: f64 = values.iter().sum();
    if !(total.is_finite() && total > 0.0) {
        return false;
    }
    for v in values.iter_mut() {
        *v /= total;
    }
    true
}

/// Cumulative sums: `out[i] = values[0] + … + values[i]`.
pub fn cumsum(values: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    values
        .iter()
        .map(|v| {
            acc += v;
            acc
        })
        .collect()
}

/// The paper's §4.3 normalized platform-difference score:
/// `(a − w) / max(a, w)`, in `[-1, 1]`, positive when `a` dominates.
///
/// Returns 0 when both inputs are zero (no traffic on either platform).
pub fn normalized_difference(a: f64, w: f64) -> f64 {
    let m = a.max(w);
    if m <= 0.0 {
        return 0.0;
    }
    (a - w) / m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_and_std() {
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 4.0).abs() < 1e-12);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_basic() {
        let m = weighted_mean(&[1.0, 3.0], &[1.0, 3.0]).unwrap();
        assert!((m - 2.5).abs() < 1e-12);
        assert_eq!(weighted_mean(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(weighted_mean(&[1.0], &[0.0]), None);
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut v = vec![2.0, 3.0, 5.0];
        assert!(normalize_in_place(&mut v));
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_rejects_zero_sum() {
        let mut v = vec![0.0, 0.0];
        assert!(!normalize_in_place(&mut v));
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn cumsum_basic() {
        assert_eq!(cumsum(&[1.0, 2.0, 3.0]), vec![1.0, 3.0, 6.0]);
        assert!(cumsum(&[]).is_empty());
    }

    #[test]
    fn normalized_difference_bounds_and_sign() {
        assert_eq!(normalized_difference(0.0, 0.0), 0.0);
        assert!((normalized_difference(2.0, 1.0) - 0.5).abs() < 1e-12);
        assert!((normalized_difference(1.0, 2.0) + 0.5).abs() < 1e-12);
        assert_eq!(normalized_difference(5.0, 0.0), 1.0);
        assert_eq!(normalized_difference(0.0, 5.0), -1.0);
    }
}
