//! Property-based tests for statistical invariants.

use proptest::prelude::*;
use wwv_stats::quantile::quantile_sorted;
use wwv_stats::rbo::{rbo_classic, rbo_weighted, WeightModel};
use wwv_stats::spearman::{average_ranks, spearman_rho};
use wwv_stats::{
    bonferroni_threshold, median, quantile, silhouette_samples, two_proportion_test,
    QuantileSummary, RankedList, SymmetricMatrix,
};

fn float_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

/// Distinct keys to build ranked lists from.
fn key_list(max: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0u32..200, 1..=max)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
        .prop_shuffle()
}

proptest! {
    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantile_monotone(values in float_vec(1..50), qa in 0.0f64..=1.0, qb in 0.0f64..=1.0) {
        let (qlo, qhi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let lo = quantile(&values, qlo).unwrap();
        let hi = quantile(&values, qhi).unwrap();
        prop_assert!(lo <= hi + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min - 1e-9 && hi <= max + 1e-9);
    }

    /// QuantileSummary is ordered and consistent with the scalar functions.
    #[test]
    fn summary_consistent(values in float_vec(1..50)) {
        let s = QuantileSummary::of(&values).unwrap();
        prop_assert!(s.q25 <= s.median && s.median <= s.q75);
        prop_assert_eq!(s.median, median(&values).unwrap());
    }

    /// quantile_sorted agrees with quantile after sorting.
    #[test]
    fn sorted_agrees(values in float_vec(1..40), q in 0.0f64..=1.0) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(quantile(&values, q), quantile_sorted(&sorted, q));
    }

    /// Average ranks form a permutation-weight set: they sum to n(n+1)/2.
    #[test]
    fn ranks_sum_invariant(values in float_vec(1..40)) {
        let ranks = average_ranks(&values);
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Spearman is bounded, symmetric, and exactly 1 against itself when the
    /// values are not all tied.
    #[test]
    fn spearman_laws(x in float_vec(2..30), y in float_vec(2..30)) {
        let n = x.len().min(y.len());
        let x = &x[..n];
        let y = &y[..n];
        if let Some(rho) = spearman_rho(x, y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
            let rho_rev = spearman_rho(y, x).unwrap();
            prop_assert!((rho - rho_rev).abs() < 1e-9);
        }
        if let Some(self_rho) = spearman_rho(x, x) {
            prop_assert!((self_rho - 1.0).abs() < 1e-9);
        }
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariant(x in float_vec(2..30), y in float_vec(2..30)) {
        let n = x.len().min(y.len());
        let x = &x[..n];
        let y = &y[..n];
        if let Some(rho) = spearman_rho(x, y) {
            let y2: Vec<f64> = y.iter().map(|v| v * 3.0 + 7.0).collect();
            let rho2 = spearman_rho(x, &y2).unwrap();
            prop_assert!((rho - rho2).abs() < 1e-9);
        }
    }

    /// RBO is bounded, symmetric, and 1 for identical lists.
    #[test]
    fn rbo_laws(a in key_list(20), b in key_list(20), p in 0.1f64..0.99) {
        let la = RankedList::new(a);
        let lb = RankedList::new(b);
        let depth = la.len().max(lb.len());
        let r = rbo_classic(&la, &lb, p, depth).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        let r_sym = rbo_classic(&lb, &la, p, depth).unwrap();
        prop_assert!((r - r_sym).abs() < 1e-12);
        let r_self = rbo_classic(&la, &la, p, la.len()).unwrap();
        prop_assert!((r_self - 1.0).abs() < 1e-12);
    }

    /// Weighted RBO with uniform empirical weights equals mean agreement and
    /// is bounded by the geometric variants' extremes.
    #[test]
    fn rbo_weighted_bounded(a in key_list(15), b in key_list(15)) {
        let la = RankedList::new(a);
        let lb = RankedList::new(b);
        let depth = la.len().max(lb.len());
        let uniform = WeightModel::Empirical { weights: vec![1.0; depth] };
        let r = rbo_weighted(&la, &lb, &uniform, depth).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
    }

    /// percent_intersection is symmetric, bounded, and 1 against itself.
    #[test]
    fn intersection_laws(a in key_list(20), b in key_list(20), depth in 1usize..25) {
        let la = RankedList::new(a);
        let lb = RankedList::new(b);
        let pi = la.percent_intersection(&lb, depth);
        prop_assert!((0.0..=1.0).contains(&pi));
        prop_assert!((pi - lb.percent_intersection(&la, depth)).abs() < 1e-12);
        prop_assert_eq!(la.percent_intersection(&la, depth), 1.0);
    }

    /// Two-proportion test p-values live in [0, 1] and the statistic's sign
    /// tracks the direction of the difference.
    #[test]
    fn proportion_test_laws(ka in 0u64..500, na in 1u64..500, kb in 0u64..500, nb in 1u64..500) {
        let ka = ka.min(na);
        let kb = kb.min(nb);
        if let Some(t) = two_proportion_test(ka, na, kb, nb) {
            prop_assert!((0.0..=1.0).contains(&t.p_value));
            if t.p_a > t.p_b {
                prop_assert!(t.statistic > 0.0);
            } else if t.p_a < t.p_b {
                prop_assert!(t.statistic < 0.0);
            }
        }
    }

    /// Bonferroni thresholds shrink monotonically with the comparison count.
    #[test]
    fn bonferroni_monotone(alpha in 0.001f64..0.2, m in 1usize..1000) {
        prop_assert!(bonferroni_threshold(alpha, m + 1) < bonferroni_threshold(alpha, m) + 1e-15);
        prop_assert!(bonferroni_threshold(alpha, m) <= alpha);
    }

    /// Silhouette values are always within [-1, 1] for any labeling.
    #[test]
    fn silhouette_bounded(points in float_vec(4..20), seed in 0u64..1000) {
        let n = points.len();
        let d = SymmetricMatrix::build(n, |i, j| (points[i] - points[j]).abs());
        // Deterministic pseudo-random two-cluster labeling.
        let labels: Vec<usize> = (0..n).map(|i| ((seed >> (i % 60)) & 1) as usize).collect();
        if labels.contains(&0) && labels.contains(&1) {
            let vals = silhouette_samples(&d, &labels).unwrap();
            for v in vals {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
    }
}
