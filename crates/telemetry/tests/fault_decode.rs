//! Fault-plan-driven decode robustness: frames mutated by a
//! [`wwv_fault::FaultPlan`] must decode to `Ok` or a typed [`WireError`] —
//! never a panic — and the collector's accounting must stay exact under
//! corruption.
//!
//! The proptest blocks document the properties; the plain `#[test]`
//! deterministic sweeps carry the executable coverage (they run the same
//! properties over seeded grids, so they exercise identical code paths in
//! environments where proptest generation is unavailable).

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;
use wwv_fault::plan::{corrupt_bytes, truncate_bytes};
use wwv_fault::{points, FaultKind, FaultPlan, FaultRule, FrameFate};
use wwv_telemetry::collector::Collector;
use wwv_telemetry::upload::Uploader;
use wwv_telemetry::{decode_frame, encode_frame, ClientBatch, TelemetryEvent, WireError};
use wwv_world::{Month, Platform};

fn batch(client_id: u64, domain: &str, loads: usize) -> ClientBatch {
    ClientBatch {
        client_id,
        country: (client_id % 45) as u8,
        platform: Platform::Windows,
        month: Month::February2022,
        events: (0..loads)
            .flat_map(|_| {
                vec![
                    TelemetryEvent::PageLoadInitiated { domain: domain.into() },
                    TelemetryEvent::PageLoadCompleted { domain: domain.into() },
                ]
            })
            .collect(),
    }
}

/// Decode a mutated frame; the only contract is "no panic, and errors are
/// typed". Returns whether it decoded.
fn decode_is_total(frame: Vec<u8>) -> bool {
    let mut bytes = Bytes::from(frame);
    match decode_frame(&mut bytes) {
        Ok(_) => true,
        Err(
            WireError::Incomplete
            | WireError::FrameTooLarge { .. }
            | WireError::BadEventKind { .. }
            | WireError::BadCountry { .. }
            | WireError::BadPlatform { .. }
            | WireError::BadMonth { .. }
            | WireError::BadDomain
            | WireError::Truncated
            | WireError::TooLarge { .. },
        ) => false,
    }
}

proptest! {
    /// Any single-bit flip anywhere in a valid frame decodes or fails with
    /// a typed error.
    #[test]
    fn bitflip_decode_is_total(client in any::<u64>(), salt in any::<u64>()) {
        let mut frame = encode_frame(&batch(client, "example.com", 4)).unwrap().to_vec();
        corrupt_bytes(&mut frame, salt);
        decode_is_total(frame);
    }

    /// Any truncation of a valid frame decodes or fails with a typed error.
    #[test]
    fn truncate_decode_is_total(client in any::<u64>(), salt in any::<u64>()) {
        let mut frame = encode_frame(&batch(client, "example.com", 4)).unwrap().to_vec();
        truncate_bytes(&mut frame, salt);
        decode_is_total(frame);
    }
}

/// Deterministic sweep: every bit position of a real frame flipped one at a
/// time — the exhaustive version of `bitflip_decode_is_total`.
#[test]
fn every_single_bit_flip_decodes_or_errors() {
    let frame = encode_frame(&batch(99, "example.com", 3)).unwrap().to_vec();
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut mutated = frame.clone();
            mutated[byte] ^= 1 << bit;
            decode_is_total(mutated);
        }
    }
}

/// Deterministic sweep: every truncation length of a real frame.
#[test]
fn every_truncation_decodes_or_errors() {
    let frame = encode_frame(&batch(7, "wikipedia.org", 5)).unwrap().to_vec();
    for len in 0..frame.len() {
        let mut cut = frame.clone();
        cut.truncate(len);
        assert!(
            !decode_is_total(cut),
            "a frame cut to {len} of {} bytes cannot decode fully",
            frame.len()
        );
    }
}

/// Frames mutated through the actual plan machinery (the exact path the
/// uploader uses) stay total over a seeded grid.
#[test]
fn plan_mutated_frames_decode_or_error() {
    for seed in 0..20u64 {
        for kind in [FaultKind::BitFlip, FaultKind::Truncate] {
            let plan = FaultPlan::new(seed).with(FaultRule {
                point: points::CLIENT_UPLOAD,
                kind,
                rate: 1.0,
            });
            for i in 0..10u64 {
                let frame = encode_frame(&batch(i, "example.com", 4)).unwrap();
                match plan.apply_to_frame(points::CLIENT_UPLOAD, frame.to_vec()) {
                    FrameFate::Deliver(bytes) => {
                        decode_is_total(bytes);
                    }
                    fate => panic!("corruption faults deliver in place, got {fate:?}"),
                }
            }
        }
    }
}

/// Under injected truncation the collector's ledger stays exact: every
/// truncated frame is quarantined (truncation always removes bytes the
/// length prefix promises), every clean frame aggregates, and the drop
/// breakdown never counts events from quarantined frames.
#[test]
fn truncation_accounting_is_exact() {
    for seed in [1u64, 17, 4242] {
        let plan = Arc::new(FaultPlan::new(seed).with(FaultRule {
            point: points::CLIENT_UPLOAD,
            kind: FaultKind::Truncate,
            rate: 0.4,
        }));
        let collector = Collector::start(2, 10_000);
        let mut up = Uploader::with_faults(
            &collector,
            Arc::clone(&plan),
            wwv_fault::RetryPolicy::default(),
        );
        let frames = 40u64;
        for i in 0..frames {
            // Mix public and non-public domains so the drop breakdown has
            // something to account for.
            let domain = if i % 4 == 0 { "printer.local" } else { "example.com" };
            up.upload(&batch(i, domain, 2)).unwrap();
        }
        let ustats = up.finish();
        let (_, cstats) = collector.finish();
        let injected = plan.fired_at(points::CLIENT_UPLOAD);
        assert!(injected > 0, "seed {seed} fired nothing");
        assert_eq!(ustats.frames_sent, frames);
        assert_eq!(
            cstats.frames_bad, injected,
            "seed {seed}: every truncation quarantined, nothing else"
        );
        assert_eq!(cstats.frames_ok, frames - injected);
        // Drop breakdown only ever counts events from frames that decoded:
        // 4 non-public events per surviving printer.local frame.
        let fired = plan_replay(seed);
        let expected_non_public =
            (0..frames).filter(|i| i % 4 == 0 && !fired[*i as usize]).count() as u64 * 4;
        assert_eq!(cstats.dropped.non_public, expected_non_public, "seed {seed}");
        assert_eq!(cstats.dropped.total(), expected_non_public, "seed {seed}");
    }
}

/// Replays the per-frame fire/no-fire sequence of the truncation plan used
/// in `truncation_accounting_is_exact` (same seed, same rule).
fn plan_replay(seed: u64) -> Vec<bool> {
    let plan = FaultPlan::new(seed).with(FaultRule {
        point: points::CLIENT_UPLOAD,
        kind: FaultKind::Truncate,
        rate: 0.4,
    });
    (0..40)
        .map(|_| plan.decide(points::CLIENT_UPLOAD).is_some())
        .collect()
}

/// The ledger identity under pure corruption: sent == ok + bad, and the
/// typed side of the house stays silent.
#[test]
fn corruption_never_surfaces_as_upload_errors() {
    let plan = Arc::new(FaultPlan::new(5).with(FaultRule {
        point: points::CLIENT_UPLOAD,
        kind: FaultKind::BitFlip,
        rate: 0.5,
    }));
    let collector = Collector::start(2, 10_000);
    let mut up =
        Uploader::with_faults(&collector, Arc::clone(&plan), wwv_fault::RetryPolicy::default());
    for i in 0..30 {
        up.upload(&batch(i, "example.com", 3)).expect("corruption is the collector's problem");
    }
    let ustats = up.finish();
    let (_, cstats) = collector.finish();
    assert_eq!(ustats.frames_sent, 30);
    assert_eq!(
        cstats.frames_ok + cstats.frames_bad,
        30,
        "every delivered frame lands in exactly one ledger column"
    );
}
