//! The parallel build must be byte-identical to the serial build: same
//! domain table (names, sites, and id assignment) and same rank lists, for
//! any worker count. This is the end-to-end enforcement of the wwv-par
//! determinism contract — every Poisson draw is keyed by
//! `(seed, label, sample_idx)`, interning replays canonical order, and the
//! top-K comparator is a strict total order.

use wwv_telemetry::DatasetBuilder;
use wwv_world::{Month, World, WorldConfig};

#[test]
fn parallel_build_is_bit_identical_to_serial() {
    let world = World::new(WorldConfig::small());
    let build = |threads: usize| {
        DatasetBuilder::new(&world)
            .months(&[Month::January2022, Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(500)
            .max_depth(3_000)
            .threads(threads)
            .build()
    };
    let serial = build(1);
    for threads in [2, 4, 8] {
        let parallel = build(threads);
        assert_eq!(
            serial.domains, parallel.domains,
            "domain table diverged at {threads} workers"
        );
        assert_eq!(
            serial.lists, parallel.lists,
            "rank lists diverged at {threads} workers"
        );
        assert_eq!(serial, parallel, "dataset diverged at {threads} workers");
    }
}
