//! Property tests for the binary dataset persistence format: arbitrary
//! datasets round-trip exactly, and hostile inputs — truncations, byte
//! flips, oversized counts — yield typed errors, never panics or OOMs.

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use wwv_telemetry::dataset::{ChromeDataset, DomainId, DomainTable, RankListData};
use wwv_telemetry::persist::{from_binary, to_binary};
use wwv_world::{Breakdown, Metric, Month, Platform, SiteId};

/// `(country, windows?, page_loads?, month_index, entries)` — one rank list.
type ListSpec = (u8, bool, bool, usize, Vec<(u32, u64)>);

fn build_dataset(
    names: &[String],
    list_specs: Vec<ListSpec>,
    client_threshold: u64,
    max_depth: usize,
) -> ChromeDataset {
    let mut domains = DomainTable::new();
    for (i, n) in names.iter().enumerate() {
        // Index suffix keeps names unique, so interned ids are stable
        // across a round-trip.
        domains.intern(&format!("{n}{i}.example"), SiteId(i as u32));
    }
    let mut lists = std::collections::HashMap::new();
    for (country, plat, met, month_idx, entries) in list_specs {
        let b = Breakdown {
            country: country as usize,
            platform: if plat { Platform::Windows } else { Platform::Android },
            metric: if met { Metric::PageLoads } else { Metric::TimeOnPage },
            month: Month::ALL[month_idx % Month::ALL.len()],
        };
        let entries = entries.into_iter().map(|(d, c)| (DomainId(d), c)).collect();
        lists.insert(b, RankListData { entries });
    }
    ChromeDataset { domains, lists, client_threshold, max_depth }
}

fn arb_dataset() -> impl Strategy<Value = ChromeDataset> {
    (
        prop::collection::vec("[a-z]{1,10}", 1..24),
        prop::collection::vec(
            (
                0u8..45,
                any::<bool>(),
                any::<bool>(),
                0usize..6,
                prop::collection::vec((any::<u32>(), any::<u64>()), 0..32),
            ),
            0..8,
        ),
        any::<u64>(),
        0usize..50_000,
    )
        .prop_map(|(names, specs, threshold, depth)| {
            build_dataset(&names, specs, threshold, depth)
        })
}

/// A small deterministic dataset for the exhaustive byte-level tests.
fn sample_dataset() -> ChromeDataset {
    build_dataset(
        &["google".into(), "youtube".into(), "naver".into()],
        vec![
            (0, true, true, 5, vec![(0, 900), (1, 400), (2, 50)]),
            (11, false, true, 5, vec![(2, 700), (0, 650)]),
            (11, false, false, 4, vec![(1, 10)]),
        ],
        200,
        500,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_roundtrip_is_exact(ds in arb_dataset()) {
        let back = from_binary(to_binary(&ds)).expect("valid encoding decodes");
        prop_assert_eq!(back.client_threshold, ds.client_threshold);
        prop_assert_eq!(back.max_depth, ds.max_depth);
        prop_assert_eq!(back.domains.len(), ds.domains.len());
        for i in 0..ds.domains.len() as u32 {
            prop_assert_eq!(back.domains.name(DomainId(i)), ds.domains.name(DomainId(i)));
        }
        prop_assert_eq!(&back.lists, &ds.lists);
    }

    #[test]
    fn truncated_prefixes_error_not_panic(ds in arb_dataset(), frac in 0.0f64..1.0) {
        let bin = to_binary(&ds);
        let cut = ((bin.len() as f64) * frac) as usize;
        prop_assume!(cut < bin.len());
        prop_assert!(from_binary(bin.slice(0..cut)).is_err());
    }

    #[test]
    fn byte_flips_never_panic(pos in 0usize..10_000, val in any::<u8>()) {
        let bin = to_binary(&sample_dataset());
        let pos = pos % bin.len();
        let mut corrupt = BytesMut::from(&bin[..]);
        corrupt[pos] = val;
        // Ok (the flip hit payload data) and Err (it hit structure) are both
        // fine; panicking or aborting is not.
        let _ = from_binary(corrupt.freeze());
    }
}

#[test]
fn every_prefix_of_a_valid_encoding_errors() {
    let bin = to_binary(&sample_dataset());
    for cut in 0..bin.len() {
        assert!(from_binary(bin.slice(0..cut)).is_err(), "prefix of {cut} bytes accepted");
    }
}

#[test]
fn oversized_list_count_is_rejected_without_huge_allocation() {
    // Header claiming u32::MAX lists with no bytes behind it: the decoder
    // must fail on the first missing list header, not pre-allocate for 4
    // billion entries.
    let mut raw = BytesMut::new();
    raw.put_slice(b"WWVD");
    raw.put_u16_le(1); // version
    raw.put_u64_le(0); // client_threshold
    raw.put_u32_le(0); // max_depth
    raw.put_u32_le(0); // domain count
    raw.put_u32_le(u32::MAX); // list count
    assert!(from_binary(raw.freeze()).is_err());
}

#[test]
fn oversized_entry_count_is_rejected() {
    let mut raw = BytesMut::new();
    raw.put_slice(b"WWVD");
    raw.put_u16_le(1);
    raw.put_u64_le(0);
    raw.put_u32_le(0);
    raw.put_u32_le(0); // domain count
    raw.put_u32_le(1); // one list
    raw.put_u8(0); // country
    raw.put_u8(0); // platform
    raw.put_u8(0); // metric
    raw.put_u8(0); // month
    raw.put_u32_le(u32::MAX); // entries claimed, none present
    assert!(from_binary(raw.freeze()).is_err());
}

#[test]
fn non_utf8_domain_is_a_typed_error() {
    let mut raw = BytesMut::new();
    raw.put_slice(b"WWVD");
    raw.put_u16_le(1);
    raw.put_u64_le(0);
    raw.put_u32_le(0);
    raw.put_u32_le(1); // one domain
    raw.put_u8(2); // name length
    raw.put_slice(&[0xFF, 0xFE]); // invalid UTF-8
    raw.put_u32_le(0); // site id
    raw.put_u32_le(0); // list count
    let err = from_binary(raw.freeze()).expect_err("invalid UTF-8 must fail");
    assert!(err.to_string().contains("UTF-8"), "{err}");
}

#[test]
fn wrong_version_is_a_version_error() {
    let mut raw = BytesMut::new();
    raw.put_slice(b"WWVD");
    raw.put_u16_le(9);
    raw.put_slice(&[0u8; 16]);
    let err = from_binary(raw.freeze()).expect_err("unknown version must fail");
    assert!(err.to_string().contains("version"), "{err}");
}

#[test]
fn trailing_magic_only_is_rejected() {
    assert!(from_binary(Bytes::from_static(b"WWVD")).is_err());
    assert!(from_binary(Bytes::new()).is_err());
}
