//! Exact failure accounting through the collector.
//!
//! Feeds hand-crafted corrupt wire frames and privacy-violating batches
//! through a running [`Collector`] and asserts that every frame and every
//! dropped event lands in exactly one `CollectorStats` bucket.

use bytes::{BufMut, Bytes, BytesMut};
use wwv_telemetry::collector::{AggKey, Collector, CollectorOptions, CollectorStats};
use wwv_telemetry::wire::MAX_FRAME_LEN;
use wwv_telemetry::{encode_frame, ClientBatch, TelemetryEvent};
use wwv_world::{Month, Platform};

fn batch(client_id: u64, events: Vec<TelemetryEvent>) -> ClientBatch {
    ClientBatch {
        client_id,
        country: 0,
        platform: Platform::Windows,
        month: Month::February2022,
        events,
    }
}

fn loads(domain: &str, n: usize) -> Vec<TelemetryEvent> {
    (0..n)
        .flat_map(|_| {
            vec![
                TelemetryEvent::PageLoadInitiated { domain: domain.into() },
                TelemetryEvent::PageLoadCompleted { domain: domain.into() },
            ]
        })
        .collect()
}

fn key(domain: &str) -> AggKey {
    AggKey {
        country: 0,
        platform: Platform::Windows,
        month: Month::February2022,
        domain: domain.into(),
    }
}

/// Corrupts one byte of an encoded frame at `offset` (past the length
/// prefix).
fn corrupt_at(frame: &Bytes, offset: usize, value: u8) -> Bytes {
    let mut raw = BytesMut::from(&frame[..]);
    raw[offset] = value;
    raw.freeze()
}

#[test]
fn every_corrupt_frame_is_counted_bad() {
    let good = encode_frame(&batch(1, loads("example.com", 1))).unwrap();
    // Payload layout after the 4-byte length prefix:
    //   8 client id, 1 country, 1 platform, 1 month, 2 event count, then
    //   per-event: 1 kind, 1 domain len, domain bytes, 8 value.
    let corrupt: Vec<(&str, Bytes)> = vec![
        ("truncated payload", good.slice(0..good.len() - 3)),
        ("declared length too short", {
            // Shrink the declared length so trailing bytes remain.
            let mut raw = BytesMut::from(&good[..]);
            let len = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]) - 2;
            raw[0..4].copy_from_slice(&len.to_le_bytes());
            raw.freeze()
        }),
        ("oversized frame", {
            let mut raw = BytesMut::new();
            raw.put_u32_le((MAX_FRAME_LEN + 1) as u32);
            raw.freeze()
        }),
        ("bad country", corrupt_at(&good, 4 + 8, 250)),
        ("bad platform", corrupt_at(&good, 4 + 9, 7)),
        ("bad month", corrupt_at(&good, 4 + 10, 99)),
        ("bad event kind", corrupt_at(&good, 4 + 13, 9)),
        ("bare length prefix", Bytes::from_static(&[3, 0, 0, 0, 1, 2, 3])),
    ];
    let n_corrupt = corrupt.len() as u64;
    let collector = Collector::start(2, 100);
    for (_, frame) in &corrupt {
        collector.ingest(frame.clone());
    }
    collector.ingest(good.clone());
    let (agg, stats) = collector.finish();
    assert_eq!(stats.frames_bad, n_corrupt, "each corrupt frame counted once");
    assert_eq!(stats.frames_ok, 1);
    assert_eq!(stats.events, 2);
    assert_eq!(stats.dropped.total(), 0);
    assert_eq!(agg[&key("example.com")].completed, 1);
}

#[test]
fn non_public_events_attributed_exactly() {
    let collector = Collector::start(2, 100);
    // 3 loads on an intranet host (6 events), 1 foreground on localhost-style
    // single label (1 event), 2 loads on a public domain (4 events).
    collector.ingest(encode_frame(&batch(1, loads("wiki.corp", 3))).unwrap());
    collector.ingest(
        encode_frame(&batch(
            2,
            vec![TelemetryEvent::ForegroundTime { domain: "fileserver".into(), millis: 100 }],
        ))
        .unwrap(),
    );
    collector.ingest(encode_frame(&batch(3, loads("example.com", 2))).unwrap());
    let (agg, stats) = collector.finish();
    assert_eq!(stats.frames_ok, 3);
    assert_eq!(stats.frames_bad, 0);
    assert_eq!(stats.dropped.non_public, 7);
    assert_eq!(stats.dropped.threshold_capped, 0);
    assert_eq!(stats.dropped.down_sampled, 0);
    assert_eq!(stats.events, 4);
    assert_eq!(agg.len(), 1);
    assert!(agg.contains_key(&key("example.com")));
}

#[test]
fn threshold_and_downsampling_reasons_are_distinct() {
    let opts = CollectorOptions {
        privacy_threshold: Some(4),
        fg_keep_probability: Some(0.5),
        ..CollectorOptions::default()
    };
    let collector = Collector::start_opts(2, 1_000, opts);
    // 6 clients on example.com (passes threshold), 2 on rare.net (capped).
    for i in 0..6 {
        collector.ingest(encode_frame(&batch(i, loads("example.com", 1))).unwrap());
    }
    for i in 100..102 {
        collector.ingest(encode_frame(&batch(i, loads("rare.net", 1))).unwrap());
    }
    // Foreground events subject to the 50% server-side down-sampling.
    let n_fg = 400u64;
    for i in 1_000..1_000 + n_fg {
        collector.ingest(
            encode_frame(&batch(
                i,
                vec![TelemetryEvent::ForegroundTime { domain: "example.com".into(), millis: 10 }],
            ))
            .unwrap(),
        );
    }
    let (agg, stats) = collector.finish();
    assert!(!agg.contains_key(&key("rare.net")));
    // rare.net: 2 loads → 4 events, all threshold-capped.
    assert_eq!(stats.dropped.threshold_capped, 4);
    let kept_fg = agg[&key("example.com")].foreground_events;
    assert_eq!(kept_fg + stats.dropped.down_sampled, n_fg);
    assert!(
        stats.dropped.down_sampled > 100 && stats.dropped.down_sampled < 300,
        "≈50% of {n_fg} foreground events down-sampled, got {}",
        stats.dropped.down_sampled
    );
    assert_eq!(stats.dropped.non_public, 0);
    // Conservation: every decoded event is either aggregated or attributed.
    assert_eq!(stats.events + stats.dropped.total(), 12 + 4 + n_fg);
    assert_eq!(stats.dropped.total(), 4 + stats.dropped.down_sampled);
}

#[test]
fn stats_default_is_all_zero() {
    let s = CollectorStats::default();
    assert_eq!(s.frames_ok + s.frames_bad + s.events + s.dropped.total(), 0);
}
