//! Property tests for the telemetry substrate: the wire codec never panics
//! on arbitrary input and always round-trips valid batches; samplers stay in
//! bounds; HyperLogLog estimates stay within theory.

use bytes::Bytes;
use proptest::prelude::*;
use wwv_telemetry::hll::HyperLogLog;
use wwv_telemetry::sampling::{binomial, poisson};
use wwv_telemetry::{decode_frame, encode_frame, ClientBatch, TelemetryEvent};
use wwv_world::{Month, Platform, WorldSeed};

fn arb_domain() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,12}\\.[a-z]{2,6}").unwrap()
}

fn arb_event() -> impl Strategy<Value = TelemetryEvent> {
    prop_oneof![
        arb_domain().prop_map(|d| TelemetryEvent::PageLoadInitiated { domain: d }),
        arb_domain().prop_map(|d| TelemetryEvent::PageLoadCompleted { domain: d }),
        (arb_domain(), 0u64..10_000_000)
            .prop_map(|(d, ms)| TelemetryEvent::ForegroundTime { domain: d, millis: ms }),
    ]
}

fn arb_batch() -> impl Strategy<Value = ClientBatch> {
    (
        any::<u64>(),
        0u8..45,
        prop_oneof![Just(Platform::Windows), Just(Platform::Android)],
        0usize..6,
        proptest::collection::vec(arb_event(), 0..50),
    )
        .prop_map(|(client_id, country, platform, month, events)| ClientBatch {
            client_id,
            country,
            platform,
            month: Month::ALL[month],
            events,
        })
}

proptest! {
    /// Any valid batch round-trips exactly through the wire codec.
    #[test]
    fn wire_roundtrip(batch in arb_batch()) {
        let mut bytes = encode_frame(&batch).unwrap();
        let decoded = decode_frame(&mut bytes).expect("encoded frames decode");
        prop_assert_eq!(decoded, batch);
        prop_assert!(bytes.is_empty());
    }

    /// Arbitrary byte soup never panics the decoder — it errors or decodes.
    #[test]
    fn wire_decoder_total(raw in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut bytes = Bytes::from(raw);
        let _ = decode_frame(&mut bytes);
    }

    /// Truncating a valid frame anywhere yields Incomplete or an error,
    /// never a panic or a bogus success past the truncation.
    #[test]
    fn wire_truncation_safe(batch in arb_batch(), cut_fraction in 0.0f64..1.0) {
        let full = encode_frame(&batch).unwrap();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut < full.len() {
            let mut bytes = full.slice(0..cut);
            let _ = decode_frame(&mut bytes);
        }
    }

    /// Concatenated frames decode in order.
    #[test]
    fn wire_stream(batches in proptest::collection::vec(arb_batch(), 1..5)) {
        let mut stream = bytes::BytesMut::new();
        for b in &batches {
            stream.extend_from_slice(&encode_frame(b).unwrap());
        }
        let mut stream = stream.freeze();
        for expected in &batches {
            let decoded = decode_frame(&mut stream).expect("stream decodes in order");
            prop_assert_eq!(&decoded, expected);
        }
        prop_assert!(stream.is_empty());
    }

    /// Poisson draws are deterministic and non-negative with finite mean.
    #[test]
    fn poisson_sane(seed in any::<u64>(), index in any::<u64>(), lambda in 0.0f64..1e6) {
        let s = WorldSeed(seed);
        let a = poisson(s, "p", index, lambda);
        let b = poisson(s, "p", index, lambda);
        prop_assert_eq!(a, b);
        // Within 10σ of the mean (overwhelming probability bound).
        let bound = lambda + 10.0 * lambda.sqrt() + 10.0;
        prop_assert!((a as f64) < bound, "draw {a} for λ {lambda}");
    }

    /// Binomial draws never exceed n.
    #[test]
    fn binomial_bounded(seed in any::<u64>(), n in 0u64..100_000, p in 0.0f64..=1.0) {
        let draw = binomial(WorldSeed(seed), "b", 1, n, p);
        prop_assert!(draw <= n);
    }

    /// HLL estimates stay within 5 standard errors for arbitrary insertions.
    #[test]
    fn hll_bounded_error(items in proptest::collection::hash_set(any::<u64>(), 0..3000)) {
        let mut hll = HyperLogLog::new(12).unwrap();
        for item in &items {
            hll.insert(*item);
        }
        let n = items.len() as f64;
        let e = hll.estimate();
        let tol = 5.0 * hll.relative_error() * n + 10.0;
        prop_assert!((e - n).abs() <= tol, "estimate {e} for {n} items");
    }
}
