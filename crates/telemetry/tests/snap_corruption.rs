//! Corruption battery for the columnar snapshot format.
//!
//! The format's invariant is stronger than "don't panic": every byte of a
//! snapshot is covered by a magic, a version check, or an FNV checksum, so
//! **any** single corrupted byte and **any** truncation must surface as a
//! typed [`wwv_telemetry::persist::PersistError`] — never as a silently
//! wrong dataset. The exhaustive sweeps below hold that line cell by cell:
//! every bit of every byte on a micro snapshot, strided byte smashes and
//! dense truncations on a larger one, and proptest-driven random damage on
//! arbitrary datasets.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use wwv_telemetry::dataset::{ChromeDataset, DomainId, DomainTable, RankListData};
use wwv_telemetry::persist::{read_auto, read_snapshot, write_snapshot};
use wwv_world::{Breakdown, Metric, Month, Platform, SiteId};

/// `(country, windows?, page_loads?, month_index, entries)` — one rank list
/// (same spec shape as `persist_roundtrip.rs`).
type ListSpec = (u8, bool, bool, usize, Vec<(u32, u64)>);

fn build_dataset(
    names: &[String],
    list_specs: Vec<ListSpec>,
    client_threshold: u64,
    max_depth: usize,
) -> ChromeDataset {
    let mut domains = DomainTable::new();
    for (i, n) in names.iter().enumerate() {
        domains.intern(&format!("{n}{i}.example"), SiteId(i as u32));
    }
    let mut lists = std::collections::HashMap::new();
    for (country, plat, met, month_idx, entries) in list_specs {
        let b = Breakdown {
            country: country as usize,
            platform: if plat { Platform::Windows } else { Platform::Android },
            metric: if met { Metric::PageLoads } else { Metric::TimeOnPage },
            month: Month::ALL[month_idx % Month::ALL.len()],
        };
        let entries = entries.into_iter().map(|(d, c)| (DomainId(d), c)).collect();
        lists.insert(b, RankListData { entries });
    }
    ChromeDataset { domains, lists, client_threshold, max_depth }
}

/// A micro dataset whose snapshot stays small enough (~1 KB) for the
/// exhaustive per-bit sweep.
fn micro_dataset() -> ChromeDataset {
    build_dataset(
        &["google".into(), "youtube".into(), "naver".into(), "wiki".into()],
        vec![
            (0, true, true, 5, vec![(0, 900), (1, 400), (2, 50)]),
            (11, false, true, 5, vec![(2, 700), (0, 650), (3, 3)]),
            (11, true, false, 4, vec![(1, 10)]),
            (7, false, false, 0, vec![]),
        ],
        200,
        500,
    )
}

/// A larger dataset (dozens of lists, hundreds of entries) for the strided
/// sweep: big enough that every structural region — domain table, many list
/// chunks, catalog, footer — spans real data.
fn larger_dataset() -> ChromeDataset {
    let names: Vec<String> = (0..120).map(|i| format!("site{i:03}")).collect();
    let mut specs = Vec::new();
    for country in 0..30u8 {
        let entries: Vec<(u32, u64)> = (0..80u32)
            .map(|rank| {
                let d = (rank * 7 + country as u32 * 13) % 120;
                (d, 1_000_000u64 / (rank as u64 + 1) + country as u64)
            })
            .collect();
        specs.push((country, country % 2 == 0, country % 3 != 0, 5, entries));
    }
    build_dataset(&names, specs, 200, 500)
}

#[test]
fn every_bit_flip_on_micro_snapshot_is_a_typed_error() {
    let ds = micro_dataset();
    let snap = write_snapshot(&ds);
    assert!(snap.len() < 4_096, "micro snapshot grew: {} bytes", snap.len());
    for pos in 0..snap.len() {
        for bit in 0..8 {
            let mut corrupt = BytesMut::from(&snap[..]);
            corrupt[pos] ^= 1 << bit;
            let err = read_snapshot(corrupt.freeze()).expect_err(&format!(
                "flip of bit {bit} at byte {pos}/{} decoded silently",
                snap.len()
            ));
            // The error is typed and printable, not a panic or a bare abort.
            assert!(!err.to_string().is_empty());
        }
    }
}

#[test]
fn every_truncation_of_micro_snapshot_is_a_typed_error() {
    let snap = write_snapshot(&micro_dataset());
    for cut in 0..snap.len() {
        assert!(
            read_snapshot(snap.slice(0..cut)).is_err(),
            "prefix of {cut}/{} bytes accepted",
            snap.len()
        );
        // read_auto must reject the same prefixes — the sniffer cannot be a
        // hole in the armor.
        assert!(read_auto(snap.slice(0..cut)).is_err());
    }
}

#[test]
fn strided_flips_and_truncations_on_larger_snapshot_error() {
    let ds = larger_dataset();
    let snap = write_snapshot(&ds);
    assert!(snap.len() > 10_000, "larger snapshot too small: {} bytes", snap.len());
    // Smash every 7th byte (coprime stride covers all structural regions
    // across the sweep) with a bit pattern that always changes the byte.
    for pos in (0..snap.len()).step_by(7) {
        let mut corrupt = BytesMut::from(&snap[..]);
        corrupt[pos] ^= 0xA5;
        assert!(
            read_snapshot(corrupt.freeze()).is_err(),
            "flip at byte {pos}/{} decoded silently",
            snap.len()
        );
    }
    // Dense truncation sweep: 200 evenly spaced cut points plus the edges.
    let step = (snap.len() / 200).max(1);
    for cut in (0..snap.len()).step_by(step).chain([0, 1, snap.len() - 1]) {
        assert!(read_snapshot(snap.slice(0..cut)).is_err(), "prefix of {cut} bytes accepted");
    }
}

#[test]
fn appended_garbage_is_rejected() {
    // The footer anchors to the end of the buffer, so trailing bytes shift
    // it onto garbage: extension attacks cannot smuggle data past the tail.
    let snap = write_snapshot(&micro_dataset());
    for extra in [&b"\x00"[..], &b"junk"[..], &[0xFF; 24][..]] {
        let mut extended = BytesMut::from(&snap[..]);
        extended.extend_from_slice(extra);
        assert!(read_snapshot(extended.freeze()).is_err());
    }
}

#[test]
fn garbage_and_empty_inputs_are_typed_errors() {
    assert!(read_snapshot(Bytes::new()).is_err());
    assert!(read_snapshot(Bytes::from_static(b"WWVS")).is_err());
    assert!(read_snapshot(Bytes::from_static(&[0u8; 64])).is_err());
    assert!(read_auto(Bytes::from_static(b"????????")).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_roundtrip_is_exact(
        names in prop::collection::vec("[a-z]{1,10}", 1..24),
        specs in prop::collection::vec(
            (
                0u8..45,
                any::<bool>(),
                any::<bool>(),
                0usize..6,
                prop::collection::vec((any::<u32>(), any::<u64>()), 0..32),
            ),
            0..8,
        ),
        threshold in any::<u64>(),
        depth in 0usize..50_000,
    ) {
        let ds = build_dataset(&names, specs, threshold, depth);
        let back = read_snapshot(write_snapshot(&ds)).expect("valid snapshot decodes");
        prop_assert_eq!(back.client_threshold, ds.client_threshold);
        prop_assert_eq!(back.max_depth, ds.max_depth);
        prop_assert_eq!(back.domains.len(), ds.domains.len());
        for i in 0..ds.domains.len() as u32 {
            prop_assert_eq!(back.domains.name(DomainId(i)), ds.domains.name(DomainId(i)));
            prop_assert_eq!(back.domains.site(DomainId(i)), ds.domains.site(DomainId(i)));
        }
        prop_assert_eq!(&back.lists, &ds.lists);
    }

    #[test]
    fn random_byte_damage_is_detected(
        pos in 0usize..100_000,
        val in any::<u8>(),
    ) {
        let snap = write_snapshot(&micro_dataset());
        let pos = pos % snap.len();
        prop_assume!(snap[pos] != val);
        let mut corrupt = BytesMut::from(&snap[..]);
        corrupt[pos] = val;
        // Unlike the legacy format (where payload flips can decode), every
        // snapshot byte is checksummed: any changed byte must error.
        prop_assert!(read_snapshot(corrupt.freeze()).is_err());
    }

    #[test]
    fn random_truncations_error(frac in 0.0f64..1.0) {
        let snap = write_snapshot(&larger_dataset());
        let cut = ((snap.len() as f64) * frac) as usize;
        prop_assume!(cut < snap.len());
        prop_assert!(read_snapshot(snap.slice(0..cut)).is_err());
    }
}
