//! Concurrent telemetry collector.
//!
//! Ingests wire frames over a `crossbeam` channel, decodes them on worker
//! threads, and aggregates per-(country, platform, month, domain) counters.
//! Unique-client counting is capped: once a domain has been seen by more
//! clients than the privacy threshold, further ids are not stored (the exact
//! count above the threshold never matters).
//!
//! Ingest health is fully accounted: decode failures increment `frames_bad`,
//! and every dropped event is attributed to a [`DropReason`] — non-public
//! domain, below the unique-client threshold (when [`CollectorOptions::
//! privacy_threshold`] is set), or server-side foreground down-sampling
//! (when [`CollectorOptions::fg_keep_probability`] is set). Counters, the
//! sampled channel depth, per-worker frame totals, and a decode-latency
//! histogram are mirrored into the global `wwv-obs` registry.

use crate::event::TelemetryEvent;
use crate::hll::HyperLogLog;
use crate::privacy::is_public_domain;
use crate::wire::decode_frame;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use wwv_world::{Month, Platform};

/// Aggregated counters for one (breakdown, domain).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DomainStats {
    /// Initiated page loads.
    pub initiated: u64,
    /// Completed page loads.
    pub completed: u64,
    /// Uploaded (down-sampled) foreground events.
    pub foreground_events: u64,
    /// Total foreground milliseconds across uploaded events.
    pub foreground_millis: u64,
    /// Unique clients observed, capped at the collector's `client_cap`.
    pub unique_clients: u64,
}

impl DomainStats {
    fn event_total(&self) -> u64 {
        self.initiated + self.completed + self.foreground_events
    }
}

/// Aggregation key (domain is interned per map entry).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggKey {
    /// Country index.
    pub country: u8,
    /// Platform.
    pub platform: Platform,
    /// Month.
    pub month: Month,
    /// Domain.
    pub domain: String,
}

/// Final aggregate: counters per key.
pub type Aggregate = HashMap<AggKey, DomainStats>;

/// Why an event was excluded from the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The domain is not publicly reachable (§3.1 exclusion).
    NonPublicDomain,
    /// The domain fell below the unique-client threshold at finish.
    ThresholdCapped,
    /// A foreground event lost the server-side down-sampling draw.
    DownSampled,
}

/// Events dropped, broken down by [`DropReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct DropBreakdown {
    /// Events on non-public domains.
    pub non_public: u64,
    /// Events on domains dropped by the unique-client threshold.
    pub threshold_capped: u64,
    /// Foreground events removed by server-side down-sampling.
    pub down_sampled: u64,
}

impl DropBreakdown {
    /// Total dropped events across all reasons.
    pub fn total(&self) -> u64 {
        self.non_public + self.threshold_capped + self.down_sampled
    }

    fn count(&mut self, reason: DropReason, n: u64) {
        match reason {
            DropReason::NonPublicDomain => self.non_public += n,
            DropReason::ThresholdCapped => self.threshold_capped += n,
            DropReason::DownSampled => self.down_sampled += n,
        }
    }

    fn merge(&mut self, other: &DropBreakdown) {
        self.non_public += other.non_public;
        self.threshold_capped += other.threshold_capped;
        self.down_sampled += other.down_sampled;
    }
}

/// Collector statistics (ingest health).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CollectorStats {
    /// Frames decoded successfully.
    pub frames_ok: u64,
    /// Frames rejected by the decoder (quarantined poison frames; see the
    /// `collector.quarantine.*` obs counters for the per-error breakdown).
    pub frames_bad: u64,
    /// Duplicate frames skipped by [`CollectorOptions::dedupe_frames`].
    pub frames_duplicate: u64,
    /// Events aggregated.
    pub events: u64,
    /// Events dropped, by reason.
    pub dropped: DropBreakdown,
}

/// Strategy for counting unique clients per domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientCounting {
    /// Exact hash sets, capped at the privacy threshold (simulation scale).
    Exact,
    /// HyperLogLog sketches at the given precision — constant memory per
    /// domain, the production-scale strategy. Sketches merge exactly across
    /// workers.
    Sketch(u8),
}

/// Tunable collector behavior beyond worker count and client cap.
#[derive(Debug, Clone, Copy)]
pub struct CollectorOptions {
    /// Unique-client counting strategy.
    pub counting: ClientCounting,
    /// When set, domains whose unique-client count stays below this
    /// threshold are removed from the aggregate at [`Collector::finish`],
    /// with their events accounted as [`DropReason::ThresholdCapped`].
    pub privacy_threshold: Option<u64>,
    /// When set, each foreground event is kept with this probability
    /// (deterministically, from the client id and event sequence) and
    /// otherwise dropped as [`DropReason::DownSampled`] — the server-side
    /// variant of the §3.1 0.35% down-sampling for clients that upload raw
    /// foreground streams.
    pub fg_keep_probability: Option<f64>,
    /// When set, byte-identical frames seen more than once are skipped and
    /// counted as [`CollectorStats::frames_duplicate`] — the defense against
    /// at-least-once upload transports that retransmit whole frames.
    pub dedupe_frames: bool,
}

impl Default for CollectorOptions {
    fn default() -> Self {
        CollectorOptions {
            counting: ClientCounting::Exact,
            privacy_threshold: None,
            fg_keep_probability: None,
            dedupe_frames: false,
        }
    }
}

/// FNV-1a over a whole frame — the dedupe fingerprint. A 64-bit hash over
/// the simulation's frame volumes makes accidental collisions (a *distinct*
/// frame skipped as a duplicate) vanishingly unlikely.
fn frame_fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-worker unique-client tracker.
enum ClientTracker {
    Exact(HashSet<u64>),
    Sketch(HyperLogLog),
}

impl ClientTracker {
    fn new(mode: ClientCounting) -> ClientTracker {
        match mode {
            ClientCounting::Exact => ClientTracker::Exact(HashSet::new()),
            ClientCounting::Sketch(p) => ClientTracker::Sketch(
                HyperLogLog::new(p).expect("validated precision"),
            ),
        }
    }

    fn insert(&mut self, client_id: u64, slack: u64) {
        match self {
            ClientTracker::Exact(set) => {
                if (set.len() as u64) <= slack {
                    set.insert(client_id);
                }
            }
            ClientTracker::Sketch(hll) => hll.insert(client_id),
        }
    }

    fn merge(&mut self, other: ClientTracker) {
        match (self, other) {
            (ClientTracker::Exact(a), ClientTracker::Exact(b)) => a.extend(b),
            (ClientTracker::Sketch(a), ClientTracker::Sketch(b)) => {
                a.merge(&b);
            }
            _ => unreachable!("collector uses one counting mode per run"),
        }
    }

    fn count(&self) -> u64 {
        match self {
            ClientTracker::Exact(set) => set.len() as u64,
            ClientTracker::Sketch(hll) => hll.estimate().round() as u64,
        }
    }
}

/// SplitMix64 — the deterministic per-event hash behind server-side
/// foreground down-sampling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic replica assignment for a client: which of `replicas`
/// regional collectors ingests this client's batches. Hashing (rather than
/// `client_id % replicas`) keeps the partition uncorrelated with how the
/// generator allocates ids, and using the same SplitMix64 as the sampling
/// path keeps the whole pipeline on one hash family. The invariant the
/// region layer builds on: the union of the per-replica partitions is
/// exactly the single-collector stream — every client lands on exactly one
/// replica.
pub fn client_partition(client_id: u64, replicas: usize) -> usize {
    (splitmix64(client_id) % replicas.max(1) as u64) as usize
}

/// Deterministic keep/drop decision for one foreground event.
fn keep_foreground(client_id: u64, seq: u64, keep_probability: f64) -> bool {
    let u = splitmix64(client_id ^ seq.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11;
    (u as f64 / (1u64 << 53) as f64) < keep_probability
}

/// Handle to a running collector.
pub struct Collector {
    sender: Option<Sender<Bytes>>,
    #[allow(clippy::type_complexity)]
    workers: Vec<JoinHandle<(Aggregate, HashMap<(u8, Platform, Month, String), ClientTracker>)>>,
    stats: Arc<Mutex<CollectorStats>>,
    client_cap: u64,
    privacy_threshold: Option<u64>,
    ingested: AtomicU64,
    depth_gauge: wwv_obs::Gauge,
}

impl Collector {
    /// Starts `workers` aggregation threads with exact (capped) client
    /// counting. `client_cap` bounds per-domain unique-client tracking (set
    /// it to the privacy threshold).
    pub fn start(workers: usize, client_cap: u64) -> Self {
        Self::start_opts(workers, client_cap, CollectorOptions::default())
    }

    /// Starts a collector with HyperLogLog client counting (precision 12,
    /// ≈1.6% error — ample for threshold decisions).
    pub fn start_sketched(workers: usize, client_cap: u64) -> Self {
        Self::start_with(workers, client_cap, ClientCounting::Sketch(12))
    }

    /// Starts a collector with an explicit counting strategy.
    pub fn start_with(workers: usize, client_cap: u64, counting: ClientCounting) -> Self {
        Self::start_opts(
            workers,
            client_cap,
            CollectorOptions { counting, ..CollectorOptions::default() },
        )
    }

    /// Starts a collector with full [`CollectorOptions`].
    pub fn start_opts(workers: usize, client_cap: u64, opts: CollectorOptions) -> Self {
        let (tx, rx) = unbounded::<Bytes>();
        let stats = Arc::new(Mutex::new(CollectorStats::default()));
        // Frame-fingerprint set shared across workers: duplicates of one
        // frame may land on different worker threads.
        let dedupe: Option<Arc<Mutex<HashSet<u64>>>> =
            if opts.dedupe_frames { Some(Arc::new(Mutex::new(HashSet::new()))) } else { None };
        let mut handles = Vec::with_capacity(workers.max(1));
        for worker_idx in 0..workers.max(1) {
            let rx = rx.clone();
            let stats = Arc::clone(&stats);
            let counting = opts.counting;
            let fg_keep = opts.fg_keep_probability;
            let dedupe = dedupe.clone();
            handles.push(std::thread::spawn(move || {
                let obs = wwv_obs::global();
                let decode_ns = obs.histogram("collector.decode_ns");
                let mut agg: Aggregate = HashMap::new();
                let mut clients: HashMap<(u8, Platform, Month, String), ClientTracker> =
                    HashMap::new();
                let mut local = CollectorStats::default();
                let mut local_frames = 0u64;
                for mut frame in rx.iter() {
                    local_frames += 1;
                    let frame_len = frame.len() as u64;
                    if let Some(seen) = &dedupe {
                        if !seen.lock().insert(frame_fingerprint(&frame)) {
                            local.frames_duplicate += 1;
                            obs.counter("collector.frames_duplicate").inc();
                            continue;
                        }
                    }
                    let obs_on = wwv_obs::enabled();
                    let t0 = if obs_on { Some(Instant::now()) } else { None };
                    let decoded = decode_frame(&mut frame);
                    if let Some(t0) = t0 {
                        decode_ns
                            .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    }
                    match decoded {
                        Ok(batch) => {
                            local.frames_ok += 1;
                            let mut touched: HashSet<&str> = HashSet::new();
                            for (seq, event) in batch.events.iter().enumerate() {
                                let domain = event.domain();
                                if !is_public_domain(domain) {
                                    local.dropped.count(DropReason::NonPublicDomain, 1);
                                    continue;
                                }
                                if let TelemetryEvent::ForegroundTime { .. } = event {
                                    if let Some(p) = fg_keep {
                                        if !keep_foreground(batch.client_id, seq as u64, p) {
                                            local.dropped.count(DropReason::DownSampled, 1);
                                            continue;
                                        }
                                    }
                                }
                                local.events += 1;
                                let key = AggKey {
                                    country: batch.country,
                                    platform: batch.platform,
                                    month: batch.month,
                                    domain: domain.to_owned(),
                                };
                                let entry = agg.entry(key).or_default();
                                match event {
                                    TelemetryEvent::PageLoadInitiated { .. } => entry.initiated += 1,
                                    TelemetryEvent::PageLoadCompleted { .. } => entry.completed += 1,
                                    TelemetryEvent::ForegroundTime { millis, .. } => {
                                        entry.foreground_events += 1;
                                        entry.foreground_millis += millis;
                                    }
                                }
                                touched.insert(domain);
                            }
                            for domain in touched {
                                let ckey = (
                                    batch.country,
                                    batch.platform,
                                    batch.month,
                                    domain.to_owned(),
                                );
                                clients
                                    .entry(ckey)
                                    .or_insert_with(|| ClientTracker::new(counting))
                                    .insert(batch.client_id, CLIENT_CAP_SLACK);
                            }
                        }
                        Err(e) => {
                            // Poison frame: quarantined with its decode error
                            // classified, never silently discarded.
                            local.frames_bad += 1;
                            obs.counter("collector.quarantine.frames").inc();
                            obs.counter("collector.quarantine.bytes").add(frame_len);
                            obs.counter(&format!("collector.quarantine.{}", e.kind_name()))
                                .inc();
                        }
                    }
                }
                // Mirror this worker's totals into the registry once, at
                // drain time — zero per-event registry traffic.
                obs.counter(&format!("collector.worker.{worker_idx}.frames"))
                    .add(local_frames);
                obs.counter("collector.frames_ok").add(local.frames_ok);
                obs.counter("collector.frames_bad").add(local.frames_bad);
                obs.counter("collector.dropped.non_public").add(local.dropped.non_public);
                obs.counter("collector.dropped.down_sampled").add(local.dropped.down_sampled);
                let mut shared = stats.lock();
                shared.frames_ok += local.frames_ok;
                shared.frames_bad += local.frames_bad;
                shared.frames_duplicate += local.frames_duplicate;
                shared.events += local.events;
                shared.dropped.merge(&local.dropped);
                (agg, clients)
            }));
        }
        Collector {
            sender: Some(tx),
            workers: handles,
            stats,
            client_cap,
            privacy_threshold: opts.privacy_threshold,
            ingested: AtomicU64::new(0),
            depth_gauge: wwv_obs::global().gauge("collector.channel_depth"),
        }
    }

    /// Ingests one encoded frame.
    pub fn ingest(&self, frame: Bytes) {
        let sender = self.sender.as_ref().expect("collector still running");
        sender.send(frame).expect("workers alive while sender exists");
        // Sample the channel depth every 64 frames: cheap backlog telemetry.
        if self.ingested.fetch_add(1, Ordering::Relaxed).is_multiple_of(64) {
            self.depth_gauge.set(sender.len() as i64);
        }
    }

    /// Closes ingestion, joins workers, and returns the merged aggregate and
    /// ingest statistics. Unique-client counts are capped at `client_cap`;
    /// when a privacy threshold was configured, below-threshold domains are
    /// dropped here and accounted as [`DropReason::ThresholdCapped`].
    pub fn finish(mut self) -> (Aggregate, CollectorStats) {
        let _span = wwv_obs::span!("collector.finish");
        drop(self.sender.take());
        let mut merged: Aggregate = HashMap::new();
        let mut merged_clients: HashMap<(u8, Platform, Month, String), ClientTracker> =
            HashMap::new();
        for handle in self.workers.drain(..) {
            let (agg, clients) = handle.join().expect("worker thread panicked");
            for (key, value) in agg {
                let entry = merged.entry(key).or_default();
                entry.initiated += value.initiated;
                entry.completed += value.completed;
                entry.foreground_events += value.foreground_events;
                entry.foreground_millis += value.foreground_millis;
            }
            for (key, tracker) in clients {
                match merged_clients.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().merge(tracker);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(tracker);
                    }
                }
            }
        }
        for (key, tracker) in merged_clients {
            let agg_key = AggKey { country: key.0, platform: key.1, month: key.2, domain: key.3 };
            if let Some(entry) = merged.get_mut(&agg_key) {
                entry.unique_clients = tracker.count().min(self.client_cap);
            }
        }
        let mut stats = self.stats.lock().clone();
        if let Some(threshold) = self.privacy_threshold {
            let mut capped_events = 0u64;
            merged.retain(|_, entry| {
                if entry.unique_clients >= threshold {
                    true
                } else {
                    capped_events += entry.event_total();
                    false
                }
            });
            stats.dropped.count(DropReason::ThresholdCapped, capped_events);
            stats.events = stats.events.saturating_sub(capped_events);
            wwv_obs::global()
                .counter("collector.dropped.threshold_capped")
                .add(capped_events);
        }
        // Flushed here rather than per-worker so the registry counter agrees
        // with `CollectorStats::events` after threshold capping.
        wwv_obs::global().counter("collector.events").add(stats.events);
        (merged, stats)
    }
}

/// Per-worker unique-client tracking slack: workers keep a few more ids than
/// the cap so the post-merge count can still reach the cap even when clients
/// are spread across workers.
const CLIENT_CAP_SLACK: u64 = 1 << 14;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ClientBatch;
    use crate::wire::encode_frame;

    fn batch(client_id: u64, domain: &str, loads: usize) -> ClientBatch {
        ClientBatch {
            client_id,
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            events: (0..loads)
                .flat_map(|_| {
                    vec![
                        TelemetryEvent::PageLoadInitiated { domain: domain.into() },
                        TelemetryEvent::PageLoadCompleted { domain: domain.into() },
                    ]
                })
                .collect(),
        }
    }

    fn key(domain: &str) -> AggKey {
        AggKey {
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            domain: domain.into(),
        }
    }

    #[test]
    fn aggregates_counts() {
        let collector = Collector::start(4, 100);
        for i in 0..10 {
            collector.ingest(encode_frame(&batch(i, "example.com", 3)).unwrap());
        }
        let (agg, stats) = collector.finish();
        let entry = &agg[&key("example.com")];
        assert_eq!(entry.initiated, 30);
        assert_eq!(entry.completed, 30);
        assert_eq!(entry.unique_clients, 10);
        assert_eq!(stats.frames_ok, 10);
        assert_eq!(stats.frames_bad, 0);
    }

    #[test]
    fn unique_clients_deduplicated() {
        let collector = Collector::start(2, 100);
        // Same client uploads twice.
        collector.ingest(encode_frame(&batch(7, "example.com", 1)).unwrap());
        collector.ingest(encode_frame(&batch(7, "example.com", 1)).unwrap());
        let (agg, _) = collector.finish();
        assert_eq!(agg[&key("example.com")].unique_clients, 1);
        assert_eq!(agg[&key("example.com")].completed, 2);
    }

    #[test]
    fn unique_clients_capped() {
        let collector = Collector::start(3, 5);
        for i in 0..50 {
            collector.ingest(encode_frame(&batch(i, "example.com", 1)).unwrap());
        }
        let (agg, _) = collector.finish();
        assert_eq!(agg[&key("example.com")].unique_clients, 5);
    }

    #[test]
    fn non_public_domains_dropped() {
        let collector = Collector::start(2, 100);
        collector.ingest(encode_frame(&batch(1, "printer.local", 2)).unwrap());
        collector.ingest(encode_frame(&batch(2, "example.com", 1)).unwrap());
        let (agg, stats) = collector.finish();
        assert!(!agg.contains_key(&key("printer.local")));
        assert!(agg.contains_key(&key("example.com")));
        assert_eq!(stats.dropped.non_public, 4);
        assert_eq!(stats.dropped.total(), 4);
    }

    #[test]
    fn bad_frames_counted_not_fatal() {
        let collector = Collector::start(2, 100);
        collector.ingest(Bytes::from_static(&[3, 0, 0, 0, 1, 2, 3]));
        collector.ingest(encode_frame(&batch(1, "example.com", 1)).unwrap());
        let (agg, stats) = collector.finish();
        assert_eq!(stats.frames_bad, 1);
        assert_eq!(stats.frames_ok, 1);
        assert_eq!(agg[&key("example.com")].completed, 1);
    }

    #[test]
    fn foreground_millis_accumulate() {
        let collector = Collector::start(2, 100);
        let b = ClientBatch {
            client_id: 1,
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            events: vec![
                TelemetryEvent::ForegroundTime { domain: "example.com".into(), millis: 1_000 },
                TelemetryEvent::ForegroundTime { domain: "example.com".into(), millis: 2_500 },
            ],
        };
        collector.ingest(encode_frame(&b).unwrap());
        let (agg, _) = collector.finish();
        let entry = &agg[&key("example.com")];
        assert_eq!(entry.foreground_events, 2);
        assert_eq!(entry.foreground_millis, 3_500);
    }

    #[test]
    fn sketched_collector_counts_within_error() {
        let collector = Collector::start_sketched(3, 100_000);
        for i in 0..3_000u64 {
            collector.ingest(encode_frame(&batch(i, "example.com", 1)).unwrap());
        }
        let (agg, _) = collector.finish();
        let count = agg[&key("example.com")].unique_clients as f64;
        assert!((count - 3_000.0).abs() < 300.0, "sketched count {count}");
    }

    #[test]
    fn sketched_and_exact_agree_on_threshold_side() {
        for n in [50u64, 5_000] {
            let exact = Collector::start(2, 100_000);
            let sketched = Collector::start_sketched(2, 100_000);
            for i in 0..n {
                exact.ingest(encode_frame(&batch(i, "example.com", 1)).unwrap());
                sketched.ingest(encode_frame(&batch(i, "example.com", 1)).unwrap());
            }
            let (ea, _) = exact.finish();
            let (sa, _) = sketched.finish();
            let e = ea[&key("example.com")].unique_clients;
            let s = sa[&key("example.com")].unique_clients;
            let threshold = 1_000;
            assert_eq!(e >= threshold, s >= threshold, "n={n}: exact {e} vs sketched {s}");
        }
    }

    #[test]
    fn breakdown_keys_are_separate() {
        let collector = Collector::start(2, 100);
        let mut on_android = batch(1, "example.com", 1);
        on_android.platform = Platform::Android;
        collector.ingest(encode_frame(&batch(1, "example.com", 1)).unwrap());
        collector.ingest(encode_frame(&on_android).unwrap());
        let (agg, _) = collector.finish();
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn threshold_enforcement_drops_sparse_domains() {
        let opts = CollectorOptions { privacy_threshold: Some(3), ..CollectorOptions::default() };
        let collector = Collector::start_opts(2, 100, opts);
        // 5 clients on example.com, a single client on rare.net.
        for i in 0..5 {
            collector.ingest(encode_frame(&batch(i, "example.com", 1)).unwrap());
        }
        collector.ingest(encode_frame(&batch(9, "rare.net", 2)).unwrap());
        let (agg, stats) = collector.finish();
        assert!(agg.contains_key(&key("example.com")));
        assert!(!agg.contains_key(&key("rare.net")));
        // rare.net's 2 loads → 2 initiated + 2 completed events dropped.
        assert_eq!(stats.dropped.threshold_capped, 4);
        assert_eq!(stats.events, 10);
    }

    #[test]
    fn server_side_downsampling_thins_foreground() {
        let opts =
            CollectorOptions { fg_keep_probability: Some(0.25), ..CollectorOptions::default() };
        let collector = Collector::start_opts(2, 100_000, opts);
        let n = 4_000u64;
        for i in 0..n {
            let b = ClientBatch {
                client_id: i,
                country: 0,
                platform: Platform::Windows,
                month: Month::February2022,
                events: vec![TelemetryEvent::ForegroundTime {
                    domain: "example.com".into(),
                    millis: 100,
                }],
            };
            collector.ingest(encode_frame(&b).unwrap());
        }
        let (agg, stats) = collector.finish();
        let kept = agg[&key("example.com")].foreground_events;
        assert_eq!(kept + stats.dropped.down_sampled, n);
        let rate = kept as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.04, "keep rate {rate}");
    }

    #[test]
    fn downsampling_is_deterministic() {
        assert_eq!(keep_foreground(42, 7, 0.5), keep_foreground(42, 7, 0.5));
        assert!(keep_foreground(42, 7, 1.0));
        assert!(!keep_foreground(42, 7, 0.0));
    }

    #[test]
    fn duplicate_frames_deduped_when_enabled() {
        // Baseline: each frame ingested once.
        let clean = Collector::start(2, 100);
        for i in 0..8 {
            clean.ingest(encode_frame(&batch(i, "example.com", 2)).unwrap());
        }
        let (clean_agg, _) = clean.finish();

        let opts = CollectorOptions { dedupe_frames: true, ..CollectorOptions::default() };
        let collector = Collector::start_opts(2, 100, opts);
        for i in 0..8 {
            let frame = encode_frame(&batch(i, "example.com", 2)).unwrap();
            collector.ingest(frame.clone());
            collector.ingest(frame); // duplicated in flight
        }
        let (agg, stats) = collector.finish();
        assert_eq!(stats.frames_ok, 8);
        assert_eq!(stats.frames_duplicate, 8);
        assert_eq!(agg, clean_agg, "dedupe must make duplication invisible");
    }

    #[test]
    fn duplicates_double_count_without_dedupe() {
        // The failure mode dedupe_frames defends against.
        let collector = Collector::start(2, 100);
        let frame = encode_frame(&batch(1, "example.com", 1)).unwrap();
        collector.ingest(frame.clone());
        collector.ingest(frame);
        let (agg, stats) = collector.finish();
        assert_eq!(stats.frames_duplicate, 0);
        assert_eq!(agg[&key("example.com")].completed, 2);
    }

    #[test]
    fn quarantine_classifies_poison_frames() {
        let obs = wwv_obs::global();
        let before_frames = obs.counter("collector.quarantine.frames").get();
        let before_bytes = obs.counter("collector.quarantine.bytes").get();
        let before_inc = obs.counter("collector.quarantine.incomplete").get();

        let collector = Collector::start(1, 100);
        let good = encode_frame(&batch(1, "example.com", 1)).unwrap();
        // Truncated frame: body shorter than the length prefix promises.
        let mut cut = good.to_vec();
        cut.truncate(good.len() - 3);
        let cut_len = cut.len() as u64;
        collector.ingest(Bytes::from(cut));
        collector.ingest(good);
        let (_, stats) = collector.finish();
        assert_eq!(stats.frames_ok, 1);
        assert_eq!(stats.frames_bad, 1);
        // Lower bounds, not exact deltas: other tests in this binary may
        // quarantine frames concurrently on the shared global registry.
        assert!(obs.counter("collector.quarantine.frames").get() > before_frames);
        assert!(obs.counter("collector.quarantine.bytes").get() >= before_bytes + cut_len);
        assert!(obs.counter("collector.quarantine.incomplete").get() > before_inc);
    }
}
