//! Concurrent telemetry collector.
//!
//! Ingests wire frames over a `crossbeam` channel, decodes them on worker
//! threads, and aggregates per-(country, platform, month, domain) counters.
//! Unique-client counting is capped: once a domain has been seen by more
//! clients than the privacy threshold, further ids are not stored (the exact
//! count above the threshold never matters).

use crate::event::TelemetryEvent;
use crate::hll::HyperLogLog;
use crate::privacy::is_public_domain;
use crate::wire::decode_frame;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use wwv_world::{Month, Platform};

/// Aggregated counters for one (breakdown, domain).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DomainStats {
    /// Initiated page loads.
    pub initiated: u64,
    /// Completed page loads.
    pub completed: u64,
    /// Uploaded (down-sampled) foreground events.
    pub foreground_events: u64,
    /// Total foreground milliseconds across uploaded events.
    pub foreground_millis: u64,
    /// Unique clients observed, capped at the collector's `client_cap`.
    pub unique_clients: u64,
}

/// Aggregation key (domain is interned per map entry).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggKey {
    /// Country index.
    pub country: u8,
    /// Platform.
    pub platform: Platform,
    /// Month.
    pub month: Month,
    /// Domain.
    pub domain: String,
}

/// Final aggregate: counters per key.
pub type Aggregate = HashMap<AggKey, DomainStats>;

/// Collector statistics (ingest health).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CollectorStats {
    /// Frames decoded successfully.
    pub frames_ok: u64,
    /// Frames rejected by the decoder.
    pub frames_bad: u64,
    /// Events dropped for non-public domains.
    pub non_public_dropped: u64,
    /// Events aggregated.
    pub events: u64,
}

/// Strategy for counting unique clients per domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientCounting {
    /// Exact hash sets, capped at the privacy threshold (simulation scale).
    Exact,
    /// HyperLogLog sketches at the given precision — constant memory per
    /// domain, the production-scale strategy. Sketches merge exactly across
    /// workers.
    Sketch(u8),
}

/// Per-worker unique-client tracker.
enum ClientTracker {
    Exact(HashSet<u64>),
    Sketch(HyperLogLog),
}

impl ClientTracker {
    fn new(mode: ClientCounting) -> ClientTracker {
        match mode {
            ClientCounting::Exact => ClientTracker::Exact(HashSet::new()),
            ClientCounting::Sketch(p) => ClientTracker::Sketch(
                HyperLogLog::new(p).expect("validated precision"),
            ),
        }
    }

    fn insert(&mut self, client_id: u64, slack: u64) {
        match self {
            ClientTracker::Exact(set) => {
                if (set.len() as u64) <= slack {
                    set.insert(client_id);
                }
            }
            ClientTracker::Sketch(hll) => hll.insert(client_id),
        }
    }

    fn merge(&mut self, other: ClientTracker) {
        match (self, other) {
            (ClientTracker::Exact(a), ClientTracker::Exact(b)) => a.extend(b),
            (ClientTracker::Sketch(a), ClientTracker::Sketch(b)) => {
                a.merge(&b);
            }
            _ => unreachable!("collector uses one counting mode per run"),
        }
    }

    fn count(&self) -> u64 {
        match self {
            ClientTracker::Exact(set) => set.len() as u64,
            ClientTracker::Sketch(hll) => hll.estimate().round() as u64,
        }
    }
}

/// Handle to a running collector.
pub struct Collector {
    sender: Option<Sender<Bytes>>,
    workers: Vec<JoinHandle<(Aggregate, HashMap<(u8, Platform, Month, String), ClientTracker>)>>,
    stats: Arc<Mutex<CollectorStats>>,
    client_cap: u64,
}

impl Collector {
    /// Starts `workers` aggregation threads with exact (capped) client
    /// counting. `client_cap` bounds per-domain unique-client tracking (set
    /// it to the privacy threshold).
    pub fn start(workers: usize, client_cap: u64) -> Self {
        Self::start_with(workers, client_cap, ClientCounting::Exact)
    }

    /// Starts a collector with HyperLogLog client counting (precision 12,
    /// ≈1.6% error — ample for threshold decisions).
    pub fn start_sketched(workers: usize, client_cap: u64) -> Self {
        Self::start_with(workers, client_cap, ClientCounting::Sketch(12))
    }

    /// Starts a collector with an explicit counting strategy.
    pub fn start_with(workers: usize, client_cap: u64, counting: ClientCounting) -> Self {
        let (tx, rx) = unbounded::<Bytes>();
        let stats = Arc::new(Mutex::new(CollectorStats::default()));
        let mut handles = Vec::with_capacity(workers.max(1));
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                let mut agg: Aggregate = HashMap::new();
                let mut clients: HashMap<(u8, Platform, Month, String), ClientTracker> =
                    HashMap::new();
                let mut local = CollectorStats::default();
                for mut frame in rx.iter() {
                    match decode_frame(&mut frame) {
                        Ok(batch) => {
                            local.frames_ok += 1;
                            let mut touched: HashSet<&str> = HashSet::new();
                            for event in &batch.events {
                                let domain = event.domain();
                                if !is_public_domain(domain) {
                                    local.non_public_dropped += 1;
                                    continue;
                                }
                                local.events += 1;
                                let key = AggKey {
                                    country: batch.country,
                                    platform: batch.platform,
                                    month: batch.month,
                                    domain: domain.to_owned(),
                                };
                                let entry = agg.entry(key).or_default();
                                match event {
                                    TelemetryEvent::PageLoadInitiated { .. } => entry.initiated += 1,
                                    TelemetryEvent::PageLoadCompleted { .. } => entry.completed += 1,
                                    TelemetryEvent::ForegroundTime { millis, .. } => {
                                        entry.foreground_events += 1;
                                        entry.foreground_millis += millis;
                                    }
                                }
                                touched.insert(domain);
                            }
                            for domain in touched {
                                let ckey = (
                                    batch.country,
                                    batch.platform,
                                    batch.month,
                                    domain.to_owned(),
                                );
                                clients
                                    .entry(ckey)
                                    .or_insert_with(|| ClientTracker::new(counting))
                                    .insert(batch.client_id, CLIENT_CAP_SLACK);
                            }
                        }
                        Err(_) => local.frames_bad += 1,
                    }
                }
                let mut shared = stats.lock();
                shared.frames_ok += local.frames_ok;
                shared.frames_bad += local.frames_bad;
                shared.non_public_dropped += local.non_public_dropped;
                shared.events += local.events;
                (agg, clients)
            }));
        }
        Collector { sender: Some(tx), workers: handles, stats, client_cap }
    }

    /// Ingests one encoded frame.
    pub fn ingest(&self, frame: Bytes) {
        self.sender
            .as_ref()
            .expect("collector still running")
            .send(frame)
            .expect("workers alive while sender exists");
    }

    /// Closes ingestion, joins workers, and returns the merged aggregate and
    /// ingest statistics. Unique-client counts are capped at `client_cap`.
    pub fn finish(mut self) -> (Aggregate, CollectorStats) {
        drop(self.sender.take());
        let mut merged: Aggregate = HashMap::new();
        let mut merged_clients: HashMap<(u8, Platform, Month, String), ClientTracker> =
            HashMap::new();
        for handle in self.workers.drain(..) {
            let (agg, clients) = handle.join().expect("worker thread panicked");
            for (key, value) in agg {
                let entry = merged.entry(key).or_default();
                entry.initiated += value.initiated;
                entry.completed += value.completed;
                entry.foreground_events += value.foreground_events;
                entry.foreground_millis += value.foreground_millis;
            }
            for (key, tracker) in clients {
                match merged_clients.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().merge(tracker);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(tracker);
                    }
                }
            }
        }
        for (key, tracker) in merged_clients {
            let agg_key = AggKey { country: key.0, platform: key.1, month: key.2, domain: key.3 };
            if let Some(entry) = merged.get_mut(&agg_key) {
                entry.unique_clients = tracker.count().min(self.client_cap);
            }
        }
        let stats = self.stats.lock().clone();
        (merged, stats)
    }
}

/// Per-worker unique-client tracking slack: workers keep a few more ids than
/// the cap so the post-merge count can still reach the cap even when clients
/// are spread across workers.
const CLIENT_CAP_SLACK: u64 = 1 << 14;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ClientBatch;
    use crate::wire::encode_frame;

    fn batch(client_id: u64, domain: &str, loads: usize) -> ClientBatch {
        ClientBatch {
            client_id,
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            events: (0..loads)
                .flat_map(|_| {
                    vec![
                        TelemetryEvent::PageLoadInitiated { domain: domain.into() },
                        TelemetryEvent::PageLoadCompleted { domain: domain.into() },
                    ]
                })
                .collect(),
        }
    }

    fn key(domain: &str) -> AggKey {
        AggKey {
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            domain: domain.into(),
        }
    }

    #[test]
    fn aggregates_counts() {
        let collector = Collector::start(4, 100);
        for i in 0..10 {
            collector.ingest(encode_frame(&batch(i, "example.com", 3)));
        }
        let (agg, stats) = collector.finish();
        let entry = &agg[&key("example.com")];
        assert_eq!(entry.initiated, 30);
        assert_eq!(entry.completed, 30);
        assert_eq!(entry.unique_clients, 10);
        assert_eq!(stats.frames_ok, 10);
        assert_eq!(stats.frames_bad, 0);
    }

    #[test]
    fn unique_clients_deduplicated() {
        let collector = Collector::start(2, 100);
        // Same client uploads twice.
        collector.ingest(encode_frame(&batch(7, "example.com", 1)));
        collector.ingest(encode_frame(&batch(7, "example.com", 1)));
        let (agg, _) = collector.finish();
        assert_eq!(agg[&key("example.com")].unique_clients, 1);
        assert_eq!(agg[&key("example.com")].completed, 2);
    }

    #[test]
    fn unique_clients_capped() {
        let collector = Collector::start(3, 5);
        for i in 0..50 {
            collector.ingest(encode_frame(&batch(i, "example.com", 1)));
        }
        let (agg, _) = collector.finish();
        assert_eq!(agg[&key("example.com")].unique_clients, 5);
    }

    #[test]
    fn non_public_domains_dropped() {
        let collector = Collector::start(2, 100);
        collector.ingest(encode_frame(&batch(1, "printer.local", 2)));
        collector.ingest(encode_frame(&batch(2, "example.com", 1)));
        let (agg, stats) = collector.finish();
        assert!(!agg.contains_key(&key("printer.local")));
        assert!(agg.contains_key(&key("example.com")));
        assert_eq!(stats.non_public_dropped, 4);
    }

    #[test]
    fn bad_frames_counted_not_fatal() {
        let collector = Collector::start(2, 100);
        collector.ingest(Bytes::from_static(&[3, 0, 0, 0, 1, 2, 3]));
        collector.ingest(encode_frame(&batch(1, "example.com", 1)));
        let (agg, stats) = collector.finish();
        assert_eq!(stats.frames_bad, 1);
        assert_eq!(stats.frames_ok, 1);
        assert_eq!(agg[&key("example.com")].completed, 1);
    }

    #[test]
    fn foreground_millis_accumulate() {
        let collector = Collector::start(2, 100);
        let b = ClientBatch {
            client_id: 1,
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            events: vec![
                TelemetryEvent::ForegroundTime { domain: "example.com".into(), millis: 1_000 },
                TelemetryEvent::ForegroundTime { domain: "example.com".into(), millis: 2_500 },
            ],
        };
        collector.ingest(encode_frame(&b));
        let (agg, _) = collector.finish();
        let entry = &agg[&key("example.com")];
        assert_eq!(entry.foreground_events, 2);
        assert_eq!(entry.foreground_millis, 3_500);
    }

    #[test]
    fn sketched_collector_counts_within_error() {
        let collector = Collector::start_sketched(3, 100_000);
        for i in 0..3_000u64 {
            collector.ingest(encode_frame(&batch(i, "example.com", 1)));
        }
        let (agg, _) = collector.finish();
        let count = agg[&key("example.com")].unique_clients as f64;
        assert!((count - 3_000.0).abs() < 300.0, "sketched count {count}");
    }

    #[test]
    fn sketched_and_exact_agree_on_threshold_side() {
        for n in [50u64, 5_000] {
            let exact = Collector::start(2, 100_000);
            let sketched = Collector::start_sketched(2, 100_000);
            for i in 0..n {
                exact.ingest(encode_frame(&batch(i, "example.com", 1)));
                sketched.ingest(encode_frame(&batch(i, "example.com", 1)));
            }
            let (ea, _) = exact.finish();
            let (sa, _) = sketched.finish();
            let e = ea[&key("example.com")].unique_clients;
            let s = sa[&key("example.com")].unique_clients;
            let threshold = 1_000;
            assert_eq!(e >= threshold, s >= threshold, "n={n}: exact {e} vs sketched {s}");
        }
    }

    #[test]
    fn breakdown_keys_are_separate() {
        let collector = Collector::start(2, 100);
        let mut on_android = batch(1, "example.com", 1);
        on_android.platform = Platform::Android;
        collector.ingest(encode_frame(&batch(1, "example.com", 1)));
        collector.ingest(encode_frame(&on_android));
        let (agg, _) = collector.finish();
        assert_eq!(agg.len(), 2);
    }
}
