//! Binary wire format for event-batch uploads.
//!
//! Frames are length-prefixed so a byte stream can carry back-to-back
//! batches:
//!
//! ```text
//! u32  payload length (LE, excluding this prefix)
//! u64  client id (LE)
//! u8   country index
//! u8   platform (0 = Windows, 1 = Android)
//! u8   month index (0 = 2021-09)
//! u16  event count (LE)
//! events:
//!   u8   kind (0 = initiated, 1 = completed, 2 = foreground)
//!   u8   domain length
//!   ...  domain bytes (ASCII)
//!   u64  value (LE; foreground millis, 0 otherwise)
//! ```

use crate::event::{ClientBatch, TelemetryEvent};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use wwv_world::{Month, Platform};

/// Maximum domain length on the wire.
pub const MAX_DOMAIN_LEN: usize = 253;
/// Maximum payload size accepted by the decoder (DoS guard).
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// Maximum events one frame can carry (the count field is a `u16`).
pub const MAX_EVENTS_PER_FRAME: usize = u16::MAX as usize;
/// Fixed bytes before the event array: client id + country + platform +
/// month + event count.
const HEADER_LEN: usize = 8 + 1 + 1 + 1 + 2;

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes for a complete frame; retry with more data.
    Incomplete,
    /// Payload length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Advertised length.
        len: usize,
    },
    /// Unknown event kind tag.
    BadEventKind {
        /// The offending tag.
        kind: u8,
    },
    /// Country index out of range.
    BadCountry {
        /// The offending index.
        index: u8,
    },
    /// Platform tag out of range.
    BadPlatform {
        /// The offending tag.
        tag: u8,
    },
    /// Month index out of range.
    BadMonth {
        /// The offending index.
        index: u8,
    },
    /// Domain bytes are not valid ASCII/UTF-8.
    BadDomain,
    /// Frame declared more/fewer events than its payload holds.
    Truncated,
    /// The batch cannot be represented in one frame: too many events for
    /// the `u16` count, a domain longer than [`MAX_DOMAIN_LEN`], or a
    /// payload over [`MAX_FRAME_LEN`]. Encode-side only — the old encoder
    /// silently wrapped the count and emitted a corrupt frame instead.
    TooLarge {
        /// Which limit was hit (`"events"`, `"domain"`, or `"frame"`).
        what: &'static str,
        /// Offending size.
        len: usize,
        /// The limit.
        max: usize,
    },
}

impl WireError {
    /// Stable snake_case name for metric labels and quarantine counters.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WireError::Incomplete => "incomplete",
            WireError::FrameTooLarge { .. } => "frame_too_large",
            WireError::BadEventKind { .. } => "bad_event_kind",
            WireError::BadCountry { .. } => "bad_country",
            WireError::BadPlatform { .. } => "bad_platform",
            WireError::BadMonth { .. } => "bad_month",
            WireError::BadDomain => "bad_domain",
            WireError::Truncated => "truncated",
            WireError::TooLarge { .. } => "too_large",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Incomplete => write!(f, "incomplete frame"),
            WireError::FrameTooLarge { len } => write!(f, "frame of {len} bytes exceeds limit"),
            WireError::BadEventKind { kind } => write!(f, "unknown event kind {kind}"),
            WireError::BadCountry { index } => write!(f, "country index {index} out of range"),
            WireError::BadPlatform { tag } => write!(f, "platform tag {tag} out of range"),
            WireError::BadMonth { index } => write!(f, "month index {index} out of range"),
            WireError::BadDomain => write!(f, "domain bytes are not valid UTF-8"),
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::TooLarge { what, len, max } => {
                write!(f, "batch does not fit one frame: {what} size {len} exceeds {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn platform_tag(p: Platform) -> u8 {
    match p {
        Platform::Windows => 0,
        Platform::Android => 1,
    }
}

fn event_kind(e: &TelemetryEvent) -> (u8, u64) {
    match e {
        TelemetryEvent::PageLoadInitiated { .. } => (0, 0),
        TelemetryEvent::PageLoadCompleted { .. } => (1, 0),
        TelemetryEvent::ForegroundTime { millis, .. } => (2, *millis),
    }
}

/// Bytes one event occupies on the wire.
fn event_wire_len(event: &TelemetryEvent) -> usize {
    1 + 1 + event.domain().len() + 8
}

/// Encodes a batch as one frame. Limits are enforced, not wrapped: a batch
/// with more than [`MAX_EVENTS_PER_FRAME`] events, a domain longer than
/// [`MAX_DOMAIN_LEN`], or a payload over [`MAX_FRAME_LEN`] returns
/// [`WireError::TooLarge`] instead of a corrupt-but-decodable frame (the
/// count and length fields used to be cast with `as u16`/`as u8`). Batches
/// too big for one frame can be split losslessly with [`encode_frames`].
pub fn encode_frame(batch: &ClientBatch) -> Result<Bytes, WireError> {
    if batch.events.len() > MAX_EVENTS_PER_FRAME {
        return Err(WireError::TooLarge {
            what: "events",
            len: batch.events.len(),
            max: MAX_EVENTS_PER_FRAME,
        });
    }
    let payload_len =
        HEADER_LEN + batch.events.iter().map(event_wire_len).sum::<usize>();
    if payload_len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge { what: "frame", len: payload_len, max: MAX_FRAME_LEN });
    }
    let mut payload = BytesMut::with_capacity(payload_len);
    payload.put_u64_le(batch.client_id);
    payload.put_u8(batch.country);
    payload.put_u8(platform_tag(batch.platform));
    payload.put_u8(batch.month.index() as u8);
    payload.put_u16_le(batch.events.len() as u16);
    for event in &batch.events {
        let (kind, value) = event_kind(event);
        let domain = event.domain().as_bytes();
        if domain.len() > MAX_DOMAIN_LEN {
            return Err(WireError::TooLarge {
                what: "domain",
                len: domain.len(),
                max: MAX_DOMAIN_LEN,
            });
        }
        payload.put_u8(kind);
        payload.put_u8(domain.len() as u8);
        payload.put_slice(domain);
        payload.put_u64_le(value);
    }
    let mut out = BytesMut::with_capacity(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    Ok(out.freeze())
}

/// Encodes a batch as one or more frames, splitting on the event-count and
/// payload-size limits. Decoding the frames in order yields sub-batches
/// with identical metadata whose concatenated events equal the input —
/// aggregation-safe (the collector is order- and grouping-independent).
/// Still fails typed on a domain that can never fit ([`MAX_DOMAIN_LEN`]).
pub fn encode_frames(batch: &ClientBatch) -> Result<Vec<Bytes>, WireError> {
    // Common case: everything fits in one frame.
    let total_payload =
        HEADER_LEN + batch.events.iter().map(event_wire_len).sum::<usize>();
    if batch.events.len() <= MAX_EVENTS_PER_FRAME && total_payload <= MAX_FRAME_LEN {
        return Ok(vec![encode_frame(batch)?]);
    }
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start < batch.events.len() {
        let mut payload = HEADER_LEN;
        let mut end = start;
        while end < batch.events.len() && end - start < MAX_EVENTS_PER_FRAME {
            let ev_len = event_wire_len(&batch.events[end]);
            if payload + ev_len > MAX_FRAME_LEN {
                break;
            }
            payload += ev_len;
            end += 1;
        }
        if end == start {
            // A single event that cannot fit: only possible via an
            // oversized domain; surface the typed error.
            let len = batch.events[start].domain().len();
            return Err(WireError::TooLarge { what: "domain", len, max: MAX_DOMAIN_LEN });
        }
        let chunk = ClientBatch {
            client_id: batch.client_id,
            country: batch.country,
            platform: batch.platform,
            month: batch.month,
            events: batch.events[start..end].to_vec(),
        };
        frames.push(encode_frame(&chunk)?);
        start = end;
    }
    if frames.is_empty() {
        // Zero-event batch still produces its (empty) frame.
        frames.push(encode_frame(batch)?);
    }
    Ok(frames)
}

/// Decodes one frame from the front of `buf`, advancing it past the frame.
/// Returns [`WireError::Incomplete`] (without consuming) when more bytes are
/// needed.
pub fn decode_frame(buf: &mut Bytes) -> Result<ClientBatch, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Incomplete);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    if buf.len() < 4 + len {
        return Err(WireError::Incomplete);
    }
    buf.advance(4);
    let mut payload = buf.split_to(len);
    decode_payload(&mut payload)
}

fn decode_payload(p: &mut Bytes) -> Result<ClientBatch, WireError> {
    if p.remaining() < 8 + 1 + 1 + 1 + 2 {
        return Err(WireError::Truncated);
    }
    let client_id = p.get_u64_le();
    let country = p.get_u8();
    if country as usize >= wwv_world::COUNTRIES.len() {
        return Err(WireError::BadCountry { index: country });
    }
    let platform = match p.get_u8() {
        0 => Platform::Windows,
        1 => Platform::Android,
        tag => return Err(WireError::BadPlatform { tag }),
    };
    let month_idx = p.get_u8();
    let month = *Month::ALL
        .get(month_idx as usize)
        .ok_or(WireError::BadMonth { index: month_idx })?;
    let count = p.get_u16_le() as usize;
    let mut events = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        if p.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        let kind = p.get_u8();
        let dlen = p.get_u8() as usize;
        if dlen > MAX_DOMAIN_LEN {
            return Err(WireError::BadDomain);
        }
        if p.remaining() < dlen + 8 {
            return Err(WireError::Truncated);
        }
        let domain_bytes = p.split_to(dlen);
        let domain =
            std::str::from_utf8(&domain_bytes).map_err(|_| WireError::BadDomain)?.to_owned();
        let value = p.get_u64_le();
        let event = match kind {
            0 => TelemetryEvent::PageLoadInitiated { domain },
            1 => TelemetryEvent::PageLoadCompleted { domain },
            2 => TelemetryEvent::ForegroundTime { domain, millis: value },
            other => return Err(WireError::BadEventKind { kind: other }),
        };
        events.push(event);
    }
    if p.has_remaining() {
        return Err(WireError::Truncated);
    }
    Ok(ClientBatch { client_id, country, platform, month, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> ClientBatch {
        ClientBatch {
            client_id: 0xDEAD_BEEF,
            country: 3,
            platform: Platform::Android,
            month: Month::December2021,
            events: vec![
                TelemetryEvent::PageLoadInitiated { domain: "example.com".into() },
                TelemetryEvent::PageLoadCompleted { domain: "example.com".into() },
                TelemetryEvent::ForegroundTime { domain: "example.com".into(), millis: 8_500 },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let batch = sample_batch();
        let mut bytes = encode_frame(&batch).unwrap();
        let decoded = decode_frame(&mut bytes).unwrap();
        assert_eq!(decoded, batch);
        assert!(bytes.is_empty(), "frame fully consumed");
    }

    #[test]
    fn back_to_back_frames() {
        let a = sample_batch();
        let mut b = sample_batch();
        b.client_id = 7;
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&encode_frame(&a).unwrap());
        stream.extend_from_slice(&encode_frame(&b).unwrap());
        let mut stream = stream.freeze();
        assert_eq!(decode_frame(&mut stream).unwrap(), a);
        assert_eq!(decode_frame(&mut stream).unwrap(), b);
        assert!(matches!(decode_frame(&mut stream), Err(WireError::Incomplete)));
    }

    #[test]
    fn incomplete_prefix() {
        let mut short = Bytes::from_static(&[1, 0]);
        assert_eq!(decode_frame(&mut short), Err(WireError::Incomplete));
        assert_eq!(short.len(), 2, "nothing consumed");
    }

    #[test]
    fn incomplete_payload() {
        let full = encode_frame(&sample_batch()).unwrap();
        let mut cut = full.slice(0..full.len() - 3);
        assert_eq!(decode_frame(&mut cut), Err(WireError::Incomplete));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        let mut bytes = bytes.freeze();
        assert!(matches!(decode_frame(&mut bytes), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn bad_event_kind_rejected() {
        let mut frame = BytesMut::from(&encode_frame(&sample_batch()).unwrap()[..]);
        // First event kind byte sits at offset 4 (len) + 8 + 1 + 1 + 1 + 2.
        frame[17] = 9;
        let mut frame = frame.freeze();
        assert_eq!(decode_frame(&mut frame), Err(WireError::BadEventKind { kind: 9 }));
    }

    #[test]
    fn bad_country_rejected() {
        let mut batch = sample_batch();
        batch.country = 250;
        let mut frame = encode_frame(&batch).unwrap();
        assert_eq!(decode_frame(&mut frame), Err(WireError::BadCountry { index: 250 }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let good = encode_frame(&sample_batch()).unwrap();
        // Grow the declared length by 1 and append a junk byte.
        let mut raw = BytesMut::from(&good[..]);
        let len = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]) + 1;
        raw[0..4].copy_from_slice(&len.to_le_bytes());
        raw.put_u8(0xFF);
        let mut raw = raw.freeze();
        assert_eq!(decode_frame(&mut raw), Err(WireError::Truncated));
    }

    /// Regression: a >255-byte domain used to encode its length as
    /// `len as u8` (wrapping), producing a corrupt-but-decodable frame.
    #[test]
    fn oversized_domain_is_a_typed_encode_error() {
        let mut batch = sample_batch();
        batch.events = vec![TelemetryEvent::PageLoadInitiated { domain: "x".repeat(300) }];
        assert_eq!(
            encode_frame(&batch),
            Err(WireError::TooLarge { what: "domain", len: 300, max: MAX_DOMAIN_LEN })
        );
        // Splitting can't help an un-encodable event either.
        assert!(matches!(
            encode_frames(&batch),
            Err(WireError::TooLarge { what: "domain", .. })
        ));
    }

    /// Regression: a >65535-event batch used to encode its count as
    /// `len as u16` (wrapping), silently orphaning the excess events.
    #[test]
    fn oversized_event_count_is_a_typed_encode_error() {
        let mut batch = sample_batch();
        batch.events = (0..MAX_EVENTS_PER_FRAME + 1)
            .map(|_| TelemetryEvent::PageLoadInitiated { domain: "a.com".into() })
            .collect();
        assert!(matches!(
            encode_frame(&batch),
            Err(WireError::TooLarge { what: "events", .. })
        ));
    }

    #[test]
    fn oversized_payload_is_a_typed_encode_error() {
        // 4,000 events with 253-byte domains: ~1.05 MB payload > MAX_FRAME_LEN.
        let mut batch = sample_batch();
        batch.events = (0..4_000)
            .map(|_| TelemetryEvent::PageLoadInitiated { domain: "d".repeat(MAX_DOMAIN_LEN) })
            .collect();
        assert!(matches!(
            encode_frame(&batch),
            Err(WireError::TooLarge { what: "frame", .. })
        ));
    }

    /// `encode_frames` splits a too-big batch into decodable frames whose
    /// concatenated events reproduce the input exactly.
    #[test]
    fn split_batches_roundtrip_losslessly() {
        let mut batch = sample_batch();
        batch.events = (0..70_000u64)
            .map(|i| TelemetryEvent::ForegroundTime { domain: "site.com".into(), millis: i })
            .collect();
        let frames = encode_frames(&batch).unwrap();
        assert!(frames.len() >= 2, "70k events must split, got {} frames", frames.len());
        let mut events = Vec::new();
        for frame in frames {
            let mut frame = frame;
            let sub = decode_frame(&mut frame).expect("split frame decodes");
            assert_eq!(sub.client_id, batch.client_id);
            assert_eq!(sub.country, batch.country);
            assert_eq!(sub.platform, batch.platform);
            assert_eq!(sub.month, batch.month);
            assert!(sub.events.len() <= MAX_EVENTS_PER_FRAME);
            events.extend(sub.events);
        }
        assert_eq!(events, batch.events);
    }

    /// The payload-size limit also forces splits (before the u16 count does).
    #[test]
    fn split_respects_frame_len_limit() {
        let mut batch = sample_batch();
        batch.events = (0..8_000)
            .map(|_| TelemetryEvent::PageLoadInitiated { domain: "d".repeat(MAX_DOMAIN_LEN) })
            .collect();
        let frames = encode_frames(&batch).unwrap();
        assert!(frames.len() >= 2);
        let mut total = 0usize;
        for frame in frames {
            assert!(frame.len() <= 4 + MAX_FRAME_LEN);
            let mut frame = frame;
            total += decode_frame(&mut frame).unwrap().events.len();
        }
        assert_eq!(total, 8_000);
    }

    /// Decode mirrors the encode-side domain limit: a length byte above
    /// `MAX_DOMAIN_LEN` (254–255) can only come from a corrupt frame.
    #[test]
    fn decode_rejects_overlong_domain_length() {
        let mut payload = BytesMut::new();
        payload.put_u64_le(1); // client id
        payload.put_u8(0); // country
        payload.put_u8(0); // platform
        payload.put_u8(0); // month
        payload.put_u16_le(1); // one event
        payload.put_u8(0); // kind
        payload.put_u8(255); // domain length beyond MAX_DOMAIN_LEN
        payload.extend_from_slice(&[b'a'; 255]);
        payload.put_u64_le(0);
        let mut out = BytesMut::new();
        out.put_u32_le(payload.len() as u32);
        out.extend_from_slice(&payload);
        let mut frame = out.freeze();
        assert_eq!(decode_frame(&mut frame), Err(WireError::BadDomain));
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = ClientBatch {
            client_id: 1,
            country: 0,
            platform: Platform::Windows,
            month: Month::September2021,
            events: vec![],
        };
        let mut bytes = encode_frame(&batch).unwrap();
        assert_eq!(decode_frame(&mut bytes).unwrap(), batch);
    }
}
