//! Binary wire format for event-batch uploads.
//!
//! Frames are length-prefixed so a byte stream can carry back-to-back
//! batches:
//!
//! ```text
//! u32  payload length (LE, excluding this prefix)
//! u64  client id (LE)
//! u8   country index
//! u8   platform (0 = Windows, 1 = Android)
//! u8   month index (0 = 2021-09)
//! u16  event count (LE)
//! events:
//!   u8   kind (0 = initiated, 1 = completed, 2 = foreground)
//!   u8   domain length
//!   ...  domain bytes (ASCII)
//!   u64  value (LE; foreground millis, 0 otherwise)
//! ```

use crate::event::{ClientBatch, TelemetryEvent};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use wwv_world::{Month, Platform};

/// Maximum domain length on the wire.
pub const MAX_DOMAIN_LEN: usize = 253;
/// Maximum payload size accepted by the decoder (DoS guard).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes for a complete frame; retry with more data.
    Incomplete,
    /// Payload length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Advertised length.
        len: usize,
    },
    /// Unknown event kind tag.
    BadEventKind {
        /// The offending tag.
        kind: u8,
    },
    /// Country index out of range.
    BadCountry {
        /// The offending index.
        index: u8,
    },
    /// Platform tag out of range.
    BadPlatform {
        /// The offending tag.
        tag: u8,
    },
    /// Month index out of range.
    BadMonth {
        /// The offending index.
        index: u8,
    },
    /// Domain bytes are not valid ASCII/UTF-8.
    BadDomain,
    /// Frame declared more/fewer events than its payload holds.
    Truncated,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Incomplete => write!(f, "incomplete frame"),
            WireError::FrameTooLarge { len } => write!(f, "frame of {len} bytes exceeds limit"),
            WireError::BadEventKind { kind } => write!(f, "unknown event kind {kind}"),
            WireError::BadCountry { index } => write!(f, "country index {index} out of range"),
            WireError::BadPlatform { tag } => write!(f, "platform tag {tag} out of range"),
            WireError::BadMonth { index } => write!(f, "month index {index} out of range"),
            WireError::BadDomain => write!(f, "domain bytes are not valid UTF-8"),
            WireError::Truncated => write!(f, "frame payload truncated"),
        }
    }
}

impl std::error::Error for WireError {}

fn platform_tag(p: Platform) -> u8 {
    match p {
        Platform::Windows => 0,
        Platform::Android => 1,
    }
}

fn event_kind(e: &TelemetryEvent) -> (u8, u64) {
    match e {
        TelemetryEvent::PageLoadInitiated { .. } => (0, 0),
        TelemetryEvent::PageLoadCompleted { .. } => (1, 0),
        TelemetryEvent::ForegroundTime { millis, .. } => (2, *millis),
    }
}

/// Encodes a batch as one frame.
pub fn encode_frame(batch: &ClientBatch) -> Bytes {
    let mut payload = BytesMut::with_capacity(64 + batch.events.len() * 32);
    payload.put_u64_le(batch.client_id);
    payload.put_u8(batch.country);
    payload.put_u8(platform_tag(batch.platform));
    payload.put_u8(batch.month.index() as u8);
    payload.put_u16_le(batch.events.len() as u16);
    for event in &batch.events {
        let (kind, value) = event_kind(event);
        let domain = event.domain().as_bytes();
        debug_assert!(domain.len() <= MAX_DOMAIN_LEN);
        payload.put_u8(kind);
        payload.put_u8(domain.len() as u8);
        payload.put_slice(domain);
        payload.put_u64_le(value);
    }
    let mut out = BytesMut::with_capacity(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    out.freeze()
}

/// Decodes one frame from the front of `buf`, advancing it past the frame.
/// Returns [`WireError::Incomplete`] (without consuming) when more bytes are
/// needed.
pub fn decode_frame(buf: &mut Bytes) -> Result<ClientBatch, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Incomplete);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    if buf.len() < 4 + len {
        return Err(WireError::Incomplete);
    }
    buf.advance(4);
    let mut payload = buf.split_to(len);
    decode_payload(&mut payload)
}

fn decode_payload(p: &mut Bytes) -> Result<ClientBatch, WireError> {
    if p.remaining() < 8 + 1 + 1 + 1 + 2 {
        return Err(WireError::Truncated);
    }
    let client_id = p.get_u64_le();
    let country = p.get_u8();
    if country as usize >= wwv_world::COUNTRIES.len() {
        return Err(WireError::BadCountry { index: country });
    }
    let platform = match p.get_u8() {
        0 => Platform::Windows,
        1 => Platform::Android,
        tag => return Err(WireError::BadPlatform { tag }),
    };
    let month_idx = p.get_u8();
    let month = *Month::ALL
        .get(month_idx as usize)
        .ok_or(WireError::BadMonth { index: month_idx })?;
    let count = p.get_u16_le() as usize;
    let mut events = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        if p.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        let kind = p.get_u8();
        let dlen = p.get_u8() as usize;
        if p.remaining() < dlen + 8 {
            return Err(WireError::Truncated);
        }
        let domain_bytes = p.split_to(dlen);
        let domain =
            std::str::from_utf8(&domain_bytes).map_err(|_| WireError::BadDomain)?.to_owned();
        let value = p.get_u64_le();
        let event = match kind {
            0 => TelemetryEvent::PageLoadInitiated { domain },
            1 => TelemetryEvent::PageLoadCompleted { domain },
            2 => TelemetryEvent::ForegroundTime { domain, millis: value },
            other => return Err(WireError::BadEventKind { kind: other }),
        };
        events.push(event);
    }
    if p.has_remaining() {
        return Err(WireError::Truncated);
    }
    Ok(ClientBatch { client_id, country, platform, month, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> ClientBatch {
        ClientBatch {
            client_id: 0xDEAD_BEEF,
            country: 3,
            platform: Platform::Android,
            month: Month::December2021,
            events: vec![
                TelemetryEvent::PageLoadInitiated { domain: "example.com".into() },
                TelemetryEvent::PageLoadCompleted { domain: "example.com".into() },
                TelemetryEvent::ForegroundTime { domain: "example.com".into(), millis: 8_500 },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let batch = sample_batch();
        let mut bytes = encode_frame(&batch);
        let decoded = decode_frame(&mut bytes).unwrap();
        assert_eq!(decoded, batch);
        assert!(bytes.is_empty(), "frame fully consumed");
    }

    #[test]
    fn back_to_back_frames() {
        let a = sample_batch();
        let mut b = sample_batch();
        b.client_id = 7;
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&encode_frame(&a));
        stream.extend_from_slice(&encode_frame(&b));
        let mut stream = stream.freeze();
        assert_eq!(decode_frame(&mut stream).unwrap(), a);
        assert_eq!(decode_frame(&mut stream).unwrap(), b);
        assert!(matches!(decode_frame(&mut stream), Err(WireError::Incomplete)));
    }

    #[test]
    fn incomplete_prefix() {
        let mut short = Bytes::from_static(&[1, 0]);
        assert_eq!(decode_frame(&mut short), Err(WireError::Incomplete));
        assert_eq!(short.len(), 2, "nothing consumed");
    }

    #[test]
    fn incomplete_payload() {
        let full = encode_frame(&sample_batch());
        let mut cut = full.slice(0..full.len() - 3);
        assert_eq!(decode_frame(&mut cut), Err(WireError::Incomplete));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        let mut bytes = bytes.freeze();
        assert!(matches!(decode_frame(&mut bytes), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn bad_event_kind_rejected() {
        let mut frame = BytesMut::from(&encode_frame(&sample_batch())[..]);
        // First event kind byte sits at offset 4 (len) + 8 + 1 + 1 + 1 + 2.
        frame[17] = 9;
        let mut frame = frame.freeze();
        assert_eq!(decode_frame(&mut frame), Err(WireError::BadEventKind { kind: 9 }));
    }

    #[test]
    fn bad_country_rejected() {
        let mut batch = sample_batch();
        batch.country = 250;
        let mut frame = encode_frame(&batch);
        assert_eq!(decode_frame(&mut frame), Err(WireError::BadCountry { index: 250 }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let good = encode_frame(&sample_batch());
        // Grow the declared length by 1 and append a junk byte.
        let mut raw = BytesMut::from(&good[..]);
        let len = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]) + 1;
        raw[0..4].copy_from_slice(&len.to_le_bytes());
        raw.put_u8(0xFF);
        let mut raw = raw.freeze();
        assert_eq!(decode_frame(&mut raw), Err(WireError::Truncated));
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = ClientBatch {
            client_id: 1,
            country: 0,
            platform: Platform::Windows,
            month: Month::September2021,
            events: vec![],
        };
        let mut bytes = encode_frame(&batch);
        assert_eq!(decode_frame(&mut bytes).unwrap(), batch);
    }
}
