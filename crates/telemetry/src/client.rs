//! Simulated client populations.
//!
//! Clients draw their page loads from the world model's demand distribution
//! for their (country, platform, month), emit initiated/completed load
//! events, apply the client-side 0.35% foreground down-sampling, and
//! occasionally visit non-public domains (which the pipeline must drop).

use crate::event::{ClientBatch, TelemetryEvent};
use crate::privacy::FOREGROUND_UPLOAD_PROBABILITY;
use crate::sampling::{bernoulli, poisson};
use wwv_world::{Breakdown, SiteId, World};

/// Generates client event batches for one breakdown's population.
#[derive(Debug)]
pub struct ClientSimulator<'w> {
    world: &'w World,
    /// Mean page loads per client per month.
    pub mean_loads: f64,
    /// Probability that a load targets a non-public domain (intranets etc.).
    pub non_public_rate: f64,
}

impl<'w> ClientSimulator<'w> {
    /// Creates a simulator with defaults (≈80 loads per client per month,
    /// 1% intranet traffic).
    pub fn new(world: &'w World) -> Self {
        ClientSimulator { world, mean_loads: 80.0, non_public_rate: 0.01 }
    }

    /// Emits batches for `clients` clients of a breakdown (the `metric`
    /// field of the breakdown is ignored; clients emit raw events and
    /// metrics are an aggregation-side concept).
    pub fn batches(&self, b: Breakdown, clients: u64) -> Vec<ClientBatch> {
        let _span = wwv_obs::span!("client.batches");
        // Cumulative demand for weighted sampling.
        let demand = self.world.demand(b);
        let mut cumulative: Vec<f64> = Vec::with_capacity(demand.len());
        let mut acc = 0.0;
        for (_, w) in &demand {
            acc += *w;
            cumulative.push(acc);
        }
        let seed = self.world.config().seed;
        let mut out = Vec::with_capacity(clients as usize);
        for c in 0..clients {
            let client_id = seed.derive_indexed("client-id", c ^ (b.country as u64) << 32);
            let stream = client_id ^ b.month.index() as u64;
            let n_loads = poisson(seed, "client-loads", stream, self.mean_loads);
            let mut events = Vec::with_capacity((n_loads as usize).min(4096) * 2);
            for l in 0..n_loads {
                let draw_idx = stream.wrapping_mul(1 + l).wrapping_add(l);
                let site = if bernoulli(seed, "np", draw_idx, self.non_public_rate) {
                    None
                } else {
                    Some(self.sample_site(&demand, &cumulative, draw_idx))
                };
                let domain = match site {
                    Some(id) => self.world.domain_of(id, b.country),
                    None => format!("host{}.corp", draw_idx % 50),
                };
                events.push(TelemetryEvent::PageLoadInitiated { domain: domain.clone() });
                // A small fraction of loads never reach FCP.
                if !bernoulli(seed, "abandon", draw_idx, 0.04) {
                    events.push(TelemetryEvent::PageLoadCompleted { domain: domain.clone() });
                    // Foreground events are client-side down-sampled.
                    if bernoulli(seed, "fg", draw_idx, FOREGROUND_UPLOAD_PROBABILITY) {
                        let dwell_ms = match site {
                            Some(id) => {
                                (self.world.universe().site(id).dwell * 1000.0).round() as u64
                            }
                            None => 30_000,
                        };
                        events.push(TelemetryEvent::ForegroundTime { domain, millis: dwell_ms });
                    }
                }
            }
            out.push(ClientBatch {
                client_id,
                country: b.country as u8,
                platform: b.platform,
                month: b.month,
                events,
            });
        }
        wwv_obs::global()
            .counter("client.events_emitted")
            .add(out.iter().map(|b| b.events.len() as u64).sum());
        out
    }

    fn sample_site(&self, demand: &[(SiteId, f64)], cumulative: &[f64], idx: u64) -> SiteId {
        let seed = self.world.config().seed;
        let total = *cumulative.last().expect("non-empty demand");
        let u = ((seed.derive_indexed("site-draw", idx) >> 11) as f64 / (1u64 << 53) as f64) * total;
        let pos = cumulative.partition_point(|c| *c < u);
        demand[pos.min(demand.len() - 1)].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::{Country, Metric, Month, Platform, WorldConfig};

    fn small_world() -> World {
        World::new(WorldConfig::small())
    }

    fn breakdown() -> Breakdown {
        Breakdown {
            country: Country::index_of("US").unwrap(),
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            month: Month::February2022,
        }
    }

    #[test]
    fn batches_are_deterministic() {
        let world = small_world();
        let sim = ClientSimulator::new(&world);
        let a = sim.batches(breakdown(), 5);
        let b = sim.batches(breakdown(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn clients_emit_roughly_mean_loads() {
        let world = small_world();
        let sim = ClientSimulator::new(&world);
        let batches = sim.batches(breakdown(), 50);
        let total_initiated: usize = batches
            .iter()
            .map(|b| {
                b.events
                    .iter()
                    .filter(|e| matches!(e, TelemetryEvent::PageLoadInitiated { .. }))
                    .count()
            })
            .sum();
        let mean = total_initiated as f64 / 50.0;
        assert!((mean - 80.0).abs() < 10.0, "mean loads {mean}");
    }

    #[test]
    fn popular_sites_dominate_draws() {
        let world = small_world();
        let sim = ClientSimulator::new(&world);
        let batches = sim.batches(breakdown(), 60);
        let google_loads = batches
            .iter()
            .flat_map(|b| &b.events)
            .filter(|e| e.domain() == "google.com")
            .count();
        let total: usize = batches.iter().map(|b| b.events.len()).sum();
        let share = google_loads as f64 / total as f64;
        assert!(share > 0.10, "google share {share}");
    }

    #[test]
    fn foreground_events_are_rare() {
        let world = small_world();
        let sim = ClientSimulator::new(&world);
        let batches = sim.batches(breakdown(), 100);
        let fg: usize = batches
            .iter()
            .flat_map(|b| &b.events)
            .filter(|e| matches!(e, TelemetryEvent::ForegroundTime { .. }))
            .count();
        let completed: usize = batches
            .iter()
            .flat_map(|b| &b.events)
            .filter(|e| matches!(e, TelemetryEvent::PageLoadCompleted { .. }))
            .count();
        let rate = fg as f64 / completed as f64;
        assert!(rate < 0.03, "foreground upload rate {rate} should be ~0.35%");
    }

    #[test]
    fn some_non_public_traffic_present() {
        let world = small_world();
        let sim = ClientSimulator::new(&world);
        let batches = sim.batches(breakdown(), 100);
        let np = batches
            .iter()
            .flat_map(|b| &b.events)
            .filter(|e| e.domain().ends_with(".corp"))
            .count();
        assert!(np > 0, "intranet traffic should appear before filtering");
    }

    #[test]
    fn batch_metadata_matches_breakdown() {
        let world = small_world();
        let sim = ClientSimulator::new(&world);
        let b = breakdown();
        for batch in sim.batches(b, 5) {
            assert_eq!(batch.country as usize, b.country);
            assert_eq!(batch.platform, b.platform);
            assert_eq!(batch.month, b.month);
        }
    }
}
