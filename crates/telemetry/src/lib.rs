//! # wwv-telemetry
//!
//! A Chrome-like telemetry pipeline: the substrate standing in for the
//! browser-side collection infrastructure behind the paper's dataset (§3.1).
//!
//! The full client path is implemented and exercised end-to-end:
//!
//! * [`event`] — browsing events (initiated/completed page loads, foreground
//!   time) as clients emit them;
//! * [`wire`] — a length-prefixed binary frame codec for event-batch uploads;
//! * [`client`] — simulated client populations emitting event batches drawn
//!   from the world model's demand distributions;
//! * [`collector`] — a concurrent aggregation service (worker threads over
//!   `crossbeam` channels, sharded counters) that ingests frames, with
//!   poison-frame quarantine and optional duplicate-frame suppression;
//! * [`upload`] — the fault-tolerant client upload path: batch splitting,
//!   capped-backoff connect retries, and `wwv-fault` injection points;
//! * [`privacy`] — the paper's three safeguards: unique-client thresholding,
//!   0.35% down-sampling of foreground events, and non-public-domain
//!   exclusion;
//! * [`sampling`] — deterministic Poisson/normal samplers;
//! * [`dataset`] — the [`dataset::ChromeDataset`] artifact the analyses
//!   consume: monthly per-(country, platform, metric) rank lists plus the
//!   global traffic-distribution curves;
//! * [`builder`] — dataset construction. Event-level simulation is exact but
//!   cannot reach hundreds of millions of users, so the builder samples each
//!   domain's monthly aggregate count directly from its demand expectation
//!   (Poisson), which is distributionally identical to aggregating the event
//!   stream; the event path itself is validated against the expectation path
//!   in tests.

pub mod builder;
pub mod crux;
pub mod hll;
pub mod client;
pub mod collector;
pub mod dataset;
pub mod event;
pub mod persist;
pub mod privacy;
pub mod sampling;
pub mod upload;
pub mod wire;

pub use builder::DatasetBuilder;
pub use collector::client_partition;
pub use hll::HyperLogLog;
pub use dataset::{ChromeDataset, DomainId, DomainTable, RankListData};
pub use event::{ClientBatch, TelemetryEvent};
pub use upload::{UploadError, UploadStats, Uploader};
pub use wire::{decode_frame, encode_frame, encode_frames, WireError};
