//! Client-side upload path with fault tolerance.
//!
//! [`Uploader`] is the piece between a simulated client and the collector:
//! it splits batches into wire frames ([`crate::wire::encode_frames`]),
//! survives transient connect failures with capped exponential backoff +
//! jitter ([`wwv_fault::RetryPolicy`]), and is the place where a
//! [`FaultPlan`] injects transport mess — corruption, truncation,
//! duplication, reordering, delays, and dropped connections — at the
//! `client.connect` / `client.upload` points.
//!
//! Nothing is lost silently: every frame ends up delivered (possibly
//! mutated), or accounted in [`UploadStats::frames_abandoned`] behind a
//! typed [`UploadError`].

use crate::collector::Collector;
use crate::event::ClientBatch;
use crate::wire::{self, WireError};
use bytes::Bytes;
use std::fmt;
use std::sync::Arc;
use wwv_fault::{points, FaultPlan, FrameFate, RetryPolicy};

/// Why an upload failed (typed; the caller decides whether to drop or
/// escalate — the stats always record the outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadError {
    /// The batch cannot be framed at all (oversized domain).
    Encode(WireError),
    /// Connect kept failing past the retry budget.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for UploadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UploadError::Encode(e) => write!(f, "cannot encode batch: {e}"),
            UploadError::RetriesExhausted { attempts } => {
                write!(f, "upload abandoned after {attempts} connect attempts")
            }
        }
    }
}

impl std::error::Error for UploadError {}

/// Delivery accounting for one uploader.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UploadStats {
    /// Frames handed to the collector (duplicates included).
    pub frames_sent: u64,
    /// Frames lost to exhausted connect retries (each reported via a typed
    /// [`UploadError::RetriesExhausted`], never silently).
    pub frames_abandoned: u64,
    /// Frames lost in flight to an injected `Drop` fault. Mirrored to the
    /// `upload.frames_lost` obs counter so accounting can be reconciled
    /// against the fault plan's fired counters.
    pub frames_lost: u64,
    /// Connect retries that eventually succeeded.
    pub retries: u64,
    /// Extra copies sent by injected duplication.
    pub duplicates_sent: u64,
    /// Frame pairs swapped by injected reordering.
    pub reordered: u64,
    /// Frames stalled by injected delay.
    pub delayed: u64,
}

/// Fault-aware bridge from client batches to a [`Collector`].
pub struct Uploader<'c> {
    collector: &'c Collector,
    plan: Arc<FaultPlan>,
    retry: RetryPolicy,
    /// A frame held back by an injected reorder; it ships after the next one.
    held: Option<Bytes>,
    stats: UploadStats,
    seq: u64,
}

impl<'c> Uploader<'c> {
    /// A fault-free uploader (the production path).
    pub fn new(collector: &'c Collector) -> Uploader<'c> {
        Uploader::with_faults(collector, Arc::new(FaultPlan::none()), RetryPolicy::default())
    }

    /// An uploader whose traffic passes through `plan` with `retry`
    /// governing transient connect failures.
    pub fn with_faults(
        collector: &'c Collector,
        plan: Arc<FaultPlan>,
        retry: RetryPolicy,
    ) -> Uploader<'c> {
        Uploader { collector, plan, retry, held: None, stats: UploadStats::default(), seq: 0 }
    }

    /// Uploads one batch, splitting it into as many frames as the wire
    /// limits require. Returns the first typed failure, if any (already
    /// accounted in the stats by then).
    pub fn upload(&mut self, batch: &ClientBatch) -> Result<(), UploadError> {
        let frames = wire::encode_frames(batch).map_err(UploadError::Encode)?;
        for frame in frames {
            self.upload_frame(frame)?;
        }
        Ok(())
    }

    /// Flushes any reorder-held frame and returns the delivery accounting.
    pub fn finish(mut self) -> UploadStats {
        if let Some(frame) = self.held.take() {
            self.deliver(frame);
        }
        self.stats
    }

    /// Accounting so far (the borrow-free snapshot).
    pub fn stats(&self) -> UploadStats {
        self.stats
    }

    fn upload_frame(&mut self, frame: Bytes) -> Result<(), UploadError> {
        self.seq += 1;
        // Connection establishment: an injected Drop is a transient connect
        // failure the retry policy absorbs; anything else proceeds.
        let connect_seed = self.plan.seed() ^ self.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let connect = self.retry.run(connect_seed, |_attempt| {
            match self.plan.decide(points::CLIENT_CONNECT) {
                Some((wwv_fault::FaultKind::Drop, _)) => Err("connection dropped"),
                _ => Ok(()),
            }
        });
        match connect {
            Ok(((), attempts)) => self.stats.retries += attempts as u64 - 1,
            Err(exhausted) => {
                self.stats.frames_abandoned += 1;
                wwv_obs::global().counter("upload.abandoned").inc();
                return Err(UploadError::RetriesExhausted { attempts: exhausted.attempts });
            }
        }
        // In-flight faults on the encoded bytes.
        match self.plan.apply_to_frame(points::CLIENT_UPLOAD, frame.to_vec()) {
            FrameFate::Deliver(bytes) => {
                self.deliver(Bytes::from(bytes));
                self.flush_held();
            }
            FrameFate::DeliverTwice(bytes) => {
                let bytes = Bytes::from(bytes);
                self.deliver(bytes.clone());
                self.deliver(bytes);
                self.stats.duplicates_sent += 1;
                self.flush_held();
            }
            FrameFate::HoldForReorder(bytes) => {
                // Hold this frame: it ships behind its successor (or at
                // `finish`). Two consecutive reorders release the older one.
                if let Some(prev) = self.held.replace(Bytes::from(bytes)) {
                    self.deliver(prev);
                }
                self.stats.reordered += 1;
            }
            FrameFate::Delayed(bytes, delay) => {
                std::thread::sleep(delay);
                self.stats.delayed += 1;
                self.deliver(Bytes::from(bytes));
                self.flush_held();
            }
            FrameFate::Dropped => {
                // Lost in flight — fire-and-forget from the client's view,
                // but fully accounted for reconciliation.
                self.stats.frames_lost += 1;
                wwv_obs::global().counter("upload.frames_lost").inc();
            }
        }
        Ok(())
    }

    fn deliver(&mut self, frame: Bytes) {
        self.collector.ingest(frame);
        self.stats.frames_sent += 1;
    }

    /// Ships a reorder-held predecessor now that its successor went out.
    fn flush_held(&mut self) {
        if let Some(held) = self.held.take() {
            self.deliver(held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;
    use wwv_fault::{FaultKind, FaultRule};
    use wwv_world::{Month, Platform};

    fn batch(client_id: u64, loads: usize) -> ClientBatch {
        ClientBatch {
            client_id,
            country: 0,
            platform: Platform::Windows,
            month: Month::February2022,
            events: (0..loads)
                .flat_map(|_| {
                    vec![
                        TelemetryEvent::PageLoadInitiated { domain: "example.com".into() },
                        TelemetryEvent::PageLoadCompleted { domain: "example.com".into() },
                    ]
                })
                .collect(),
        }
    }

    fn clean_aggregate(n: u64) -> (crate::collector::Aggregate, crate::collector::CollectorStats) {
        let collector = Collector::start(2, 1_000);
        let mut up = Uploader::new(&collector);
        for i in 0..n {
            up.upload(&batch(i, 2)).unwrap();
        }
        let stats = up.finish();
        assert_eq!(stats.frames_sent, n);
        collector.finish()
    }

    #[test]
    fn fault_free_uploader_is_transparent() {
        let (agg, stats) = clean_aggregate(10);
        assert_eq!(stats.frames_ok, 10);
        assert_eq!(stats.frames_bad, 0);
        assert_eq!(agg.values().map(|v| v.completed).sum::<u64>(), 20);
    }

    #[test]
    fn transient_connect_drops_recover_to_identical_aggregate() {
        let (clean_agg, clean_stats) = clean_aggregate(20);
        let plan = Arc::new(FaultPlan::new(11).with(FaultRule {
            point: points::CLIENT_CONNECT,
            kind: FaultKind::Drop,
            rate: 0.4,
        }));
        let collector = Collector::start(2, 1_000);
        let retry = RetryPolicy { max_attempts: 12, ..RetryPolicy::default() };
        let mut up = Uploader::with_faults(&collector, Arc::clone(&plan), retry);
        for i in 0..20 {
            up.upload(&batch(i, 2)).unwrap();
        }
        let ustats = up.finish();
        assert!(ustats.retries > 0, "rate 0.4 over 20 frames must retry");
        assert_eq!(ustats.frames_abandoned, 0, "seeded run must not exhaust 12 attempts");
        let (agg, stats) = collector.finish();
        assert_eq!(agg, clean_agg, "retried uploads must reproduce the aggregate exactly");
        assert_eq!(stats, clean_stats);
    }

    #[test]
    fn permanent_connect_failure_is_typed_and_accounted() {
        let plan = Arc::new(FaultPlan::new(3).with(FaultRule {
            point: points::CLIENT_CONNECT,
            kind: FaultKind::Drop,
            rate: 1.0,
        }));
        let collector = Collector::start(1, 100);
        let retry = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let mut up = Uploader::with_faults(&collector, plan, retry);
        let err = up.upload(&batch(1, 1)).unwrap_err();
        assert_eq!(err, UploadError::RetriesExhausted { attempts: 3 });
        let stats = up.finish();
        assert_eq!(stats.frames_sent, 0);
        assert_eq!(stats.frames_abandoned, 1);
        let (_, cstats) = collector.finish();
        assert_eq!(cstats.frames_ok, 0);
    }

    #[test]
    fn reordering_preserves_the_aggregate() {
        let (clean_agg, _) = clean_aggregate(30);
        let plan = Arc::new(FaultPlan::new(5).with(FaultRule {
            point: points::CLIENT_UPLOAD,
            kind: FaultKind::Reorder,
            rate: 0.5,
        }));
        let collector = Collector::start(2, 1_000);
        let mut up = Uploader::with_faults(&collector, plan, RetryPolicy::default());
        for i in 0..30 {
            up.upload(&batch(i, 2)).unwrap();
        }
        let ustats = up.finish();
        assert!(ustats.reordered > 0);
        assert_eq!(ustats.frames_sent, 30, "reordering must not lose frames");
        let (agg, _) = collector.finish();
        assert_eq!(agg, clean_agg, "aggregation is order-independent");
    }

    #[test]
    fn oversized_batches_split_transparently() {
        let collector = Collector::start(2, 1_000_000);
        let mut up = Uploader::new(&collector);
        up.upload(&batch(9, 40_000)).unwrap(); // 80k events: > u16::MAX
        let ustats = up.finish();
        assert!(ustats.frames_sent >= 2, "oversized batch must split");
        let (agg, stats) = collector.finish();
        assert_eq!(stats.frames_bad, 0);
        assert_eq!(agg.values().map(|v| v.completed).sum::<u64>(), 40_000);
    }
}
