//! Deterministic samplers for the telemetry simulation.
//!
//! Aggregate monthly counts are Poisson around their demand expectation.
//! Small means use Knuth's product method; large means use the normal
//! approximation (λ + √λ·z), which is accurate and O(1).

use std::sync::OnceLock;
use wwv_world::WorldSeed;
use wwv_obs::Counter;

/// Cached registry handles — one relaxed atomic add per draw, no lookups.
fn draw_counter(cell: &'static OnceLock<Counter>, name: &str) -> &'static Counter {
    cell.get_or_init(|| wwv_obs::global().counter(name))
}

static POISSON_DRAWS: OnceLock<Counter> = OnceLock::new();
static BERNOULLI_DRAWS: OnceLock<Counter> = OnceLock::new();
static BINOMIAL_DRAWS: OnceLock<Counter> = OnceLock::new();

/// Uniform in `[0, 1)` from a sub-seed value.
fn unit(seed: u64) -> f64 {
    (seed >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal via Box–Muller.
fn gauss(seed: WorldSeed, purpose: &str, index: u64) -> f64 {
    let u1 = unit(seed.derive_indexed(purpose, index.wrapping_mul(2))).max(1e-12);
    let u2 = unit(seed.derive_indexed(purpose, index.wrapping_mul(2) + 1));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic Poisson draw with mean `lambda`, keyed by
/// `(seed, purpose, index)`.
pub fn poisson(seed: WorldSeed, purpose: &str, index: u64, lambda: f64) -> u64 {
    draw_counter(&POISSON_DRAWS, "sampling.poisson_draws").inc();
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        // Knuth: count uniforms until their product drops below e^-λ.
        let limit = (-lambda).exp();
        let mut product = 1.0;
        let mut k = 0u64;
        loop {
            product *= unit(seed.derive_indexed(purpose, index.wrapping_mul(64).wrapping_add(k)));
            if product < limit {
                return k;
            }
            k += 1;
            if k > 1000 {
                return k; // unreachable for λ < 30; belt and braces
            }
        }
    }
    // Normal approximation.
    let z = gauss(seed, purpose, index);
    let value = lambda + lambda.sqrt() * z;
    value.round().max(0.0) as u64
}

/// Deterministic Bernoulli draw with probability `p`.
pub fn bernoulli(seed: WorldSeed, purpose: &str, index: u64, p: f64) -> bool {
    draw_counter(&BERNOULLI_DRAWS, "sampling.bernoulli_draws").inc();
    unit(seed.derive_indexed(purpose, index)) < p
}

/// Deterministic Binomial(n, p) draw: exact for small `n`, Poisson/normal
/// approximation for large `n`.
pub fn binomial(seed: WorldSeed, purpose: &str, index: u64, n: u64, p: f64) -> u64 {
    draw_counter(&BINOMIAL_DRAWS, "sampling.binomial_draws").inc();
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        let mut k = 0;
        for i in 0..n {
            if bernoulli(seed, purpose, index.wrapping_mul(128).wrapping_add(i), p) {
                k += 1;
            }
        }
        return k;
    }
    let mean = n as f64 * p;
    if mean < 30.0 {
        return poisson(seed, purpose, index, mean).min(n);
    }
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let value = mean + sd * gauss(seed, purpose, index);
    (value.round().max(0.0) as u64).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: WorldSeed = WorldSeed(42);

    #[test]
    fn poisson_zero_lambda() {
        assert_eq!(poisson(SEED, "t", 0, 0.0), 0);
        assert_eq!(poisson(SEED, "t", 0, -1.0), 0);
    }

    #[test]
    fn poisson_deterministic() {
        assert_eq!(poisson(SEED, "t", 5, 3.3), poisson(SEED, "t", 5, 3.3));
        // Different indices draw independently.
        let all_same = (0..100).all(|i| poisson(SEED, "t", i, 3.3) == poisson(SEED, "t", 0, 3.3));
        assert!(!all_same);
    }

    #[test]
    fn poisson_small_mean_statistics() {
        let lambda = 4.0;
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|i| poisson(SEED, "small", i, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        let var: f64 = (0..n)
            .map(|i| {
                let d = poisson(SEED, "small", i, lambda) as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        assert!((var - lambda).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn poisson_large_mean_statistics() {
        let lambda = 10_000.0;
        let n = 5_000u64;
        let mean = (0..n).map(|i| poisson(SEED, "large", i, lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let hits = (0..10_000).filter(|i| bernoulli(SEED, "b", *i, 0.35)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.35).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn binomial_bounds_and_mean() {
        for (n, p) in [(10u64, 0.5), (1000, 0.01), (100_000, 0.3)] {
            let draws: Vec<u64> = (0..2000).map(|i| binomial(SEED, "bin", i, n, p)).collect();
            assert!(draws.iter().all(|d| *d <= n));
            let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
            let expect = n as f64 * p;
            let tol = (expect.sqrt() * 0.2).max(0.5);
            assert!((mean - expect).abs() < tol, "n={n} p={p}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn binomial_edge_probabilities() {
        assert_eq!(binomial(SEED, "e", 0, 50, 0.0), 0);
        assert_eq!(binomial(SEED, "e", 0, 50, 1.0), 50);
        assert_eq!(binomial(SEED, "e", 0, 0, 0.7), 0);
    }
}
