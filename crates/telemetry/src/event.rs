//! Browsing events as emitted by clients.

use serde::{Deserialize, Serialize};
use wwv_world::{Month, Platform};

/// One telemetry event for one domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A navigation started (First Contentful Paint not yet reached). The
    /// paper excludes this metric from analysis as nearly identical to
    /// completed loads, but Chrome collects it, so the pipeline carries it.
    PageLoadInitiated {
        /// Target domain.
        domain: String,
    },
    /// A page load completed (First Contentful Paint).
    PageLoadCompleted {
        /// Target domain.
        domain: String,
    },
    /// A page was backgrounded after `millis` of foreground time.
    ForegroundTime {
        /// Target domain.
        domain: String,
        /// Foreground duration in milliseconds.
        millis: u64,
    },
}

impl TelemetryEvent {
    /// The domain the event refers to.
    pub fn domain(&self) -> &str {
        match self {
            TelemetryEvent::PageLoadInitiated { domain }
            | TelemetryEvent::PageLoadCompleted { domain }
            | TelemetryEvent::ForegroundTime { domain, .. } => domain,
        }
    }
}

/// A batch of events one client uploads in one request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientBatch {
    /// Opaque per-install identifier (used only for unique-client counting).
    pub client_id: u64,
    /// Country index (into `wwv_world::COUNTRIES`).
    pub country: u8,
    /// Platform.
    pub platform: Platform,
    /// Month the events belong to.
    pub month: Month,
    /// The events.
    pub events: Vec<TelemetryEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_accessor_covers_all_variants() {
        let e1 = TelemetryEvent::PageLoadInitiated { domain: "a.com".into() };
        let e2 = TelemetryEvent::PageLoadCompleted { domain: "b.com".into() };
        let e3 = TelemetryEvent::ForegroundTime { domain: "c.com".into(), millis: 5 };
        assert_eq!(e1.domain(), "a.com");
        assert_eq!(e2.domain(), "b.com");
        assert_eq!(e3.domain(), "c.com");
    }
}
