//! Dataset construction.
//!
//! Builds the full [`ChromeDataset`] from a world model. Counts are sampled
//! per (breakdown, domain) directly from the demand expectation:
//!
//! * completed loads ~ Poisson(volume · share);
//! * uploaded foreground events ~ Poisson(volume · fg-per-load · 0.35% ·
//!   share) — the privacy down-sampling shows up as extra Poisson noise in
//!   time-on-page tails, exactly as in the real pipeline;
//! * foreground milliseconds = events · site dwell;
//! * unique clients ≈ loads / loads-per-client, thresholded per §3.1.
//!
//! This expectation-level sampling is distributionally identical to pushing
//! hundreds of millions of per-client event batches through the collector
//! (a thinned Poisson process aggregates to these exact marginals); the
//! event path itself is exercised end-to-end by `wwv-telemetry`'s client +
//! collector tests and the integration suite.

use crate::dataset::{ChromeDataset, DomainTable, RankListData};
use crate::privacy::{self, FOREGROUND_UPLOAD_PROBABILITY};
use crate::sampling::poisson;
use std::collections::HashMap;
use wwv_world::{Breakdown, Metric, Month, Platform, World, COUNTRIES};

/// Configurable dataset builder.
#[derive(Debug, Clone)]
pub struct DatasetBuilder<'w> {
    world: &'w World,
    /// Expected completed page loads per month in a usage-weight-1.0 country
    /// on one platform.
    pub base_volume: f64,
    /// Foreground events per completed load.
    pub fg_per_load: f64,
    /// Mean completed loads per client per domain per month (converts load
    /// counts into unique-client estimates).
    pub loads_per_client: f64,
    /// Unique-client inclusion threshold.
    pub client_threshold: u64,
    /// Maximum rank-list depth retained per breakdown.
    pub max_depth: usize,
    /// Months to build (defaults to all six).
    pub months: Vec<Month>,
}

impl<'w> DatasetBuilder<'w> {
    /// Builder with paper-scale defaults.
    pub fn new(world: &'w World) -> Self {
        DatasetBuilder {
            world,
            base_volume: 2.0e10,
            fg_per_load: 1.2,
            loads_per_client: 12.0,
            client_threshold: privacy::DEFAULT_CLIENT_THRESHOLD,
            max_depth: 12_000,
            months: Month::ALL.to_vec(),
        }
    }

    /// Restricts the build to specific months.
    pub fn months(mut self, months: &[Month]) -> Self {
        self.months = months.to_vec();
        self
    }

    /// Overrides the maximum retained depth.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Scales volume (tests use smaller volumes for speed — noisier tails).
    pub fn base_volume(mut self, v: f64) -> Self {
        self.base_volume = v;
        self
    }

    /// Overrides the unique-client threshold.
    pub fn client_threshold(mut self, t: u64) -> Self {
        self.client_threshold = t;
        self
    }

    /// Builds the dataset.
    pub fn build(&self) -> ChromeDataset {
        let _span = wwv_obs::span!("dataset.build");
        let obs = wwv_obs::global();
        let non_public_skipped = obs.counter("builder.non_public_skipped");
        let threshold_dropped = obs.counter("builder.threshold_dropped");
        let domains_kept = obs.counter("builder.domains_kept");
        let mut domains = DomainTable::new();
        let mut lists: HashMap<Breakdown, RankListData> = HashMap::new();
        let seed = self.world.config().seed;
        for (ci, country) in COUNTRIES.iter().enumerate() {
            let volume = self.base_volume * country.usage_weight;
            for platform in Platform::ALL {
                // Mobile installs see somewhat fewer browser loads overall.
                let platform_volume =
                    if platform.is_mobile() { volume * 0.8 } else { volume };
                for &month in &self.months {
                    let b_loads = Breakdown { country: ci, platform, metric: Metric::PageLoads, month };
                    let demand = self.world.demand(b_loads);
                    let mut loads_entries: Vec<(u32, u64)> = Vec::with_capacity(demand.len());
                    let mut time_entries: Vec<(u32, u64)> = Vec::with_capacity(demand.len());
                    for (site_id, share) in demand {
                        let site = self.world.universe().site(site_id);
                        let domain = site.domain_in(ci);
                        if !privacy::is_public_domain(&domain) {
                            non_public_skipped.inc();
                            continue;
                        }
                        let sample_idx = (site_id.0 as u64)
                            .wrapping_mul(8191)
                            .wrapping_add((ci as u64) << 4)
                            .wrapping_add((month.index() as u64) << 1)
                            .wrapping_add(platform.is_mobile() as u64);
                        let loads =
                            poisson(seed, "agg-loads", sample_idx, platform_volume * share);
                        let unique = (loads as f64 / self.loads_per_client).round() as u64;
                        if !privacy::passes_threshold(unique, self.client_threshold) {
                            threshold_dropped.inc();
                            continue;
                        }
                        domains_kept.inc();
                        let domain_id = domains.intern(&domain, site_id);
                        loads_entries.push((domain_id.0, loads));
                        // Time metric: down-sampled foreground events.
                        let fg_lambda = platform_volume
                            * share
                            * self.fg_per_load
                            * FOREGROUND_UPLOAD_PROBABILITY;
                        let fg_events = poisson(seed, "agg-fg", sample_idx, fg_lambda);
                        let millis = fg_events.saturating_mul((site.dwell * 1000.0) as u64);
                        if millis > 0 {
                            time_entries.push((domain_id.0, millis));
                        }
                    }
                    loads_entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    loads_entries.truncate(self.max_depth);
                    time_entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    time_entries.truncate(self.max_depth);
                    lists.insert(
                        b_loads,
                        RankListData {
                            entries: loads_entries
                                .into_iter()
                                .map(|(d, c)| (crate::dataset::DomainId(d), c))
                                .collect(),
                        },
                    );
                    lists.insert(
                        Breakdown { metric: Metric::TimeOnPage, ..b_loads },
                        RankListData {
                            entries: time_entries
                                .into_iter()
                                .map(|(d, c)| (crate::dataset::DomainId(d), c))
                                .collect(),
                        },
                    );
                }
            }
        }
        ChromeDataset {
            domains,
            lists,
            client_threshold: self.client_threshold,
            max_depth: self.max_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::{Country, WorldConfig};

    fn small_dataset() -> (World, ChromeDataset) {
        let world = World::new(WorldConfig::small());
        let ds = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(500)
            .max_depth(3_000)
            .build();
        (world, ds)
    }

    #[test]
    fn builds_lists_for_all_breakdowns() {
        let (_, ds) = small_dataset();
        assert_eq!(ds.lists.len(), 45 * 2 * 2);
        for (b, list) in &ds.lists {
            assert!(!list.is_empty(), "{b:?} empty");
        }
    }

    #[test]
    fn lists_sorted_descending() {
        let (_, ds) = small_dataset();
        for list in ds.lists.values() {
            for pair in list.entries.windows(2) {
                assert!(pair[0].1 >= pair[1].1);
            }
        }
    }

    #[test]
    fn google_tops_lists() {
        let (_, ds) = small_dataset();
        let us = Country::index_of("US").unwrap();
        let b = Breakdown {
            country: us,
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            month: Month::February2022,
        };
        let list = ds.list(b).unwrap();
        assert_eq!(ds.domains.name(list.at_rank(1).unwrap()), "google.com");
    }

    #[test]
    fn deterministic_build() {
        let world = World::new(WorldConfig::small());
        let a = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(1.0e8)
            .client_threshold(500)
            .build();
        let b = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(1.0e8)
            .client_threshold(500)
            .build();
        let key = a.lists.keys().next().unwrap();
        assert_eq!(a.lists[key], b.lists[key]);
    }

    #[test]
    fn threshold_limits_depth() {
        let world = World::new(WorldConfig::small());
        let strict = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(20_000)
            .build();
        let lax = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(500)
            .build();
        let b = *strict.lists.keys().next().unwrap();
        assert!(strict.lists[&b].len() < lax.lists[&b].len());
    }

    #[test]
    fn time_lists_differ_from_loads() {
        let (_, ds) = small_dataset();
        let us = Country::index_of("US").unwrap();
        let loads = ds
            .list(Breakdown {
                country: us,
                platform: Platform::Windows,
                metric: Metric::PageLoads,
                month: Month::February2022,
            })
            .unwrap();
        let time = ds
            .list(Breakdown {
                country: us,
                platform: Platform::Windows,
                metric: Metric::TimeOnPage,
                month: Month::February2022,
            })
            .unwrap();
        let l: Vec<_> = loads.domains().take(20).collect();
        let t: Vec<_> = time.domains().take(20).collect();
        assert_ne!(l, t, "metrics must produce different orderings");
    }

    #[test]
    fn domains_are_country_specific_for_cctld_sites() {
        let (_, ds) = small_dataset();
        assert!(ds.domains.get("amazon.co.uk").is_some());
        assert!(ds.domains.get("amazon.de").is_some());
    }
}
