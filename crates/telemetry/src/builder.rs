//! Dataset construction.
//!
//! Builds the full [`ChromeDataset`] from a world model. Counts are sampled
//! per (breakdown, domain) directly from the demand expectation:
//!
//! * completed loads ~ Poisson(volume · share);
//! * uploaded foreground events ~ Poisson(volume · fg-per-load · 0.35% ·
//!   share) — the privacy down-sampling shows up as extra Poisson noise in
//!   time-on-page tails, exactly as in the real pipeline;
//! * foreground milliseconds = events · site dwell;
//! * unique clients ≈ loads / loads-per-client, thresholded per §3.1.
//!
//! This expectation-level sampling is distributionally identical to pushing
//! hundreds of millions of per-client event batches through the collector
//! (a thinned Poisson process aggregates to these exact marginals); the
//! event path itself is exercised end-to-end by `wwv-telemetry`'s client +
//! collector tests and the integration suite.
//!
//! ## Parallel execution
//!
//! The build runs in three phases over the `countries × platforms × months`
//! breakdown grid and is **bit-identical at any worker count** (see the
//! `parallel_determinism` integration test):
//!
//! 1. **Sample** (parallel): every breakdown's Poisson draws are keyed by a
//!    deterministic `(seed, label, sample_idx)` derivation, so each
//!    breakdown can be sampled independently in any schedule.
//! 2. **Intern** (serial): domain ids are assigned by replaying the kept
//!    sites in the canonical country → platform → month order, reproducing
//!    the exact id assignment of a sequential build.
//! 3. **Rank** (parallel): each list is independently reduced to its top
//!    `max_depth` via partial selection — domain ids are unique within a
//!    list, so the comparator is a strict total order and the unstable
//!    select/sort pair is deterministic.
//!
//! Per-(site, country) domain strings and per-event dwell milliseconds are
//! precomputed once in a [`SiteCache`] instead of being reformatted for
//! every one of the 540 breakdowns.

use crate::dataset::{ChromeDataset, DomainId, DomainTable, RankListData};
use crate::privacy::{self, FOREGROUND_UPLOAD_PROBABILITY};
use crate::sampling::poisson;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use wwv_fault::FaultPlan;
use wwv_oocore::{
    OocoreConfig, OocoreError, OocoreStats, RunSpiller, SeenTracker, SpillEnv, SpillQueue,
};
use wwv_par::Pool;
use wwv_snap::varint;
use wwv_world::{Breakdown, Metric, Month, Platform, SiteId, SiteUniverse, World, COUNTRIES};

/// Configurable dataset builder.
#[derive(Debug, Clone)]
pub struct DatasetBuilder<'w> {
    world: &'w World,
    /// Expected completed page loads per month in a usage-weight-1.0 country
    /// on one platform.
    pub base_volume: f64,
    /// Foreground events per completed load.
    pub fg_per_load: f64,
    /// Mean completed loads per client per domain per month (converts load
    /// counts into unique-client estimates).
    pub loads_per_client: f64,
    /// Unique-client inclusion threshold.
    pub client_threshold: u64,
    /// Maximum rank-list depth retained per breakdown.
    pub max_depth: usize,
    /// Months to build (defaults to all six).
    pub months: Vec<Month>,
    /// Worker threads for the parallel phases (0 = process-wide default,
    /// see [`wwv_par::set_threads`]).
    pub threads: usize,
}

/// Foreground milliseconds contributed by one uploaded event: the site's
/// mean dwell seconds converted to milliseconds. Non-finite or non-positive
/// dwell clamps to 0 rather than flowing through the `f64 → u64` cast.
pub(crate) fn dwell_event_millis(dwell_seconds: f64) -> u64 {
    let ms = dwell_seconds * 1000.0;
    if ms.is_finite() && ms > 0.0 {
        ms as u64
    } else {
        0
    }
}

/// A site's served domain, cached once per build instead of formatted per
/// breakdown, together with its public-web admissibility.
enum CachedDomain {
    /// Non-ccTLD sites serve one domain everywhere.
    Fixed(String, bool),
    /// ccTLD sites serve one domain per country.
    PerCountry(Vec<(String, bool)>),
}

/// Per-site precomputation shared by every breakdown: domain strings,
/// publicness, and per-event dwell milliseconds.
struct SiteCache {
    domains: Vec<CachedDomain>,
    dwell_ms: Vec<u64>,
}

impl SiteCache {
    fn build(universe: &SiteUniverse) -> SiteCache {
        let _span = wwv_obs::span!("dataset.site_cache");
        let domains = universe
            .sites
            .iter()
            .map(|site| {
                if site.cctld {
                    CachedDomain::PerCountry(
                        (0..COUNTRIES.len())
                            .map(|ci| {
                                let d = site.domain_in(ci);
                                let public = privacy::is_public_domain(&d);
                                (d, public)
                            })
                            .collect(),
                    )
                } else {
                    let d = site.domain_in(0);
                    let public = privacy::is_public_domain(&d);
                    CachedDomain::Fixed(d, public)
                }
            })
            .collect();
        let dwell_ms =
            universe.sites.iter().map(|site| dwell_event_millis(site.dwell)).collect();
        SiteCache { domains, dwell_ms }
    }

    /// The domain the site serves in a country, and whether it is public.
    fn domain(&self, site: SiteId, country_idx: usize) -> (&str, bool) {
        match &self.domains[site.0 as usize] {
            CachedDomain::Fixed(d, public) => (d, *public),
            CachedDomain::PerCountry(per) => {
                let (d, public) = &per[country_idx];
                (d, *public)
            }
        }
    }
}

/// One (country, platform, month) cell of the breakdown grid, in canonical
/// build order.
struct BreakdownJob {
    country: usize,
    platform: Platform,
    month: Month,
    platform_volume: f64,
}

/// Sorts best-first (count descending, domain id ascending) and keeps the
/// top `k`: partial selection first, so only the retained prefix pays the
/// full sort. Domain ids are unique within a list, so the comparator is a
/// strict total order and the unstable select/sort is deterministic (and
/// equal to the stable sort it replaces).
fn top_k_desc(entries: &mut Vec<(u32, u64)>, k: usize) {
    if k == 0 {
        entries.clear();
        return;
    }
    let cmp = |a: &(u32, u64), b: &(u32, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
    if entries.len() > k {
        entries.select_nth_unstable_by(k - 1, cmp);
        entries.truncate(k);
    }
    entries.sort_unstable_by(cmp);
}

impl<'w> DatasetBuilder<'w> {
    /// Builder with paper-scale defaults.
    pub fn new(world: &'w World) -> Self {
        DatasetBuilder {
            world,
            base_volume: 2.0e10,
            fg_per_load: 1.2,
            loads_per_client: 12.0,
            client_threshold: privacy::DEFAULT_CLIENT_THRESHOLD,
            max_depth: 12_000,
            months: Month::ALL.to_vec(),
            threads: 0,
        }
    }

    /// Restricts the build to specific months.
    pub fn months(mut self, months: &[Month]) -> Self {
        self.months = months.to_vec();
        self
    }

    /// Overrides the maximum retained depth.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Scales volume (tests use smaller volumes for speed — noisier tails).
    pub fn base_volume(mut self, v: f64) -> Self {
        self.base_volume = v;
        self
    }

    /// Overrides the unique-client threshold.
    pub fn client_threshold(mut self, t: u64) -> Self {
        self.client_threshold = t;
        self
    }

    /// Overrides the worker-thread count (0 = process-wide default). Any
    /// count produces bit-identical output.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The breakdown grid in canonical (country → platform → month) order.
    fn jobs(&self) -> Vec<BreakdownJob> {
        let mut jobs = Vec::with_capacity(COUNTRIES.len() * Platform::ALL.len() * self.months.len());
        for (ci, country) in COUNTRIES.iter().enumerate() {
            let volume = self.base_volume * country.usage_weight;
            for platform in Platform::ALL {
                // Mobile installs see somewhat fewer browser loads overall.
                let platform_volume =
                    if platform.is_mobile() { volume * 0.8 } else { volume };
                for &month in &self.months {
                    jobs.push(BreakdownJob { country: ci, platform, month, platform_volume });
                }
            }
        }
        jobs
    }

    /// Phase 1: samples one breakdown, returning the kept sites in candidate
    /// order as `(site, loads, foreground events)`. Every draw is keyed by
    /// `(seed, label, sample_idx)`, so breakdowns are independent.
    fn sample_breakdown(
        &self,
        job: &BreakdownJob,
        cache: &SiteCache,
        counters: &BuildCounters,
    ) -> Vec<(SiteId, u64, u64)> {
        let seed = self.world.config().seed;
        let demand = self.world.demand(Breakdown {
            country: job.country,
            platform: job.platform,
            metric: Metric::PageLoads,
            month: job.month,
        });
        let mut kept = Vec::with_capacity(demand.len());
        for (site_id, share) in demand {
            let (_, public) = cache.domain(site_id, job.country);
            if !public {
                counters.non_public_skipped.inc();
                continue;
            }
            let sample_idx = (site_id.0 as u64)
                .wrapping_mul(8191)
                .wrapping_add((job.country as u64) << 4)
                .wrapping_add((job.month.index() as u64) << 1)
                .wrapping_add(job.platform.is_mobile() as u64);
            let loads = poisson(seed, "agg-loads", sample_idx, job.platform_volume * share);
            let unique = (loads as f64 / self.loads_per_client).round() as u64;
            if !privacy::passes_threshold(unique, self.client_threshold) {
                counters.threshold_dropped.inc();
                continue;
            }
            counters.domains_kept.inc();
            // Time metric: down-sampled foreground events.
            let fg_lambda = job.platform_volume
                * share
                * self.fg_per_load
                * FOREGROUND_UPLOAD_PROBABILITY;
            let fg_events = poisson(seed, "agg-fg", sample_idx, fg_lambda);
            kept.push((site_id, loads, fg_events));
        }
        kept
    }

    /// Builds the dataset. Output is identical for every thread count.
    pub fn build(&self) -> ChromeDataset {
        let _span = wwv_obs::span!("dataset.build");
        let counters = BuildCounters::from_global();
        let pool =
            if self.threads == 0 { Pool::global() } else { Pool::new(self.threads) };
        let cache = SiteCache::build(self.world.universe());
        let jobs = self.jobs();

        // Phase 1 (parallel): per-breakdown Poisson sampling.
        let sampled: Vec<Vec<(SiteId, u64, u64)>> = pool
            .par_map("dataset.sample", &jobs, |_, job| {
                self.sample_breakdown(job, &cache, &counters)
            });

        // Phase 2 (serial): canonical-order domain interning. Replaying the
        // kept sites in job order assigns exactly the ids a sequential build
        // would, including the cross-breakdown first-appearance order that
        // the ranking tie-break below depends on.
        let intern_span = wwv_obs::span!("dataset.intern");
        let mut domains = DomainTable::new();
        // One (domain id, count) list per breakdown; the mutex makes each
        // list independently mutable from phase-3 workers.
        type RawList = Mutex<Vec<(u32, u64)>>;
        let mut raw: Vec<(Breakdown, RawList)> = Vec::with_capacity(jobs.len() * 2);
        for (job, kept) in jobs.iter().zip(&sampled) {
            let b_loads = Breakdown {
                country: job.country,
                platform: job.platform,
                metric: Metric::PageLoads,
                month: job.month,
            };
            let mut loads_entries: Vec<(u32, u64)> = Vec::with_capacity(kept.len());
            let mut time_entries: Vec<(u32, u64)> = Vec::with_capacity(kept.len());
            for &(site_id, loads, fg_events) in kept {
                let (domain, _) = cache.domain(site_id, job.country);
                let domain_id = domains.intern(domain, site_id);
                loads_entries.push((domain_id.0, loads));
                let millis = fg_events.saturating_mul(cache.dwell_ms[site_id.0 as usize]);
                if millis > 0 {
                    time_entries.push((domain_id.0, millis));
                }
            }
            raw.push((b_loads, Mutex::new(loads_entries)));
            raw.push((
                Breakdown { metric: Metric::TimeOnPage, ..b_loads },
                Mutex::new(time_entries),
            ));
        }
        drop(intern_span);

        // Phase 3 (parallel): top-K selection per list. The per-list locks
        // are uncontended — each index is visited exactly once.
        pool.par_for_each_indexed("dataset.topk", &raw, |_, (_, entries)| {
            let mut entries = entries.lock().unwrap_or_else(|p| p.into_inner());
            top_k_desc(&mut entries, self.max_depth);
        });

        let lists: HashMap<Breakdown, RankListData> = raw
            .into_iter()
            .map(|(b, entries)| {
                let entries = entries.into_inner().unwrap_or_else(|p| p.into_inner());
                (
                    b,
                    RankListData {
                        entries: entries.into_iter().map(|(d, c)| (DomainId(d), c)).collect(),
                    },
                )
            })
            .collect();
        ChromeDataset {
            domains,
            lists,
            client_threshold: self.client_threshold,
            max_depth: self.max_depth,
        }
    }
}

/// Counter handles shared by every sampling worker (atomics; increment
/// order does not affect totals).
struct BuildCounters {
    non_public_skipped: wwv_obs::Counter,
    threshold_dropped: wwv_obs::Counter,
    domains_kept: wwv_obs::Counter,
}

impl BuildCounters {
    fn from_global() -> BuildCounters {
        let obs = wwv_obs::global();
        BuildCounters {
            non_public_skipped: obs.counter("builder.non_public_skipped"),
            threshold_dropped: obs.counter("builder.threshold_dropped"),
            domains_kept: obs.counter("builder.domains_kept"),
        }
    }
}

/// Phase-1 chunk width for the out-of-core build: jobs are sampled in
/// fixed-size chunks so the raw (unencoded) samples in flight stay small.
/// The width is a constant — never derived from the worker count — so the
/// queue sees the same push sequence, and therefore the same spill
/// schedule, at any thread count.
const OOCORE_SAMPLE_CHUNK: usize = 8;

/// Budget split across the out-of-core components, in percent. The
/// remainder is headroom for transient segment loads during replay.
const QUEUE_BUDGET_PCT: usize = 30;
const SEEN_BUDGET_PCT: usize = 10;
const TOPK_BUDGET_PCT: usize = 15;

/// One breakdown's kept sites as a compact varint record (the spill-queue
/// item format).
fn encode_kept(kept: &[(SiteId, u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(kept.len() * 6 + 4);
    varint::put_uvarint(&mut out, kept.len() as u64);
    for &(site, loads, fg_events) in kept {
        varint::put_uvarint(&mut out, site.0 as u64);
        varint::put_uvarint(&mut out, loads);
        varint::put_uvarint(&mut out, fg_events);
    }
    out
}

fn decode_kept(mut buf: &[u8]) -> Result<Vec<(SiteId, u64, u64)>, OocoreError> {
    let bad = |_| OocoreError::Decode("breakdown record varint");
    let n = varint::get_uvarint(&mut buf).map_err(bad)? as usize;
    // Each kept site is at least three varint bytes; reject absurd counts
    // before allocating.
    if n > buf.len() {
        return Err(OocoreError::Decode("breakdown record count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let site = varint::get_uvarint(&mut buf).map_err(bad)? as u32;
        let loads = varint::get_uvarint(&mut buf).map_err(bad)?;
        let fg_events = varint::get_uvarint(&mut buf).map_err(bad)?;
        out.push((SiteId(site), loads, fg_events));
    }
    if !buf.is_empty() {
        return Err(OocoreError::Decode("trailing bytes in breakdown record"));
    }
    Ok(out)
}

impl DatasetBuilder<'_> {
    /// Builds the dataset under an explicit memory budget, spilling
    /// intermediate state to `cfg.spill_dir` as checksummed segments.
    ///
    /// The output is **byte-identical** to [`DatasetBuilder::build`] at any
    /// budget and any worker count (the `oocore_equivalence` gate):
    ///
    /// 1. **Sample** (parallel, chunked): identical Poisson draws — every
    ///    draw is keyed by `(seed, label, sample_idx)` — pushed through a
    ///    [`SpillQueue`] in canonical job order. Budget pressure only moves
    ///    segment boundaries, never items or their order.
    /// 2. **Replay + intern** (serial): the queue replays in push order,
    ///    and the bloom-fronted [`SeenTracker`] assigns first-appearance
    ///    ids — exactly the ids the in-memory `HashMap` interner assigns.
    /// 3. **Rank**: each list folds through a [`RunSpiller`] whose
    ///    external merge realizes the same `(count desc, id asc)` total
    ///    order as `top_k_desc`.
    ///
    /// Spill writes are fault-injectable at [`wwv_oocore::OOCORE_SPILL`];
    /// a corrupt or dropped write is a counted retry, and exhausting the
    /// retry cap (or corruption of a segment at rest) is a typed error.
    pub fn build_out_of_core(
        &self,
        cfg: &OocoreConfig,
        plan: Arc<FaultPlan>,
    ) -> Result<(ChromeDataset, OocoreStats), OocoreError> {
        let _span = wwv_obs::span!("dataset.build_oocore");
        let counters = BuildCounters::from_global();
        let pool =
            if self.threads == 0 { Pool::global() } else { Pool::new(self.threads) };
        let cache = SiteCache::build(self.world.universe());
        let jobs = self.jobs();
        std::fs::create_dir_all(&cfg.spill_dir)?;
        let env = SpillEnv::new(cfg, plan);
        let budget = Arc::clone(&env.budget);

        // Phase 1: parallel sampling, pushed through the spill queue in
        // canonical order.
        let mut queue = SpillQueue::new(
            env.clone(),
            "queue",
            cfg.memory_budget * QUEUE_BUDGET_PCT / 100,
        );
        for chunk in jobs.chunks(OOCORE_SAMPLE_CHUNK) {
            let sampled = pool.par_map("oocore.sample", chunk, |_, job| {
                self.sample_breakdown(job, &cache, &counters)
            });
            for kept in &sampled {
                queue.push(encode_kept(kept))?;
            }
        }

        // Phase 2: serial replay — intern and rank.
        let mut tracker = SeenTracker::new(
            env.clone(),
            self.world.config().seed.0,
            cfg.bloom_bits_effective(),
            cfg.shards,
            cfg.memory_budget * SEEN_BUDGET_PCT / 100,
        );
        let topk_allotment = cfg.memory_budget * TOPK_BUDGET_PCT / 100;
        let mut sites: Vec<SiteId> = Vec::new();
        let mut lists: HashMap<Breakdown, RankListData> =
            HashMap::with_capacity(jobs.len() * 2);
        let mut replay = queue.finish()?;
        let mut run_seq = 0u32;
        let mut topk = wwv_oocore::topk::RunStats::default();
        for job in &jobs {
            let record = replay
                .next_item()?
                .ok_or(OocoreError::Decode("queue drained before the job grid"))?;
            let kept = decode_kept(&record)?;
            drop(record);
            let mut loads_sp =
                RunSpiller::new(env.clone(), &format!("list-{run_seq:05}"), topk_allotment);
            let mut time_sp = RunSpiller::new(
                env.clone(),
                &format!("list-{:05}", run_seq + 1),
                topk_allotment,
            );
            run_seq += 2;
            for (site_id, loads, fg_events) in kept {
                let (domain, _) = cache.domain(site_id, job.country);
                let (id, newly_seen) = tracker.get_or_insert(domain)?;
                if newly_seen {
                    sites.push(site_id);
                }
                loads_sp.push(id, loads)?;
                let millis = fg_events.saturating_mul(cache.dwell_ms[site_id.0 as usize]);
                if millis > 0 {
                    time_sp.push(id, millis)?;
                }
            }
            let b_loads = Breakdown {
                country: job.country,
                platform: job.platform,
                metric: Metric::PageLoads,
                month: job.month,
            };
            for (b, spiller) in [
                (b_loads, &mut loads_sp),
                (Breakdown { metric: Metric::TimeOnPage, ..b_loads }, &mut time_sp),
            ] {
                let entries = spiller.finish(self.max_depth)?;
                let s = spiller.stats();
                topk.runs_spilled += s.runs_spilled;
                topk.spilled_bytes += s.spilled_bytes;
                topk.spill_retries += s.spill_retries;
                lists.insert(
                    b,
                    RankListData {
                        entries: entries.into_iter().map(|(d, c)| (DomainId(d), c)).collect(),
                    },
                );
            }
        }
        if replay.next_item()?.is_some() {
            return Err(OocoreError::Decode("queue items outnumber the job grid"));
        }
        let queue_stats = replay.stats();
        let seen_stats = tracker.stats();

        // Assemble the domain table in id order: the tracker's key table
        // *is* the first-appearance interning order.
        let mut domains = DomainTable::new();
        let keys = tracker.into_keys();
        for (name, site) in keys.iter().zip(&sites) {
            domains.intern(name, *site);
        }

        let stats = OocoreStats {
            budget_bytes: budget.limit(),
            peak_bytes: budget.peak(),
            spilled_segments: queue_stats.spilled_segments
                + seen_stats.runs_spilled
                + topk.runs_spilled,
            spilled_bytes: queue_stats.spilled_bytes
                + seen_stats.spilled_bytes
                + topk.spilled_bytes,
            spill_retries: queue_stats.spill_retries
                + seen_stats.spill_retries
                + topk.spill_retries,
            bloom_definite_new: seen_stats.bloom_definite_new,
            seen_exact_hits: seen_stats.exact_hits,
            seen_fp_fallbacks: seen_stats.fp_fallbacks,
            seen_disk_probes: seen_stats.disk_probes,
            topk_runs_spilled: topk.runs_spilled,
        };
        wwv_obs::global().gauge("oocore.mem.peak").set(stats.peak_bytes as i64);
        wwv_obs::global().counter("oocore.seen.bloom_new").add(stats.bloom_definite_new);
        wwv_obs::global().counter("oocore.seen.fp_fallbacks").add(stats.seen_fp_fallbacks);
        wwv_obs::global().counter("oocore.seen.disk_probes").add(stats.seen_disk_probes);
        Ok((
            ChromeDataset {
                domains,
                lists,
                client_threshold: self.client_threshold,
                max_depth: self.max_depth,
            },
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwv_world::{Country, World, WorldConfig};

    fn small_dataset() -> (World, ChromeDataset) {
        let world = World::new(WorldConfig::small());
        let ds = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(500)
            .max_depth(3_000)
            .build();
        (world, ds)
    }

    #[test]
    fn builds_lists_for_all_breakdowns() {
        let (_, ds) = small_dataset();
        assert_eq!(ds.lists.len(), 45 * 2 * 2);
        for (b, list) in &ds.lists {
            assert!(!list.is_empty(), "{b:?} empty");
        }
    }

    #[test]
    fn lists_sorted_descending() {
        let (_, ds) = small_dataset();
        for list in ds.lists.values() {
            for pair in list.entries.windows(2) {
                assert!(pair[0].1 >= pair[1].1);
            }
        }
    }

    #[test]
    fn google_tops_lists() {
        let (_, ds) = small_dataset();
        let us = Country::index_of("US").unwrap();
        let b = Breakdown {
            country: us,
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            month: Month::February2022,
        };
        let list = ds.list(b).unwrap();
        assert_eq!(ds.domains.name(list.at_rank(1).unwrap()), "google.com");
    }

    #[test]
    fn deterministic_build() {
        let world = World::new(WorldConfig::small());
        let a = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(1.0e8)
            .client_threshold(500)
            .build();
        let b = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(1.0e8)
            .client_threshold(500)
            .build();
        let key = a.lists.keys().next().unwrap();
        assert_eq!(a.lists[key], b.lists[key]);
    }

    #[test]
    fn threshold_limits_depth() {
        let world = World::new(WorldConfig::small());
        let strict = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(20_000)
            .build();
        let lax = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(500)
            .build();
        let b = *strict.lists.keys().next().unwrap();
        assert!(strict.lists[&b].len() < lax.lists[&b].len());
    }

    #[test]
    fn time_lists_differ_from_loads() {
        let (_, ds) = small_dataset();
        let us = Country::index_of("US").unwrap();
        let loads = ds
            .list(Breakdown {
                country: us,
                platform: Platform::Windows,
                metric: Metric::PageLoads,
                month: Month::February2022,
            })
            .unwrap();
        let time = ds
            .list(Breakdown {
                country: us,
                platform: Platform::Windows,
                metric: Metric::TimeOnPage,
                month: Month::February2022,
            })
            .unwrap();
        let l: Vec<_> = loads.domains().take(20).collect();
        let t: Vec<_> = time.domains().take(20).collect();
        assert_ne!(l, t, "metrics must produce different orderings");
    }

    #[test]
    fn domains_are_country_specific_for_cctld_sites() {
        let (_, ds) = small_dataset();
        assert!(ds.domains.get("amazon.co.uk").is_some());
        assert!(ds.domains.get("amazon.de").is_some());
    }

    #[test]
    fn dwell_guard_clamps_bad_values() {
        assert_eq!(dwell_event_millis(2.5), 2_500);
        assert_eq!(dwell_event_millis(0.0004), 0); // sub-millisecond truncates
        assert_eq!(dwell_event_millis(0.0), 0);
        assert_eq!(dwell_event_millis(-3.0), 0);
        assert_eq!(dwell_event_millis(f64::NAN), 0);
        assert_eq!(dwell_event_millis(f64::INFINITY), 0);
        assert_eq!(dwell_event_millis(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn top_k_matches_full_stable_sort() {
        let cmp = |a: &(u32, u64), b: &(u32, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
        // Duplicated counts exercise the domain-id tie-break.
        let base: Vec<(u32, u64)> =
            (0..500u32).map(|i| (i, ((i as u64).wrapping_mul(2654435761)) % 40)).collect();
        for k in [0, 1, 7, 499, 500, 800] {
            let mut want = base.clone();
            want.sort_by(cmp);
            want.truncate(k);
            let mut got = base.clone();
            top_k_desc(&mut got, k);
            assert_eq!(got, want, "k = {k}");
        }
    }
}
