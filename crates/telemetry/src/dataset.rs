//! The Chrome dataset artifact (§3.1).
//!
//! The paper's analyses consume exactly two things: monthly rank-order lists
//! of domains per (country, platform, metric), and global traffic
//! distribution curves. [`ChromeDataset`] is that artifact. Domains are
//! interned in a [`DomainTable`]; each table entry also records the
//! ground-truth [`SiteId`] behind the domain, which stands in for "what the
//! site actually is" when building categorization oracles (the paper's
//! equivalent: the website itself, inspected manually or via the API).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wwv_world::{Breakdown, Metric, Platform, SiteId, TrafficCurve};

/// Interned domain identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u32);

/// Domain interner with ground-truth site links.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainTable {
    names: Vec<String>,
    sites: Vec<SiteId>,
    #[serde(skip)]
    index: HashMap<String, DomainId>,
}

impl DomainTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a domain, recording its ground-truth site.
    pub fn intern(&mut self, domain: &str, site: SiteId) -> DomainId {
        if let Some(id) = self.index.get(domain) {
            return *id;
        }
        let id = DomainId(self.names.len() as u32);
        self.names.push(domain.to_owned());
        self.sites.push(site);
        self.index.insert(domain.to_owned(), id);
        id
    }

    /// The domain string for an id.
    pub fn name(&self, id: DomainId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The ground-truth site behind a domain.
    pub fn site(&self, id: DomainId) -> SiteId {
        self.sites[id.0 as usize]
    }

    /// Looks up an interned domain.
    pub fn get(&self, domain: &str) -> Option<DomainId> {
        self.index.get(domain).copied()
    }

    /// Number of interned domains.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the lookup index (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), DomainId(i as u32)))
            .collect();
    }
}

/// One breakdown's rank list: domains best-first with their counts
/// (completed page loads, or foreground milliseconds for the time metric).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankListData {
    /// `(domain, count)` ordered by descending count.
    pub entries: Vec<(DomainId, u64)>,
}

impl RankListData {
    /// Number of ranked domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Domains best-first.
    pub fn domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.entries.iter().map(|(d, _)| *d)
    }

    /// The domain at 1-based rank.
    pub fn at_rank(&self, rank: usize) -> Option<DomainId> {
        if rank == 0 {
            return None;
        }
        self.entries.get(rank - 1).map(|(d, _)| *d)
    }
}

/// The dataset: every rank list plus the calibrated global curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeDataset {
    /// Domain interner.
    pub domains: DomainTable,
    /// Rank lists per breakdown.
    pub lists: HashMap<Breakdown, RankListData>,
    /// Unique-client threshold used when building.
    pub client_threshold: u64,
    /// Maximum list depth retained.
    pub max_depth: usize,
}

impl ChromeDataset {
    /// The rank list for a breakdown.
    pub fn list(&self, b: Breakdown) -> Option<&RankListData> {
        self.lists.get(&b)
    }

    /// The global traffic-distribution curve for a (platform, metric) pair.
    /// As in the paper (§4.1.1), these come from globally aggregated
    /// distribution data, not from the per-country rank lists.
    pub fn curve(&self, platform: Platform, metric: Metric) -> TrafficCurve {
        TrafficCurve::for_breakdown(platform, metric)
    }

    /// All breakdown keys present.
    pub fn breakdowns(&self) -> impl Iterator<Item = Breakdown> + '_ {
        self.lists.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedupes() {
        let mut t = DomainTable::new();
        let a = t.intern("example.com", SiteId(1));
        let b = t.intern("example.com", SiteId(1));
        let c = t.intern("other.com", SiteId(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "example.com");
        assert_eq!(t.site(c), SiteId(2));
        assert_eq!(t.get("other.com"), Some(c));
        assert_eq!(t.get("missing.com"), None);
    }

    #[test]
    fn rank_list_accessors() {
        let list = RankListData { entries: vec![(DomainId(5), 100), (DomainId(2), 50)] };
        assert_eq!(list.len(), 2);
        assert_eq!(list.at_rank(1), Some(DomainId(5)));
        assert_eq!(list.at_rank(0), None);
        assert_eq!(list.at_rank(3), None);
        let all: Vec<DomainId> = list.domains().collect();
        assert_eq!(all, vec![DomainId(5), DomainId(2)]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = DomainTable::new();
        t.intern("a.com", SiteId(0));
        t.intern("b.com", SiteId(1));
        let mut clone = t.clone();
        clone.index.clear();
        assert_eq!(clone.get("a.com"), None);
        clone.rebuild_index();
        assert_eq!(clone.get("a.com"), t.get("a.com"));
    }
}
