//! CrUX-style public export (§3.1, "Public Data Access").
//!
//! The paper's underlying telemetry is not public, but a coarser-grained
//! version ships as the Chrome User Experience Report (CrUX): rank-order
//! **magnitude buckets** (top-1K, top-5K, top-10K, …) of websites by
//! completed page loads, per country and globally. This module produces that
//! artifact from a [`ChromeDataset`], and implements the §6 methodology
//! check the paper recommends: measuring how badly a globally aggregated
//! list under-represents each country's nationally popular sites.

use crate::dataset::{ChromeDataset, DomainId};
use serde::Serialize;
use std::collections::HashMap;
use wwv_world::{Breakdown, Metric, Month, Platform, COUNTRIES};

/// The default CrUX-like bucket ladder (upper rank bounds, ascending).
pub const DEFAULT_BUCKETS: [usize; 4] = [1_000, 5_000, 10_000, 50_000];

/// One country's (or the global) bucketed list.
#[derive(Debug, Clone, Serialize)]
pub struct BucketedList {
    /// Bucket ladder used (upper bounds).
    pub ladder: Vec<usize>,
    /// Domain → smallest ladder bucket containing its rank.
    pub buckets: HashMap<DomainId, usize>,
}

impl BucketedList {
    /// The bucket of a domain, if ranked.
    pub fn bucket(&self, d: DomainId) -> Option<usize> {
        self.buckets.get(&d).copied()
    }

    /// Number of domains in exactly the given bucket.
    pub fn count_in(&self, bucket: usize) -> usize {
        self.buckets.values().filter(|b| **b == bucket).count()
    }
}

/// Exports one country's bucketed list (completed page loads only, as CrUX).
pub fn country_buckets(
    dataset: &ChromeDataset,
    country: usize,
    platform: Platform,
    month: Month,
    ladder: &[usize],
) -> Option<BucketedList> {
    let b = Breakdown { country, platform, metric: Metric::PageLoads, month };
    let list = dataset.list(b)?;
    let mut buckets = HashMap::with_capacity(list.len());
    for (i, d) in list.domains().enumerate() {
        if let Some(bucket) = ladder.iter().find(|upper| i < **upper) {
            buckets.insert(d, *bucket);
        }
    }
    Some(BucketedList { ladder: ladder.to_vec(), buckets })
}

/// Exports the globally aggregated bucketed list: per-domain counts summed
/// over all countries (count units are comparable across countries since
/// volumes share a base), then bucketed by global rank.
pub fn global_buckets(
    dataset: &ChromeDataset,
    platform: Platform,
    month: Month,
    ladder: &[usize],
) -> BucketedList {
    let mut totals: HashMap<DomainId, u64> = HashMap::new();
    for country in 0..COUNTRIES.len() {
        let b = Breakdown { country, platform, metric: Metric::PageLoads, month };
        if let Some(list) = dataset.list(b) {
            for (d, count) in &list.entries {
                *totals.entry(*d).or_insert(0) += count;
            }
        }
    }
    let mut ranked: Vec<(DomainId, u64)> = totals.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut buckets = HashMap::with_capacity(ranked.len());
    for (i, (d, _)) in ranked.iter().enumerate() {
        if let Some(bucket) = ladder.iter().find(|upper| i < **upper) {
            buckets.insert(*d, *bucket);
        }
    }
    BucketedList { ladder: ladder.to_vec(), buckets }
}

/// §6's under-representation check for one country: of the sites in the
/// country's smallest (head) bucket, the fraction missing from the global
/// head bucket, and the fraction missing from the global list entirely.
#[derive(Debug, Clone, Serialize)]
pub struct GlobalCoverage {
    /// ISO code.
    pub country: String,
    /// Sites in the country's head bucket.
    pub head_sites: usize,
    /// Fraction of those outside the global head bucket.
    pub missing_from_global_head: f64,
    /// Fraction of those absent from every global bucket.
    pub missing_from_global_entirely: f64,
}

/// Computes [`GlobalCoverage`] for every country.
pub fn global_coverage(
    dataset: &ChromeDataset,
    platform: Platform,
    month: Month,
    ladder: &[usize],
) -> Vec<GlobalCoverage> {
    let global = global_buckets(dataset, platform, month, ladder);
    let head = ladder.first().copied().unwrap_or(1_000);
    let mut out = Vec::new();
    for (ci, country) in COUNTRIES.iter().enumerate() {
        let Some(local) = country_buckets(dataset, ci, platform, month, ladder) else {
            continue;
        };
        let head_sites: Vec<DomainId> = local
            .buckets
            .iter()
            .filter(|(_, b)| **b == head)
            .map(|(d, _)| *d)
            .collect();
        if head_sites.is_empty() {
            continue;
        }
        let missing_head =
            head_sites.iter().filter(|d| global.bucket(**d) != Some(head)).count();
        let missing_all = head_sites.iter().filter(|d| global.bucket(**d).is_none()).count();
        out.push(GlobalCoverage {
            country: country.code.to_owned(),
            head_sites: head_sites.len(),
            missing_from_global_head: missing_head as f64 / head_sites.len() as f64,
            missing_from_global_entirely: missing_all as f64 / head_sites.len() as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;
    use wwv_world::{Country, World, WorldConfig};

    fn fixture() -> (World, ChromeDataset) {
        let world = World::new(WorldConfig::small());
        let ds = DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(2.0e8)
            .client_threshold(500)
            .max_depth(3_000)
            .build();
        (world, ds)
    }

    const LADDER: [usize; 3] = [100, 1_000, 3_000];

    #[test]
    fn buckets_nest_by_rank() {
        let (_, ds) = fixture();
        let us = Country::index_of("US").unwrap();
        let buckets =
            country_buckets(&ds, us, Platform::Windows, Month::February2022, &LADDER).unwrap();
        let b = Breakdown {
            country: us,
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            month: Month::February2022,
        };
        let list = ds.list(b).unwrap();
        assert_eq!(buckets.bucket(list.at_rank(1).unwrap()), Some(100));
        assert_eq!(buckets.bucket(list.at_rank(100).unwrap()), Some(100));
        assert_eq!(buckets.bucket(list.at_rank(101).unwrap()), Some(1_000));
        assert_eq!(buckets.count_in(100), 100);
        assert_eq!(buckets.count_in(1_000), 900);
    }

    #[test]
    fn global_head_contains_the_giants() {
        let (_, ds) = fixture();
        let global = global_buckets(&ds, Platform::Windows, Month::February2022, &LADDER);
        let google = ds.domains.get("google.com").unwrap();
        assert_eq!(global.bucket(google), Some(100));
    }

    #[test]
    fn national_sites_underrepresented_globally() {
        // §6: a globally aggregated list misses regionally important sites.
        let (_, ds) = fixture();
        let coverage = global_coverage(&ds, Platform::Windows, Month::February2022, &LADDER);
        assert_eq!(coverage.len(), 45);
        // Small countries lose a large share of their head sites globally.
        let pa = coverage.iter().find(|c| c.country == "PA").unwrap();
        let us = coverage.iter().find(|c| c.country == "US").unwrap();
        assert!(
            pa.missing_from_global_head > us.missing_from_global_head,
            "PA {:.2} vs US {:.2}",
            pa.missing_from_global_head,
            us.missing_from_global_head
        );
        let median_missing = {
            let mut v: Vec<f64> = coverage.iter().map(|c| c.missing_from_global_head).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(median_missing > 0.2, "median missing {median_missing}");
    }

    #[test]
    fn unranked_domains_have_no_bucket() {
        let (_, ds) = fixture();
        let us = Country::index_of("US").unwrap();
        let kr = Country::index_of("KR").unwrap();
        let buckets =
            country_buckets(&ds, us, Platform::Windows, Month::February2022, &LADDER).unwrap();
        // A Korea-only domain is absent from the US bucket list.
        let naver = ds.domains.get("naver.com").unwrap();
        assert_eq!(buckets.bucket(naver), None);
        let kr_buckets =
            country_buckets(&ds, kr, Platform::Windows, Month::February2022, &LADDER).unwrap();
        assert_eq!(kr_buckets.bucket(naver), Some(100));
    }
}
