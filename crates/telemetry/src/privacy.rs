//! Chrome's privacy safeguards (§3.1).
//!
//! Three mechanisms protect users in the shared dataset:
//!
//! 1. **Unique-client thresholding** — domains seen by fewer unique clients
//!    than a threshold are excluded from every rank list.
//! 2. **Foreground-event down-sampling** — each page-foreground event has
//!    only ≈0.35% probability of being uploaded, so no client's browsing is
//!    fully observable.
//! 3. **Non-public-domain exclusion** — domains not reachable from the
//!    public web (intranets, localhost, single-label hosts) never enter the
//!    dataset.

/// Probability that a single foreground event is uploaded (§3.1).
pub const FOREGROUND_UPLOAD_PROBABILITY: f64 = 0.0035;

/// Default unique-client threshold for a domain to be included.
pub const DEFAULT_CLIENT_THRESHOLD: u64 = 2_000;

/// Suffixes that mark a domain as non-public.
const NON_PUBLIC_SUFFIXES: [&str; 5] = [".local", ".corp", ".internal", ".lan", ".intranet"];

/// Whether a domain may appear in the dataset. Non-public domains —
/// single-label hosts (`localhost`, bare machine names), RFC-6762-style
/// `.local` names, and common intranet suffixes — are excluded.
pub fn is_public_domain(domain: &str) -> bool {
    let public = !domain.is_empty()
        && domain.contains('.')
        && !NON_PUBLIC_SUFFIXES.iter().any(|s| domain.ends_with(s));
    if !public {
        rejection_counter().inc();
    }
    public
}

/// Cached registry handle for the rejection counter.
fn rejection_counter() -> &'static wwv_obs::Counter {
    static REJECTIONS: std::sync::OnceLock<wwv_obs::Counter> = std::sync::OnceLock::new();
    REJECTIONS.get_or_init(|| wwv_obs::global().counter("privacy.non_public_rejections"))
}

/// Whether a domain passes the unique-client threshold.
pub fn passes_threshold(unique_clients: u64, threshold: u64) -> bool {
    unique_clients >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_domains_pass() {
        assert!(is_public_domain("example.com"));
        assert!(is_public_domain("news.bbc.co.uk"));
    }

    #[test]
    fn single_label_hosts_excluded() {
        assert!(!is_public_domain("localhost"));
        assert!(!is_public_domain("fileserver"));
        assert!(!is_public_domain(""));
    }

    #[test]
    fn intranet_suffixes_excluded() {
        assert!(!is_public_domain("printer.local"));
        assert!(!is_public_domain("wiki.corp"));
        assert!(!is_public_domain("git.internal"));
        assert!(!is_public_domain("nas.lan"));
        assert!(!is_public_domain("portal.intranet"));
    }

    #[test]
    fn threshold_is_inclusive() {
        assert!(passes_threshold(2_000, 2_000));
        assert!(!passes_threshold(1_999, 2_000));
    }

    #[test]
    fn downsample_rate_matches_paper() {
        assert!((FOREGROUND_UPLOAD_PROBABILITY - 0.0035).abs() < 1e-12);
    }
}
