//! Dataset persistence.
//!
//! Three formats:
//!
//! * **JSON** — human-inspectable, via a flat intermediate representation
//!   (JSON objects cannot key maps by struct, so breakdown-keyed maps
//!   flatten to arrays);
//! * **legacy binary** (`WWVD`) — the original length-prefixed format,
//!   kept readable behind [`read_legacy`] so existing archives migrate via
//!   `wwv snapshot migrate`;
//! * **snapshot** (`WWVS`, the default) — the `wwv-snap` chunked columnar
//!   container: one checksummed chunk per (month, country, platform,
//!   metric) rank list with varint/delta-encoded columns, an interned
//!   domain string table, and a trailing catalog so [`SnapshotReader`] can
//!   seek to a single list without decoding the whole file. ~2× smaller
//!   than the legacy format and corruption-evident down to single bit
//!   flips.
//!
//! [`read_auto`] sniffs the magic and accepts either binary format.

use crate::dataset::{ChromeDataset, DomainId, DomainTable, RankListData};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;
use wwv_snap::varint::{
    get_str, get_u32_column, get_u64_delta_column, get_uvarint, put_str, put_u32_column,
    put_u64_delta_column, put_uvarint,
};
use wwv_snap::{SnapError, SnapshotFile, SnapshotWriter};
use wwv_world::{Breakdown, Metric, Month, Platform, SiteId};

/// Errors while loading a persisted dataset.
#[derive(Debug)]
pub enum PersistError {
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// Binary payload truncated or malformed.
    Malformed(&'static str),
    /// Unsupported format version.
    Version(u16),
    /// Snapshot container rejected the bytes (checksum, framing, magic…).
    Snap(SnapError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::Malformed(what) => write!(f, "malformed binary dataset: {what}"),
            PersistError::Version(v) => write!(f, "unsupported dataset format version {v}"),
            PersistError::Snap(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl From<SnapError> for PersistError {
    fn from(e: SnapError) -> Self {
        PersistError::Snap(e)
    }
}

/// Flat JSON-friendly representation.
#[derive(Serialize, Deserialize)]
struct FlatDataset {
    domains: Vec<(String, u32)>,
    lists: Vec<(Breakdown, Vec<(u32, u64)>)>,
    client_threshold: u64,
    max_depth: usize,
}

/// Serializes a dataset to JSON.
pub fn to_json(dataset: &ChromeDataset) -> Result<String, PersistError> {
    let flat = FlatDataset {
        domains: (0..dataset.domains.len() as u32)
            .map(|i| {
                let id = DomainId(i);
                (dataset.domains.name(id).to_owned(), dataset.domains.site(id).0)
            })
            .collect(),
        lists: dataset
            .lists
            .iter()
            .map(|(b, l)| (*b, l.entries.iter().map(|(d, c)| (d.0, *c)).collect()))
            .collect(),
        client_threshold: dataset.client_threshold,
        max_depth: dataset.max_depth,
    };
    Ok(serde_json::to_string(&flat)?)
}

/// Deserializes a dataset from JSON.
pub fn from_json(json: &str) -> Result<ChromeDataset, PersistError> {
    let flat: FlatDataset = serde_json::from_str(json)?;
    Ok(rebuild(flat))
}

fn rebuild(flat: FlatDataset) -> ChromeDataset {
    let mut domains = DomainTable::new();
    for (name, site) in &flat.domains {
        domains.intern(name, SiteId(*site));
    }
    let lists = flat
        .lists
        .into_iter()
        .map(|(b, entries)| {
            (b, RankListData { entries: entries.into_iter().map(|(d, c)| (DomainId(d), c)).collect() })
        })
        .collect();
    ChromeDataset { domains, lists, client_threshold: flat.client_threshold, max_depth: flat.max_depth }
}

/// Binary format version.
const BINARY_VERSION: u16 = 1;
/// Magic prefix (`WWVD`).
const MAGIC: &[u8; 4] = b"WWVD";

fn platform_tag(p: Platform) -> u8 {
    match p {
        Platform::Windows => 0,
        Platform::Android => 1,
    }
}

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::PageLoads => 0,
        Metric::TimeOnPage => 1,
    }
}

/// Serializes a dataset to the compact binary format.
pub fn to_binary(dataset: &ChromeDataset) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u16_le(BINARY_VERSION);
    out.put_u64_le(dataset.client_threshold);
    out.put_u32_le(dataset.max_depth as u32);
    // Domain table.
    out.put_u32_le(dataset.domains.len() as u32);
    for i in 0..dataset.domains.len() as u32 {
        let id = DomainId(i);
        let name = dataset.domains.name(id).as_bytes();
        out.put_u8(name.len() as u8);
        out.put_slice(name);
        out.put_u32_le(dataset.domains.site(id).0);
    }
    // Lists.
    out.put_u32_le(dataset.lists.len() as u32);
    let mut keys: Vec<&Breakdown> = dataset.lists.keys().collect();
    keys.sort_by_key(|b| (b.country, platform_tag(b.platform), metric_tag(b.metric), b.month.index()));
    for b in keys {
        let list = &dataset.lists[b];
        out.put_u8(b.country as u8);
        out.put_u8(platform_tag(b.platform));
        out.put_u8(metric_tag(b.metric));
        out.put_u8(b.month.index() as u8);
        out.put_u32_le(list.entries.len() as u32);
        for (d, c) in &list.entries {
            out.put_u32_le(d.0);
            out.put_u64_le(*c);
        }
    }
    out.freeze()
}

/// Deserializes a dataset from the binary format.
pub fn from_binary(mut buf: Bytes) -> Result<ChromeDataset, PersistError> {
    if buf.remaining() < 6 || &buf[..4] != MAGIC {
        return Err(PersistError::Malformed("missing magic"));
    }
    buf.advance(4);
    let version = buf.get_u16_le();
    if version != BINARY_VERSION {
        return Err(PersistError::Version(version));
    }
    if buf.remaining() < 12 {
        return Err(PersistError::Malformed("truncated header"));
    }
    let client_threshold = buf.get_u64_le();
    let max_depth = buf.get_u32_le() as usize;
    let n_domains = {
        if buf.remaining() < 4 {
            return Err(PersistError::Malformed("truncated domain count"));
        }
        buf.get_u32_le() as usize
    };
    let mut domains = DomainTable::new();
    for _ in 0..n_domains {
        if buf.remaining() < 1 {
            return Err(PersistError::Malformed("truncated domain entry"));
        }
        let len = buf.get_u8() as usize;
        if buf.remaining() < len + 4 {
            return Err(PersistError::Malformed("truncated domain name"));
        }
        let name_bytes = buf.split_to(len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| PersistError::Malformed("domain not UTF-8"))?;
        let site = SiteId(buf.get_u32_le());
        domains.intern(name, site);
    }
    if buf.remaining() < 4 {
        return Err(PersistError::Malformed("truncated list count"));
    }
    let n_lists = buf.get_u32_le() as usize;
    // The count is attacker-controlled; cap the pre-allocation so a corrupt
    // header cannot demand gigabytes before the per-list checks reject it.
    let mut lists = std::collections::HashMap::with_capacity(n_lists.min(1_024));
    for _ in 0..n_lists {
        if buf.remaining() < 8 {
            return Err(PersistError::Malformed("truncated list header"));
        }
        let country = buf.get_u8() as usize;
        let platform = match buf.get_u8() {
            0 => Platform::Windows,
            1 => Platform::Android,
            _ => return Err(PersistError::Malformed("bad platform tag")),
        };
        let metric = match buf.get_u8() {
            0 => Metric::PageLoads,
            1 => Metric::TimeOnPage,
            _ => return Err(PersistError::Malformed("bad metric tag")),
        };
        let month_idx = buf.get_u8() as usize;
        let month =
            *Month::ALL.get(month_idx).ok_or(PersistError::Malformed("bad month index"))?;
        let n = buf.get_u32_le() as usize;
        if buf.remaining() < n * 12 {
            return Err(PersistError::Malformed("truncated list entries"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let d = DomainId(buf.get_u32_le());
            let c = buf.get_u64_le();
            entries.push((d, c));
        }
        lists.insert(Breakdown { country, platform, metric, month }, RankListData { entries });
    }
    Ok(ChromeDataset { domains, lists, client_threshold, max_depth })
}

/// Alias for the legacy (`WWVD`) reader, kept for migration tooling.
pub fn read_legacy(buf: Bytes) -> Result<ChromeDataset, PersistError> {
    from_binary(buf)
}

// ---------------------------------------------------------------------------
// Snapshot (WWVS) schema on top of the wwv-snap container.
// ---------------------------------------------------------------------------

/// Chunk kind: dataset-wide metadata (thresholds, counts).
const KIND_META: u16 = 1;
/// Chunk kind: the interned domain string table.
const KIND_DOMAINS: u16 = 2;
/// Chunk kind: one rank list, keyed by packed breakdown.
const KIND_LIST: u16 = 3;

fn pack_breakdown_key(b: &Breakdown) -> [u8; 4] {
    [b.country as u8, platform_tag(b.platform), metric_tag(b.metric), b.month.index() as u8]
}

fn unpack_breakdown_key(key: &[u8]) -> Result<Breakdown, PersistError> {
    let [country, platform, metric, month] = key else {
        return Err(PersistError::Malformed("list chunk key length"));
    };
    let platform = match platform {
        0 => Platform::Windows,
        1 => Platform::Android,
        _ => return Err(PersistError::Malformed("bad platform tag")),
    };
    let metric = match metric {
        0 => Metric::PageLoads,
        1 => Metric::TimeOnPage,
        _ => return Err(PersistError::Malformed("bad metric tag")),
    };
    let month = *Month::ALL
        .get(*month as usize)
        .ok_or(PersistError::Malformed("bad month index"))?;
    Ok(Breakdown { country: *country as usize, platform, metric, month })
}

/// Serializes a dataset into the checksummed columnar snapshot format.
/// Byte-deterministic: equal datasets produce identical files.
pub fn write_snapshot(dataset: &ChromeDataset) -> Bytes {
    let _span = wwv_obs::span!("snap.write");
    let start = Instant::now();
    let mut w = SnapshotWriter::new();

    let mut meta = Vec::new();
    put_uvarint(&mut meta, dataset.client_threshold);
    put_uvarint(&mut meta, dataset.max_depth as u64);
    put_uvarint(&mut meta, dataset.domains.len() as u64);
    put_uvarint(&mut meta, dataset.lists.len() as u64);
    w.add_chunk(KIND_META, b"", &meta);

    let mut table = Vec::new();
    put_uvarint(&mut table, dataset.domains.len() as u64);
    for i in 0..dataset.domains.len() as u32 {
        let id = DomainId(i);
        put_str(&mut table, dataset.domains.name(id));
        put_uvarint(&mut table, dataset.domains.site(id).0 as u64);
    }
    w.add_chunk(KIND_DOMAINS, b"", &table);

    let mut keys: Vec<&Breakdown> = dataset.lists.keys().collect();
    keys.sort_by_key(|b| pack_breakdown_key(b));
    let mut ids = Vec::new();
    let mut counts = Vec::new();
    let mut payload = Vec::new();
    for b in keys {
        let list = &dataset.lists[b];
        ids.clear();
        counts.clear();
        ids.extend(list.entries.iter().map(|(d, _)| d.0));
        counts.extend(list.entries.iter().map(|(_, c)| *c));
        payload.clear();
        put_u32_column(&mut payload, &ids);
        put_u64_delta_column(&mut payload, &counts);
        w.add_chunk(KIND_LIST, &pack_breakdown_key(b), &payload);
    }
    let bytes = w.finish();
    wwv_obs::global().counter("snap.bytes_written").add(bytes.len() as u64);
    wwv_obs::global().histogram("snap.write_ms").record(start.elapsed().as_millis() as u64);
    bytes
}

/// Serializes a dataset and writes it to `path` atomically (temp sibling +
/// fsync + rename, via [`wwv_snap::write_atomic`]), so a concurrent watcher
/// or a crash mid-write can never observe a torn snapshot. Returns the
/// number of bytes written.
pub fn write_snapshot_atomic(
    dataset: &ChromeDataset,
    path: &std::path::Path,
) -> std::io::Result<usize> {
    let bytes = write_snapshot(dataset);
    wwv_snap::write_atomic(path, &bytes)?;
    Ok(bytes.len())
}

fn decode_meta(payload: &Bytes) -> Result<(u64, usize, usize, usize), PersistError> {
    let mut cur = &payload[..];
    let client_threshold = get_uvarint(&mut cur)?;
    let max_depth = get_uvarint(&mut cur)? as usize;
    let n_domains = get_uvarint(&mut cur)? as usize;
    let n_lists = get_uvarint(&mut cur)? as usize;
    if !cur.is_empty() {
        return Err(PersistError::Malformed("meta chunk trailing bytes"));
    }
    Ok((client_threshold, max_depth, n_domains, n_lists))
}

fn decode_domains(payload: &Bytes, expect: usize) -> Result<DomainTable, PersistError> {
    let mut cur = &payload[..];
    let n = get_uvarint(&mut cur)? as usize;
    if n != expect {
        return Err(PersistError::Malformed("domain count disagrees with meta"));
    }
    let mut domains = DomainTable::new();
    for _ in 0..n {
        let name = get_str(&mut cur)?;
        let site = get_uvarint(&mut cur)?;
        if site > u32::MAX as u64 {
            return Err(PersistError::Malformed("site id overflows"));
        }
        domains.intern(name, SiteId(site as u32));
    }
    if !cur.is_empty() {
        return Err(PersistError::Malformed("domain chunk trailing bytes"));
    }
    if domains.len() != expect {
        return Err(PersistError::Malformed("duplicate domain names"));
    }
    Ok(domains)
}

fn decode_list(payload: &Bytes) -> Result<RankListData, PersistError> {
    let mut cur = &payload[..];
    let cap = payload.len();
    let ids = get_u32_column(&mut cur, cap)?;
    let counts = get_u64_delta_column(&mut cur, cap)?;
    if ids.len() != counts.len() {
        return Err(PersistError::Malformed("list column lengths disagree"));
    }
    if !cur.is_empty() {
        return Err(PersistError::Malformed("list chunk trailing bytes"));
    }
    let entries = ids.into_iter().map(DomainId).zip(counts).collect();
    Ok(RankListData { entries })
}

/// Deserializes a full dataset from the snapshot format, verifying every
/// chunk checksum on the way.
pub fn read_snapshot(buf: Bytes) -> Result<ChromeDataset, PersistError> {
    let _span = wwv_obs::span!("snap.load");
    let start = Instant::now();
    let reader = SnapshotReader::open(buf)?;
    let mut lists = std::collections::HashMap::with_capacity(reader.list_count().min(1_024));
    for b in reader.breakdowns() {
        let list = reader
            .list(&b)?
            .ok_or(PersistError::Malformed("catalog list vanished"))?;
        if lists.insert(b, list).is_some() {
            return Err(PersistError::Malformed("duplicate list chunk"));
        }
    }
    if lists.len() != reader.n_lists {
        return Err(PersistError::Malformed("list count disagrees with meta"));
    }
    let dataset = ChromeDataset {
        domains: reader.domains,
        lists,
        client_threshold: reader.client_threshold,
        max_depth: reader.max_depth,
    };
    wwv_obs::global().histogram("snap.load_ms").record(start.elapsed().as_millis() as u64);
    Ok(dataset)
}

/// Reads either binary format by sniffing the leading magic.
pub fn read_auto(buf: Bytes) -> Result<ChromeDataset, PersistError> {
    match buf.get(..4) {
        Some(m) if m == wwv_snap::MAGIC => read_snapshot(buf),
        Some(m) if m == MAGIC => read_legacy(buf),
        _ => Err(PersistError::Malformed("unknown snapshot magic")),
    }
}

/// A lazily-decoding view over a snapshot: the header, catalog, metadata,
/// and domain table are verified up front; individual rank lists decode on
/// demand via the catalog, so serving one list does not pay for 180.
pub struct SnapshotReader {
    file: SnapshotFile,
    /// Interned domain table.
    pub domains: DomainTable,
    /// Unique-client threshold recorded at build time.
    pub client_threshold: u64,
    /// Maximum list depth recorded at build time.
    pub max_depth: usize,
    n_lists: usize,
}

impl SnapshotReader {
    /// Parses the container and decodes the metadata + domain chunks.
    pub fn open(buf: Bytes) -> Result<SnapshotReader, PersistError> {
        let file = SnapshotFile::parse(buf)?;
        let meta = file
            .find(KIND_META, b"")?
            .ok_or(PersistError::Malformed("missing meta chunk"))?;
        let (client_threshold, max_depth, n_domains, n_lists) = decode_meta(&meta)?;
        let table = file
            .find(KIND_DOMAINS, b"")?
            .ok_or(PersistError::Malformed("missing domain chunk"))?;
        let domains = decode_domains(&table, n_domains)?;
        Ok(SnapshotReader { file, domains, client_threshold, max_depth, n_lists })
    }

    /// Verifies every chunk checksum in the underlying container without
    /// decoding any payload. Zero-copy serving calls this once at open so
    /// later per-list decodes can trust the bytes they seek to.
    pub fn verify_all(&self) -> Result<(), PersistError> {
        self.file.verify_all().map_err(PersistError::Snap)
    }

    /// The container's content fingerprint (checksum-of-checksums).
    pub fn fingerprint(&self) -> u64 {
        self.file.fingerprint()
    }

    /// Breakdown keys present in the catalog, in file order.
    pub fn breakdowns(&self) -> impl Iterator<Item = Breakdown> + '_ {
        self.file
            .entries()
            .iter()
            .filter(|e| e.kind == KIND_LIST)
            .filter_map(|e| unpack_breakdown_key(&e.key).ok())
    }

    /// Number of rank-list chunks in the catalog.
    pub fn list_count(&self) -> usize {
        self.file.entries().iter().filter(|e| e.kind == KIND_LIST).count()
    }

    /// Seeks to, verifies, and decodes a single rank list. `Ok(None)` when
    /// the snapshot has no list for that breakdown.
    pub fn list(&self, b: &Breakdown) -> Result<Option<RankListData>, PersistError> {
        match self.file.find(KIND_LIST, &pack_breakdown_key(b))? {
            Some(payload) => decode_list(&payload).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;
    use wwv_world::{World, WorldConfig};

    fn tiny_dataset() -> ChromeDataset {
        let config = WorldConfig {
            global_pool: 120,
            language_pool: 60,
            regional_pool: 40,
            national_pool: 300,
            ..WorldConfig::small()
        };
        let world = World::new(config);
        DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(5.0e7)
            .client_threshold(200)
            .max_depth(500)
            .build()
    }

    fn assert_same(a: &ChromeDataset, b: &ChromeDataset) {
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.client_threshold, b.client_threshold);
        assert_eq!(a.max_depth, b.max_depth);
        assert_eq!(a.lists.len(), b.lists.len());
        for (key, list) in &a.lists {
            let other = b.lists.get(key).expect("same breakdowns");
            assert_eq!(list.entries.len(), other.entries.len());
            for ((d1, c1), (d2, c2)) in list.entries.iter().zip(&other.entries) {
                assert_eq!(a.domains.name(*d1), b.domains.name(*d2));
                assert_eq!(c1, c2);
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let ds = tiny_dataset();
        let json = to_json(&ds).unwrap();
        let back = from_json(&json).unwrap();
        assert_same(&ds, &back);
    }

    #[test]
    fn binary_roundtrip() {
        let ds = tiny_dataset();
        let bin = to_binary(&ds);
        let back = from_binary(bin).unwrap();
        assert_same(&ds, &back);
    }

    #[test]
    fn binary_smaller_than_json() {
        // The tiny fixture is dominated by the domain-string table (shared
        // by both formats), so the ratio here is modest; at full scale the
        // 12-byte binary entries vs ~20-char JSON tuples dominate.
        let ds = tiny_dataset();
        let json = to_json(&ds).unwrap();
        let bin = to_binary(&ds);
        assert!(bin.len() < json.len(), "binary {} vs json {}", bin.len(), json.len());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(Bytes::from_static(b"NOPE")).is_err());
        assert!(from_binary(Bytes::from_static(b"WWVD\xFF\xFF")).is_err());
        // Truncation mid-stream.
        let ds = tiny_dataset();
        let bin = to_binary(&ds);
        let cut = bin.slice(0..bin.len() / 2);
        assert!(from_binary(cut).is_err());
    }

    #[test]
    fn lookup_index_restored_after_load() {
        let ds = tiny_dataset();
        let back = from_binary(to_binary(&ds)).unwrap();
        assert!(back.domains.get("google.com").is_some());
    }

    #[test]
    fn snapshot_roundtrip_exact_and_deterministic() {
        let ds = tiny_dataset();
        let snap = write_snapshot(&ds);
        let back = read_snapshot(snap.clone()).unwrap();
        assert_same(&ds, &back);
        assert!(back.domains.get("google.com").is_some(), "index rebuilt");
        // Byte-determinism: re-encoding the decoded dataset reproduces the
        // file exactly.
        assert_eq!(write_snapshot(&back), snap);
    }

    #[test]
    fn snapshot_at_least_30_percent_smaller_than_legacy() {
        let ds = tiny_dataset();
        let legacy = to_binary(&ds);
        let snap = write_snapshot(&ds);
        assert!(
            snap.len() * 10 <= legacy.len() * 7,
            "snapshot {} bytes vs legacy {} ({}%)",
            snap.len(),
            legacy.len(),
            snap.len() * 100 / legacy.len()
        );
    }

    #[test]
    fn read_auto_sniffs_both_formats() {
        let ds = tiny_dataset();
        assert_same(&ds, &read_auto(to_binary(&ds)).unwrap());
        assert_same(&ds, &read_auto(write_snapshot(&ds)).unwrap());
        assert!(matches!(
            read_auto(Bytes::from_static(b"JUNKJUNKJUNK")),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn snapshot_reader_seeks_single_list() {
        let ds = tiny_dataset();
        let reader = SnapshotReader::open(write_snapshot(&ds)).unwrap();
        assert_eq!(reader.client_threshold, ds.client_threshold);
        assert_eq!(reader.max_depth, ds.max_depth);
        assert_eq!(reader.list_count(), ds.lists.len());
        let (b, expected) = ds.lists.iter().next().unwrap();
        let got = reader.list(b).unwrap().expect("list present");
        assert_eq!(got.entries, expected.entries);
        // A breakdown the dataset never built is a clean None.
        let missing = Breakdown {
            country: 0,
            platform: Platform::Windows,
            metric: Metric::PageLoads,
            month: Month::September2021,
        };
        assert!(reader.list(&missing).unwrap().is_none());
    }

    #[test]
    fn snapshot_rejects_corruption_with_typed_errors() {
        let ds = tiny_dataset();
        let snap = write_snapshot(&ds);
        // Truncation mid-file.
        assert!(read_snapshot(snap.slice(..snap.len() / 2)).is_err());
        // A flipped payload byte inside some chunk.
        let mut corrupt = snap.to_vec();
        let mid = corrupt.len() / 3;
        corrupt[mid] ^= 0x10;
        assert!(read_snapshot(Bytes::from(corrupt)).is_err());
        // Legacy magic fed to the snapshot reader.
        assert!(matches!(
            read_snapshot(to_binary(&ds)),
            Err(PersistError::Snap(SnapError::Magic))
        ));
    }
}
