//! Dataset persistence.
//!
//! Two formats:
//!
//! * **JSON** — human-inspectable, via a flat intermediate representation
//!   (JSON objects cannot key maps by struct, so breakdown-keyed maps
//!   flatten to arrays);
//! * **binary** — a compact length-prefixed format built on `bytes`, ~10×
//!   smaller and fast enough to snapshot full-scale datasets.

use crate::dataset::{ChromeDataset, DomainId, DomainTable, RankListData};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;
use wwv_world::{Breakdown, Metric, Month, Platform, SiteId};

/// Errors while loading a persisted dataset.
#[derive(Debug)]
pub enum PersistError {
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// Binary payload truncated or malformed.
    Malformed(&'static str),
    /// Unsupported format version.
    Version(u16),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::Malformed(what) => write!(f, "malformed binary dataset: {what}"),
            PersistError::Version(v) => write!(f, "unsupported dataset format version {v}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Flat JSON-friendly representation.
#[derive(Serialize, Deserialize)]
struct FlatDataset {
    domains: Vec<(String, u32)>,
    lists: Vec<(Breakdown, Vec<(u32, u64)>)>,
    client_threshold: u64,
    max_depth: usize,
}

/// Serializes a dataset to JSON.
pub fn to_json(dataset: &ChromeDataset) -> Result<String, PersistError> {
    let flat = FlatDataset {
        domains: (0..dataset.domains.len() as u32)
            .map(|i| {
                let id = DomainId(i);
                (dataset.domains.name(id).to_owned(), dataset.domains.site(id).0)
            })
            .collect(),
        lists: dataset
            .lists
            .iter()
            .map(|(b, l)| (*b, l.entries.iter().map(|(d, c)| (d.0, *c)).collect()))
            .collect(),
        client_threshold: dataset.client_threshold,
        max_depth: dataset.max_depth,
    };
    Ok(serde_json::to_string(&flat)?)
}

/// Deserializes a dataset from JSON.
pub fn from_json(json: &str) -> Result<ChromeDataset, PersistError> {
    let flat: FlatDataset = serde_json::from_str(json)?;
    Ok(rebuild(flat))
}

fn rebuild(flat: FlatDataset) -> ChromeDataset {
    let mut domains = DomainTable::new();
    for (name, site) in &flat.domains {
        domains.intern(name, SiteId(*site));
    }
    let lists = flat
        .lists
        .into_iter()
        .map(|(b, entries)| {
            (b, RankListData { entries: entries.into_iter().map(|(d, c)| (DomainId(d), c)).collect() })
        })
        .collect();
    ChromeDataset { domains, lists, client_threshold: flat.client_threshold, max_depth: flat.max_depth }
}

/// Binary format version.
const BINARY_VERSION: u16 = 1;
/// Magic prefix (`WWVD`).
const MAGIC: &[u8; 4] = b"WWVD";

fn platform_tag(p: Platform) -> u8 {
    match p {
        Platform::Windows => 0,
        Platform::Android => 1,
    }
}

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::PageLoads => 0,
        Metric::TimeOnPage => 1,
    }
}

/// Serializes a dataset to the compact binary format.
pub fn to_binary(dataset: &ChromeDataset) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u16_le(BINARY_VERSION);
    out.put_u64_le(dataset.client_threshold);
    out.put_u32_le(dataset.max_depth as u32);
    // Domain table.
    out.put_u32_le(dataset.domains.len() as u32);
    for i in 0..dataset.domains.len() as u32 {
        let id = DomainId(i);
        let name = dataset.domains.name(id).as_bytes();
        out.put_u8(name.len() as u8);
        out.put_slice(name);
        out.put_u32_le(dataset.domains.site(id).0);
    }
    // Lists.
    out.put_u32_le(dataset.lists.len() as u32);
    let mut keys: Vec<&Breakdown> = dataset.lists.keys().collect();
    keys.sort_by_key(|b| (b.country, platform_tag(b.platform), metric_tag(b.metric), b.month.index()));
    for b in keys {
        let list = &dataset.lists[b];
        out.put_u8(b.country as u8);
        out.put_u8(platform_tag(b.platform));
        out.put_u8(metric_tag(b.metric));
        out.put_u8(b.month.index() as u8);
        out.put_u32_le(list.entries.len() as u32);
        for (d, c) in &list.entries {
            out.put_u32_le(d.0);
            out.put_u64_le(*c);
        }
    }
    out.freeze()
}

/// Deserializes a dataset from the binary format.
pub fn from_binary(mut buf: Bytes) -> Result<ChromeDataset, PersistError> {
    if buf.remaining() < 6 || &buf[..4] != MAGIC {
        return Err(PersistError::Malformed("missing magic"));
    }
    buf.advance(4);
    let version = buf.get_u16_le();
    if version != BINARY_VERSION {
        return Err(PersistError::Version(version));
    }
    if buf.remaining() < 12 {
        return Err(PersistError::Malformed("truncated header"));
    }
    let client_threshold = buf.get_u64_le();
    let max_depth = buf.get_u32_le() as usize;
    let n_domains = {
        if buf.remaining() < 4 {
            return Err(PersistError::Malformed("truncated domain count"));
        }
        buf.get_u32_le() as usize
    };
    let mut domains = DomainTable::new();
    for _ in 0..n_domains {
        if buf.remaining() < 1 {
            return Err(PersistError::Malformed("truncated domain entry"));
        }
        let len = buf.get_u8() as usize;
        if buf.remaining() < len + 4 {
            return Err(PersistError::Malformed("truncated domain name"));
        }
        let name_bytes = buf.split_to(len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| PersistError::Malformed("domain not UTF-8"))?;
        let site = SiteId(buf.get_u32_le());
        domains.intern(name, site);
    }
    if buf.remaining() < 4 {
        return Err(PersistError::Malformed("truncated list count"));
    }
    let n_lists = buf.get_u32_le() as usize;
    // The count is attacker-controlled; cap the pre-allocation so a corrupt
    // header cannot demand gigabytes before the per-list checks reject it.
    let mut lists = std::collections::HashMap::with_capacity(n_lists.min(1_024));
    for _ in 0..n_lists {
        if buf.remaining() < 8 {
            return Err(PersistError::Malformed("truncated list header"));
        }
        let country = buf.get_u8() as usize;
        let platform = match buf.get_u8() {
            0 => Platform::Windows,
            1 => Platform::Android,
            _ => return Err(PersistError::Malformed("bad platform tag")),
        };
        let metric = match buf.get_u8() {
            0 => Metric::PageLoads,
            1 => Metric::TimeOnPage,
            _ => return Err(PersistError::Malformed("bad metric tag")),
        };
        let month_idx = buf.get_u8() as usize;
        let month =
            *Month::ALL.get(month_idx).ok_or(PersistError::Malformed("bad month index"))?;
        let n = buf.get_u32_le() as usize;
        if buf.remaining() < n * 12 {
            return Err(PersistError::Malformed("truncated list entries"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let d = DomainId(buf.get_u32_le());
            let c = buf.get_u64_le();
            entries.push((d, c));
        }
        lists.insert(Breakdown { country, platform, metric, month }, RankListData { entries });
    }
    Ok(ChromeDataset { domains, lists, client_threshold, max_depth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;
    use wwv_world::{World, WorldConfig};

    fn tiny_dataset() -> ChromeDataset {
        let config = WorldConfig {
            global_pool: 120,
            language_pool: 60,
            regional_pool: 40,
            national_pool: 300,
            ..WorldConfig::small()
        };
        let world = World::new(config);
        DatasetBuilder::new(&world)
            .months(&[Month::February2022])
            .base_volume(5.0e7)
            .client_threshold(200)
            .max_depth(500)
            .build()
    }

    fn assert_same(a: &ChromeDataset, b: &ChromeDataset) {
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.client_threshold, b.client_threshold);
        assert_eq!(a.max_depth, b.max_depth);
        assert_eq!(a.lists.len(), b.lists.len());
        for (key, list) in &a.lists {
            let other = b.lists.get(key).expect("same breakdowns");
            assert_eq!(list.entries.len(), other.entries.len());
            for ((d1, c1), (d2, c2)) in list.entries.iter().zip(&other.entries) {
                assert_eq!(a.domains.name(*d1), b.domains.name(*d2));
                assert_eq!(c1, c2);
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let ds = tiny_dataset();
        let json = to_json(&ds).unwrap();
        let back = from_json(&json).unwrap();
        assert_same(&ds, &back);
    }

    #[test]
    fn binary_roundtrip() {
        let ds = tiny_dataset();
        let bin = to_binary(&ds);
        let back = from_binary(bin).unwrap();
        assert_same(&ds, &back);
    }

    #[test]
    fn binary_smaller_than_json() {
        // The tiny fixture is dominated by the domain-string table (shared
        // by both formats), so the ratio here is modest; at full scale the
        // 12-byte binary entries vs ~20-char JSON tuples dominate.
        let ds = tiny_dataset();
        let json = to_json(&ds).unwrap();
        let bin = to_binary(&ds);
        assert!(bin.len() < json.len(), "binary {} vs json {}", bin.len(), json.len());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(Bytes::from_static(b"NOPE")).is_err());
        assert!(from_binary(Bytes::from_static(b"WWVD\xFF\xFF")).is_err());
        // Truncation mid-stream.
        let ds = tiny_dataset();
        let bin = to_binary(&ds);
        let cut = bin.slice(0..bin.len() / 2);
        assert!(from_binary(cut).is_err());
    }

    #[test]
    fn lookup_index_restored_after_load() {
        let ds = tiny_dataset();
        let back = from_binary(to_binary(&ds)).unwrap();
        assert!(back.domains.get("google.com").is_some());
    }
}
