//! HyperLogLog cardinality estimation.
//!
//! The collector's exact unique-client sets are fine for simulation scale,
//! but a real Chrome-scale pipeline cannot keep a hash set per (breakdown,
//! domain). This is the standard production answer: a fixed-size sketch
//! (2^precision one-byte registers) whose estimate is within ~2% at
//! precision 12. [`crate::collector`] can be composed with either counter;
//! the privacy thresholding only needs "is the unique count ≥ T", which the
//! sketch answers reliably for thresholds far above its error bound.
//!
//! Implements the HyperLogLog of Flajolet et al. (2007) with the standard
//! small-range (linear counting) correction.

use serde::{Deserialize, Serialize};

/// A HyperLogLog sketch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Minimum supported precision (16 registers).
    pub const MIN_PRECISION: u8 = 4;
    /// Maximum supported precision (65 536 registers).
    pub const MAX_PRECISION: u8 = 16;

    /// Creates a sketch with `2^precision` registers. Returns `None` for a
    /// precision outside `[4, 16]`.
    pub fn new(precision: u8) -> Option<Self> {
        if !(Self::MIN_PRECISION..=Self::MAX_PRECISION).contains(&precision) {
            return None;
        }
        Some(HyperLogLog { precision, registers: vec![0; 1 << precision] })
    }

    /// Number of registers.
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// Inserts a pre-hashed 64-bit item (the collector inserts client ids
    /// through a mixer).
    pub fn insert_hash(&mut self, hash: u64) {
        let p = self.precision as u32;
        let index = (hash >> (64 - p)) as usize;
        let rest = hash << p;
        // Rank: position of the leftmost 1-bit in the remaining bits, 1-based;
        // all-zero rest gets the maximum rank.
        let rank = (rest.leading_zeros() + 1).min(64 - p + 1) as u8;
        if rank > self.registers[index] {
            self.registers[index] = rank;
        }
    }

    /// Inserts an item by hashing it (SplitMix64 finalizer).
    pub fn insert(&mut self, item: u64) {
        self.insert_hash(mix(item));
    }

    /// Estimates the cardinality.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|r| 2.0f64.powi(-(*r as i32))).sum();
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting while registers are sparse.
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|r| **r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merges another sketch of the same precision; returns `false` (and
    /// leaves `self` untouched) on precision mismatch.
    pub fn merge(&mut self, other: &HyperLogLog) -> bool {
        if self.precision != other.precision {
            return false;
        }
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
        true
    }

    /// Relative standard error of the estimate (≈ 1.04 / √m).
    pub fn relative_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_precision() {
        assert!(HyperLogLog::new(3).is_none());
        assert!(HyperLogLog::new(17).is_none());
        assert!(HyperLogLog::new(12).is_some());
    }

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(12).unwrap();
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn small_cardinalities_near_exact() {
        let mut hll = HyperLogLog::new(12).unwrap();
        for i in 0..100u64 {
            hll.insert(i);
        }
        let e = hll.estimate();
        assert!((e - 100.0).abs() < 5.0, "estimate {e}");
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        let mut hll = HyperLogLog::new(12).unwrap();
        let n = 200_000u64;
        for i in 0..n {
            hll.insert(i);
        }
        let e = hll.estimate();
        let tolerance = 3.0 * hll.relative_error() * n as f64;
        assert!((e - n as f64).abs() < tolerance, "estimate {e} vs {n} (tol {tolerance})");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(10).unwrap();
        for _ in 0..50 {
            for i in 0..500u64 {
                hll.insert(i);
            }
        }
        let e = hll.estimate();
        assert!((e - 500.0).abs() < 60.0, "estimate {e}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(11).unwrap();
        let mut b = HyperLogLog::new(11).unwrap();
        let mut union = HyperLogLog::new(11).unwrap();
        for i in 0..10_000u64 {
            a.insert(i);
            union.insert(i);
        }
        for i in 5_000..15_000u64 {
            b.insert(i);
            union.insert(i);
        }
        assert!(a.merge(&b));
        assert_eq!(a, union);
    }

    #[test]
    fn merge_rejects_mismatched_precision() {
        let mut a = HyperLogLog::new(10).unwrap();
        let b = HyperLogLog::new(12).unwrap();
        assert!(!a.merge(&b));
    }

    #[test]
    fn threshold_decisions_reliable() {
        // The privacy gate only asks "≥ 2 000 unique clients?"; with 4 096
        // registers (1.6% error) a 3σ band cleanly separates 1 000 from
        // 4 000.
        let mut below = HyperLogLog::new(12).unwrap();
        let mut above = HyperLogLog::new(12).unwrap();
        for i in 0..1_000u64 {
            below.insert(i);
        }
        for i in 0..4_000u64 {
            above.insert(i);
        }
        assert!(below.estimate() < 2_000.0);
        assert!(above.estimate() > 2_000.0);
    }
}
