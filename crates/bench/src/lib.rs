//! # wwv-bench
//!
//! Shared machinery for the Criterion benchmarks and the `reproduce`
//! experiment harness: scale presets (small vs paper-scale) and the
//! experiment battery that checks every table and figure of the paper
//! against its stated values.
//!
//! The battery is organized as independent **experiment families** (one per
//! figure/table group). Families share no mutable state — they read the
//! same context/world/dataset — so they are evaluated on the `wwv-par`
//! pool and their rows concatenated in a fixed family order, producing the
//! same report at any worker count.

use std::collections::HashMap;
use wwv_core::buckets::{bucket_intersections, FIG12_BUCKETS};
use wwv_core::clustering::cluster_countries;
use wwv_core::composition::composition;
use wwv_core::concentration::{concentration_curve, headline_stats, sites_for_share};
use wwv_core::endemicity::{popularity_curves, CurveShape};
use wwv_core::global_national::{
    class_composition, classify_global_national, endemic_fraction, global_share_by_bucket,
    RANK_BUCKETS,
};
use wwv_core::metric_diff::{category_metric_agreement, metric_agreement, metric_leaning};
use wwv_core::platform_diff::platform_differences;
use wwv_core::prevalence::{figure3_categories, prevalence_by_rank};
use wwv_core::similarity::similarity_matrix;
use wwv_core::temporal::{adjacent_month_stability, december_anomaly};
use wwv_core::top10::{android_app_fraction, cctld_pattern, endemic_top10_keys, top10_coverage};
use wwv_core::{AnalysisContext, ExperimentReport, ReportRow};
use wwv_taxonomy::curation::{audit_agreement, run_curation};
use wwv_taxonomy::Category;
use wwv_telemetry::ChromeDataset;
use wwv_world::{Metric, Platform, TrafficCurve, World, WorldConfig};

/// Shared benchmark fixture: one small world + February dataset per process.
pub fn bench_fixture() -> &'static (World, ChromeDataset) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(World, ChromeDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scale = Scale::small();
        let world = World::new(scale.config.clone());
        let ds = wwv_telemetry::DatasetBuilder::new(&world)
            .months(&[wwv_world::Month::February2022])
            .base_volume(scale.base_volume)
            .client_threshold(scale.client_threshold)
            .max_depth(scale.max_depth)
            .build();
        (world, ds)
    })
}

/// Shared benchmark fixture including all six months (temporal benches).
pub fn bench_fixture_all_months() -> &'static (World, ChromeDataset) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(World, ChromeDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scale = Scale::small();
        let world = World::new(scale.config.clone());
        let ds = wwv_telemetry::DatasetBuilder::new(&world)
            .base_volume(scale.base_volume)
            .client_threshold(scale.client_threshold)
            .max_depth(scale.max_depth)
            .build();
        (world, ds)
    })
}

/// A harness scale preset.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Preset name for logging.
    pub name: &'static str,
    /// World configuration.
    pub config: WorldConfig,
    /// Dataset volume per usage-weight-1.0 country per month.
    pub base_volume: f64,
    /// Privacy threshold.
    pub client_threshold: u64,
    /// Stored rank-list depth.
    pub max_depth: usize,
    /// Analysis depth (the paper's 10K).
    pub analysis_depth: usize,
    /// "Top-1K of any country" head depth for endemicity scoring.
    pub head_depth: usize,
    /// Largest temporal rank bucket.
    pub top_bucket: usize,
    /// Depth for the §4.4 loads-vs-time agreement: must sit well below the
    /// surviving-site population so list truncation binds (as the paper's
    /// top-10K does against a much larger survivor set).
    pub agreement_depth: usize,
}

impl Scale {
    /// Reduced scale: runs the whole battery in about a minute.
    pub fn small() -> Scale {
        Scale {
            name: "small",
            config: WorldConfig::small(),
            base_volume: 2.0e8,
            client_threshold: 500,
            max_depth: 3_000,
            analysis_depth: 2_000,
            head_depth: 200,
            top_bucket: 1_000,
            agreement_depth: 1_200,
        }
    }

    /// Paper scale: top-10K lists for 45 countries over six months.
    pub fn full() -> Scale {
        Scale {
            name: "full",
            config: WorldConfig::default(),
            base_volume: 2.0e10,
            client_threshold: 2_000,
            max_depth: 12_000,
            analysis_depth: 10_000,
            head_depth: 1_000,
            top_bucket: 10_000,
            agreement_depth: 10_000,
        }
    }
}

/// Shared read-only inputs of one experiment family.
struct FamilyCtx<'a> {
    ctx: &'a AnalysisContext<'a>,
    world: &'a World,
    dataset: &'a ChromeDataset,
    scale: &'a Scale,
}

type FamilyFn = for<'a> fn(&FamilyCtx<'a>) -> Vec<ReportRow>;

/// The experiment families in report order. Each is independent of the
/// others (F10's similarity matrix feeds F11's clustering, so they share a
/// family).
const FAMILIES: &[(&str, FamilyFn)] = &[
    ("f01-concentration", family_concentration),
    ("f02-composition", family_composition),
    ("f03-prevalence", family_prevalence),
    ("f04-platform-diff", family_platform_diff),
    ("f05-metric-diff", family_metric_diff),
    ("s4.5-temporal", family_temporal),
    ("s4.2.1-top10", family_top10_composition),
    ("f06-f09-endemicity", family_endemicity),
    ("f10-f11-similarity", family_similarity_clusters),
    ("f12-buckets", family_buckets),
    ("f13-taxonomy", family_taxonomy),
    ("s5.3.2-endemic-top10", family_endemic_top10),
    ("ablations", family_ablations),
    ("dataset-sanity", family_dataset_sanity),
];

/// Runs the full experiment battery, appending one row per paper-stated
/// quantity. This is the single source of truth for EXPERIMENTS.md.
/// Families run concurrently on the `wwv-par` pool; rows are appended in
/// the fixed family order, so the report is identical at any worker count.
pub fn run_experiments(
    report: &mut ExperimentReport,
    ctx: &AnalysisContext<'_>,
    world: &World,
    dataset: &ChromeDataset,
    scale: &Scale,
) {
    let _span = wwv_obs::span!("experiments");
    let family_ctx = FamilyCtx { ctx, world, dataset, scale };
    let rows = wwv_par::par_map("experiments.families", FAMILIES, |_, &(label, family)| {
        let _span = wwv_obs::span!(label);
        family(&family_ctx)
    });
    for family_rows in rows {
        for row in family_rows {
            report.push(row);
        }
    }
}

// ---- F1 / §4.1: traffic concentration. -------------------------------
fn family_concentration(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let wl = TrafficCurve::windows_page_loads();
    let wt = TrafficCurve::windows_time_on_page();
    let al = TrafficCurve::android_page_loads();
    let at = TrafficCurve::android_time_on_page();
    rows.push(ReportRow::banded("F1.a", "Windows loads: top-1 share", "17%", wl.share(1), 0.165, 0.175));
    rows.push(ReportRow::exact("F1.b", "Windows loads: sites for 25%", 6, sites_for_share(&wl, 0.25)));
    rows.push(ReportRow::banded("F1.c", "Windows loads: top-100 share", "just under 40%", wl.cumulative(100), 0.37, 0.40));
    rows.push(ReportRow::banded("F1.d", "Windows loads: top-10K share", "~70%", wl.cumulative(10_000), 0.67, 0.73));
    rows.push(ReportRow::banded("F1.e", "Windows loads: top-1M share", ">95%", wl.cumulative(1_000_000), 0.95, 1.0));
    rows.push(ReportRow::banded("F1.f", "Windows time: top-1 share", "24%", wt.share(1), 0.23, 0.25));
    rows.push(ReportRow::exact("F1.g", "Windows time: sites for 50%", 7, sites_for_share(&wt, 0.50)));
    rows.push(ReportRow::banded("F1.h", "Windows time: top-100 share", ">60%", wt.cumulative(100), 0.60, 0.70));
    rows.push(ReportRow::banded("F1.i", "Windows time: top-10K share", ">85%", wt.cumulative(10_000), 0.85, 0.90));
    rows.push(ReportRow::exact("F1.j", "Android loads: sites for 25%", 10, sites_for_share(&al, 0.25)));
    rows.push(ReportRow::banded("F1.k", "Android time: top-8 share", "25%", at.cumulative(8), 0.24, 0.26));
    rows.push(ReportRow::banded("F1.l", "Android time: top-10K share", "just under 80%", at.cumulative(10_000), 0.76, 0.80));
    let series = concentration_curve(Platform::Windows, Metric::PageLoads);
    rows.push(ReportRow::check(
        "F1.m",
        "Fig.1 series monotone over 6 decades",
        "monotone",
        "monotone",
        series.cumulative.windows(2).all(|w| w[1] >= w[0]),
    ));

    // §4.1.2 from the observed dataset.
    let heads = headline_stats(ctx);
    rows.push(ReportRow::exact("S4.1.a", "countries where Google tops loads", 44usize, heads.google_top_loads_countries));
    rows.push(ReportRow::check(
        "S4.1.b",
        "the non-Google leader",
        "Naver in South Korea",
        &heads
            .non_google_leader
            .as_ref()
            .map(|(c, k)| format!("{k} in {c}"))
            .unwrap_or_else(|| "none".into()),
        heads.non_google_leader.as_ref().map(|(c, k)| (c.as_str(), k.as_str()))
            == Some(("South Korea", "naver")),
    ));
    rows.push(ReportRow::banded(
        "S4.1.c",
        "countries where YouTube tops time",
        "40 / 45",
        heads.youtube_top_time_countries as f64,
        37.0,
        43.0,
    ));
    rows.push(ReportRow::banded(
        "S4.1.d",
        "median per-country top-1 loads share",
        "20% (range 12–33%)",
        heads.country_top1_share.median,
        0.13,
        0.27,
    ));
    rows
}

// ---- F2: composition of top sites. ------------------------------------
fn family_composition(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let comp_wl = composition(ctx, Platform::Windows, Metric::PageLoads);
    let comp_wt = composition(ctx, Platform::Windows, Metric::TimeOnPage);
    let comp_at = composition(ctx, Platform::Android, Metric::TimeOnPage);
    // At reduced scale the traffic-weight denominator only reaches the
    // curve's cumulative share at the shallower list depth (C(2K) ≈ 0.59 vs
    // C(10K) ≈ 0.70), inflating every share by ~20%; the band scales with it.
    let f2a_hi = if f.scale.analysis_depth >= 10_000 { 28.0 } else { 33.0 };
    rows.push(ReportRow::banded(
        "F2.a",
        "search-engine share of top-10K desktop loads",
        "20–25%",
        comp_wl.traffic_10k(Category::SearchEngines),
        14.0,
        f2a_hi,
    ));
    rows.push(ReportRow::banded(
        "F2.b",
        "video-streaming share of top-10K desktop time",
        "33%",
        comp_wt.traffic_10k(Category::VideoStreaming),
        18.0,
        45.0,
    ));
    rows.push(ReportRow::check(
        "F2.c",
        "mobile time: adult above its desktop share",
        "adult ≈18% on mobile",
        &format!("adult {:.1}%", comp_at.traffic_10k(Category::Pornography)),
        comp_at.traffic_10k(Category::Pornography) > 8.0
            && comp_at.traffic_10k(Category::Pornography) > comp_wt.traffic_10k(Category::Pornography),
    ));
    rows
}

// ---- F3/F14: category prevalence by rank. ------------------------------
fn family_prevalence(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let t: Vec<usize> = if f.scale.analysis_depth >= 10_000 {
        vec![10, 30, 50, 100, 300, 1_000, 3_000, 10_000]
    } else {
        vec![10, 30, 50, 100, 300, 1_000, 2_000]
    };
    let last = t.len() - 1;
    let biz = prevalence_by_rank(ctx, Category::Business, Platform::Windows, Metric::PageLoads, &t);
    rows.push(ReportRow::check(
        "F3.a",
        "Business rises from head to tail (desktop)",
        "3% of top-30 → 8% of top-10K",
        &format!("{:.1}% → {:.1}%", biz.summary[1].median, biz.summary[last].median),
        biz.summary[last].median > biz.summary[1].median,
    ));
    let news = prevalence_by_rank(ctx, Category::NewsMedia, Platform::Windows, Metric::PageLoads, &t);
    let news_mid = news.summary[3].median.max(news.summary[4].median);
    rows.push(ReportRow::check(
        "F3.b",
        "News & Media peaks mid-rank (desktop)",
        ">15% near top-50, <7% at 10K",
        &format!(
            "head {:.1}%, mid {:.1}%, tail {:.1}%",
            news.summary[0].median, news_mid, news.summary[last].median
        ),
        news_mid > news.summary[last].median,
    ));
    let video = prevalence_by_rank(ctx, Category::VideoStreaming, Platform::Windows, Metric::TimeOnPage, &t);
    rows.push(ReportRow::check(
        "F3.c",
        "Video streaming head-heavy by time",
        ">40% of top-10, <10% of top-10K",
        &format!("top10 {:.1}%, tail {:.1}%", video.summary[0].median, video.summary[last].median),
        video.summary[0].median >= 20.0 && video.summary[0].median > 4.0 * video.summary[last].median,
    ));
    let tech = prevalence_by_rank(ctx, Category::Technology, Platform::Windows, Metric::PageLoads, &t);
    // The paper's Fig. 3 technology series is flat from rank ~50 onward; the
    // very head is dominated by the handful of giant search/video/social
    // anchors on both sides, so the stability check starts at the top-50
    // threshold.
    let tech_spread = tech.summary[2..].iter().map(|s| s.median).fold(f64::NEG_INFINITY, f64::max)
        - tech.summary[2..].iter().map(|s| s.median).fold(f64::INFINITY, f64::min);
    rows.push(ReportRow::check(
        "F3.d",
        "Technology stable across rank (desktop)",
        "10–12% throughout",
        &format!("spread {tech_spread:.1} pp"),
        tech_spread < 10.0,
    ));
    // F14 = the same series split per metric; verify the split exists.
    let mut f14_ok = false;
    for cat in figure3_categories() {
        let s = prevalence_by_rank(ctx, cat, Platform::Android, Metric::TimeOnPage, &t);
        if s.summary.iter().any(|q| q.median > 0.0) {
            f14_ok = true;
            break;
        }
    }
    rows.push(ReportRow::check("F14", "per-metric prevalence split computed", "series exists", "series exists", f14_ok));
    rows
}

// ---- F4/F15: platform differences. -------------------------------------
fn family_platform_diff(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let fig4 = platform_differences(ctx, Metric::PageLoads);
    let score_of = |rows: &[wwv_core::platform_diff::PlatformDiff], c: Category| {
        rows.iter().find(|r| r.category == c.name()).map(|r| r.score)
    };
    rows.push(ReportRow::check(
        "F4.a",
        "Pornography / Dating mobile-leaning",
        "top of Fig. 4",
        &format!(
            "porn {:?}, dating {:?}",
            score_of(&fig4, Category::Pornography),
            score_of(&fig4, Category::DatingRelationships)
        ),
        score_of(&fig4, Category::Pornography).map(|s| s > 0.0).unwrap_or(false),
    ));
    rows.push(ReportRow::check(
        "F4.b",
        "Educational institutions / Business desktop-leaning",
        "bottom of Fig. 4",
        &format!(
            "edu {:?}, business {:?}",
            score_of(&fig4, Category::EducationalInstitutions),
            score_of(&fig4, Category::Business)
        ),
        score_of(&fig4, Category::EducationalInstitutions).map(|s| s < 0.0).unwrap_or(false)
            && score_of(&fig4, Category::Business).map(|s| s < 0.0).unwrap_or(false),
    ));
    let fig15 = platform_differences(ctx, Metric::TimeOnPage);
    rows.push(ReportRow::check(
        "F15",
        "time-on-page platform contrasts (Fig. 15)",
        "adult mobile; video-streaming time desktop",
        &format!(
            "porn {:?}, video {:?}",
            score_of(&fig15, Category::Pornography),
            score_of(&fig15, Category::VideoStreaming)
        ),
        // §4.2.2: adult stays mobile-leaning by time; non-adult video time
        // happens on desktop browsers (mobile uses native apps).
        score_of(&fig15, Category::Pornography).map(|s| s > 0.0).unwrap_or(false)
            && score_of(&fig15, Category::VideoStreaming).map(|s| s < 0.0).unwrap_or(false),
    ));
    rows
}

// ---- §4.4 / F5 / F16: metric disagreement. -----------------------------
fn family_metric_diff(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    // Agreement is computed at a depth where truncation binds (see
    // `Scale::agreement_depth`); a depth at or beyond the survivor population
    // trivially inflates intersection toward 1.
    let ctx_agree = AnalysisContext::with_depth(f.world, f.dataset, f.scale.agreement_depth);
    let agree_w = metric_agreement(&ctx_agree, Platform::Windows);
    let agree_a = metric_agreement(&ctx_agree, Platform::Android);
    rows.push(ReportRow::banded("S4.4.a", "desktop loads∩time top-10K intersection", "65%", agree_w.intersection.median, 0.40, 0.85));
    rows.push(ReportRow::banded("S4.4.b", "mobile loads∩time top-10K intersection", "74%", agree_a.intersection.median, 0.40, 0.90));
    rows.push(ReportRow::banded("S4.4.c", "desktop Spearman within intersection", "0.65", agree_w.spearman.median, 0.35, 0.90));
    rows.push(ReportRow::banded("S4.4.d", "mobile Spearman within intersection", "0.69", agree_a.spearman.median, 0.35, 0.92));
    let lean_w = metric_leaning(ctx, Platform::Windows);
    let get = |m: &HashMap<String, f64>, c: Category| m.get(c.name()).copied().unwrap_or(0.0);
    rows.push(ReportRow::check(
        "F5.a",
        "E-commerce over-represented among loads-leaning",
        "Fig. 5 left",
        &format!(
            "loads {:.1}% vs time {:.1}%",
            get(&lean_w.loads_leaning, Category::Ecommerce),
            get(&lean_w.time_leaning, Category::Ecommerce)
        ),
        get(&lean_w.loads_leaning, Category::Ecommerce) > get(&lean_w.time_leaning, Category::Ecommerce),
    ));
    rows.push(ReportRow::check(
        "F5.b",
        "Video streaming over-represented among time-leaning",
        "Fig. 5 right",
        &format!(
            "time {:.1}% vs loads {:.1}%",
            get(&lean_w.time_leaning, Category::VideoStreaming),
            get(&lean_w.loads_leaning, Category::VideoStreaming)
        ),
        get(&lean_w.time_leaning, Category::VideoStreaming) > get(&lean_w.loads_leaning, Category::VideoStreaming),
    ));
    let lean_a = metric_leaning(ctx, Platform::Android);
    rows.push(ReportRow::check(
        "F16",
        "mobile leanings computed (Fig. 16)",
        "series exists",
        &format!("{} categories", lean_a.loads_leaning.len() + lean_a.time_leaning.len()),
        !lean_a.loads_leaning.is_empty() && !lean_a.time_leaning.is_empty(),
    ));

    // §4.4 within-category robustness (paper: 57–72% intersection desktop).
    let biz_agree = category_metric_agreement(&ctx_agree, Platform::Windows, Category::Business);
    rows.push(ReportRow::banded(
        "S4.4.e",
        "within-Business loads∩time intersection",
        "57–72% (desktop categories)",
        biz_agree.intersection.median,
        0.30,
        0.95,
    ));
    rows
}

// ---- §4.5: temporal stability. -----------------------------------------
fn family_temporal(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let adj100 = adjacent_month_stability(ctx, Platform::Windows, Metric::PageLoads, 100);
    let min_adj = adj100.iter().map(|p| p.intersection.median).fold(f64::INFINITY, f64::min);
    rows.push(ReportRow::banded("S4.5.a", "adjacent-month top-100 intersection (min pair)", "82–90%", min_adj, 0.55, 1.0));
    let min_rho = adj100.iter().map(|p| p.spearman.median).fold(f64::INFINITY, f64::min);
    rows.push(ReportRow::banded("S4.5.b", "adjacent-month top-100 Spearman (min pair)", "0.89–0.97", min_rho, 0.60, 1.0));
    let anomaly = december_anomaly(ctx, Platform::Windows, Metric::TimeOnPage, f.scale.top_bucket);
    rows.push(ReportRow::check(
        "S4.5.c",
        "December least similar to neighbors",
        "Nov→Dec below Jan→Feb",
        &format!("{:.2} vs {:.2}", anomaly.nov_dec_intersection, anomaly.jan_feb_intersection),
        anomaly.nov_dec_intersection < anomaly.jan_feb_intersection,
    ));
    rows.push(ReportRow::check(
        "S4.5.d",
        "December: education down",
        "8.4% → 6.8%",
        &format!("{:.1}% → {:.1}%", anomaly.education_nov_dec.0, anomaly.education_nov_dec.1),
        anomaly.education_nov_dec.1 < anomaly.education_nov_dec.0,
    ));
    rows.push(ReportRow::check(
        "S4.5.e",
        "December: e-commerce up",
        "5.0% → 6.1%",
        &format!("{:.1}% → {:.1}%", anomaly.ecommerce_nov_dec.0, anomaly.ecommerce_nov_dec.1),
        anomaly.ecommerce_nov_dec.1 > anomaly.ecommerce_nov_dec.0,
    ));
    rows
}

// ---- §4.2.1: top-10 composition. ---------------------------------------
fn family_top10_composition(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let cov = top10_coverage(ctx, Platform::Windows, Metric::PageLoads);
    rows.push(ReportRow::exact("S4.2.a", "countries with a search engine in top 10", 45usize, cov.search));
    rows.push(ReportRow::banded("S4.2.b", "countries with a video platform in top 10", "45", cov.video as f64, 42.0, 45.0));
    rows.push(ReportRow::banded("S4.2.c", "countries with a social network in top 10", "44", cov.social as f64, 38.0, 45.0));
    rows.push(ReportRow::banded("S4.2.d", "countries with adult content in top 10", "43", cov.adult as f64, 33.0, 45.0));
    rows.push(ReportRow::banded("S4.2.e", "countries with e-commerce in top 10", "32", cov.ecommerce as f64, 20.0, 45.0));
    rows.push(ReportRow::banded("S4.2.f", "countries with chat/messaging in top 10", "30", cov.chat as f64, 15.0, 45.0));
    rows
}

// ---- F6/T1 + F7 + T2 + F8 + F9: endemicity & global/national. ---------
fn family_endemicity(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let scale = f.scale;
    let mut rows = Vec::new();
    let curves = popularity_curves(ctx, Platform::Windows, Metric::PageLoads, scale.head_depth);
    let find = |key: &str| curves.iter().find(|c| c.key == key);
    let google_e = find("google").map(|c| c.endemicity()).unwrap_or(999.0);
    let naver_e = find("naver").map(|c| c.endemicity()).unwrap_or(0.0);
    rows.push(ReportRow::check(
        "F6.a",
        "google curve flat & low endemicity",
        "Fig. 6 flat example",
        &format!("E = {google_e:.1}, shape {:?}", find("google").map(|c| c.shape())),
        google_e < 40.0 && find("google").map(|c| c.shape() == CurveShape::Flat).unwrap_or(false),
    ));
    rows.push(ReportRow::check(
        "F6.b",
        "naver endemic to one country",
        "Fig. 6 endemic example",
        &format!("E = {naver_e:.1}"),
        naver_e > 100.0,
    ));
    let shape_census: Vec<usize> =
        CurveShape::ALL.iter().map(|s| curves.iter().filter(|c| c.shape() == *s).count()).collect();
    rows.push(ReportRow::check(
        "T1",
        "curve shapes observed (Table 1)",
        "6 shapes",
        &format!("{shape_census:?}"),
        shape_census.iter().filter(|n| **n > 0).count() >= 5,
    ));
    let scores_bounded = curves.iter().all(|c| (0.0..=180.1).contains(&c.endemicity()));
    rows.push(ReportRow::check(
        "F7.a",
        "endemicity scores within [0, 180]",
        "score range 0–180",
        if scores_bounded { "bounded" } else { "out of range" },
        scores_bounded,
    ));
    let (split, _) = classify_global_national(ctx, Platform::Windows, Metric::PageLoads, scale.head_depth);
    rows.push(ReportRow::banded(
        "T2",
        "globally popular fraction of scored sites",
        "≈2% (national ≈98%)",
        split.global_fraction,
        0.002,
        0.12,
    ));
    let comp = class_composition(ctx, &split);
    let tech_g = comp.global.get("Technology").copied().unwrap_or(0.0);
    let tech_n = comp.national.get("Technology").copied().unwrap_or(0.0);
    let edu_g = comp.global.get("Educational Institutions").copied().unwrap_or(0.0);
    let edu_n = comp.national.get("Educational Institutions").copied().unwrap_or(0.0);
    rows.push(ReportRow::check(
        "F8.a",
        "technology leans global",
        "Fig. 8 global side",
        &format!("global {tech_g:.1}% vs national {tech_n:.1}%"),
        tech_g > tech_n,
    ));
    rows.push(ReportRow::check(
        "F8.b",
        "educational institutions lean national",
        "Fig. 8 national side",
        &format!("global {edu_g:.1}% vs national {edu_n:.1}%"),
        edu_n >= edu_g,
    ));
    let fig9 = global_share_by_bucket(ctx, &split, &RANK_BUCKETS);
    rows.push(ReportRow::banded(
        "F9.a",
        "globally-popular sites in the top 10 (of 10)",
        "6–7 of 10",
        fig9.global_pct[0] / 10.0, // median percentage → sites out of 10
        4.0,
        8.0,
    ));
    // At reduced scale ranks 101–200 sit proportionally deeper into the
    // shared pools, lowering the national share a few points.
    let f9b_lo = 48.0;
    rows.push(ReportRow::banded(
        "F9.b",
        "nationally-popular share at ranks 101–200",
        "65–73%",
        100.0 - fig9.global_pct[4],
        f9b_lo,
        100.0,
    ));
    let (split_t, _) = classify_global_national(ctx, Platform::Windows, Metric::TimeOnPage, scale.head_depth);
    let fig17 = global_share_by_bucket(ctx, &split_t, &RANK_BUCKETS);
    rows.push(ReportRow::check(
        "F17",
        "time-on-page global share also falls with rank",
        "Fig. 17 matches Fig. 9",
        &format!("top10 {:.0}% vs 101–200 {:.0}%", fig17.global_pct[0], fig17.global_pct[4]),
        fig17.global_pct[0] >= fig17.global_pct[4],
    ));
    let endemic = endemic_fraction(ctx, Platform::Windows, Metric::PageLoads, scale.head_depth);
    rows.push(ReportRow::banded(
        "S5.1",
        "head sites absent from every other country's 10K",
        "53.9%",
        endemic,
        0.30,
        0.80,
    ));
    rows
}

// ---- F10 + F18–20 + F11 + F21: similarity heatmaps & clusters. ---------
// One family: F11's clustering consumes F10's similarity matrix.
fn family_similarity_clusters(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let sim_wl = similarity_matrix(ctx, Platform::Windows, Metric::PageLoads);
    let naf = sim_wl.between("DZ", "MA").unwrap_or(0.0);
    let cross = sim_wl.between("DZ", "JP").unwrap_or(1.0);
    rows.push(ReportRow::check(
        "F10.a",
        "North-Africa pair outshines cross-region pair",
        "DZ–MA ≫ DZ–JP",
        &format!("{naf:.3} vs {cross:.3}"),
        naf > cross,
    ));
    let kr_mean = sim_wl.mean_similarity("KR").unwrap_or(1.0);
    let us_mean = sim_wl.mean_similarity("US").unwrap_or(0.0);
    rows.push(ReportRow::check(
        "F10.b",
        "South Korea is the loads outlier",
        "KR visibly dissimilar",
        &format!("KR mean {kr_mean:.3} vs US mean {us_mean:.3}"),
        kr_mean < us_mean,
    ));
    for (id, platform, metric) in [
        ("F18", Platform::Windows, Metric::TimeOnPage),
        ("F19", Platform::Android, Metric::PageLoads),
        ("F20", Platform::Android, Metric::TimeOnPage),
    ] {
        let m = similarity_matrix(ctx, platform, metric);
        let jp = m.mean_similarity("JP").unwrap_or(1.0);
        let fr = m.mean_similarity("FR").unwrap_or(0.0);
        rows.push(ReportRow::check(
            id,
            &format!("{platform}/{metric} heatmap computed; JP atypical"),
            "JP below typical",
            &format!("JP {jp:.3} vs FR {fr:.3}"),
            jp <= fr + 0.05,
        ));
    }

    // ---- F11 + F21: clusters. ------------------------------------------
    if let Some(clusters) = cluster_countries(&sim_wl) {
        rows.push(ReportRow::banded(
            "F11.a",
            "number of country clusters",
            "11",
            clusters.clusters.len() as f64,
            4.0,
            20.0,
        ));
        rows.push(ReportRow::banded(
            "F21",
            "average silhouette coefficient",
            "0.11 (weak but present)",
            clusters.average_silhouette,
            -0.05,
            0.60,
        ));
        let cluster_of = |code: &str| {
            clusters.clusters.iter().position(|c| c.members.iter().any(|m| m == code))
        };
        rows.push(ReportRow::check(
            "F11.b",
            "Hispanic Americas share a cluster",
            "Central/South America cluster",
            &format!(
                "MX in {:?}, CO in {:?}, AR in {:?}",
                cluster_of("MX"),
                cluster_of("CO"),
                cluster_of("AR")
            ),
            cluster_of("MX") == cluster_of("CO")
                || cluster_of("MX") == cluster_of("AR")
                || cluster_of("CO") == cluster_of("AR"),
        ));
    }
    rows
}

// ---- F12: intersection by bucket. --------------------------------------
fn family_buckets(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let buckets: Vec<usize> =
        FIG12_BUCKETS.iter().copied().filter(|b| *b <= f.scale.analysis_depth).collect();
    let fig12 = bucket_intersections(ctx, Platform::Windows, Metric::PageLoads, &buckets);
    let head_mean = fig12.first().map(|b| b.mean()).unwrap_or(0.0);
    let tail_mean = fig12.last().map(|b| b.mean()).unwrap_or(1.0);
    rows.push(ReportRow::check(
        "F12",
        "head buckets more cross-country similar than tail",
        "top-10 > deepest bucket mean",
        &format!("{head_mean:.2} vs {tail_mean:.2}"),
        head_mean > tail_mean,
    ));
    rows
}

// ---- F13/T3: taxonomy curation. ----------------------------------------
fn family_taxonomy(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    let curation = run_curation(f.world.config().seed.derive("curation"));
    rows.push(ReportRow::exact("F13.a", "raw categories audited", 114usize, curation.audits.len()));
    rows.push(ReportRow::exact("F13.b", "categories dropped", 19usize, curation.dropped_count()));
    rows.push(ReportRow::exact("T3.a", "curated categories", 61usize, curation.curated_count()));
    rows.push(ReportRow::banded(
        "T3.b",
        "audit agreement with dispositions",
        "exact",
        audit_agreement(&curation),
        1.0,
        1.0,
    ));
    rows
}

// ---- §5.3.2: endemic top-10 sites. --------------------------------------
fn family_endemic_top10(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let endemic10 = endemic_top10_keys(ctx, Platform::Windows, Metric::PageLoads);
    let kr_endemic = endemic10.get("KR").map(Vec::len).unwrap_or(0);
    rows.push(ReportRow::banded(
        "S5.3.a",
        "KR endemic top-10 sites",
        "forums + portals (≥4)",
        kr_endemic as f64,
        3.0,
        10.0,
    ));
    rows.push(ReportRow::banded(
        "S5.3.b",
        "countries with ≥1 endemic top-10 site",
        "most",
        endemic10.len() as f64,
        25.0,
        45.0,
    ));

    // §5.3.2: e-commerce serves one ccTLD per market; google serves one
    // domain everywhere.
    let pattern = cctld_pattern(ctx, Platform::Windows, Metric::PageLoads, 50, 5);
    rows.push(ReportRow::check(
        "S5.3.c",
        "multi-country e-commerce uses per-country eTLDs",
        "amazon/shopee shape",
        &format!(
            "{} per-country-domain keys incl amazon: {}",
            pattern.per_country_domains.len(),
            pattern.per_country_domains.iter().any(|k| k == "amazon")
        ),
        pattern.per_country_domains.iter().any(|k| k == "amazon")
            && pattern.single_domain.iter().any(|k| k == "google"),
    ));
    // §4.1.2: desktop-only top-10 sites mostly have native Android apps.
    if let Some(fraction) = android_app_fraction(ctx, Metric::PageLoads) {
        rows.push(ReportRow::banded(
            "S4.1.e",
            "Windows-top10-not-Android sites with an app",
            "82% (93 of 114)",
            fraction,
            0.55,
            1.0,
        ));
    }
    rows
}

// ---- Ablations (DESIGN.md §5). -------------------------------------------
fn family_ablations(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    let ctx = f.ctx;
    let mut rows = Vec::new();
    let rbo_ab = wwv_core::ablation::rbo_ablation(ctx, Platform::Windows, Metric::PageLoads);
    rows.push(ReportRow::check(
        "A.1",
        "traffic-weighted vs classic RBO: structure stable",
        "same outlier, correlated",
        &format!(
            "ρ {:.2}, outliers {}/{}",
            rbo_ab.pairwise_spearman, rbo_ab.weighted_outlier, rbo_ab.classic_outlier
        ),
        rbo_ab.pairwise_spearman > 0.5 && rbo_ab.weighted_outlier == rbo_ab.classic_outlier,
    ));
    rows.push(ReportRow::banded(
        "A.2",
        "weighting changes pairwise similarities (MAD)",
        "non-trivial difference",
        rbo_ab.mean_abs_difference,
        0.01,
        1.0,
    ));
    let end_ab = wwv_core::ablation::endemicity_ablation(ctx, Platform::Windows, Metric::PageLoads, f.scale.head_depth);
    rows.push(ReportRow::check(
        "A.3",
        "area endemicity score places google at the global end",
        "bottom percentile",
        &format!(
            "area pct {:.1} vs naive pct {:.1}, score ρ {:.2}",
            end_ab.google_area_percentile, end_ab.google_naive_percentile, end_ab.score_spearman
        ),
        end_ab.google_area_percentile < 10.0,
    ));
    rows
}

// ---- Dataset sanity. ----------------------------------------------------
fn family_dataset_sanity(f: &FamilyCtx<'_>) -> Vec<ReportRow> {
    vec![ReportRow::exact(
        "D.a",
        "rank lists built (45 × 2 × 2 × 6)",
        1_080usize,
        f.dataset.lists.len(),
    )]
}
