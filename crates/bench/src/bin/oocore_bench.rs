//! Out-of-core primitive throughput bench: drives each `wwv-oocore`
//! component — the spill-to-disk work queue, the bloom-fronted seen
//! tracker, and the external top-K run merger — through a synthetic
//! paper-scale item stream under a fixed memory budget, and reports
//! sustained items/second plus the spill accounting (peak tracked bytes,
//! segments and bytes spilled, bloom hit/fallback counts).
//!
//! Usage:
//!   oocore_bench [--scale small|full|paper] [--memory-budget BYTES]
//!                [--spill-dir DIR] [--metrics-out PATH]
//!
//! `--scale paper` (the BENCH_oocore.json profile, frozen in
//! BENCHMARKS.md) pushes 220M items total — 20M queue items, 100M seen
//! probes over 1M distinct keys, 100M top-K entries — through a 64 MiB
//! default budget, so every component spills for real. `small` is a
//! seconds-long smoke with the same shape.

use std::sync::Arc;
use std::time::Instant;
use wwv_fault::FaultPlan;
use wwv_obs::{error, info};
use wwv_oocore::{
    MemBudget, OocoreConfig, RunSpiller, SeenTracker, SpillEnv, SpillQueue,
};

/// Splitmix64: the deterministic item stream generator.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Parses a byte count with optional `k`/`m`/`g` suffix (`64m`, `512K`).
fn parse_bytes(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, shift) = match t.chars().last()? {
        'k' | 'K' => (&t[..t.len() - 1], 10),
        'm' | 'M' => (&t[..t.len() - 1], 20),
        'g' | 'G' => (&t[..t.len() - 1], 30),
        _ => (t, 0),
    };
    digits.parse::<usize>().ok().map(|n| n << shift)
}

struct BenchScale {
    name: &'static str,
    queue_items: u64,
    seen_probes: u64,
    seen_distinct: u64,
    topk_entries: u64,
}

impl BenchScale {
    fn parse(name: &str) -> Option<BenchScale> {
        match name {
            "small" => Some(BenchScale {
                name: "small",
                queue_items: 200_000,
                seen_probes: 2_000_000,
                seen_distinct: 50_000,
                topk_entries: 2_000_000,
            }),
            "full" => Some(BenchScale {
                name: "full",
                queue_items: 2_000_000,
                seen_probes: 10_000_000,
                seen_distinct: 200_000,
                topk_entries: 10_000_000,
            }),
            // The real target: 100M+ items through every spill path.
            "paper" => Some(BenchScale {
                name: "paper",
                queue_items: 20_000_000,
                seen_probes: 100_000_000,
                seen_distinct: 1_000_000,
                topk_entries: 100_000_000,
            }),
            _ => None,
        }
    }
}

/// A fresh env per phase: each component gets the whole budget to itself,
/// carved by the same percentage splits the dataset builder uses.
fn env(dir: &std::path::Path, budget: usize) -> SpillEnv {
    SpillEnv {
        dir: dir.to_path_buf(),
        budget: Arc::new(MemBudget::new(budget)),
        plan: Arc::new(FaultPlan::none()),
        max_attempts: 8,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = BenchScale::parse("paper").expect("paper scale exists");
    let mut budget: usize = 64 << 20;
    let mut spill_dir: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str).and_then(BenchScale::parse) {
                    Some(s) => s,
                    None => {
                        error!(target: "oocore_bench", "--scale takes small|full|paper");
                        std::process::exit(2);
                    }
                };
            }
            "--memory-budget" => {
                i += 1;
                budget = match args.get(i).map(String::as_str).and_then(parse_bytes) {
                    Some(b) if b > 0 => b,
                    _ => {
                        error!(target: "oocore_bench", "--memory-budget takes BYTES (k/m/g ok)");
                        std::process::exit(2);
                    }
                };
            }
            "--spill-dir" => {
                i += 1;
                spill_dir = args.get(i).cloned();
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = args.get(i).cloned();
            }
            other => {
                error!(target: "oocore_bench", "unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let dir = spill_dir.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("wwv-oocore-bench-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spill dir");
    info!(target: "oocore_bench", "starting";
        scale = scale.name, budget = budget, spill_dir = dir.display().to_string().as_str());

    // Phase 1 — spill queue: push 16-byte items through the bounded buffer,
    // then replay every one back in order.
    let t = Instant::now();
    let queue_env = env(&dir, budget);
    let mut queue = SpillQueue::new(queue_env.clone(), "bench-queue", budget * 30 / 100);
    for i in 0..scale.queue_items {
        let word = splitmix64(i ^ 0x51EE);
        let mut item = Vec::with_capacity(16);
        item.extend_from_slice(&word.to_le_bytes());
        item.extend_from_slice(&i.to_le_bytes());
        queue.push(item).expect("queue push");
    }
    let mut replay = queue.finish().expect("queue finish");
    let mut replayed = 0u64;
    while replay.next_item().expect("queue replay").is_some() {
        replayed += 1;
    }
    let queue_stats = replay.stats();
    let queue_peak = queue_env.budget.peak();
    drop(replay);
    let queue_s = t.elapsed().as_secs_f64();
    assert_eq!(replayed, scale.queue_items, "every queued item must replay");
    info!(target: "oocore_bench", "queue phase done";
        items = scale.queue_items, secs = format!("{queue_s:.2}").as_str(),
        segments = queue_stats.spilled_segments);

    // Phase 2 — seen tracker: a Zipf-free uniform probe stream over a
    // pregenerated distinct-key pool; the tight shard allotment forces
    // sorted-run spills so disk probes are part of the measured mix.
    let pool: Vec<String> =
        (0..scale.seen_distinct).map(|i| format!("site-{i}.example")).collect();
    let cfg_for_bloom = OocoreConfig::new(budget, &dir);
    let t = Instant::now();
    let seen_env = env(&dir, budget);
    let mut tracker = SeenTracker::new(
        seen_env.clone(),
        42,
        cfg_for_bloom.bloom_bits_effective(),
        256,
        (budget / 32).max(4 << 10),
    );
    for i in 0..scale.seen_probes {
        let key = &pool[(splitmix64(i ^ 0x5EE4) % scale.seen_distinct) as usize];
        tracker.get_or_insert(key).expect("seen probe");
    }
    let seen_stats = tracker.stats();
    let seen_len = tracker.len() as u64;
    let seen_peak = seen_env.budget.peak();
    drop(tracker);
    let seen_s = t.elapsed().as_secs_f64();
    assert!(seen_len <= scale.seen_distinct, "tracker over-assigned ids");
    info!(target: "oocore_bench", "seen phase done";
        probes = scale.seen_probes, secs = format!("{seen_s:.2}").as_str(),
        distinct = seen_len, disk_probes = seen_stats.disk_probes);

    // Phase 3 — external top-K: push (id, count) entries, spilling sorted
    // runs, then merge every run down to the paper's 10K-entry head.
    let t = Instant::now();
    let topk_env = env(&dir, budget);
    let mut spiller = RunSpiller::new(topk_env.clone(), "bench-topk", budget * 15 / 100);
    for i in 0..scale.topk_entries {
        let word = splitmix64(i ^ 0x709C);
        spiller.push((word >> 32) as u32 % 5_000_000, word & 0xFFFF).expect("topk push");
    }
    let head = spiller.finish(10_000).expect("topk finish");
    let topk_stats = spiller.stats();
    let topk_peak = topk_env.budget.peak();
    drop(spiller);
    let topk_s = t.elapsed().as_secs_f64();
    assert!(head.len() <= 10_000, "top-K head overflowed");
    info!(target: "oocore_bench", "topk phase done";
        entries = scale.topk_entries, secs = format!("{topk_s:.2}").as_str(),
        runs = topk_stats.runs_spilled);

    let _ = std::fs::remove_dir_all(&dir);
    let total_items = scale.queue_items + scale.seen_probes + scale.topk_entries;
    // Hand-rolled JSON: flat report, stable field order (see BENCHMARKS.md).
    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": \"{}\",\n",
            "  \"budget_bytes\": {},\n",
            "  \"total_items\": {},\n",
            "  \"queue_items\": {},\n",
            "  \"queue_events_per_sec\": {:.0},\n",
            "  \"queue_spilled_segments\": {},\n",
            "  \"queue_spilled_bytes\": {},\n",
            "  \"queue_peak_bytes\": {},\n",
            "  \"seen_probes\": {},\n",
            "  \"seen_distinct\": {},\n",
            "  \"seen_probes_per_sec\": {:.0},\n",
            "  \"bloom_definite_new\": {},\n",
            "  \"fp_fallbacks\": {},\n",
            "  \"disk_probes\": {},\n",
            "  \"seen_runs_spilled\": {},\n",
            "  \"seen_peak_bytes\": {},\n",
            "  \"topk_entries\": {},\n",
            "  \"topk_entries_per_sec\": {:.0},\n",
            "  \"topk_runs_spilled\": {},\n",
            "  \"topk_spilled_bytes\": {},\n",
            "  \"topk_peak_bytes\": {}\n",
            "}}\n"
        ),
        scale.name,
        budget,
        total_items,
        scale.queue_items,
        scale.queue_items as f64 / queue_s.max(1e-9),
        queue_stats.spilled_segments,
        queue_stats.spilled_bytes,
        queue_peak,
        scale.seen_probes,
        seen_len,
        scale.seen_probes as f64 / seen_s.max(1e-9),
        seen_stats.bloom_definite_new,
        seen_stats.fp_fallbacks,
        seen_stats.disk_probes,
        seen_stats.runs_spilled,
        seen_peak,
        scale.topk_entries,
        scale.topk_entries as f64 / topk_s.max(1e-9),
        topk_stats.runs_spilled,
        topk_stats.spilled_bytes,
        topk_peak,
    );
    if let Some(path) = &metrics_out {
        std::fs::write(path, &json).expect("write oocore bench report");
        info!(target: "oocore_bench", "wrote report to {path}");
    }
    print!("{json}");
}
