//! The experiment harness: regenerates every table and figure of the paper
//! and prints paper-stated vs measured values.
//!
//! Usage:
//!   reproduce [--scale small|full] [--threads N] [--json PATH]
//!             [--figures DIR] [--metrics-out PATH]
//!             [--out-of-core] [--memory-budget BYTES] [--spill-dir DIR]
//!             [only-ids…]
//!
//! `--scale small` (default) runs on a reduced world in ~a minute;
//! `--scale full` uses the paper-scale configuration (top-10K lists for all
//! 45 countries across six months) and takes considerably longer.
//! `--out-of-core` routes the dataset build through the bounded-memory
//! collector (`wwv-oocore`): intermediate aggregation state is held under
//! `--memory-budget` bytes (default 64 MiB) by spilling checksummed
//! segments to `--spill-dir` (default: a per-process temp dir). The
//! resulting dataset — and therefore every experiment row — is
//! byte-identical to the in-memory build at any budget and thread count.
//! `--threads N` sets the `wwv-par` worker count for the dataset build and
//! the experiment battery (default: available parallelism; `1` forces the
//! fully serial reference schedule — output is identical either way).
//! `--metrics-out PATH` writes the full `wwv-obs` observability report —
//! per-stage span durations, counters, histogram summaries — as JSON.
//! Progress goes through the `wwv-obs` logger (`WWV_LOG=debug|info|warn`).
//! Optional trailing arguments filter the *printed* rows to experiment-id
//! prefixes (e.g. `F1 S4.5`); the JSON report always contains everything.

use std::sync::Arc;
use wwv_bench::{run_experiments, Scale};
use wwv_core::{AnalysisContext, ExperimentReport, ReportRow};
use wwv_fault::FaultPlan;
use wwv_obs::{error, info};
use wwv_oocore::OocoreConfig;
use wwv_telemetry::DatasetBuilder;
use wwv_world::World;

/// Parses a byte count with optional `k`/`m`/`g` suffix (`64m`, `512K`).
fn parse_bytes(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, shift) = match t.chars().last()? {
        'k' | 'K' => (&t[..t.len() - 1], 10),
        'm' | 'M' => (&t[..t.len() - 1], 20),
        'g' | 'G' => (&t[..t.len() - 1], 30),
        _ => (t, 0),
    };
    digits.parse::<usize>().ok().map(|n| n << shift)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::small();
    let mut json_path: Option<String> = None;
    let mut figures_dir: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut out_of_core = false;
    let mut memory_budget: usize = 64 << 20;
    let mut spill_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => Scale::full(),
                    Some("small") | None => Scale::small(),
                    Some(other) => {
                        error!(target: "reproduce", "unknown scale {other:?}; use small|full");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => wwv_par::set_threads(n),
                    _ => {
                        error!(target: "reproduce", "--threads expects a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--figures" => {
                i += 1;
                figures_dir = args.get(i).cloned();
            }
            "--metrics-out" => {
                i += 1;
                metrics_path = args.get(i).cloned();
            }
            "--out-of-core" => out_of_core = true,
            "--memory-budget" => {
                i += 1;
                memory_budget = match args.get(i).map(String::as_str).and_then(parse_bytes) {
                    Some(b) if b > 0 => b,
                    _ => {
                        error!(target: "reproduce", "--memory-budget takes BYTES (k/m/g suffixes ok)");
                        std::process::exit(2);
                    }
                };
            }
            "--spill-dir" => {
                i += 1;
                spill_dir = args.get(i).cloned();
            }
            other => filters.push(other.to_owned()),
        }
        i += 1;
    }

    let run_span = wwv_obs::span!("reproduce");
    info!(target: "reproduce", "starting"; scale = scale.name, threads = wwv_par::threads());

    let world = {
        let _span = wwv_obs::span!("world-gen");
        World::new(scale.config.clone())
    };
    info!(target: "reproduce", "world generated"; sites = world.universe().len());

    let dataset = {
        let _span = wwv_obs::span!("collection");
        let builder = DatasetBuilder::new(&world)
            .base_volume(scale.base_volume)
            .client_threshold(scale.client_threshold)
            .max_depth(scale.max_depth);
        if out_of_core {
            let dir = spill_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("wwv-reproduce-oocore-{}", std::process::id()))
                    .to_string_lossy()
                    .into_owned()
            });
            info!(target: "reproduce", "out-of-core build";
                budget = memory_budget, spill_dir = dir.as_str());
            let cfg = OocoreConfig::new(memory_budget, dir.as_str());
            let (ds, stats) = builder
                .build_out_of_core(&cfg, Arc::new(FaultPlan::none()))
                .unwrap_or_else(|e| {
                    error!(target: "reproduce", "out-of-core build failed: {e}");
                    std::process::exit(1);
                });
            info!(
                target: "reproduce",
                "out-of-core build done";
                peak_bytes = stats.peak_bytes,
                spilled_segments = stats.spilled_segments,
                spilled_bytes = stats.spilled_bytes
            );
            ds
        } else {
            builder.build()
        }
    };
    info!(
        target: "reproduce",
        "dataset built";
        lists = dataset.lists.len(),
        domains = dataset.domains.len()
    );

    let mut report = ExperimentReport::new();
    let ctx = {
        let _span = wwv_obs::span!("experiments");
        let ctx = AnalysisContext::with_depth(&world, &dataset, scale.analysis_depth);
        run_experiments(&mut report, &ctx, &world, &dataset, &scale);
        ctx
    };
    info!(
        target: "reproduce",
        "experiments complete";
        passed = report.passed(),
        total = report.rows.len()
    );

    let mut printed = ExperimentReport::new();
    for row in report
        .rows
        .iter()
        .filter(|r| filters.is_empty() || filters.iter().any(|f| r.id.starts_with(f.as_str())))
    {
        printed.push(ReportRow::clone(row));
    }
    println!("{}", printed.render());

    if let Some(dir) = figures_dir {
        let _span = wwv_obs::span!("figures");
        std::fs::create_dir_all(&dir).expect("create figures dir");
        let thresholds: Vec<usize> = if scale.analysis_depth >= 10_000 {
            vec![10, 30, 50, 100, 300, 1_000, 3_000, 10_000]
        } else {
            vec![10, 30, 50, 100, 300, 1_000, 2_000]
        };
        let figures = wwv_core::figures::all_figures(
            &ctx,
            scale.head_depth,
            &thresholds,
            scale.top_bucket,
        );
        for fig in &figures {
            let path = format!("{dir}/{}.tsv", fig.name);
            std::fs::write(&path, fig.to_tsv()).expect("write figure tsv");
        }
        info!(target: "reproduce", "wrote figure tables"; count = figures.len(), dir = dir);
    }

    if let Some(path) = json_path {
        let _span = wwv_obs::span!("report");
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write json report");
        info!(target: "reproduce", "wrote experiment report"; path = path);
    }

    // Close the root span so the captured report includes its duration.
    drop(run_span);

    let obs_report = wwv_obs::Report::capture();
    eprintln!("\n{}", obs_report.render_spans());
    if let Some(path) = metrics_path {
        std::fs::write(&path, obs_report.to_json()).expect("write metrics report");
        info!(target: "reproduce", "wrote metrics report"; path = path);
    }
}
