//! The experiment harness: regenerates every table and figure of the paper
//! and prints paper-stated vs measured values.
//!
//! Usage:
//!   reproduce [--scale small|full] [--json PATH] [--figures DIR] [only-ids…]
//!
//! `--scale small` (default) runs on a reduced world in ~a minute;
//! `--scale full` uses the paper-scale configuration (top-10K lists for all
//! 45 countries across six months) and takes considerably longer.
//! Optional trailing arguments filter the *printed* rows to experiment-id
//! prefixes (e.g. `F1 S4.5`); the JSON report always contains everything.

use wwv_bench::{run_experiments, Scale};
use wwv_core::{AnalysisContext, ExperimentReport, ReportRow};
use wwv_telemetry::DatasetBuilder;
use wwv_world::World;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::small();
    let mut json_path: Option<String> = None;
    let mut figures_dir: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => Scale::full(),
                    Some("small") | None => Scale::small(),
                    Some(other) => {
                        eprintln!("unknown scale {other:?}; use small|full");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--figures" => {
                i += 1;
                figures_dir = args.get(i).cloned();
            }
            other => filters.push(other.to_owned()),
        }
        i += 1;
    }

    eprintln!("[reproduce] scale = {}", scale.name);
    eprintln!("[reproduce] generating world …");
    let world = World::new(scale.config.clone());
    eprintln!("[reproduce] universe: {} sites", world.universe().len());
    eprintln!("[reproduce] building dataset (6 months × 45 countries × 2 platforms × 2 metrics) …");
    let dataset = DatasetBuilder::new(&world)
        .base_volume(scale.base_volume)
        .client_threshold(scale.client_threshold)
        .max_depth(scale.max_depth)
        .build();
    eprintln!(
        "[reproduce] dataset: {} lists, {} distinct domains",
        dataset.lists.len(),
        dataset.domains.len()
    );
    let ctx = AnalysisContext::with_depth(&world, &dataset, scale.analysis_depth);

    let mut report = ExperimentReport::new();
    run_experiments(&mut report, &ctx, &world, &dataset, &scale);

    let mut printed = ExperimentReport::new();
    for row in report
        .rows
        .iter()
        .filter(|r| filters.is_empty() || filters.iter().any(|f| r.id.starts_with(f.as_str())))
    {
        printed.push(ReportRow::clone(row));
    }
    println!("{}", printed.render());

    if let Some(dir) = figures_dir {
        std::fs::create_dir_all(&dir).expect("create figures dir");
        let thresholds: Vec<usize> = if scale.analysis_depth >= 10_000 {
            vec![10, 30, 50, 100, 300, 1_000, 3_000, 10_000]
        } else {
            vec![10, 30, 50, 100, 300, 1_000, 2_000]
        };
        let figures = wwv_core::figures::all_figures(
            &ctx,
            scale.head_depth,
            &thresholds,
            scale.top_bucket,
        );
        for fig in &figures {
            let path = format!("{dir}/{}.tsv", fig.name);
            std::fs::write(&path, fig.to_tsv()).expect("write figure tsv");
        }
        eprintln!("[reproduce] wrote {} figure tables to {dir}", figures.len());
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write json report");
        eprintln!("[reproduce] wrote {path}");
    }
}
