//! §5.1 / Figs. 6–7 bench: popularity curves, endemicity scores, shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::endemicity::popularity_curves;
use wwv_core::global_national::classify_global_national;
use wwv_core::AnalysisContext;
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    let curves = popularity_curves(&ctx, Platform::Windows, Metric::PageLoads, 200);
    c.bench_function("f07/build_curves", |b| {
        b.iter(|| black_box(popularity_curves(&ctx, Platform::Windows, Metric::PageLoads, 200)))
    });
    c.bench_function("f07/score_and_shape", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for curve in &curves {
                acc += curve.endemicity();
                black_box(curve.shape());
            }
            black_box(acc)
        })
    });
    c.bench_function("f07/classify_global_national", |b| {
        b.iter(|| {
            black_box(classify_global_national(&ctx, Platform::Windows, Metric::PageLoads, 200))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
