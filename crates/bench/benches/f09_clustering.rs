//! Fig. 11/21 bench: affinity propagation + silhouettes over the RBO matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::clustering::cluster_countries;
use wwv_core::similarity::similarity_matrix;
use wwv_core::AnalysisContext;
use wwv_stats::{silhouette_score, AffinityParams, AffinityPropagation};
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    let sim = similarity_matrix(&ctx, Platform::Windows, Metric::PageLoads);
    c.bench_function("f09/affinity_propagation", |b| {
        b.iter(|| {
            black_box(AffinityPropagation::new(AffinityParams::default()).fit(&sim.matrix))
        })
    });
    let clustering = AffinityPropagation::new(AffinityParams::default()).fit(&sim.matrix).unwrap();
    let dist = sim.matrix.map(|v| 1.0 - v);
    c.bench_function("f09/silhouette", |b| {
        b.iter(|| black_box(silhouette_score(&dist, &clustering.labels)))
    });
    c.bench_function("f09/full_fig11", |b| b.iter(|| black_box(cluster_countries(&sim))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
