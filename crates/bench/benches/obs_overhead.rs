//! Instrumentation overhead: the same collector ingest workload with the
//! `wwv-obs` layer enabled vs disabled. The acceptance bar for the
//! observability layer is <5% wall-time overhead on this path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_telemetry::client::ClientSimulator;
use wwv_telemetry::collector::Collector;
use wwv_telemetry::wire::encode_frame;
use wwv_world::{Breakdown, Metric, Month, Platform};

fn bench(c: &mut Criterion) {
    let (world, _) = bench_fixture();
    let b0 = Breakdown {
        country: 0,
        platform: Platform::Windows,
        metric: Metric::PageLoads,
        month: Month::February2022,
    };
    let sim = ClientSimulator::new(world);
    let frames: Vec<_> = sim.batches(b0, 200).iter().map(|b| encode_frame(b).unwrap()).collect();
    let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();

    let mut group = c.benchmark_group("obs_overhead/collector_ingest");
    group.throughput(Throughput::Bytes(bytes));
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        group.bench_function(label, |b| {
            wwv_obs::set_enabled(enabled);
            b.iter(|| {
                let collector = Collector::start(4, 10_000);
                for frame in &frames {
                    collector.ingest(frame.clone());
                }
                black_box(collector.finish())
            });
            wwv_obs::set_enabled(true);
        });
    }
    group.finish();

    // Span + counter micro-costs, for the <5% budget accounting.
    let mut group = c.benchmark_group("obs_overhead/primitives");
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        group.bench_function(format!("span_{label}"), |b| {
            wwv_obs::set_enabled(enabled);
            b.iter(|| black_box(wwv_obs::span!("bench-span")));
            wwv_obs::set_enabled(true);
        });
    }
    let counter = wwv_obs::global().counter("bench.counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = wwv_obs::global().histogram("bench.histogram");
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(4_097);
            hist.record(black_box(v))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
