//! Fig. 4/15 bench: desktop-vs-mobile category contrasts with significance
//! testing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::platform_diff::platform_differences;
use wwv_core::AnalysisContext;
use wwv_world::Metric;

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    platform_differences(&ctx, Metric::PageLoads);
    c.bench_function("f04/page_loads", |b| {
        b.iter(|| black_box(platform_differences(&ctx, Metric::PageLoads)))
    });
    c.bench_function("f04/time_on_page", |b| {
        b.iter(|| black_box(platform_differences(&ctx, Metric::TimeOnPage)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
