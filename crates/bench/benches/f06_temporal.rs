//! §4.5 bench: month-pair stability and the December anomaly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture_all_months;
use wwv_core::temporal::{adjacent_month_stability, december_anomaly};
use wwv_core::AnalysisContext;
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture_all_months();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    adjacent_month_stability(&ctx, Platform::Windows, Metric::PageLoads, 100);
    c.bench_function("f06/adjacent_top100", |b| {
        b.iter(|| {
            black_box(adjacent_month_stability(&ctx, Platform::Windows, Metric::PageLoads, 100))
        })
    });
    c.bench_function("f06/december_anomaly", |b| {
        b.iter(|| black_box(december_anomaly(&ctx, Platform::Windows, Metric::TimeOnPage, 1_000)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
