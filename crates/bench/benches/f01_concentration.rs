//! Fig. 1 / §4.1 bench: traffic-concentration curves and headline stats.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::concentration::{concentration_curve, headline_stats};
use wwv_core::AnalysisContext;
use wwv_world::{Metric, Platform, TrafficCurve};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    c.bench_function("f01/curve_calibration", |b| {
        b.iter(|| black_box(TrafficCurve::windows_page_loads()))
    });
    c.bench_function("f01/fig1_series", |b| {
        b.iter(|| black_box(concentration_curve(Platform::Windows, Metric::PageLoads)))
    });
    c.bench_function("f01/headline_stats", |b| b.iter(|| black_box(headline_stats(&ctx))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
