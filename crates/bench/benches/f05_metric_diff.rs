//! §4.4 / Fig. 5 bench: metric agreement and metric leaning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::metric_diff::{metric_agreement, metric_leaning};
use wwv_core::AnalysisContext;
use wwv_world::Platform;

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    metric_agreement(&ctx, Platform::Windows);
    c.bench_function("f05/agreement_windows", |b| {
        b.iter(|| black_box(metric_agreement(&ctx, Platform::Windows)))
    });
    c.bench_function("f05/leaning_windows", |b| {
        b.iter(|| black_box(metric_leaning(&ctx, Platform::Windows)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
