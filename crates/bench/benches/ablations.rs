//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * traffic-weighted RBO vs classic geometric RBO — does the paper's
//!   weighting change cluster structure, and what does it cost?
//! * area-based endemicity vs a naive variance-of-ranks score;
//! * privacy thresholding level vs rank-list depth;
//! * collector sharding degree vs ingest throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::endemicity::popularity_curves;
use wwv_core::AnalysisContext;
use wwv_stats::rbo::{rbo_classic, rbo_weighted, WeightModel};
use wwv_stats::spearman::average_ranks;
use wwv_telemetry::client::ClientSimulator;
use wwv_telemetry::collector::Collector;
use wwv_telemetry::wire::encode_frame;
use wwv_telemetry::DatasetBuilder;
use wwv_world::{Breakdown, Metric, Month, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);

    // --- RBO weighting ablation. ---
    let a = ctx.key_list(ctx.breakdown(0, Platform::Windows, Metric::PageLoads));
    let b = ctx.key_list(ctx.breakdown(5, Platform::Windows, Metric::PageLoads));
    let empirical =
        WeightModel::Empirical { weights: ctx.traffic_weights(Platform::Windows, Metric::PageLoads) };
    let mut group = c.benchmark_group("ablation/rbo");
    group.bench_function("traffic_weighted", |bch| {
        bch.iter(|| black_box(rbo_weighted(&a, &b, &empirical, 2_000)))
    });
    group.bench_function("classic_geometric", |bch| {
        bch.iter(|| black_box(rbo_classic(&a, &b, 0.98, 2_000)))
    });
    group.finish();

    // --- Endemicity score ablation. ---
    let curves = popularity_curves(&ctx, Platform::Windows, Metric::PageLoads, 200);
    let mut group = c.benchmark_group("ablation/endemicity");
    group.bench_function("area_score", |bch| {
        bch.iter(|| {
            let sum: f64 = curves.iter().map(|c| c.endemicity()).sum();
            black_box(sum)
        })
    });
    group.bench_function("naive_rank_variance", |bch| {
        bch.iter(|| {
            let sum: f64 = curves
                .iter()
                .map(|c| {
                    let ranks: Vec<f64> = c.ranks.iter().map(|r| *r as f64).collect();
                    let r = average_ranks(&ranks);
                    let mean = r.iter().sum::<f64>() / r.len() as f64;
                    r.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / r.len() as f64
                })
                .sum();
            black_box(sum)
        })
    });
    group.finish();

    // --- Privacy threshold ablation: stricter thresholds, shallower lists. ---
    let mut group = c.benchmark_group("ablation/privacy_threshold");
    group.sample_size(10);
    for threshold in [250u64, 1_000, 4_000] {
        group.bench_with_input(BenchmarkId::from_parameter(threshold), &threshold, |bch, &t| {
            bch.iter(|| {
                let ds = DatasetBuilder::new(world)
                    .months(&[Month::February2022])
                    .base_volume(2.0e8)
                    .client_threshold(t)
                    .max_depth(3_000)
                    .build();
                black_box(ds.lists.values().map(|l| l.len()).sum::<usize>())
            })
        });
    }
    group.finish();

    // --- Collector sharding ablation. ---
    let sim = ClientSimulator::new(world);
    let b0 = Breakdown {
        country: 0,
        platform: Platform::Windows,
        metric: Metric::PageLoads,
        month: Month::February2022,
    };
    let frames: Vec<_> = sim.batches(b0, 50).iter().map(|b| encode_frame(b).unwrap()).collect();
    let mut group = c.benchmark_group("ablation/collector_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |bch, &w| {
            bch.iter(|| {
                let collector = Collector::start(w, 1_000);
                for frame in &frames {
                    collector.ingest(frame.clone());
                }
                black_box(collector.finish())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
