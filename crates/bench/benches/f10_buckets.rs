//! Fig. 12 bench: 990 pairwise intersections per rank bucket.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::buckets::bucket_intersections;
use wwv_core::AnalysisContext;
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    bucket_intersections(&ctx, Platform::Windows, Metric::PageLoads, &[10]);
    c.bench_function("f10/buckets_10_100_1000", |b| {
        b.iter(|| {
            black_box(bucket_intersections(
                &ctx,
                Platform::Windows,
                Metric::PageLoads,
                &[10, 100, 1_000],
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
