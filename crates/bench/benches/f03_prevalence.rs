//! Fig. 3/14 bench: category prevalence by rank threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::prevalence::{figure3_categories, prevalence_by_rank};
use wwv_core::AnalysisContext;
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    let thresholds = [10, 30, 100, 300, 1_000, 2_000];
    let cats = figure3_categories();
    prevalence_by_rank(&ctx, cats[0], Platform::Windows, Metric::PageLoads, &thresholds);
    c.bench_function("f03/one_category", |b| {
        b.iter(|| {
            black_box(prevalence_by_rank(
                &ctx,
                cats[0],
                Platform::Windows,
                Metric::PageLoads,
                &thresholds,
            ))
        })
    });
    c.bench_function("f03/figure3_panel", |b| {
        b.iter(|| {
            for cat in &cats {
                black_box(prevalence_by_rank(
                    &ctx,
                    *cat,
                    Platform::Windows,
                    Metric::PageLoads,
                    &thresholds,
                ));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
