//! Substrate benches: world generation, demand computation, dataset build
//! (serial vs parallel), similarity matrix (serial vs parallel), wire
//! codec, and collector ingest throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::similarity::similarity_matrix;
use wwv_core::AnalysisContext;
use wwv_telemetry::client::ClientSimulator;
use wwv_telemetry::collector::Collector;
use wwv_telemetry::wire::{decode_frame, encode_frame};
use wwv_telemetry::DatasetBuilder;
use wwv_world::{Breakdown, Metric, Month, Platform, World, WorldConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/world");
    group.sample_size(10);
    group.bench_function("generate_small_world", |b| {
        b.iter(|| black_box(World::new(WorldConfig::small())))
    });
    group.finish();

    let (world, _) = bench_fixture();
    let b0 = Breakdown {
        country: 0,
        platform: Platform::Windows,
        metric: Metric::PageLoads,
        month: Month::February2022,
    };
    c.bench_function("pipeline/demand_one_breakdown", |b| {
        b.iter(|| black_box(world.demand(b0)))
    });
    let mut group = c.benchmark_group("pipeline/dataset");
    group.sample_size(10);
    group.bench_function("build_feb_dataset", |b| {
        b.iter(|| {
            black_box(
                DatasetBuilder::new(world)
                    .months(&[Month::February2022])
                    .base_volume(2.0e8)
                    .client_threshold(500)
                    .max_depth(3_000)
                    .build(),
            )
        })
    });
    group.finish();

    // Parallel vs serial: identical outputs (enforced by the determinism
    // test), so the delta is pure scheduling. `1` is the inline reference
    // schedule; `n` is available parallelism.
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut group = c.benchmark_group("pipeline/parallel");
    group.sample_size(10);
    for threads in [1, n_threads] {
        group.bench_function(format!("build_feb_dataset_{threads}_threads"), |b| {
            b.iter(|| {
                black_box(
                    DatasetBuilder::new(world)
                        .months(&[Month::February2022])
                        .base_volume(2.0e8)
                        .client_threshold(500)
                        .max_depth(3_000)
                        .threads(threads)
                        .build(),
                )
            })
        });
    }
    let (world_s, dataset_s) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world_s, dataset_s, 2_000);
    for threads in [1, n_threads] {
        // similarity_matrix runs on the process-global pool; pin its width
        // for the measurement, then restore the default.
        wwv_par::set_threads(threads);
        group.bench_function(format!("similarity_matrix_{threads}_threads"), |b| {
            b.iter(|| black_box(similarity_matrix(&ctx, Platform::Windows, Metric::PageLoads)))
        });
        wwv_par::set_threads(0);
    }
    group.finish();

    // Wire codec throughput.
    let sim = ClientSimulator::new(world);
    let batches = sim.batches(b0, 50);
    let frames: Vec<_> = batches.iter().map(|b| encode_frame(b).unwrap()).collect();
    let bytes: usize = frames.iter().map(|f| f.len()).sum();
    let mut group = c.benchmark_group("pipeline/wire");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("encode_50_batches", |b| {
        b.iter(|| {
            for batch in &batches {
                black_box(encode_frame(batch).unwrap());
            }
        })
    });
    group.bench_function("decode_50_batches", |b| {
        b.iter(|| {
            for frame in &frames {
                let mut f = frame.clone();
                black_box(decode_frame(&mut f).expect("valid frame"));
            }
        })
    });
    group.finish();

    // Collector ingest.
    let mut group = c.benchmark_group("pipeline/collector");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("ingest_50_batches_4_workers", |b| {
        b.iter(|| {
            let collector = Collector::start(4, 1_000);
            for frame in &frames {
                collector.ingest(frame.clone());
            }
            black_box(collector.finish())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
