//! Fig. 13 / Table 3 bench: the category-curation pipeline and the noisy
//! categorizer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_taxonomy::curation::run_curation;
use wwv_taxonomy::{Categorizer, Category, NoisyCategorizer, TrueCategorizer};

fn bench(c: &mut Criterion) {
    c.bench_function("f11/run_curation", |b| b.iter(|| black_box(run_curation(7))));
    let truth = TrueCategorizer::new((0..10_000).map(|i| {
        (format!("site{i}.example.com"), Category::ALL[i % Category::ALL.len()])
    }));
    let noisy = NoisyCategorizer::new(truth, 42);
    c.bench_function("f11/categorize_1k_domains", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..1_000 {
                if noisy.categorize(&format!("site{i}.example.com")).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
