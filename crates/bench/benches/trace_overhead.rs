//! Tracing overhead: the same loadgen replay with the `wwv-trace` layer
//! enabled vs disabled. The acceptance bar for request-scoped tracing is
//! <5% wall-time overhead on the serve path (same budget discipline as
//! `obs_overhead`).
//!
//! Three configurations bracket the cost:
//!
//! * `disabled` — no recorder, no sampling: the baseline;
//! * `sampled_1_16` — the recommended production setting (one request in
//!   16 carries a trace id and records its timeline);
//! * `sampled_all` — every request traced: the worst case, still bounded
//!   because recording is a handful of mutex-guarded pushes per request.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use wwv_bench::bench_fixture;
use wwv_serve::loadgen::{self, LoadgenConfig};
use wwv_serve::server::{Server, ServerConfig};
use wwv_serve::store::{Catalog, RankSource, ShardedStore};
use wwv_trace::{ClockMode, LiveMetrics, TraceRecorder};

fn bench(c: &mut Criterion) {
    let (_, dataset) = bench_fixture();
    let store: Arc<dyn RankSource> = Arc::new(ShardedStore::build(dataset, 16));
    let mut catalog = Catalog::new();
    catalog.insert("full", Arc::clone(&store));
    let catalog = Arc::new(catalog);

    const THREADS: usize = 4;
    const REQUESTS: usize = 200;

    let mut group = c.benchmark_group("trace_overhead/loadgen");
    group.sample_size(10);
    group.throughput(Throughput::Elements((THREADS * REQUESTS) as u64));
    for (label, sample, traced) in
        [("disabled", 0u64, false), ("sampled_1_16", 16, true), ("sampled_all", 1, true)]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = ServerConfig {
                    tracer: traced
                        .then(|| Arc::new(TraceRecorder::new(ClockMode::Wall))),
                    live: traced.then(|| Arc::new(LiveMetrics::default_window())),
                    ..ServerConfig::default()
                };
                let server = Server::start(Arc::clone(&catalog), config);
                let handle = server.handle();
                let config = LoadgenConfig {
                    threads: THREADS,
                    requests_per_thread: REQUESTS,
                    trace_sample: sample,
                    ..LoadgenConfig::default()
                };
                let report = loadgen::run(&handle, &store, &config);
                server.shutdown();
                black_box(report)
            })
        });
    }
    group.finish();

    // Per-event micro-costs, for the <5% budget accounting.
    let mut group = c.benchmark_group("trace_overhead/primitives");
    let recorder = TraceRecorder::new(ClockMode::Wall);
    let id = wwv_trace::TraceId::mint(1, 0, 0);
    // `start` replaces the timeline each iteration, keeping memory bounded
    // while measuring the full per-request recording cost.
    group.bench_function("record_timeline", |b| {
        b.iter(|| {
            recorder.start(black_box(id), 0, 0, "top_k");
            recorder.event(id, wwv_trace::Stage::Queue, 2);
            recorder.event(id, wwv_trace::Stage::Engine, black_box(7));
            recorder.event(id, wwv_trace::Stage::Serialize, 1);
            recorder.finish(id, 11, true);
        })
    });
    let sampler = wwv_trace::Sampler::new(16);
    group.bench_function("mint_and_sample", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            let id = wwv_trace::TraceId::mint(1, 0, black_box(seq));
            black_box(sampler.sample(id))
        })
    });
    let live = LiveMetrics::default_window();
    group.bench_function("window_record", |b| {
        b.iter(|| live.record(black_box(250), true, Some(true)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
