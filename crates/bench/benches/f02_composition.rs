//! Fig. 2 bench: category composition of top-100 / top-10K.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::composition::composition;
use wwv_core::AnalysisContext;
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    // Warm the category/key caches so the benched iterations measure the
    // analysis, not first-touch memoization.
    composition(&ctx, Platform::Windows, Metric::PageLoads);
    c.bench_function("f02/composition_windows_loads", |b| {
        b.iter(|| black_box(composition(&ctx, Platform::Windows, Metric::PageLoads)))
    });
    c.bench_function("f02/composition_android_time", |b| {
        b.iter(|| black_box(composition(&ctx, Platform::Android, Metric::TimeOnPage)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
