//! Snapshot-format shootout: columnar `wwv-snap` encoding vs the legacy
//! row-oriented binary format, on the shared bench fixture. Measures encode
//! and full-decode latency for both, plus the single-list lazy seek that
//! only the snapshot format supports; sizes are reported once via
//! `println!` so a bench run doubles as a size regression check.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_telemetry::persist;

fn bench(c: &mut Criterion) {
    let (_, dataset) = bench_fixture();
    let legacy = persist::to_binary(dataset);
    let snap = persist::write_snapshot(dataset);
    println!(
        "snap_format: legacy {} bytes, snap {} bytes ({:.1}% of legacy)",
        legacy.len(),
        snap.len(),
        100.0 * snap.len() as f64 / legacy.len() as f64
    );

    let mut group = c.benchmark_group("snap_format/encode");
    group.throughput(Throughput::Bytes(legacy.len() as u64));
    group.bench_function("legacy", |b| b.iter(|| black_box(persist::to_binary(dataset))));
    group.throughput(Throughput::Bytes(snap.len() as u64));
    group.bench_function("snap", |b| b.iter(|| black_box(persist::write_snapshot(dataset))));
    group.finish();

    let mut group = c.benchmark_group("snap_format/decode");
    group.throughput(Throughput::Bytes(legacy.len() as u64));
    group.bench_function("legacy", |b| {
        b.iter(|| black_box(persist::read_legacy(legacy.clone()).unwrap()))
    });
    group.throughput(Throughput::Bytes(snap.len() as u64));
    group.bench_function("snap", |b| {
        b.iter(|| black_box(persist::read_snapshot(snap.clone()).unwrap()))
    });
    group.finish();

    // The catalog-indexed seek: open + decode exactly one rank list without
    // touching the other chunks. The legacy format has no equivalent — its
    // only read path is the full decode above.
    let breakdown = dataset.breakdowns().next().expect("fixture has lists");
    let mut group = c.benchmark_group("snap_format/seek");
    group.bench_function("single_list", |b| {
        b.iter(|| {
            let reader = persist::SnapshotReader::open(snap.clone()).unwrap();
            black_box(reader.list(&breakdown).unwrap().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
