//! Serving-layer throughput: the query engine and worker pool under a
//! Zipf-distributed query mix, plus per-kind single-query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use wwv_bench::bench_fixture;
use wwv_serve::loadgen::{self, LoadgenConfig};
use wwv_serve::query::{ListKey, Query};
use wwv_serve::server::{Server, ServerConfig};
use wwv_serve::store::{Catalog, RankSource, ShardedStore};
use wwv_world::{Metric, Month, Platform};

fn us_key() -> ListKey {
    ListKey {
        snapshot: String::new(),
        country: 0,
        platform: Platform::Windows,
        metric: Metric::PageLoads,
        month: Month::February2022,
    }
}

fn bench(c: &mut Criterion) {
    let (_, dataset) = bench_fixture();
    let store: Arc<dyn RankSource> = Arc::new(ShardedStore::build(dataset, 16));
    let mut catalog = Catalog::new();
    catalog.insert("full", Arc::clone(&store));
    let catalog = Arc::new(catalog);

    // Steady-state single-query latency straight through the engine.
    let server = Server::start(Arc::clone(&catalog), ServerConfig::default());
    let engine = Arc::clone(server.engine());
    let mut group = c.benchmark_group("serve/engine");
    for (label, query) in [
        ("ping", Query::Ping),
        ("top_k_100", Query::TopK { key: us_key(), k: 100 }),
        ("site_rank", Query::SiteRank { key: us_key(), domain: "google.com".into() }),
        (
            "rbo_cached",
            Query::Rbo {
                a: us_key(),
                b: ListKey { country: 1, ..us_key() },
                depth: 100,
                p_permille: 900,
            },
        ),
    ] {
        group.bench_function(label, |b| b.iter(|| black_box(engine.execute(&query))));
    }
    group.finish();
    server.shutdown();

    // End-to-end worker-pool throughput (codec + queue + workers) under the
    // default Zipf mix, at a few concurrency levels.
    let mut group = c.benchmark_group("serve/throughput");
    group.sample_size(10);
    for threads in [1usize, 4] {
        const REQUESTS: usize = 200;
        group.throughput(Throughput::Elements((threads * REQUESTS) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let server = Server::start(Arc::clone(&catalog), ServerConfig::default());
                    let handle = server.handle();
                    let config = LoadgenConfig {
                        threads,
                        requests_per_thread: REQUESTS,
                        ..LoadgenConfig::default()
                    };
                    let report = loadgen::run(&handle, &store, &config);
                    server.shutdown();
                    black_box(report)
                })
            },
        );
    }
    group.finish();

    // Open-loop pipelined throughput: D requests in flight per client over
    // the batched framed protocol, rank-lookup mix (the BENCH_serve shape).
    let mut group = c.benchmark_group("serve/pipelined");
    group.sample_size(10);
    for depth in [8usize, 32] {
        const REQUESTS: usize = 400;
        group.throughput(Throughput::Elements((2 * REQUESTS) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let server = Server::start(Arc::clone(&catalog), ServerConfig::default());
                let handle = server.handle();
                let config = LoadgenConfig {
                    threads: 2,
                    requests_per_thread: REQUESTS,
                    mix: loadgen::QueryMix::lookups_only(),
                    pipeline_depth: depth,
                    ..LoadgenConfig::default()
                };
                let report = loadgen::run(&handle, &store, &config);
                server.shutdown();
                black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
