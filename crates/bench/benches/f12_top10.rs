//! §4.2.1 / Table 4 bench: top-10 composition across countries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::top10::{endemic_top10_keys, top10_category_tally, top10_coverage};
use wwv_core::AnalysisContext;
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    top10_coverage(&ctx, Platform::Windows, Metric::PageLoads);
    c.bench_function("f12/coverage", |b| {
        b.iter(|| black_box(top10_coverage(&ctx, Platform::Windows, Metric::PageLoads)))
    });
    c.bench_function("f12/tally", |b| {
        b.iter(|| black_box(top10_category_tally(&ctx, Platform::Windows, Metric::PageLoads)))
    });
    c.bench_function("f12/endemic_keys", |b| {
        b.iter(|| black_box(endemic_top10_keys(&ctx, Platform::Windows, Metric::PageLoads)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
