//! §5.3.1 / Fig. 10 bench: the 45×45 traffic-weighted RBO matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wwv_bench::bench_fixture;
use wwv_core::similarity::similarity_matrix;
use wwv_core::AnalysisContext;
use wwv_stats::rbo::{rbo_classic, rbo_weighted, WeightModel};
use wwv_world::{Metric, Platform};

fn bench(c: &mut Criterion) {
    let (world, ds) = bench_fixture();
    let ctx = AnalysisContext::with_depth(world, ds, 2_000);
    let a = ctx.key_list(ctx.breakdown(0, Platform::Windows, Metric::PageLoads));
    let b = ctx.key_list(ctx.breakdown(1, Platform::Windows, Metric::PageLoads));
    let weights = WeightModel::Empirical { weights: ctx.traffic_weights(Platform::Windows, Metric::PageLoads) };
    c.bench_function("f08/one_pair_weighted_rbo", |bch| {
        bch.iter(|| black_box(rbo_weighted(&a, &b, &weights, 2_000)))
    });
    c.bench_function("f08/one_pair_classic_rbo", |bch| {
        bch.iter(|| black_box(rbo_classic(&a, &b, 0.98, 2_000)))
    });
    let mut group = c.benchmark_group("f08/full_matrix");
    group.sample_size(10);
    group.bench_function("45x45", |bch| {
        bch.iter(|| black_box(similarity_matrix(&ctx, Platform::Windows, Metric::PageLoads)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
